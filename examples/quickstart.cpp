/**
 * @file
 * Quickstart: the five-minute HeapMD workflow.
 *
 *  1. pick a program (here: the Multimedia analogue);
 *  2. TRAIN -- run it on a set of clean inputs and let the metric
 *     summarizer calibrate the globally stable heap metrics;
 *  3. CHECK -- run it on new inputs under the anomaly detector;
 *  4. read the bug reports.
 *
 * Build:  cmake --build build --target quickstart
 * Run:    ./build/examples/quickstart
 */

#include <cstdio>

#include "core/heapmd.hh"

using namespace heapmd;

int
main()
{
    // The Settings file of Figure 2: metric computation frequency,
    // stability thresholds (paper defaults: +/-1% average change,
    // stddev 5, first/last 10% trimmed, stable on >= 40% of inputs).
    HeapMDConfig config;
    config.process.metricFrequency = 300;
    const HeapMD tool(config);

    auto app = makeApp("Multimedia");

    // ---- Phase 1: model construction (Section 2.1) ----------------
    std::printf("Training %s on 15 inputs...\n", app->name().c_str());
    const TrainingOutcome training =
        tool.train(*app, makeInputs(/*first_seed=*/1, /*count=*/15));

    std::printf("Model: %zu globally stable metrics\n",
                training.model.stableMetricCount());
    for (const HeapModel::Entry &e : training.model.entries()) {
        std::printf("  %-9s calibrated range [%6.2f, %6.2f]  "
                    "(stable on %zu/15 inputs)\n",
                    metricName(e.id).c_str(), e.minValue, e.maxValue,
                    e.stableRuns);
    }

    // ---- Phase 2: execution checking (Section 2.2) ----------------
    // A clean input: no reports expected.
    AppConfig clean;
    clean.inputSeed = 100;
    const CheckOutcome ok = tool.check(*app, clean, training.model);
    std::printf("\nClean input (seed 100): %zu reports\n",
                ok.check.reports.size());

    // A buggy build: doubly-linked inserts forget the prev-pointer
    // update (the Figure 1 bug).
    AppConfig buggy;
    buggy.inputSeed = 101;
    buggy.faults.enable(FaultKind::DllMissingPrev, 1.0);
    const CheckOutcome bad = tool.check(*app, buggy, training.model);
    std::printf("Buggy input (seed 101, missing prev updates): "
                "%zu reports\n",
                bad.check.reports.size());

    const FunctionRegistry registry = bad.run.registry();
    for (const BugReport &report : bad.check.reports)
        std::printf("\n%s", report.describe(registry).c_str());

    return bad.check.anomalous() && !ok.check.anomalous() ? 0 : 1;
}
