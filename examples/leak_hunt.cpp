/**
 * @file
 * Leak hunt: HeapMD and the SWAT baseline side by side on a web
 * application with an injected Figure 11 typo leak.
 *
 * Shows the Table 1 contrast in one run:
 *  - HeapMD pinpoints the function on the call-stack log when the
 *    leak moves a stable degree metric out of range;
 *  - SWAT reports the individual stale objects (and also flags the
 *    reachable-but-idle session cache -- its false-positive mode).
 *
 * Run:  ./build/examples/leak_hunt
 */

#include <cstdio>
#include <set>

#include "core/heapmd.hh"
#include "swat/swat_detector.hh"

using namespace heapmd;

int
main()
{
    HeapMDConfig config;
    config.process.metricFrequency = 300;
    const HeapMD tool(config);
    auto app = makeApp("Interactive web-app.");

    std::printf("Training on 15 clean inputs...\n");
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 15));

    // One buggy execution, monitored by both tools at once.
    AppConfig buggy;
    buggy.inputSeed = 404;
    buggy.faults.enable(FaultKind::TypoLeak, 1.0);

    Process process(config.process);
    ExecutionChecker checker(training.model);
    checker.attach(process);
    SwatConfig swat_config;
    swat_config.stalenessThreshold = 300000;
    SwatDetector swat(swat_config);
    swat.attach(process);

    const AppResult ground = app->run(process, buggy);
    std::printf("\nGround truth: %llu descriptors leaked, "
                "%llu cache objects (not leaks)\n",
                static_cast<unsigned long long>(
                    ground.injectedLeakObjects),
                static_cast<unsigned long long>(ground.cacheObjects));

    // ---- HeapMD ----------------------------------------------------
    const CheckResult result = checker.finalize(process);
    std::printf("\nHeapMD: %zu report(s)\n", result.reports.size());
    for (const BugReport &report : result.reports) {
        std::printf("  metric %s went %s its calibrated range "
                    "[%0.2f, %0.2f] (observed %0.2f)\n",
                    metricName(report.metric).c_str(),
                    report.direction == AnomalyDirection::AboveMax
                        ? "above"
                        : "below",
                    report.calibratedMin, report.calibratedMax,
                    report.observedValue);
        const FnId suspect = report.suspectFunction();
        if (suspect != kNoFunction) {
            std::printf("  suspect function from the call-stack "
                        "log: %s\n",
                        process.registry().name(suspect).c_str());
        }
    }

    // ---- SWAT ------------------------------------------------------
    const std::set<Addr> truth(ground.leakAddrs.begin(),
                               ground.leakAddrs.end());
    const std::set<Addr> cache(ground.cacheAddrs.begin(),
                               ground.cacheAddrs.end());
    std::size_t true_hits = 0, cache_fps = 0, other = 0;
    for (const LeakReport &leak : swat.finalize(process.now())) {
        if (truth.count(leak.addr))
            ++true_hits;
        else if (cache.count(leak.addr))
            ++cache_fps;
        else
            ++other;
    }
    std::printf("\nSWAT: %zu true leaked objects reported, "
                "%zu cache objects flagged (false positives), "
                "%zu other\n",
                true_hits, cache_fps, other);

    std::printf("\nThe Table 1 story: SWAT enumerates stale objects "
                "(including FP-prone caches);\nHeapMD reports the "
                "systemic anomaly with a root-cause hint and no "
                "staleness FPs.\n");
    return result.anomalous() ? 0 : 1;
}
