/**
 * @file
 * Offline (post-mortem) checking: the second design of Section 2.
 *
 * An instrumented execution writes a compact event trace; later, the
 * trace is replayed through the execution logger and checked against
 * the model -- no need to re-run (or even have) the program.
 *
 * Run:  ./build/examples/offline_trace
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/heapmd.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"

using namespace heapmd;

int
main()
{
    HeapMDConfig config;
    config.process.metricFrequency = 300;
    const HeapMD tool(config);
    auto app = makeApp("Productivity");

    std::printf("Training on 12 inputs...\n");
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 12));

    // ---- Record: run the buggy build once, capturing the trace ----
    std::stringstream trace_bytes;
    {
        Process process(config.process);
        TraceWriter writer(trace_bytes, process.registry());
        process.addEventObserver(&writer);

        AppConfig buggy;
        buggy.inputSeed = 777;
        buggy.faults.enable(FaultKind::DllMissingPrev, 1.0);
        app->run(process, buggy);
        writer.finish();
        std::printf("Recorded %llu events (%zu KiB trace)\n",
                    static_cast<unsigned long long>(
                        writer.eventCount()),
                    trace_bytes.str().size() / 1024);
    }

    // ---- Replay: post-mortem analysis from the trace alone --------
    Process replayed(config.process);
    ExecutionChecker checker(training.model);
    checker.attach(replayed);
    TraceReader reader(trace_bytes);
    const std::uint64_t events = replayTrace(reader, replayed);
    const CheckResult result = checker.finalize(replayed);

    std::printf("Replayed %llu events; %zu report(s)\n",
                static_cast<unsigned long long>(events),
                result.reports.size());
    for (const BugReport &report : result.reports)
        std::printf("\n%s",
                    report.describe(replayed.registry()).c_str());

    std::printf("\nOffline analysis sees exactly what the online "
                "logger saw: the same metric\nseries, the same "
                "violations -- from a trace that can be archived "
                "with the\nfailing test.\n");
    return result.anomalous() ? 0 : 1;
}
