/**
 * @file
 * Version regression: calibrate HeapMD on version 1 of a program and
 * check later development versions against the same model -- the
 * Figure 7(B) workflow ("the anomaly detector can be used to find
 * bugs ... in another version of the program, input*.exe").
 *
 * Version 4 in this scenario carries a regression: an internal tree
 * splice that forgets the child's parent back-pointer.
 *
 * Run:  ./build/examples/version_regression
 */

#include <cstdio>

#include "core/heapmd.hh"

using namespace heapmd;

int
main()
{
    HeapMDConfig config;
    config.process.metricFrequency = 300;
    const HeapMD tool(config);
    auto app = makeApp("PC Game (action)");

    std::printf("Calibrating on version 1 (20 regression inputs)...\n");
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 20, /*version=*/1));
    std::printf("Stable metrics: %zu\n",
                training.model.stableMetricCount());

    // Check later builds against the v1 model, on fresh inputs.
    for (std::uint32_t version = 2; version <= 5; ++version) {
        int reports = 0;
        for (std::uint64_t seed = 900; seed < 903; ++seed) {
            AppConfig cfg;
            cfg.inputSeed = seed;
            cfg.version = version;
            if (version == 4) {
                // The regression shipped in version 4.
                cfg.faults.enable(FaultKind::TreeMissingParent, 1.0);
            }
            const CheckOutcome out =
                tool.check(*app, cfg, training.model);
            reports += static_cast<int>(out.check.reports.size());
        }
        std::printf("version %u: %d report(s) over 3 inputs%s\n",
                    version, reports,
                    version == 4 ? "   <-- regression detected"
                                 : "");
    }

    std::printf("\nThe Figure 7(B) property makes this workflow "
                "sound: stable metrics and their\nranges persist "
                "across clean versions, so a v1 model keeps working "
                "for v2..v5 --\nuntil a heap regression moves a "
                "metric out of its calibrated range.\n");
    return 0;
}
