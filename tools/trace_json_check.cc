/**
 * @file
 * trace_json_check -- validate a Chrome trace-event JSON file.
 *
 * CI runs this over the trace.json produced by
 * `heapmd replay --trace-out` so a malformed emitter fails the build
 * instead of failing silently in the Perfetto UI.
 *
 * Exit status: 0 valid, 1 invalid, 2 usage error.
 */

#include <cstdio>

#include "telemetry/trace_json.hh"

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s TRACE_JSON_FILE\n", argv[0]);
        return 2;
    }
    heapmd::telemetry::TraceJsonStats stats;
    std::string error;
    if (!heapmd::telemetry::validateTraceEventFile(argv[1], &stats,
                                                   &error)) {
        std::fprintf(stderr, "%s: INVALID: %s\n", argv[1],
                     error.c_str());
        return 1;
    }
    std::printf("%s: OK: %zu events (%zu spans, %zu instants, "
                "%zu counters, %zu metadata)\n",
                argv[1], stats.events, stats.spans, stats.instants,
                stats.counters, stats.metadata);
    return 0;
}
