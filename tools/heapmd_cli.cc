/**
 * @file
 * heapmd -- command-line driver for the HeapMD pipeline.
 *
 * Subcommands (see usage() for flags):
 *   list-apps              enumerate the bundled benchmark programs
 *   train                  calibrate a model over training inputs
 *   inspect                print a saved model
 *   check                  check one input against a saved model
 *   record                 record an instrumented run to a trace
 *   capture                record a *real* process via the preloaded
 *                          allocator-interposition shim
 *   replay                 post-mortem: replay a trace under a model
 *   diff                   compare two models (program evolution)
 *   snapshot               dump the final heap-graph of a run
 *   audit                  statically verify traces/models/snapshots
 *                          and diag artifacts (bundles, manifests)
 *   report                 render an incident bundle for a developer
 *   trend                  compare run manifests, flag regressions
 *   fleet-merge            fold N run manifests into a population
 *                          model: pooled stable ranges, per-process
 *                          outliers, incident clusters
 *   fleet-trend            compare two fleet models, flag
 *                          fleet-level drift
 *   top                    live view of capture stats segments
 *   export                 serve segments as Prometheus /metrics
 *   monitor                online detector daemon: follow a rotating
 *                          capture segment set (or a live pid's shm
 *                          stats) against a model and fire incident
 *                          bundles while the workload still runs
 *   stats                  run once and print the telemetry counters
 *                          (or --format prometheus for live segments)
 *
 * Exit status contract (scriptable; see README):
 *   0  success, nothing found
 *   1  fatal error (unreadable artifact, internal failure)
 *   2  usage error (unknown command/flag, missing value)
 *   3  findings: anomaly reports from check/replay, audit defects,
 *      model drift from diff, regressions from trend
 *
 * Every command also accepts:
 *   --trace-out FILE       write a Chrome trace-event JSON timeline
 *   --stats 0|1            print the counter table on exit (stderr);
 *                          HEAPMD_STATS=1 in the environment does the
 *                          same
 *   --jobs N               worker threads for multi-input train and
 *                          batch check (0 = one per hardware thread;
 *                          the HEAPMD_JOBS env var is the fallback);
 *                          outputs are bit-identical for any value
 *
 * Examples:
 *   heapmd train --app Multimedia --inputs 25 --out mm.model
 *   heapmd check --app Multimedia --model mm.model --seed 404 \
 *                --fault typo-leak --rate 1.0
 *   heapmd record --app gzip --seed 7 --out run.trace
 *   heapmd capture --out live.trace -- ./server --port 8080
 *   heapmd replay --trace run.trace --model gzip.model
 *   heapmd diff --model v1.model --model-b v2.model
 *   heapmd snapshot --app gzip --seed 7 --out run.graph
 *   heapmd audit --trace run.trace --model gzip.model \
 *                --graph run.graph
 */

#include <chrono>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/diag_lint.hh"
#include "analysis/fleet_lint.hh"
#include "analysis/flow_lint.hh"
#include "analysis/graph_lint.hh"
#include "analysis/model_lint.hh"
#include "analysis/trace_lint.hh"
#include "core/heapmd.hh"
#include "diag/flow_incident.hh"
#include "diag/incident_bundle.hh"
#include "diag/json.hh"
#include "diag/render.hh"
#include "diag/run_manifest.hh"
#include "diag/trend.hh"
#include "fleet/fleet_merge.hh"
#include "fleet/fleet_model.hh"
#include "fleet/fleet_trend.hh"
#include "heapgraph/graph_snapshot.hh"
#include "model/model_diff.hh"
#include "support/build_env.hh"
#include "support/table.hh"
#include "support/thread_pool.hh"
#include "telemetry/telemetry.hh"
#include "trace/gzip_source.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_source.hh"
#include "trace/trace_writer.hh"

#if defined(HEAPMD_HAVE_CAPTURE)
#include "capture/capture_session.hh"
#endif

#if defined(HEAPMD_HAVE_OBSV)
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "monitor/monitor.hh"
#include "obsv/prometheus.hh"
#include "obsv/segment.hh"
#include "obsv/top_view.hh"
#endif

using namespace heapmd;

namespace
{

/** argv[0], stashed for error messages before Args parsing. */
const char *g_argv0 = "heapmd";

/** The whole invocation joined with spaces, for run manifests. */
std::string g_command_line;

/** For `capture`: everything after the `--` separator. */
std::vector<std::string> g_capture_argv;

/** Exit status for "the tool worked and found something" (README). */
constexpr int kExitFindings = 3;

/** Worker threads from --jobs / HEAPMD_JOBS (0 = auto, 1 = serial). */
unsigned g_jobs = 1;

#if defined(HEAPMD_HAVE_OBSV)

/** Set by SIGINT/SIGTERM: the long-running commands wind down. */
volatile std::sig_atomic_t g_stop = 0;

/**
 * Arrange for SIGINT/SIGTERM to request a graceful shutdown of
 * `export --listen` and `monitor`: the flag is polled from their wait
 * loops, and SA_RESTART is deliberately *not* set so a blocking
 * poll/accept wakes with EINTR instead of sleeping through the
 * signal.
 */
void
installStopHandlers()
{
    struct sigaction sa{};
    sa.sa_handler = [](int) { g_stop = 1; };
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

#endif // HEAPMD_HAVE_OBSV

/** Process start, for the manifest's end-to-end duration stamp. */
const std::chrono::steady_clock::time_point g_main_start =
    std::chrono::steady_clock::now();

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s <command> [flags]\n"
        "\n"
        "commands:\n"
        "  list-apps\n"
        "  train   --app NAME [--inputs N=25] [--seed S=1]\n"
        "          [--version V=1] [--scale X=1.0] [--frq N=300]\n"
        "          [--local 0|1] [--out FILE] [--manifest FILE]\n"
        "          or: --trace FILE [--trace FILE ...] [--name NAME]\n"
        "          [--no-audit 1] (train from recorded/captured\n"
        "          traces instead of synthetic apps)\n"
        "  inspect --model FILE\n"
        "  check   --app NAME --model FILE [--seed S=100]\n"
        "          [--inputs N=1] [--version V=1] [--scale X=1.0]\n"
        "          [--frq N=300]\n"
        "          [--fault KIND [--rate R=1.0] [--budget B=0]]\n"
        "          [--no-audit 1] [--bundle-dir DIR]\n"
        "          [--manifest FILE]\n"
        "          (--inputs N checks seeds S..S+N-1 as a batch)\n"
        "  record  --app NAME --out FILE [--seed S=1] [--version V]\n"
        "          [--scale X] [--fault KIND [--rate R] [--budget B]]\n"
        "  capture [--out FILE=capture.trace] [--frq N=10000]\n"
        "          [--lib SHIM.so] [--train-out FILE]\n"
        "          [--check MODEL] [--bundle-dir DIR]\n"
        "          [--rotate-bytes N] [--compress 1]\n"
        "          [--manifest FILE] [--verbose 1]\n"
        "          -- <command> [args...]\n"
        "          (LD_PRELOADs the allocator shim into the command\n"
        "           and records a live trace; --frq is the\n"
        "           conservative-scan period in allocation events;\n"
        "           --rotate-bytes records rotating FILE.NNNNNN.heapmd\n"
        "           segments `monitor` can follow while the command\n"
        "           still runs; --compress gzips each rotation\n"
        "           segment [.heapmd.gz], with the rotation threshold\n"
        "           still counted in raw trace bytes --\n"
        "           HEAPMD_CAPTURE_COMPRESS=1 does the same)\n"
        "  replay  --trace FILE --model FILE [--frq N=300]\n"
        "          [--no-audit 1] [--bundle-dir DIR]\n"
        "          [--manifest FILE]\n"
        "          (capture-provenance traces default to --frq 1 and\n"
        "           tolerate allocator address reuse)\n"
        "  diff    --model FILE --model-b FILE\n"
        "  snapshot --app NAME --out FILE [--seed S=1] [--version V]\n"
        "          [--scale X] [--fault KIND [--rate R] [--budget B]]\n"
        "  audit   [--trace FILE ...] [--segments BASE ...]\n"
        "          [--model FILE ...]\n"
        "          [--graph FILE ...] [--bundle FILE ...]\n"
        "          [--manifest FILE ...] [--fleet FILE ...]\n"
        "          [--deep 0|1]\n"
        "          [--bundle-dir DIR] [--max-findings N=1000]\n"
        "          (static verification: lint artifacts against the\n"
        "           rule catalog in DESIGN.md without replaying;\n"
        "           every input repeats, reports print per file in\n"
        "           input order, and the exit code reflects the\n"
        "           worst finding across all of them; --deep 1 adds\n"
        "           the shadow-heap flow analysis [flow.* rules] on\n"
        "           traces and --bundle-dir exports its findings as\n"
        "           flow incidents for `report`)\n"
        "  report  --bundle FILE [--stacks N=3] [--suspects N=5]\n"
        "          (render an incident bundle or a flow incident:\n"
        "           ranked suspects, metric trajectory, call stacks\n"
        "           / rule, site pair, triage hint)\n"
        "  trend   --baseline FILE --manifest FILE [--manifest ...]\n"
        "          [--counter-tol R=0.10] [--sample-tol R=0.10]\n"
        "          [--min-base N=100] [--rss-tol R=0.35]\n"
        "          [--phase-tol R=1.0]\n"
        "          (compare run manifests against a clean baseline;\n"
        "           exits %d when a regression is flagged; all\n"
        "           manifests must share one schemaVersion)\n"
        "  fleet-merge <path...> [--manifest FILE ...]\n"
        "          [--out FILE=fleet.json] [--outlier-z Z=3.0]\n"
        "          [--min-members N=3]\n"
        "          (fold run manifests -- given directly or found in\n"
        "           directories, along with any incident bundles --\n"
        "           into one population model: pooled per-metric\n"
        "           stable ranges, leave-one-out outlier attribution\n"
        "           weighted by sample counts, incident clusters\n"
        "           keyed on suspect-function signature; the output\n"
        "           is byte-identical for any input order or --jobs;\n"
        "           exits %d when a member is attributed as an\n"
        "           outlier)\n"
        "  fleet-trend --fleet FILE --baseline FILE\n"
        "          [--range-tol R=0.25]\n"
        "          (compare today's fleet model against yesterday's;\n"
        "           new outliers, drifted pooled ranges, and new\n"
        "           incident clusters exit %d)\n"
        "  top     [--pid P | --all 1] [--once 1] [--interval MS=2000]\n"
        "          [--model FILE] [--reap 1]\n"
        "          (live view of capture shim stats segments in\n"
        "           /dev/shm; --model adds drift against a trained\n"
        "           model's stable ranges; --reap removes segments\n"
        "           left by SIGKILLed processes)\n"
        "  export  [--listen HOST:PORT=127.0.0.1:9464] [--pid P]\n"
        "          [--once 1] [--fleet FILE]\n"
        "          (serve the live segments as a Prometheus /metrics\n"
        "           HTTP endpoint; SIGINT/SIGTERM shut it down\n"
        "           cleanly; --fleet appends the heapmd_fleet_*\n"
        "           families of a fleet-merge model to every scrape)\n"
        "  monitor --model FILE (--segments BASE | --pid P)\n"
        "          [--once 1] [--bundle-dir DIR] [--poll-ms N=50]\n"
        "          [--debounce N=3] [--rearm N=8] [--window N=16]\n"
        "          [--listen HOST:PORT]\n"
        "          (online detector daemon: tail a rotating capture\n"
        "           segment set -- or, with --pid, a live process's\n"
        "           shm stats -- against a trained model and write\n"
        "           incident bundles the moment an excursion survives\n"
        "           its debounce, while the workload still runs;\n"
        "           --once consumes a completed set with the same\n"
        "           verdicts as `check`; --listen serves the\n"
        "           heapmd_monitor_* Prometheus families)\n"
        "  observe --app NAME [--seed S=1] [--version V] [--scale X]\n"
        "          [--frq N=300] [--fault KIND [--rate R]]\n"
        "          (prints the metric series as CSV -- the paper's\n"
        "           GUI plotter substitute)\n"
        "  stats   [--app NAME=%s] [--seed S=1] [--version V]\n"
        "          [--scale X] [--frq N=300]\n"
        "          (runs once and prints the telemetry counters)\n"
        "          or: --format prometheus [--pid P] [--fleet FILE]\n"
        "          (print the live stats segments as Prometheus\n"
        "           text exposition instead of running anything;\n"
        "           --fleet appends the heapmd_fleet_* families)\n"
        "\n"
        "global flags (any command):\n"
        "  --trace-out FILE   Chrome trace-event JSON timeline\n"
        "  --stats 0|1        counter table on exit (stderr); the\n"
        "                     HEAPMD_STATS env var does the same\n"
        "  --jobs N           worker threads for multi-input train,\n"
        "                     batch check, and multi-trace audit\n"
        "                     (0 = one per hardware thread; the\n"
        "                     HEAPMD_JOBS env var is the fallback;\n"
        "                     outputs are bit-identical for any\n"
        "                     value)\n"
        "\n"
        "exit status: 0 clean; 1 fatal error; 2 usage error;\n"
        "  3 findings (anomaly reports, audit defects, model drift,\n"
        "  trend regressions)\n",
        g_argv0, kExitFindings, kExitFindings, kExitFindings,
        specAppNames().front().c_str());
}

/**
 * Bad invocation: name the offending command/flag on stderr, show the
 * usage text, and exit 2 (the conventional usage-error status).
 */
[[noreturn]] void
badInvocation(const std::string &what)
{
    std::fprintf(stderr, "%s: %s\n\n", g_argv0, what.c_str());
    printUsage(stderr);
    std::exit(2);
}

/**
 * Parse a --jobs / HEAPMD_JOBS value: a small decimal integer, where
 * 0 means one worker per hardware thread.  Anything else is a usage
 * error -- not std::stoull, whose exceptions would abort instead of
 * exiting 2.
 */
unsigned
parseJobs(const std::string &text, const char *origin)
{
    bool ok = !text.empty() && text.size() <= 4;
    for (char c : text)
        ok = ok && c >= '0' && c <= '9';
    if (!ok)
        badInvocation("invalid " + std::string(origin) + " value '" +
                      text +
                      "' (expected a small non-negative integer)");
    return static_cast<unsigned>(std::stoul(text));
}

/**
 * Tiny --flag value parser.  Both `--flag value` and `--flag=value`
 * spellings are accepted.  Flags may repeat; single-value accessors
 * take the last occurrence (so a repeated flag overrides), all()
 * returns every occurrence in order (trend's candidate list).
 * Commands that opt in (fleet-merge) also take bare positional
 * operands; everywhere else a non-flag token is a usage error.
 */
class Args
{
  public:
    Args(int argc, char **argv, bool allow_positional = false)
    {
        for (int i = 2; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) {
                if (allow_positional) {
                    positionals_.push_back(std::move(key));
                    continue;
                }
                badInvocation("expected '--flag value', got '" + key +
                              "'");
            }
            const std::size_t eq = key.find('=');
            if (eq != std::string::npos) {
                if (eq == 2)
                    badInvocation("flag '" + key + "' has no name");
                values_[key.substr(2, eq - 2)].push_back(
                    key.substr(eq + 1));
                continue;
            }
            if (i + 1 >= argc)
                badInvocation("flag '" + key + "' is missing a value");
            values_[key.substr(2)].push_back(argv[++i]);
        }
    }

    /**
     * Reject flags outside @p allowed (plus the global flags every
     * command accepts), naming the first offender.
     */
    void
    checkAllowed(const std::string &command,
                 const std::set<std::string> &allowed) const
    {
        static const std::set<std::string> global = {"trace-out",
                                                     "stats", "jobs"};
        for (const auto &[key, value] : values_) {
            (void)value;
            if (allowed.count(key) == 0 && global.count(key) == 0)
                badInvocation("unknown flag '--" + key +
                              "' for command '" + command + "'");
        }
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) != 0;
    }

    std::string
    str(const std::string &key, const std::string &fallback = "") const
    {
        auto it = values_.find(key);
        if (it == values_.end()) {
            if (fallback.empty())
                badInvocation("missing required flag '--" + key + "'");
            return fallback;
        }
        return it->second.back();
    }

    /** Every occurrence of a repeatable flag, in command-line order. */
    std::vector<std::string>
    all(const std::string &key) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? std::vector<std::string>{}
                                   : it->second;
    }

    /** Bare operands, in command-line order (fleet-merge inputs). */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    std::uint64_t
    num(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::stoull(it->second.back());
    }

    double
    real(const std::string &key, double fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::stod(it->second.back());
    }

  private:
    std::map<std::string, std::vector<std::string>> values_;
    std::vector<std::string> positionals_;
};

HeapMDConfig
configFrom(const Args &args)
{
    HeapMDConfig cfg;
    cfg.process.metricFrequency = args.num("frq", 300);
    cfg.summarizer.includeLocallyStable = args.num("local", 0) != 0;
    cfg.jobs = g_jobs;
    return cfg;
}

AppConfig
appConfigFrom(const Args &args, std::uint64_t default_seed)
{
    AppConfig cfg;
    cfg.inputSeed = args.num("seed", default_seed);
    cfg.version =
        static_cast<std::uint32_t>(args.num("version", 1));
    cfg.scale = args.real("scale", 1.0);
    if (args.has("fault")) {
        cfg.faults.enable(faultKindFromName(args.str("fault")),
                          args.real("rate", 1.0),
                          args.num("budget", 0));
    }
    return cfg;
}

HeapModel
loadModel(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        HEAPMD_FATAL("cannot open model file '", path, "'");
    return HeapModel::load(in);
}

/**
 * Pre-flight one artifact through its static auditor.  Prints the
 * findings and fails fatally when the artifact has error-severity
 * defects; warnings are surfaced but do not block.
 */
void
preflight(const char *what, const std::string &path,
          const analysis::Report &report)
{
    if (report.findings().empty())
        return;
    std::fprintf(stderr, "audit of %s '%s':\n%s", what, path.c_str(),
                 report.describe().c_str());
    if (!report.clean())
        HEAPMD_FATAL(what, " '", path,
                     "' failed its pre-flight audit (run `heapmd "
                     "audit` for details; --no-audit 1 overrides)");
}

void
preflightModel(const std::string &path)
{
    analysis::Report report;
    analysis::lintModelFile(path, report);
    preflight("model", path, report);
}

void
preflightTrace(const std::string &path)
{
    analysis::Report report;
    analysis::lintTraceFile(path, report);
    preflight("trace", path, report);
}

/** Copy the config knobs a run manifest records from parsed flags. */
void
fillManifestConfig(diag::RunManifest &manifest, const Args &args,
                   std::uint64_t default_seed)
{
    manifest.metricFrequency = args.num("frq", 300);
    manifest.includeLocallyStable = args.num("local", 0) != 0;
    manifest.seed = args.num("seed", default_seed);
    manifest.version = args.num("version", 1);
    manifest.scale = args.real("scale", 1.0);
    if (args.has("fault")) {
        manifest.fault = args.str("fault");
        manifest.faultRate = args.real("rate", 1.0);
    }
}

/**
 * Serialize one incident bundle per anomaly report into @p dir
 * (created if absent) as incident-NNN.json, returning the paths.
 * @p first numbers the first bundle, so a batch check can append its
 * runs' bundles to one directory without collisions.
 */
std::vector<std::string>
writeBundles(const std::string &dir,
             const std::vector<BugReport> &reports,
             const FunctionRegistry &registry,
             const MetricSeries &series, std::size_t first = 1)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        HEAPMD_FATAL("cannot create bundle directory '", dir, "': ",
                     ec.message());
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        char name[40];
        std::snprintf(name, sizeof name, "incident-%03zu.json",
                      first + i);
        const std::string path =
            (std::filesystem::path(dir) / name).string();
        const diag::IncidentBundle bundle =
            diag::makeIncidentBundle(reports[i], registry, series);
        std::ofstream out(path, std::ios::binary);
        if (!out)
            HEAPMD_FATAL("cannot write bundle '", path, "'");
        diag::saveIncidentBundle(bundle, out);
        std::printf("incident bundle written to %s\n", path.c_str());
        paths.push_back(path);
    }
    return paths;
}

/**
 * Finish and write a run manifest: the telemetry counter snapshot is
 * captured here, last, so it covers the whole command.  The build/host
 * environment is stamped here too, so every manifest carries it even
 * on paths that build the struct by hand instead of makeRunManifest().
 */
void
writeManifest(diag::RunManifest &manifest, const std::string &path)
{
    manifest.hardwareConcurrency = support::hardwareConcurrency();
    manifest.sanitizer = support::kSanitizeMode;
    manifest.peakRssBytes = support::peakRssBytes();
    manifest.durationNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - g_main_start)
            .count());
    manifest.phases.clear();
    for (const telemetry::PhaseStats &phase :
         telemetry::PhaseRegistry::instance().snapshot()) {
        diag::ManifestPhase entry;
        entry.name = phase.name;
        entry.count = phase.count;
        entry.wallNanos = phase.wallNanos;
        entry.cpuNanos = phase.cpuNanos;
        entry.bytes = phase.bytes;
        manifest.phases.push_back(std::move(entry));
    }
    diag::captureCounters(
        manifest, telemetry::Registry::instance().snapshotAll());
    std::ofstream out(path, std::ios::binary);
    if (!out)
        HEAPMD_FATAL("cannot write manifest '", path, "'");
    diag::saveRunManifest(manifest, out);
    std::printf("run manifest written to %s\n", path.c_str());
}

void
printModel(const HeapModel &model)
{
    std::printf("program: %s (trained on %zu inputs)\n",
                model.programName.c_str(), model.trainingRuns);
    for (const HeapModel::Entry &e : model.entries()) {
        std::printf("  %-9s %-6s [%8.3f, %8.3f]  avg %+0.2f%%  "
                    "std %0.2f  stable on %zu inputs\n",
                    metricName(e.id).c_str(),
                    e.locallyStable ? "local" : "global", e.minValue,
                    e.maxValue, e.avgChange, e.stdDev, e.stableRuns);
    }
    if (!model.unstableMetrics.empty()) {
        std::printf("  never stable:");
        for (MetricId id : model.unstableMetrics)
            std::printf(" %s", metricName(id).c_str());
        std::printf("\n");
    }
}

int
cmdListApps()
{
    std::printf("SPEC 2000 analogues:\n");
    for (const std::string &name : specAppNames())
        std::printf("  %s\n", name.c_str());
    std::printf("commercial analogues:\n");
    for (const std::string &name : commercialAppNames())
        std::printf("  %s\n", name.c_str());
    return 0;
}

/**
 * A trace opened for replay: the byte Source plus the inflated
 * buffer backing it when the file was a `capture --compress` gzip
 * segment.  Gzip decodes up front -- replay then reads from memory
 * exactly like the mmap path reads from the page cache.
 */
struct OpenedTrace
{
    std::vector<unsigned char> inflated;
    std::unique_ptr<trace::Source> source;
};

/** Open @p path, transparently inflating `.heapmd.gz` files. */
OpenedTrace
openTraceSource(const std::string &path)
{
    OpenedTrace out;
    if (trace::isGzipPath(path)) {
        std::string error;
        if (!trace::gzipDecodeFile(path, out.inflated, error))
            HEAPMD_FATAL("cannot decode trace '", path, "': ",
                         error);
        out.source = std::make_unique<trace::MemorySource>(
            out.inflated.data(), out.inflated.size());
        return out;
    }
    auto file = std::make_unique<trace::FileSource>(path);
    if (!file->ok())
        HEAPMD_FATAL("cannot open trace '", path, "'");
    out.source = std::move(file);
    return out;
}

/** What one trace replay yields for model training / manifests. */
struct TraceRunOutcome
{
    MetricSeries series;
    HeapGraph::Stats graphStats;
    std::uint64_t liveBlocks = 0;
    Tick finalTick = 0;
    std::uint64_t events = 0;
    std::uint64_t reusedRangeFrees = 0;
    bool captureProvenance = false;
    std::vector<std::string> functionNames;
};

/**
 * Replay one trace into a fresh Process and collect its metrics.
 *
 * @p frq 0 means auto: capture-provenance traces sample at every
 * scan-marker function entry (the shim emits exactly one marker per
 * scan pass), synthetic traces keep the replay default of 300.
 * Capture traces also tolerate allocator address reuse (a Free the
 * shim missed shows up as an Alloc over a live range).
 */
TraceRunOutcome
replayTraceForMetrics(const std::string &path, std::uint64_t frq)
{
    const OpenedTrace opened = openTraceSource(path);
    TraceReader reader(*opened.source);

    ProcessConfig pcfg;
    pcfg.metricFrequency =
        frq != 0 ? frq : (reader.captureProvenance() ? 1 : 300);
    pcfg.tolerateAddressReuse = reader.captureProvenance();
    Process process(pcfg);

    TraceRunOutcome out;
    out.events = replayTrace(reader, process);
    out.captureProvenance = reader.captureProvenance();
    out.series = process.series();
    out.series.label = "trace:" + path;
    out.graphStats = process.graph().stats();
    out.liveBlocks = process.graph().vertexCount();
    out.finalTick = process.now();
    out.reusedRangeFrees = process.reusedRangeFrees();
    out.functionNames = reader.functionNames();
    return out;
}

/**
 * `train --trace FILE [--trace ...]`: build a model from recorded or
 * captured traces instead of synthetic app runs.
 */
int
cmdTrainFromTraces(const Args &args)
{
    const HeapMDConfig cfg = configFrom(args);
    MetricSummarizer summarizer(cfg.summarizer);
    const std::vector<std::string> traces = args.all("trace");

    // Pre-flight sequentially and in input order so a malformed trace
    // fails with the same message (and at the same point) regardless
    // of --jobs; only the replays themselves fan out.
    if (args.num("no-audit", 0) == 0) {
        for (const std::string &path : traces)
            preflightTrace(path);
    }
    const std::uint64_t frq =
        args.has("frq") ? args.num("frq", 300) : 0;
    std::vector<TraceRunOutcome> runs(traces.size());
    parallelForIndexed(traces.size(), cfg.jobs, [&](std::size_t i) {
        runs[i] = replayTraceForMetrics(traces[i], frq);
    });
    for (std::size_t i = 0; i < traces.size(); ++i) {
        const TraceRunOutcome &run = runs[i];
        std::printf("replayed %s: %llu events, %zu samples%s\n",
                    traces[i].c_str(),
                    static_cast<unsigned long long>(run.events),
                    run.series.samples().size(),
                    run.captureProvenance ? " (live capture)" : "");
        summarizer.addRun(run.series);
    }

    const std::string name = args.has("name")
        ? args.str("name")
        : std::filesystem::path(traces.front()).stem().string();
    const HeapModel model = summarizer.buildModel(name);
    printModel(model);
    for (std::size_t idx : summarizer.suspectTrainingRuns(model))
        std::printf("  suspect training trace: #%zu\n", idx);

    if (args.has("out")) {
        std::ofstream out(args.str("out"));
        if (!out)
            HEAPMD_FATAL("cannot write '", args.str("out"), "'");
        model.save(out);
        std::printf("model written to %s\n", args.str("out").c_str());
    }
    if (args.has("manifest")) {
        diag::RunManifest manifest;
        manifest.command = "train";
        manifest.commandLine = g_command_line;
        manifest.program = name;
        fillManifestConfig(manifest, args, 1);
        for (const std::string &path : traces)
            diag::addManifestInput(manifest, "trace", path);
        if (args.has("out"))
            diag::addManifestInput(manifest, "model-out",
                                   args.str("out"));
        writeManifest(manifest, args.str("manifest"));
    }
    return 0;
}

int
cmdTrain(const Args &args)
{
    if (args.has("trace")) {
        if (args.has("app"))
            badInvocation("train takes --app or --trace, not both");
        return cmdTrainFromTraces(args);
    }
    const HeapMD tool(configFrom(args));
    auto app = makeApp(args.str("app"));
    const std::uint64_t first_seed = args.num("seed", 1);
    const std::size_t inputs = args.num("inputs", 25);
    std::printf("training %s on %zu inputs (seeds %llu..%llu)...\n",
                app->name().c_str(), inputs,
                static_cast<unsigned long long>(first_seed),
                static_cast<unsigned long long>(first_seed + inputs -
                                                1));
    const TrainingOutcome training = tool.train(
        *app, makeInputs(first_seed, inputs,
                         static_cast<std::uint32_t>(
                             args.num("version", 1)),
                         args.real("scale", 1.0)));
    printModel(training.model);
    for (std::size_t idx : training.suspectTrainingRuns)
        std::printf("  suspect training input: #%zu\n", idx);

    if (args.has("out")) {
        std::ofstream out(args.str("out"));
        if (!out)
            HEAPMD_FATAL("cannot write '", args.str("out"), "'");
        training.model.save(out);
        std::printf("model written to %s\n", args.str("out").c_str());
    }
    if (args.has("manifest")) {
        diag::RunManifest manifest;
        manifest.command = "train";
        manifest.commandLine = g_command_line;
        manifest.program = app->name();
        fillManifestConfig(manifest, args, 1);
        if (args.has("out")) {
            // The trained model is this run's product; fingerprint it
            // so later check manifests can prove which model they ran.
            diag::addManifestInput(manifest, "model-out",
                                   args.str("out"));
        }
        writeManifest(manifest, args.str("manifest"));
    }
    return 0;
}

int
cmdInspect(const Args &args)
{
    printModel(loadModel(args.str("model")));
    return 0;
}

/**
 * `check --inputs N`: check seeds S..S+N-1 against the model as one
 * batch, one Process + checker per input across --jobs workers.
 * Output and exit status are the per-input results in seed order.
 */
int
cmdCheckBatch(const Args &args, const HeapMD &tool, SyntheticApp &app,
              const HeapModel &model, std::size_t count)
{
    const AppConfig base = appConfigFrom(args, 100);
    std::vector<AppConfig> inputs(count, base);
    for (std::size_t i = 0; i < count; ++i)
        inputs[i].inputSeed = base.inputSeed + i;

    const std::vector<CheckOutcome> outs =
        tool.checkMany(app, inputs, model);

    bool anomalous = false;
    std::size_t next_bundle = 1;
    for (std::size_t i = 0; i < outs.size(); ++i) {
        const CheckOutcome &out = outs[i];
        std::printf("checked %s seed %llu: %zu report(s) over %llu "
                    "samples\n",
                    app.name().c_str(),
                    static_cast<unsigned long long>(
                        inputs[i].inputSeed),
                    out.check.reports.size(),
                    static_cast<unsigned long long>(
                        out.check.samplesChecked));
        const FunctionRegistry registry = out.run.registry();
        for (const BugReport &report : out.check.reports)
            std::printf("\n%s", report.describe(registry).c_str());
        if (args.has("bundle-dir")) {
            writeBundles(args.str("bundle-dir"), out.check.reports,
                         registry, out.run.series, next_bundle);
            next_bundle += out.check.reports.size();
        }
        anomalous = anomalous || out.check.anomalous();
    }
    return anomalous ? kExitFindings : 0;
}

int
cmdCheck(const Args &args)
{
    // Usage validation before any file I/O: a bad --inputs must exit
    // 2 even when the model path is also unreadable.
    const std::size_t inputs = args.num("inputs", 1);
    if (inputs == 0)
        badInvocation("check --inputs must be at least 1");
    if (inputs > 1 && args.has("manifest"))
        badInvocation("check --manifest records a single run; "
                      "use --inputs 1");

    const HeapMD tool(configFrom(args));
    auto app = makeApp(args.str("app"));
    if (args.num("no-audit", 0) == 0)
        preflightModel(args.str("model"));
    const HeapModel model = loadModel(args.str("model"));

    if (inputs > 1)
        return cmdCheckBatch(args, tool, *app, model, inputs);

    const CheckOutcome out =
        tool.check(*app, appConfigFrom(args, 100), model);
    std::printf("checked %s: %zu report(s) over %llu samples\n",
                app->name().c_str(), out.check.reports.size(),
                static_cast<unsigned long long>(
                    out.check.samplesChecked));
    const FunctionRegistry registry = out.run.registry();
    for (const BugReport &report : out.check.reports)
        std::printf("\n%s", report.describe(registry).c_str());

    std::vector<std::string> bundles;
    if (args.has("bundle-dir"))
        bundles = writeBundles(args.str("bundle-dir"),
                               out.check.reports, registry,
                               out.run.series);
    if (args.has("manifest")) {
        diag::RunManifest manifest = diag::makeRunManifest(
            "check", g_command_line, out.run, &out.check);
        fillManifestConfig(manifest, args, 100);
        diag::addManifestInput(manifest, "model", args.str("model"));
        manifest.bundlePaths = bundles;
        writeManifest(manifest, args.str("manifest"));
    }
    return out.check.anomalous() ? kExitFindings : 0;
}

int
cmdRecord(const Args &args)
{
    HeapMDConfig cfg = configFrom(args);
    Process process(cfg.process);
    std::ofstream out(args.str("out"), std::ios::binary);
    if (!out)
        HEAPMD_FATAL("cannot write '", args.str("out"), "'");
    TraceWriter writer(out, process.registry());
    process.addEventObserver(&writer);

    auto app = makeApp(args.str("app"));
    app->run(process, appConfigFrom(args, 1));
    writer.finish();
    std::printf("recorded %llu events to %s\n",
                static_cast<unsigned long long>(writer.eventCount()),
                args.str("out").c_str());
    return 0;
}

int
cmdReplay(const Args &args)
{
    HeapMDConfig cfg = configFrom(args);
    if (args.num("no-audit", 0) == 0) {
        preflightModel(args.str("model"));
        preflightTrace(args.str("trace"));
    }
    const HeapModel model = loadModel(args.str("model"));

    const OpenedTrace opened = openTraceSource(args.str("trace"));
    TraceReader reader(*opened.source);
    if (reader.captureProvenance()) {
        // Live-capture traces sample at the shim's scan markers and
        // see real allocator address reuse.
        if (!args.has("frq"))
            cfg.process.metricFrequency = 1;
        cfg.process.tolerateAddressReuse = true;
    }
    Process process(cfg.process);
    ExecutionChecker checker(model);
    checker.attach(process);
    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint64_t events = replayTrace(reader, process);
    const CheckResult result = checker.finalize(process);
    // The manifest below snapshots the Registry while the Process is
    // still alive; fold the batched graph counters first.
    process.flushTelemetry();
    const auto wall_nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    std::printf("replayed %llu events: %zu report(s)\n",
                static_cast<unsigned long long>(events),
                result.reports.size());
    for (const BugReport &report : result.reports)
        std::printf("\n%s",
                    report.describe(process.registry()).c_str());

    std::vector<std::string> bundles;
    if (args.has("bundle-dir"))
        bundles = writeBundles(args.str("bundle-dir"), result.reports,
                               process.registry(), process.series());
    if (args.has("manifest")) {
        // Replay bypasses HeapMD::observe(), so assemble the outcome
        // the manifest builder expects from the Process directly.
        RunOutcome run;
        run.series = process.series();
        if (run.series.label.empty())
            run.series.label = "replay:" + args.str("trace");
        run.graphStats = process.graph().stats();
        run.liveBlocksAtExit = process.graph().vertexCount();
        run.finalTick = process.now();
        run.wallNanos = static_cast<std::uint64_t>(wall_nanos);
        diag::RunManifest manifest = diag::makeRunManifest(
            "replay", g_command_line, run, &result);
        fillManifestConfig(manifest, args, 0);
        diag::addManifestInput(manifest, "model", args.str("model"));
        diag::addManifestInput(manifest, "trace", args.str("trace"));
        manifest.bundlePaths = bundles;
        writeManifest(manifest, args.str("manifest"));
    }
    return result.anomalous() ? kExitFindings : 0;
}

#if defined(HEAPMD_HAVE_CAPTURE)

/**
 * Chained `capture --check MODEL`: replay the fresh capture trace
 * under the anomaly detector.  Returns the command exit status
 * contribution (0 clean, 3 findings).
 */
int
checkCapturedTrace(const std::string &trace_path,
                   const std::string &model_path, const Args &args)
{
    preflightModel(model_path);
    const HeapModel model = loadModel(model_path);

    const OpenedTrace opened = openTraceSource(trace_path);
    TraceReader reader(*opened.source);

    ProcessConfig pcfg;
    pcfg.metricFrequency = 1; // one sample per shim scan marker
    pcfg.tolerateAddressReuse = true;
    Process process(pcfg);
    ExecutionChecker checker(model);
    checker.attach(process);
    const std::uint64_t events = replayTrace(reader, process);
    const CheckResult result = checker.finalize(process);
    process.flushTelemetry();

    std::printf("checked capture (%llu events): %zu report(s) over "
                "%llu samples\n",
                static_cast<unsigned long long>(events),
                result.reports.size(),
                static_cast<unsigned long long>(
                    result.samplesChecked));
    for (const BugReport &report : result.reports)
        std::printf("\n%s",
                    report.describe(process.registry()).c_str());
    if (args.has("bundle-dir"))
        writeBundles(args.str("bundle-dir"), result.reports,
                     process.registry(), process.series());
    return result.anomalous() ? kExitFindings : 0;
}

#if defined(HEAPMD_HAVE_OBSV)

/**
 * Chained `capture --rotate-bytes N --check MODEL`: consume the
 * fresh segment set through the monitor's --once path, which replays
 * it under the same batch checker as `check`/`replay`.
 */
int
checkCapturedSegments(const std::string &base,
                      const std::string &model_path, const Args &args)
{
    preflightModel(model_path);
    const HeapModel model = loadModel(model_path);

    monitor::MonitorOptions options;
    options.segmentsBase = base;
    options.follow = false;
    if (args.has("bundle-dir"))
        options.bundleDir = args.str("bundle-dir");
    monitor::MonitorSession session(model, options);
    std::string error;
    if (!session.run(error))
        HEAPMD_FATAL("check of captured segments failed: ", error);

    const monitor::MonitorStats &stats = session.stats();
    std::printf("checked capture (%llu events over %llu segments): "
                "%zu report(s) over %llu samples\n",
                static_cast<unsigned long long>(stats.events),
                static_cast<unsigned long long>(
                    stats.segmentsConsumed),
                session.reports().size(),
                static_cast<unsigned long long>(stats.samples));
    for (const BugReport &report : session.reports())
        std::printf("\n%s",
                    report.describe(session.registry()).c_str());
    if (stats.bundlesWritten != 0)
        std::printf("%llu incident bundle(s) written to %s\n",
                    static_cast<unsigned long long>(
                        stats.bundlesWritten),
                    options.bundleDir.c_str());
    return session.anomalous() ? kExitFindings : 0;
}

#endif // HEAPMD_HAVE_OBSV

#endif // HEAPMD_HAVE_CAPTURE

int
cmdCapture(const Args &args)
{
#if !defined(HEAPMD_HAVE_CAPTURE)
    (void)args;
    HEAPMD_FATAL(
        "this build has no live-capture support (configure with "
        "-DHEAPMD_BUILD_CAPTURE=ON on a non-sanitizer UNIX build)");
#else
    capture::SessionOptions options;
    options.tracePath = args.str("out", "capture.trace");
    options.scanFrequency =
        args.num("frq", capture::kDefaultScanFrequency);
    if (args.has("lib"))
        options.shimPath = args.str("lib");
    options.verbose = args.num("verbose", 0) != 0;
    options.rotateBytes = args.num("rotate-bytes", 0);
    if (options.rotateBytes > 0 && args.has("train-out"))
        badInvocation("capture: --train-out needs a monolithic "
                      "trace (omit --rotate-bytes; train first, then "
                      "monitor the rotating run against that model)");
    options.compress = args.num("compress", 0) != 0;
    if (options.compress && options.rotateBytes == 0)
        badInvocation("capture: --compress needs --rotate-bytes "
                      "(gzip framing is per rotation segment)");
    if (options.compress && !trace::gzipSupported())
        HEAPMD_FATAL("this build has no zlib; rebuild with zlib "
                     "available or drop --compress");

    capture::SessionResult session;
    std::string error;
    if (!capture::runCapture(g_capture_argv, options, session,
                             error))
        HEAPMD_FATAL("capture failed: ", error);

    const bool child_ok = session.exited && session.exitCode == 0;
    if (session.exited)
        std::printf("captured '%s' (exit status %d): %llu events, "
                    "%llu scan passes -> %s\n",
                    g_capture_argv.front().c_str(), session.exitCode,
                    static_cast<unsigned long long>(
                        session.counters["capture.events_emitted"]),
                    static_cast<unsigned long long>(
                        session.counters["capture.scan_passes"]),
                    session.tracePath.c_str());
    else
        std::printf("captured '%s' (killed by signal %d): %llu "
                    "events -> %s\n",
                    g_capture_argv.front().c_str(),
                    session.termSignal,
                    static_cast<unsigned long long>(
                        session.counters["capture.events_emitted"]),
                    session.tracePath.c_str());

    // The conservative scan ran inside the *child*; surface it as a
    // pipeline phase from the sidecar counters so capture manifests
    // carry per-stage timing like every other command (words are
    // pointer-sized).
    telemetry::PhaseRegistry::instance().recordExternal(
        "phase.capture_scan", session.counters["capture.scan_passes"],
        session.counters["capture.scan_ns"], 0,
        session.counters["capture.scan_words"] * sizeof(void *));

    // Audit the fresh trace against the static rule catalog.  The
    // capture-provenance header downgrades truncation findings (a
    // killed child) to warnings; anything error-severity here is a
    // shim bug and must fail loudly.
    analysis::Report audit;
    const analysis::TraceLintStats lint_stats =
        options.rotateBytes > 0
            ? analysis::lintSegmentSet(session.tracePath, audit)
            : analysis::lintTraceFile(session.tracePath, audit);
    if (!audit.findings().empty())
        std::fprintf(stderr, "audit of trace '%s':\n%s",
                     session.tracePath.c_str(),
                     audit.describe().c_str());
    if (!audit.clean())
        HEAPMD_FATAL("captured trace '", session.tracePath,
                     "' failed its audit");
    std::printf("trace audit clean: %llu bytes, %llu events, "
                "%llu segment(s)\n",
                static_cast<unsigned long long>(lint_stats.bytes),
                static_cast<unsigned long long>(lint_stats.events),
                static_cast<unsigned long long>(
                    lint_stats.segments));

    int status = 0;
    if (args.has("train-out")) {
        const TraceRunOutcome run =
            replayTraceForMetrics(session.tracePath, 0);
        MetricSummarizer summarizer(configFrom(args).summarizer);
        summarizer.addRun(run.series);
        const HeapModel model = summarizer.buildModel(
            std::filesystem::path(g_capture_argv.front())
                .filename()
                .string());
        printModel(model);
        std::ofstream out(args.str("train-out"));
        if (!out)
            HEAPMD_FATAL("cannot write '", args.str("train-out"),
                         "'");
        model.save(out);
        std::printf("model written to %s\n",
                    args.str("train-out").c_str());
    }
    if (args.has("check")) {
#if defined(HEAPMD_HAVE_OBSV)
        status = options.rotateBytes > 0
                     ? checkCapturedSegments(session.tracePath,
                                             args.str("check"), args)
                     : checkCapturedTrace(session.tracePath,
                                          args.str("check"), args);
#else
        status = checkCapturedTrace(session.tracePath,
                                    args.str("check"), args);
#endif
    }

    if (args.has("manifest")) {
        diag::RunManifest manifest;
        manifest.command = "capture";
        manifest.commandLine = g_command_line;
        manifest.program = g_capture_argv.front();
        manifest.metricFrequency = options.scanFrequency;
        manifest.rotateBytes = options.rotateBytes;
        diag::addManifestInput(manifest, "trace", session.tracePath);
        if (args.has("check"))
            diag::addManifestInput(manifest, "model",
                                   args.str("check"));
        if (args.has("train-out"))
            diag::addManifestInput(manifest, "model-out",
                                   args.str("train-out"));
        // capture.* counters were merged from the sidecar, so the
        // manifest's counter snapshot records the child's work too.
        writeManifest(manifest, args.str("manifest"));
    }

    if (!child_ok) {
        std::fprintf(stderr,
                     "%s: captured command failed (%s %d); its trace "
                     "was still recorded\n",
                     g_argv0,
                     session.exited ? "exit status" : "signal",
                     session.exited ? session.exitCode
                                    : session.termSignal);
        return 1;
    }
    return status;
#endif // HEAPMD_HAVE_CAPTURE
}

int
cmdObserve(const Args &args)
{
    const HeapMD tool(configFrom(args));
    auto app = makeApp(args.str("app"));
    const RunOutcome run =
        tool.observe(*app, appConfigFrom(args, 1));

    std::printf("point,tick,vertices,edges");
    for (MetricId id : kAllMetrics)
        std::printf(",%s", metricName(id).c_str());
    std::printf("\n");
    for (const MetricSample &s : run.series.samples()) {
        std::printf("%llu,%llu,%llu,%llu",
                    static_cast<unsigned long long>(s.pointIndex),
                    static_cast<unsigned long long>(s.tick),
                    static_cast<unsigned long long>(s.vertexCount),
                    static_cast<unsigned long long>(s.edgeCount));
        for (MetricId id : kAllMetrics)
            std::printf(",%.4f", s.value(id));
        std::printf("\n");
    }
    return 0;
}

int
cmdSnapshot(const Args &args)
{
    HeapMDConfig cfg = configFrom(args);
    Process process(cfg.process);
    auto app = makeApp(args.str("app"));
    app->run(process, appConfigFrom(args, 1));

    std::ofstream out(args.str("out"));
    if (!out)
        HEAPMD_FATAL("cannot write '", args.str("out"), "'");
    saveGraphSnapshot(process.graph(), out);
    std::printf("snapshot of %llu vertices / %llu edges written "
                "to %s\n",
                static_cast<unsigned long long>(
                    process.graph().vertexCount()),
                static_cast<unsigned long long>(
                    process.graph().edgeCount()),
                args.str("out").c_str());
    return 0;
}

/**
 * `audit --trace FILE [--trace ...]`: lint each trace into its own
 * report.  Traces are the heavy inputs (a deep pass decodes every
 * event), so they fan out over the thread pool; each report renders
 * into an indexed slot and prints in input order, keeping stdout
 * byte-identical for any --jobs value.
 */
bool
auditTraces(const Args &args, const std::vector<std::string> &traces,
            std::size_t max_findings)
{
    const bool deep = args.num("deep", 0) != 0;
    const std::string bundle_dir =
        args.has("bundle-dir") ? args.str("bundle-dir") : "";
    if (!bundle_dir.empty()) {
        if (!deep)
            badInvocation("audit: --bundle-dir exports flow "
                          "incidents and needs --deep 1");
        std::filesystem::create_directories(bundle_dir);
    }

    std::vector<std::string> outputs(traces.size());
    std::vector<char> clean(traces.size(), 1);
    parallelForIndexed(traces.size(), g_jobs, [&](std::size_t i) {
        analysis::Report report(max_findings);
        const analysis::TraceLintStats stats =
            analysis::lintTraceFile(traces[i], report);
        char line[512];
        std::snprintf(line, sizeof line,
                      "trace %s: %llu bytes, %llu events, %llu "
                      "functions\n",
                      traces[i].c_str(),
                      static_cast<unsigned long long>(stats.bytes),
                      static_cast<unsigned long long>(stats.events),
                      static_cast<unsigned long long>(
                          stats.functions));
        std::string text = line;
        // Skip the deep pass when the file itself was unreadable --
        // it would only duplicate the trace.io finding.
        if (deep && !report.has("trace.io")) {
            analysis::FlowAnalysis flow;
            const analysis::FlowLintStats fstats =
                analysis::lintTraceFlowFile(traces[i], report,
                                            &flow);
            std::snprintf(
                line, sizeof line,
                "flow: %llu live object(s) at exit holding %llu "
                "byte(s)%s%s\n",
                static_cast<unsigned long long>(fstats.liveAtExit),
                static_cast<unsigned long long>(fstats.leakedBytes),
                fstats.captureProvenance ? " (live capture)" : "",
                fstats.sawFooter ? "" : " (truncated: leak check "
                                        "skipped)");
            text += line;
            if (!bundle_dir.empty()) {
                std::size_t written = 0;
                for (const analysis::FlowFinding &f :
                     flow.findings) {
                    const diag::FlowIncident incident =
                        diag::makeFlowIncident(flow, f, traces[i]);
                    std::snprintf(line, sizeof line,
                                  "flow-%03zu-%03zu.json", i + 1,
                                  ++written);
                    const std::filesystem::path path =
                        std::filesystem::path(bundle_dir) / line;
                    std::ofstream out(path);
                    if (!out)
                        HEAPMD_FATAL("cannot write '", path.string(),
                                     "'");
                    diag::saveFlowIncident(incident, out);
                }
                if (written != 0) {
                    std::snprintf(line, sizeof line,
                                  "flow: %zu incident(s) written "
                                  "to %s\n",
                                  written, bundle_dir.c_str());
                    text += line;
                }
            }
        }
        text += report.describe();
        outputs[i] = std::move(text);
        clean[i] = report.clean() ? 1 : 0;
    });

    bool all_clean = true;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        std::fputs(outputs[i].c_str(), stdout);
        all_clean = all_clean && clean[i] != 0;
    }
    return all_clean;
}

int
cmdAudit(const Args &args)
{
    if (!args.has("trace") && !args.has("segments") &&
        !args.has("model") && !args.has("graph") &&
        !args.has("bundle") && !args.has("manifest") &&
        !args.has("fleet")) {
        HEAPMD_FATAL("audit needs at least one of --trace, "
                     "--segments, --model, --graph, --bundle, "
                     "--manifest, --fleet");
    }
    if ((args.has("deep") || args.has("bundle-dir")) &&
        !args.has("trace"))
        badInvocation("audit: --deep applies to --trace inputs");
    const auto max_findings = static_cast<std::size_t>(args.num(
        "max-findings", analysis::Report::kDefaultMaxFindings));

    bool clean = auditTraces(args, args.all("trace"), max_findings);
    for (const std::string &base : args.all("segments")) {
        analysis::Report report(max_findings);
        const analysis::TraceLintStats stats =
            analysis::lintSegmentSet(base, report);
        std::printf("segments %s: %llu segment(s), %llu bytes, "
                    "%llu events, %llu functions\n%s",
                    base.c_str(),
                    static_cast<unsigned long long>(stats.segments),
                    static_cast<unsigned long long>(stats.bytes),
                    static_cast<unsigned long long>(stats.events),
                    static_cast<unsigned long long>(stats.functions),
                    report.describe().c_str());
        clean = clean && report.clean();
    }
    for (const std::string &path : args.all("model")) {
        analysis::Report report(max_findings);
        const analysis::ModelLintStats stats =
            analysis::lintModelFile(path, report);
        std::printf("model %s: %zu lines, %zu stable + %zu unstable "
                    "metrics\n%s",
                    path.c_str(), stats.lines, stats.stableMetrics,
                    stats.unstableMetrics,
                    report.describe().c_str());
        clean = clean && report.clean();
    }
    for (const std::string &path : args.all("graph")) {
        analysis::Report report(max_findings);
        const analysis::GraphLintStats stats =
            analysis::lintGraphFile(path, report);
        std::printf("graph %s: %zu lines, %zu vertices, %zu edges\n%s",
                    path.c_str(), stats.lines,
                    stats.vertices, stats.edges,
                    report.describe().c_str());
        clean = clean && report.clean();
    }
    for (const std::string &path : args.all("bundle")) {
        analysis::Report report(max_findings);
        const analysis::BundleLintStats stats =
            analysis::lintBundleFile(path, report);
        std::printf("bundle %s: %zu suspects, %zu stacks, %zu frames, "
                    "%zu window points\n%s",
                    path.c_str(), stats.suspects, stats.contextEntries,
                    stats.frames, stats.windowPoints,
                    report.describe().c_str());
        clean = clean && report.clean();
    }
    for (const std::string &path : args.all("manifest")) {
        analysis::Report report(max_findings);
        const analysis::ManifestLintStats stats =
            analysis::lintManifestFile(path, report);
        std::printf("manifest %s: %zu inputs, %zu metrics, %zu "
                    "counters, %zu reports\n%s",
                    path.c_str(), stats.inputs, stats.metrics,
                    stats.counters, stats.reports,
                    report.describe().c_str());
        clean = clean && report.clean();
    }
    for (const std::string &path : args.all("fleet")) {
        analysis::Report report(max_findings);
        const analysis::FleetLintStats stats =
            analysis::lintFleetFile(path, report);
        std::printf("fleet %s: %zu members, %zu metric ranges, %zu "
                    "outliers, %zu incident clusters\n%s",
                    path.c_str(), stats.members, stats.metrics,
                    stats.outliers, stats.incidents,
                    report.describe().c_str());
        clean = clean && report.clean();
    }
    return clean ? 0 : kExitFindings;
}

int
cmdReport(const Args &args)
{
    const std::string path = args.str("bundle");
    std::string text, error;
    if (!diag::readFileText(path, text, &error))
        HEAPMD_FATAL("cannot read bundle '", path, "': ", error);

    // Two document kinds render here: detector incident bundles
    // (heapmd.incident) and audit --deep flow incidents (heapmd.flow).
    diag::FlowIncident flow;
    if (diag::loadFlowIncident(text, flow, nullptr)) {
        std::printf("%s", diag::renderFlowIncident(flow).c_str());
        return 0;
    }
    diag::IncidentBundle bundle;
    if (!diag::loadIncidentBundle(text, bundle, &error))
        HEAPMD_FATAL("cannot load bundle '", path, "': ", error);
    diag::RenderOptions options;
    options.stacksPerPhase =
        static_cast<std::size_t>(args.num("stacks", 3));
    options.maxSuspects =
        static_cast<std::size_t>(args.num("suspects", 5));
    std::printf("%s", diag::renderIncident(bundle, options).c_str());
    return 0;
}

/**
 * Pre-flight for trend: every manifest in the comparison must carry a
 * known schemaVersion, and they must all carry the *same* one --
 * comparing a v1 document against a v4 one silently misreads the
 * newer fields as "absent", so mixing is a usage error (exit 2), not
 * a finding.  Files the peek cannot even parse fall through to the
 * loader's fatal-error path (exit 1).
 */
void
requireUniformManifestSchema(const std::string &baseline,
                             const std::vector<std::string> &candidates)
{
    std::string first_path;
    std::uint64_t first_version = 0;
    std::vector<std::string> paths = {baseline};
    paths.insert(paths.end(), candidates.begin(), candidates.end());
    for (const std::string &path : paths) {
        std::uint64_t version = 0;
        std::string error;
        if (!diag::peekManifestSchemaVersionFile(path, version,
                                                 &error))
            continue;
        if (version < 1 || version > diag::kManifestSchemaVersion)
            badInvocation("trend: manifest '" + path +
                          "' has unknown schemaVersion " +
                          std::to_string(version) +
                          " (this build understands 1.." +
                          std::to_string(diag::kManifestSchemaVersion) +
                          ")");
        if (first_path.empty()) {
            first_path = path;
            first_version = version;
        } else if (version != first_version) {
            badInvocation(
                "trend: mixed manifest schema versions ('" +
                first_path + "' is v" +
                std::to_string(first_version) + ", '" + path +
                "' is v" + std::to_string(version) +
                "); re-run the older capture or compare like with "
                "like");
        }
    }
}

int
cmdTrend(const Args &args)
{
    const std::vector<std::string> candidates = args.all("manifest");
    if (candidates.empty())
        badInvocation("trend needs at least one --manifest candidate");
    requireUniformManifestSchema(args.str("baseline"), candidates);

    diag::RunManifest baseline;
    std::string error;
    if (!diag::loadRunManifestFile(args.str("baseline"), baseline,
                                   &error))
        HEAPMD_FATAL("cannot load baseline manifest '",
                     args.str("baseline"), "': ", error);

    diag::TrendOptions options;
    options.counterTolerance = args.real("counter-tol", 0.10);
    options.sampleRateTolerance = args.real("sample-tol", 0.10);
    options.counterMinBase = args.num("min-base", 100);
    options.rssTolerance =
        args.real("rss-tol", options.rssTolerance);
    options.phaseWallTolerance =
        args.real("phase-tol", options.phaseWallTolerance);

    analysis::Report report;
    for (const std::string &path : candidates) {
        diag::RunManifest candidate;
        if (!diag::loadRunManifestFile(path, candidate, &error))
            HEAPMD_FATAL("cannot load manifest '", path, "': ",
                         error);
        const std::size_t before = report.findings().size();
        diag::compareManifests(baseline, candidate, options, report);
        std::printf("%s vs baseline %s: %zu finding(s)\n",
                    path.c_str(), args.str("baseline").c_str(),
                    report.findings().size() - before);
    }
    if (!report.findings().empty())
        std::printf("%s", report.describe().c_str());
    if (report.clean()) {
        std::printf("no regressions across %zu candidate(s)\n",
                    candidates.size());
        return 0;
    }
    return kExitFindings;
}

int
cmdFleetMerge(const Args &args)
{
    std::vector<std::string> paths = args.positionals();
    for (const std::string &path : args.all("manifest"))
        paths.push_back(path);
    if (paths.empty())
        badInvocation("fleet-merge needs run manifests, incident "
                      "bundles, or directories of them (bare "
                      "operands and/or --manifest)");

    fleet::FleetInputs inputs;
    std::string error;
    if (!fleet::collectFleetInputs(paths, inputs, error))
        HEAPMD_FATAL("fleet-merge: ", error);

    // Schema pre-flight: a manifest claiming a version this build
    // does not understand is the *user's* mismatch (stale binary or
    // future capture), so it exits 2, not 1.  Unparseable files fall
    // through to the loader's fatal path.
    for (const std::string &path : inputs.manifests) {
        std::uint64_t version = 0;
        std::string peek_error;
        if (!diag::peekManifestSchemaVersionFile(path, version,
                                                 &peek_error))
            continue;
        if (version < 1 || version > diag::kManifestSchemaVersion)
            badInvocation(
                "fleet-merge: manifest '" + path +
                "' has unknown schemaVersion " +
                std::to_string(version) +
                " (this build understands 1.." +
                std::to_string(diag::kManifestSchemaVersion) + ")");
    }

    fleet::FleetMergeOptions options;
    options.jobs = g_jobs;
    options.outlierScore =
        args.real("outlier-z", options.outlierScore);
    options.minMembers = static_cast<std::size_t>(
        args.num("min-members", options.minMembers));

    fleet::FleetModel model;
    analysis::Report report;
    if (!fleet::mergeFleet(inputs, options, model, report, error))
        HEAPMD_FATAL("fleet-merge: ", error);

    const std::string out_path = args.str("out", "fleet.json");
    {
        std::ofstream out(out_path, std::ios::binary);
        if (!out)
            HEAPMD_FATAL("cannot write '", out_path, "'");
        fleet::saveFleetModel(model, out);
        if (!out)
            HEAPMD_FATAL("cannot write '", out_path, "'");
    }

    std::printf("fleet of %llu process(es): %zu metric range(s), "
                "%zu outlier(s), %zu incident cluster(s) -> %s\n",
                static_cast<unsigned long long>(model.processes),
                model.metrics.size(), model.outliers.size(),
                model.incidents.size(), out_path.c_str());
    if (!report.findings().empty())
        std::printf("%s", report.describe().c_str());
    return report.clean() ? 0 : kExitFindings;
}

int
cmdFleetTrend(const Args &args)
{
    const std::string baseline_path = args.str("baseline");
    const std::string fleet_path = args.str("fleet");

    // Same schema discipline as trend: unknown or mixed fleet
    // versions are a usage error, named per file.
    std::string first_path;
    std::uint64_t first_version = 0;
    for (const std::string &path : {baseline_path, fleet_path}) {
        std::uint64_t version = 0;
        std::string peek_error;
        if (!fleet::peekFleetSchemaVersionFile(path, version,
                                               &peek_error))
            continue;
        if (version < 1 || version > fleet::kFleetSchemaVersion)
            badInvocation(
                "fleet-trend: fleet model '" + path +
                "' has unknown schemaVersion " +
                std::to_string(version) +
                " (this build understands 1.." +
                std::to_string(fleet::kFleetSchemaVersion) + ")");
        if (first_path.empty()) {
            first_path = path;
            first_version = version;
        } else if (version != first_version) {
            badInvocation("fleet-trend: mixed fleet schema versions "
                          "('" +
                          first_path + "' is v" +
                          std::to_string(first_version) + ", '" +
                          path + "' is v" +
                          std::to_string(version) + ")");
        }
    }

    std::string error;
    fleet::FleetModel baseline;
    if (!fleet::loadFleetModelFile(baseline_path, baseline, &error))
        HEAPMD_FATAL("cannot load fleet model '", baseline_path,
                     "': ", error);
    fleet::FleetModel candidate;
    if (!fleet::loadFleetModelFile(fleet_path, candidate, &error))
        HEAPMD_FATAL("cannot load fleet model '", fleet_path, "': ",
                     error);

    fleet::FleetTrendOptions options;
    options.rangeTolerance =
        args.real("range-tol", options.rangeTolerance);

    analysis::Report report;
    fleet::compareFleets(baseline, candidate, options, report);
    std::printf("%s vs baseline %s: %zu finding(s)\n",
                fleet_path.c_str(), baseline_path.c_str(),
                report.findings().size());
    if (!report.findings().empty())
        std::printf("%s", report.describe().c_str());
    if (report.clean()) {
        std::printf("no fleet drift across %llu process(es)\n",
                    static_cast<unsigned long long>(
                        candidate.processes));
        return 0;
    }
    return kExitFindings;
}

int
cmdDiff(const Args &args)
{
    const HeapModel a = loadModel(args.str("model"));
    const HeapModel b = loadModel(args.str("model-b"));
    const ModelDiff diff = diffModels(a, b);
    std::printf("%s", diff.describe().c_str());
    return diff.unchanged() ? 0 : kExitFindings;
}

#if defined(HEAPMD_HAVE_OBSV)

/**
 * Snapshot the live stats segments: the one named by --pid, or every
 * segment in /dev/shm.  A --pid that cannot be attached or read is
 * fatal (the caller asked for that process specifically); in the
 * discovery path broken segments are skipped with a note, since a
 * writer may exit between readdir and attach.
 */
std::vector<obsv::SegmentSnapshot>
collectSegments(const Args &args)
{
    std::vector<std::uint32_t> pids;
    if (args.has("pid"))
        pids.push_back(
            static_cast<std::uint32_t>(args.num("pid", 0)));
    else
        pids = obsv::listSegmentPids();

    std::vector<obsv::SegmentSnapshot> snapshots;
    for (std::uint32_t pid : pids) {
        obsv::SegmentReader reader;
        std::string error;
        obsv::SegmentSnapshot snapshot;
        if (!reader.attachPid(pid, &error) ||
            !reader.read(snapshot, &error)) {
            if (args.has("pid"))
                HEAPMD_FATAL("cannot read stats segment of pid ",
                             pid, ": ", error);
            std::fprintf(stderr, "%s: skipping pid %u: %s\n",
                         g_argv0, pid, error.c_str());
            continue;
        }
        snapshots.push_back(std::move(snapshot));
    }
    return snapshots;
}

#endif // HEAPMD_HAVE_OBSV

int
cmdTop(const Args &args)
{
#if !defined(HEAPMD_HAVE_OBSV)
    (void)args;
    HEAPMD_FATAL("this build has no live-observability support "
                 "(POSIX shared memory required)");
#else
    if (args.num("reap", 0) != 0) {
        const obsv::ReapResult result = obsv::reapDeadSegments();
        for (std::uint32_t pid : result.reaped)
            std::printf("reaped stats segment of dead pid %u\n", pid);
        std::printf("%zu segment(s) reaped, %zu alive\n",
                    result.reaped.size(), result.alive.size());
        return 0;
    }
    if (args.has("pid") && args.has("all"))
        badInvocation("top takes --pid or --all, not both");

    HeapModel model;
    bool have_model = false;
    if (args.has("model")) {
        model = loadModel(args.str("model"));
        have_model = true;
    }
    const bool once = args.num("once", 0) != 0;
    const std::uint64_t interval_ms = args.num("interval", 2000);
    for (;;) {
        const std::vector<obsv::SegmentSnapshot> snapshots =
            collectSegments(args);
        const std::string view =
            obsv::renderTop(snapshots, have_model ? &model : nullptr,
                            obsv::monotonicMs());
        if (!once)
            std::printf("\x1b[H\x1b[2J"); // clear, like top(1)
        std::fputs(view.c_str(), stdout);
        std::fflush(stdout);
        if (once)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
#endif // HEAPMD_HAVE_OBSV
}

#if defined(HEAPMD_HAVE_OBSV)

/** write(2) until done; a vanished scraper is not an error. */
void
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

/**
 * Minimal single-threaded /metrics endpoint shared by `export` and
 * `monitor --listen`.  pump() answers at most one pending request and
 * never blocks longer than its timeout, so the caller's wait loop can
 * interleave serving with its real work and with the g_stop flag.
 */
class MetricsServer
{
  public:
    ~MetricsServer() { close(); }

    /** Bind and listen; usage/fatal errors exit as ever. */
    void
    open(const std::string &listen_addr)
    {
        const std::size_t colon = listen_addr.rfind(':');
        if (colon == std::string::npos)
            badInvocation("--listen expects HOST:PORT");
        const std::string host = listen_addr.substr(0, colon);
        const int port = std::atoi(listen_addr.c_str() + colon + 1);
        if (port <= 0 || port > 65535)
            badInvocation("--listen port is not in 1..65535");

        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            HEAPMD_FATAL("cannot create socket: ",
                         std::strerror(errno));
        const int one = 1;
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
            badInvocation("--listen host must be an IPv4 address "
                          "(e.g. 127.0.0.1)");
        if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            HEAPMD_FATAL("cannot bind ", listen_addr, ": ",
                         std::strerror(errno));
        if (::listen(fd_, 8) != 0)
            HEAPMD_FATAL("cannot listen on ", listen_addr, ": ",
                         std::strerror(errno));
    }

    bool valid() const { return fd_ >= 0; }

    /**
     * Serve at most one pending scrape, waiting up to @p timeout_ms
     * for one to arrive (0 = just poll).  @p body renders the
     * document only when a client is actually connected.
     * @return true when a request was answered.
     */
    bool
    pump(const std::function<std::string()> &body, int timeout_ms)
    {
        if (fd_ < 0)
            return false;
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        if (::poll(&pfd, 1, timeout_ms) <= 0)
            return false; // timeout or EINTR: caller rechecks g_stop
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0)
            return false;
        // Every request gets the same document regardless of path,
        // so the request bytes only need draining, not parsing.
        char request[1024];
        (void)::read(client, request, sizeof request);
        const std::string doc = body();
        char header[192];
        std::snprintf(
            header, sizeof header,
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; "
            "charset=utf-8\r\n"
            "Content-Length: %zu\r\n"
            "Connection: close\r\n\r\n",
            doc.size());
        writeAll(client, header, std::strlen(header));
        writeAll(client, doc.data(), doc.size());
        ::close(client);
        return true;
    }

    void
    close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

  private:
    int fd_ = -1;
};

#endif // HEAPMD_HAVE_OBSV

int
cmdExport(const Args &args)
{
#if !defined(HEAPMD_HAVE_OBSV)
    (void)args;
    HEAPMD_FATAL("this build has no live-observability support "
                 "(POSIX shared memory required)");
#else
    const std::string listen_addr =
        args.str("listen", "127.0.0.1:9464");

    // --fleet appends the heapmd_fleet_* families to every scrape.
    // The model is a static artifact, so it renders once up front --
    // re-run fleet-merge and restart to publish a new population.
    std::string fleet_text;
    if (args.has("fleet")) {
        fleet::FleetModel model;
        std::string error;
        if (!fleet::loadFleetModelFile(args.str("fleet"), model,
                                       &error))
            HEAPMD_FATAL("cannot load fleet model '",
                         args.str("fleet"), "': ", error);
        fleet_text = fleet::renderFleetPrometheus(model);
    }

    MetricsServer server;
    server.open(listen_addr);
    std::printf("serving metrics on http://%s/metrics\n",
                listen_addr.c_str());
    std::fflush(stdout);

    installStopHandlers();
    const bool once = args.num("once", 0) != 0;
    while (g_stop == 0) {
        const bool served = server.pump(
            [&args, &fleet_text] {
                return obsv::renderPrometheus(
                           collectSegments(args)) +
                       fleet_text;
            },
            200);
        if (served && once)
            break;
    }
    if (g_stop != 0) {
        std::printf("shutting down\n");
        std::fflush(stdout);
    }
    server.close();
    return 0;
#endif // HEAPMD_HAVE_OBSV
}

int
cmdMonitor(const Args &args)
{
#if !defined(HEAPMD_HAVE_OBSV)
    (void)args;
    HEAPMD_FATAL("this build has no live-observability support "
                 "(POSIX shared memory required)");
#else
    monitor::MonitorOptions options;
    if (args.has("segments"))
        options.segmentsBase = args.str("segments");
    if (args.has("pid"))
        options.pid = static_cast<std::uint32_t>(args.num("pid", 0));
    if (options.segmentsBase.empty() && options.pid == 0)
        badInvocation("monitor needs --segments BASE or --pid P");
    if (!options.segmentsBase.empty() && options.pid != 0)
        badInvocation("monitor takes --segments or --pid, not both");

    const HeapModel model = loadModel(args.str("model"));
    options.follow = args.num("once", 0) == 0;
    options.pollMs = args.num("poll-ms", 50);
    options.windowRadius =
        args.num("window", diag::kDefaultWindowRadius);
    options.detector.debounceSamples =
        static_cast<std::size_t>(args.num("debounce", 3));
    options.detector.rearmSamples =
        static_cast<std::size_t>(args.num("rearm", 8));
    if (args.has("bundle-dir"))
        options.bundleDir = args.str("bundle-dir");

    installStopHandlers();
    options.stopped = [] { return g_stop != 0; };

    MetricsServer server;
    if (args.has("listen")) {
        server.open(args.str("listen"));
        std::printf("serving monitor metrics on http://%s/metrics\n",
                    args.str("listen").c_str());
    }

    // The session is constructed after the callbacks that reference
    // it, so they go through a pointer filled in below; the session
    // never invokes them before run().
    monitor::MonitorSession *session_ptr = nullptr;
    options.onIdle = [&server, &session_ptr] {
        if (server.valid() && session_ptr != nullptr)
            server.pump(
                [&session_ptr] {
                    return session_ptr->renderPrometheus();
                },
                0);
    };
    options.onIncident = [&session_ptr](const BugReport &report) {
        if (session_ptr == nullptr)
            return;
        std::printf("\n%s",
                    report.describe(session_ptr->registry()).c_str());
        std::fflush(stdout);
    };

    monitor::MonitorSession session(model, options);
    session_ptr = &session;
    std::printf("monitoring %s against model '%s'%s\n",
                options.segmentsBase.empty()
                    ? ("pid " + std::to_string(options.pid)).c_str()
                    : options.segmentsBase.c_str(),
                model.programName.c_str(),
                options.follow ? "" : " (once)");
    std::fflush(stdout);

    std::string error;
    const bool ok = session.run(error);
    server.close();
    if (!ok)
        HEAPMD_FATAL("monitor failed: ", error);

    const monitor::MonitorStats &stats = session.stats();
    std::printf("monitored %llu events / %llu samples over %llu "
                "segment(s): %llu incident(s), %llu bundle(s) "
                "written%s\n",
                static_cast<unsigned long long>(stats.events),
                static_cast<unsigned long long>(stats.samples),
                static_cast<unsigned long long>(
                    stats.segmentsConsumed),
                static_cast<unsigned long long>(stats.incidents),
                static_cast<unsigned long long>(
                    stats.bundlesWritten),
                stats.truncatedTail ? " (truncated tail tolerated)"
                                    : "");
    return session.anomalous() ? kExitFindings : 0;
#endif // HEAPMD_HAVE_OBSV
}

int
cmdStats(const Args &args)
{
    if (args.has("format")) {
        if (args.str("format") != "prometheus")
            badInvocation("stats --format only supports "
                          "'prometheus'");
#if !defined(HEAPMD_HAVE_OBSV)
        HEAPMD_FATAL("this build has no live-observability support "
                     "(POSIX shared memory required)");
#else
        std::string text =
            obsv::renderPrometheus(collectSegments(args));
        if (args.has("fleet")) {
            fleet::FleetModel model;
            std::string error;
            if (!fleet::loadFleetModelFile(args.str("fleet"), model,
                                           &error))
                HEAPMD_FATAL("cannot load fleet model '",
                             args.str("fleet"), "': ", error);
            text += fleet::renderFleetPrometheus(model);
        }
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
#endif
    }
    const HeapMD tool(configFrom(args));
    auto app = makeApp(args.str("app", specAppNames().front()));
    tool.observe(*app, appConfigFrom(args, 1));
    telemetry::statsTable(
        telemetry::Registry::instance().snapshotAll())
        .print(std::cout);
    return 0;
}

/** One dispatch-table entry: handler plus its known flags. */
struct CommandSpec
{
    int (*run)(const Args &);
    std::set<std::string> flags;
    bool positional = false; //!< bare operands OK (fleet-merge)
};

const std::map<std::string, CommandSpec> &
commandTable()
{
    static const std::map<std::string, CommandSpec> table = {
        {"list-apps", {[](const Args &) { return cmdListApps(); }, {}}},
        {"train",
         {cmdTrain,
          {"app", "inputs", "seed", "version", "scale", "frq", "local",
           "out", "manifest", "trace", "name", "no-audit"}}},
        {"inspect", {cmdInspect, {"model"}}},
        {"check",
         {cmdCheck,
          {"app", "model", "seed", "inputs", "version", "scale",
           "frq", "local", "fault", "rate", "budget", "no-audit",
           "bundle-dir", "manifest"}}},
        {"record",
         {cmdRecord,
          {"app", "out", "seed", "version", "scale", "frq", "fault",
           "rate", "budget"}}},
        {"capture",
         {cmdCapture,
          {"out", "frq", "lib", "check", "train-out", "bundle-dir",
           "rotate-bytes", "compress", "manifest", "verbose",
           "local"}}},
        {"replay",
         {cmdReplay,
          {"trace", "model", "frq", "no-audit", "bundle-dir",
           "manifest"}}},
        {"diff", {cmdDiff, {"model", "model-b"}}},
        {"snapshot",
         {cmdSnapshot,
          {"app", "out", "seed", "version", "scale", "frq", "fault",
           "rate", "budget"}}},
        {"audit",
         {cmdAudit,
          {"trace", "segments", "model", "graph", "bundle",
           "manifest", "fleet", "max-findings", "deep",
           "bundle-dir"}}},
        {"report", {cmdReport, {"bundle", "stacks", "suspects"}}},
        {"trend",
         {cmdTrend,
          {"baseline", "manifest", "counter-tol", "sample-tol",
           "min-base", "rss-tol", "phase-tol"}}},
        {"fleet-merge",
         {cmdFleetMerge,
          {"out", "manifest", "outlier-z", "min-members"},
          /*positional=*/true}},
        {"fleet-trend",
         {cmdFleetTrend, {"fleet", "baseline", "range-tol"}}},
        {"top",
         {cmdTop,
          {"pid", "all", "once", "interval", "model", "reap"}}},
        {"export", {cmdExport, {"listen", "pid", "once", "fleet"}}},
        {"monitor",
         {cmdMonitor,
          {"segments", "pid", "model", "bundle-dir", "once",
           "listen", "poll-ms", "debounce", "rearm", "window"}}},
        {"observe",
         {cmdObserve,
          {"app", "seed", "version", "scale", "frq", "fault", "rate",
           "budget"}}},
        {"stats",
         {cmdStats,
          {"app", "seed", "version", "scale", "frq", "fault", "rate",
           "budget", "format", "pid", "fleet"}}},
    };
    return table;
}

/** --stats 1 on the command line, or HEAPMD_STATS set and not "0". */
bool
statsRequested(const Args &args)
{
    if (args.has("stats"))
        return args.num("stats", 0) != 0;
    const char *env = std::getenv("HEAPMD_STATS");
    return env != nullptr && std::string(env) != "0";
}

} // namespace

int
main(int argc, char **argv)
{
    g_argv0 = argv[0];
    if (argc < 2)
        badInvocation("missing command");
    const std::string command = argv[1];
    g_command_line = "heapmd";
    for (int i = 1; i < argc; ++i) {
        g_command_line += ' ';
        g_command_line += argv[i];
    }

    const auto &table = commandTable();
    const auto it = table.find(command);
    if (it == table.end())
        badInvocation("unknown command '" + command + "'");

    // `capture` ends its flags at `--`; everything after is the
    // command to run and must not reach the flag parser.
    int flags_end = argc;
    if (command == "capture") {
        for (int i = 2; i < argc; ++i) {
            if (std::string(argv[i]) == "--") {
                flags_end = i;
                break;
            }
        }
        if (flags_end == argc)
            badInvocation(
                "capture needs a '--' separator before the command "
                "to run, e.g. `heapmd capture --out run.trace -- "
                "./app arg1`");
        for (int i = flags_end + 1; i < argc; ++i)
            g_capture_argv.push_back(argv[i]);
        if (g_capture_argv.empty())
            badInvocation("capture: no command follows '--'");
    }

    const Args args(flags_end, argv, it->second.positional);
    args.checkAllowed(command, it->second.flags);

    if (args.has("jobs")) {
        g_jobs = parseJobs(args.str("jobs"), "--jobs");
    } else if (const char *env = std::getenv("HEAPMD_JOBS");
               env != nullptr && *env != '\0') {
        g_jobs = parseJobs(env, "HEAPMD_JOBS");
    }

    const bool tracing =
        args.has("trace-out") &&
        telemetry::TraceSession::start(args.str("trace-out"));

    int status = 0;
    {
        HEAPMD_TRACE_SPAN("cli." + command);
        status = it->second.run(args);
    }
    if (tracing)
        telemetry::TraceSession::stop();

    if (statsRequested(args)) {
        telemetry::statsTable(
            telemetry::Registry::instance().snapshotAll())
            .print(std::cerr);
    }
    return status;
}
