#!/usr/bin/env python3
"""Required clang-tidy gate with a checked-in suppression baseline.

Runs clang-tidy (the same source set as the `lint` CMake target) and
compares every diagnostic against tools/lint_baseline.txt.  A
diagnostic whose `<path>:<check>` key is not in the baseline fails
the gate; baseline entries that no longer fire are reported as stale
so the file shrinks over time instead of rotting.  Line numbers are
deliberately not part of the key -- unrelated edits move lines, and a
baseline that churns on every commit trains people to ignore it.

Usage:
  check_lint.py [--build-dir build] [--require] [--update]
                [--input FILE]

  --require   missing clang-tidy is a failure (CI); without it the
              gate is skipped with a notice (local gcc-only boxes)
  --update    rewrite the baseline from the current diagnostics
  --input     parse a pre-recorded clang-tidy log instead of running
              (used by the self-test and for split CI runs)

Exit codes: 0 clean/skipped, 1 new diagnostics or clang-tidy missing
under --require, 2 infrastructure failure (no compile_commands.json,
clang-tidy crashed).
"""

import argparse
import glob
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "tools", "lint_baseline.txt")

# path:line:col: severity: message [check-name]
DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):\d+:\d+:\s+"
    r"(?P<severity>warning|error):\s+.*\[(?P<checks>[\w.,-]+)\]$")


def lint_sources():
    sources = []
    for subdir in ("src", "tools"):
        pattern = os.path.join(REPO_ROOT, subdir, "**", "*.cc")
        sources.extend(glob.glob(pattern, recursive=True))
    return sorted(sources)


def diagnostic_keys(text):
    """Parse clang-tidy output into sorted unique `path:check` keys."""
    keys = set()
    hard_errors = []
    for line in text.splitlines():
        match = DIAG_RE.match(line.strip())
        if not match:
            # Compiler errors carry no [check] suffix: clang-tidy
            # could not parse the TU, which must never pass silently.
            if re.search(r":\d+:\d+: error: ", line):
                hard_errors.append(line.strip())
            continue
        path = os.path.relpath(
            os.path.join(REPO_ROOT, match.group("path")), REPO_ROOT)
        # A line can carry several checks: [bugprone-a,cert-b].
        for check in match.group("checks").split(","):
            keys.add(f"{path}:{check}")
    return sorted(keys), hard_errors


def load_baseline():
    if not os.path.exists(BASELINE_PATH):
        return []
    entries = []
    with open(BASELINE_PATH) as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.append(line)
    return entries


def save_baseline(keys):
    with open(BASELINE_PATH, "w") as fh:
        fh.write(
            "# clang-tidy suppression baseline (tools/check_lint.py).\n"
            "# One `path:check` per line; regenerate with --update.\n"
            "# Entries reported as stale should be deleted, not kept.\n")
        for key in keys:
            fh.write(key + "\n")


def run_clang_tidy(build_dir):
    tidy = os.environ.get("CLANG_TIDY") or shutil.which("clang-tidy")
    if tidy is None:
        return None
    compdb = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(compdb):
        print(f"check_lint: no {compdb}; configure the build first",
              file=sys.stderr)
        sys.exit(2)
    # The .clang-tidy WarningsAsErrors promotion is for interactive
    # use; here the baseline decides what fails, so neutralize it and
    # gate on parsed diagnostics only.
    cmd = [tidy, "-p", build_dir, "--quiet",
           "--warnings-as-errors=-*"] + lint_sources()
    proc = subprocess.run(cmd, cwd=REPO_ROOT,
                          stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    return proc.stdout


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--require", action="store_true")
    parser.add_argument("--update", action="store_true")
    parser.add_argument("--input")
    args = parser.parse_args()

    if args.input:
        with open(args.input) as fh:
            output = fh.read()
    else:
        output = run_clang_tidy(
            os.path.join(REPO_ROOT, args.build_dir)
            if not os.path.isabs(args.build_dir) else args.build_dir)
        if output is None:
            print("check_lint: clang-tidy not installed; gate "
                  + ("REQUIRED -> fail" if args.require else
                     "skipped"))
            sys.exit(1 if args.require else 0)

    keys, hard_errors = diagnostic_keys(output)
    if hard_errors:
        print("check_lint: clang-tidy hit compile errors:")
        for line in hard_errors[:20]:
            print(f"  {line}")
        sys.exit(2)

    if args.update:
        save_baseline(keys)
        print(f"check_lint: baseline rewritten with {len(keys)} "
              f"entr{'y' if len(keys) == 1 else 'ies'}")
        return

    baseline = set(load_baseline())
    fresh = [k for k in keys if k not in baseline]
    stale = sorted(baseline - set(keys))

    for key in stale:
        print(f"check_lint: stale baseline entry (delete it): {key}")
    if fresh:
        print(f"check_lint: {len(fresh)} diagnostic(s) not in the "
              "baseline:")
        for key in fresh:
            print(f"  {key}")
        print("check_lint: fix them, or if deliberate re-run with "
              "--update and commit tools/lint_baseline.txt")
        sys.exit(1)
    print(f"check_lint: clean ({len(keys)} baselined, "
          f"{len(stale)} stale)")


if __name__ == "__main__":
    main()
