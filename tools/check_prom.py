#!/usr/bin/env python3
"""Lint a Prometheus text-exposition scrape (version 0.0.4).

CI runs this over `heapmd stats --format prometheus` output so a
malformed exposition (bad escaping, missing HELP/TYPE, a counter
that goes backwards) fails the build instead of a fleet scraper.

Checks:
  * every sample belongs to a family with `# HELP` and `# TYPE`
    declared before its first sample, at most once each;
  * metric and label names match the Prometheus grammar;
  * label values use only the \\\\, \\", and \\n escapes;
  * sample values are floats (including +Inf/-Inf/NaN);
  * counter-typed samples are non-negative;
  * no duplicate (name, labelset) sample;
  * with --baseline EARLIER_SCRAPE: counters never decrease between
    the two scrapes for any labelset present in both (restarts reset
    counters, so only use --baseline within one writer's lifetime).

Exit status: 0 clean, 1 findings, 2 usage/IO trouble.  stdlib only.
"""

import argparse
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class Scrape:
    """Parsed exposition: families, samples, and findings."""

    def __init__(self):
        self.help = {}     # family -> text
        self.type = {}     # family -> type
        self.samples = {}  # (name, labelset tuple) -> float
        self.findings = []

    def fail(self, line_no, message):
        self.findings.append("line %d: %s" % (line_no, message))


def parse_label_value(raw, pos):
    """Parse a quoted label value starting at raw[pos] == '"'.

    Returns (value, next_pos) or (None, error_message): only the
    \\\\, \\", and \\n escapes are legal in the text format.
    """
    assert raw[pos] == '"'
    out = []
    i = pos + 1
    while i < len(raw):
        ch = raw[i]
        if ch == "\\":
            if i + 1 >= len(raw):
                return None, "dangling backslash in label value"
            esc = raw[i + 1]
            if esc not in ('\\', '"', "n"):
                return None, "illegal escape '\\%s' in label value" % esc
            out.append({"\\": "\\", '"': '"', "n": "\n"}[esc])
            i += 2
            continue
        if ch == '"':
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    return None, "unterminated label value"


def parse_labels(raw, line_no, scrape):
    """Parse '{name="value",...}'; returns labelset tuple or None."""
    labels = []
    i = 1
    while True:
        if i >= len(raw):
            scrape.fail(line_no, "unterminated label set")
            return None
        if raw[i] == "}":
            return tuple(labels), i + 1
        eq = raw.find("=", i)
        if eq < 0 or eq + 1 >= len(raw) or raw[eq + 1] != '"':
            scrape.fail(line_no, "malformed label pair")
            return None
        name = raw[i:eq]
        if not LABEL_NAME.match(name):
            scrape.fail(line_no, "bad label name '%s'" % name)
            return None
        value, nxt = parse_label_value(raw, eq + 1)
        if value is None:
            scrape.fail(line_no, nxt)
            return None
        labels.append((name, value))
        i = nxt
        if i < len(raw) and raw[i] == ",":
            i += 1


def parse_value(token):
    if token in ("+Inf", "-Inf", "NaN"):
        return float("inf") if token == "+Inf" else (
            float("-inf") if token == "-Inf" else float("nan"))
    try:
        return float(token)
    except ValueError:
        return None


def family_of(name):
    """Histogram/summary series fold into their declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)]:
            return name[: -len(suffix)]
    return name


def parse(text, scrape):
    seen_sample_of = set()
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) >= 2 and fields[1] in ("HELP", "TYPE"):
                if len(fields) < 3 or not METRIC_NAME.match(fields[2]):
                    scrape.fail(line_no,
                                "malformed %s comment" % fields[1])
                    continue
                name = fields[2]
                if fields[1] == "HELP":
                    if name in scrape.help:
                        scrape.fail(line_no,
                                    "duplicate HELP for '%s'" % name)
                    scrape.help[name] = (
                        fields[3] if len(fields) > 3 else "")
                    if not scrape.help[name].strip():
                        scrape.fail(line_no,
                                    "empty HELP text for '%s'" % name)
                else:
                    if name in scrape.type:
                        scrape.fail(line_no,
                                    "duplicate TYPE for '%s'" % name)
                    if name in seen_sample_of:
                        scrape.fail(
                            line_no,
                            "TYPE for '%s' after its samples" % name)
                    kind = fields[3].strip() if len(fields) > 3 else ""
                    if kind not in TYPES:
                        scrape.fail(line_no,
                                    "unknown TYPE '%s'" % kind)
                    scrape.type[name] = kind
            continue  # other comments are legal and uninterpreted

        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
        if not match:
            scrape.fail(line_no, "unparseable sample line")
            continue
        name = match.group(1)
        rest = line[match.end():]
        labels = ()
        if rest.startswith("{"):
            parsed = parse_labels(rest, line_no, scrape)
            if parsed is None:
                continue
            labels, consumed = parsed
            rest = rest[consumed:]
        tokens = rest.split()
        if len(tokens) not in (1, 2):  # optional trailing timestamp
            scrape.fail(line_no, "expected 'value [timestamp]'")
            continue
        value = parse_value(tokens[0])
        if value is None:
            scrape.fail(line_no,
                        "non-numeric value '%s'" % tokens[0])
            continue
        family = family_of(name)
        seen_sample_of.add(family)
        if family not in scrape.help:
            scrape.fail(line_no, "sample of '%s' without HELP" % name)
        if family not in scrape.type:
            scrape.fail(line_no, "sample of '%s' without TYPE" % name)
        elif scrape.type[family] == "counter" and value < 0:
            scrape.fail(line_no,
                        "negative counter '%s' = %s" % (name,
                                                        tokens[0]))
        key = (name, labels)
        if key in scrape.samples:
            scrape.fail(line_no,
                        "duplicate sample %s%r" % (name, labels))
        scrape.samples[key] = value


def check_monotonic(baseline, current):
    findings = []
    for key, before in baseline.samples.items():
        name, labels = key
        if baseline.type.get(family_of(name)) != "counter":
            continue
        after = current.samples.get(key)
        if after is not None and after < before:
            findings.append(
                "counter %s%r went backwards: %g -> %g"
                % (name, dict(labels), before, after))
    return findings


def load(path):
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def main():
    parser = argparse.ArgumentParser(
        description="Lint a Prometheus text exposition.")
    parser.add_argument("scrape", help="scrape file, or - for stdin")
    parser.add_argument(
        "--baseline",
        help="earlier scrape of the same writer; counters in it "
             "must not exceed their value in SCRAPE")
    args = parser.parse_args()

    try:
        current = Scrape()
        parse(load(args.scrape), current)
        findings = list(current.findings)
        if args.baseline:
            earlier = Scrape()
            parse(load(args.baseline), earlier)
            for finding in earlier.findings:
                findings.append("baseline " + finding)
            findings.extend(check_monotonic(earlier, current))
    except OSError as err:
        print("check_prom: %s" % err, file=sys.stderr)
        return 2

    for finding in findings:
        print("check_prom: %s" % finding, file=sys.stderr)
    if findings:
        return 1
    print("check_prom: %d samples in %d families, clean"
          % (len(current.samples), len(current.type)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
