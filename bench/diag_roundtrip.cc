/**
 * @file
 * Serialization cost of the diagnostics artifacts: building an
 * incident bundle from a finished report, rendering it to canonical
 * JSON, and parsing it back.  Bundles are written on the anomaly path
 * of `heapmd check`/`replay`, so this bounds the overhead an incident
 * adds to a run; the parse side bounds `heapmd report`/`trend`
 * startup on archived artifacts.
 */

#include <benchmark/benchmark.h>

#include "diag/incident_bundle.hh"
#include "diag/run_manifest.hh"
#include "diag/render.hh"

using namespace heapmd;

namespace
{

FunctionRegistry
makeRegistry(std::size_t functions)
{
    FunctionRegistry registry;
    for (std::size_t i = 0; i < functions; ++i)
        registry.intern("module::function_" + std::to_string(i));
    return registry;
}

MetricSeries
makeSeries(std::size_t points)
{
    MetricSeries series;
    series.label = "bench seed 1 v1";
    for (std::size_t i = 0; i < points; ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.tick = 250 * (i + 1);
        s.vertexCount = 5000;
        for (MetricId id : kAllMetrics)
            s.values[metricIndex(id)] =
                12.0 + 0.01 * static_cast<double>(i);
        series.push(s);
    }
    return series;
}

/** A report with a context log the size the detector really keeps. */
BugReport
makeReport(std::size_t snapshots, std::size_t depth)
{
    BugReport r;
    r.klass = BugClass::HeapAnomaly;
    r.metric = MetricId::Leaves;
    r.direction = AnomalyDirection::AboveMax;
    r.observedValue = 42.0;
    r.calibratedMin = 10.0;
    r.calibratedMax = 30.0;
    r.tick = 50000;
    r.pointIndex = 200;
    for (std::size_t i = 0; i < snapshots; ++i) {
        StackLogEntry e;
        e.tick = 48000 + 10 * i;
        e.pointIndex = 190 + i / 8;
        e.metricValue = 31.0 + 0.1 * static_cast<double>(i);
        for (std::size_t d = 0; d < depth; ++d)
            e.frames.push_back(static_cast<FnId>((i + d) % 32));
        r.contextLog.push_back(e);
    }
    return r;
}

void
BM_BundleBuild(benchmark::State &state)
{
    const FunctionRegistry registry = makeRegistry(32);
    const MetricSeries series = makeSeries(400);
    const BugReport report = makeReport(
        static_cast<std::size_t>(state.range(0)), 6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            diag::makeIncidentBundle(report, registry, series));
    }
}
BENCHMARK(BM_BundleBuild)->Arg(16)->Arg(64)->Arg(256);

void
BM_BundleSerialize(benchmark::State &state)
{
    const diag::IncidentBundle bundle = diag::makeIncidentBundle(
        makeReport(static_cast<std::size_t>(state.range(0)), 6),
        makeRegistry(32), makeSeries(400));
    for (auto _ : state)
        benchmark::DoNotOptimize(diag::bundleToJson(bundle));
}
BENCHMARK(BM_BundleSerialize)->Arg(16)->Arg(64)->Arg(256);

void
BM_BundleParse(benchmark::State &state)
{
    const std::string json = diag::bundleToJson(
        diag::makeIncidentBundle(
            makeReport(static_cast<std::size_t>(state.range(0)), 6),
            makeRegistry(32), makeSeries(400)));
    for (auto _ : state) {
        diag::IncidentBundle out;
        diag::loadIncidentBundle(json, out, nullptr);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_BundleParse)->Arg(16)->Arg(64)->Arg(256);

void
BM_BundleRender(benchmark::State &state)
{
    const diag::IncidentBundle bundle = diag::makeIncidentBundle(
        makeReport(64, 6), makeRegistry(32), makeSeries(400));
    for (auto _ : state)
        benchmark::DoNotOptimize(diag::renderIncident(bundle));
}
BENCHMARK(BM_BundleRender);

void
BM_ManifestRoundTrip(benchmark::State &state)
{
    diag::RunManifest manifest;
    manifest.command = "check";
    manifest.commandLine = "heapmd check --app bench";
    manifest.program = "bench seed 1 v1";
    manifest.events = 1000000;
    manifest.samples = 400;
    const MetricSeries series = makeSeries(400);
    for (MetricId id : kAllMetrics)
        manifest.metrics.push_back(
            {metricName(id), series.summaryOf(id)});
    for (int i = 0; i < 24; ++i)
        manifest.counters.push_back(
            {"bench.counter_" + std::to_string(i),
             static_cast<std::uint64_t>(1000 + i)});
    for (auto _ : state) {
        const std::string json = diag::manifestToJson(manifest);
        diag::RunManifest out;
        diag::loadRunManifest(json, out, nullptr);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_ManifestRoundTrip);

} // namespace

BENCHMARK_MAIN();
