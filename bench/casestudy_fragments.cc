/**
 * @file
 * Regenerates the case-study code fragments of Figures 1, 11 and 12:
 * each buggy fragment is run against its data structure and the named
 * metric's movement is shown directly on the heap-graph.
 *
 *  - Figure 1: doubly-linked insert without prev updates ->
 *    %indegree=1 rises;
 *  - Figure 11: wrong-index descriptor transfer -> the leaked
 *    descriptor's indegree drops to 0 and %indegree=1 falls;
 *  - Figure 12: circular list head freed with a dangling tail ->
 *    the predecessor's outdegree collapses.
 */

#include "bench_common.hh"

#include "istl/circular_list.hh"
#include "istl/descriptor_table.hh"
#include "istl/dll.hh"
#include "metrics/metric_engine.hh"

using namespace heapmd;

namespace
{

double
metric(const Process &process, MetricId id)
{
    return MetricEngine::sample(process.graph(), 0, 0).value(id);
}

void
figure1()
{
    std::printf("\n--- Figure 1: missing prev-pointer updates in a "
                "doubly-linked list ---\n");
    for (const bool buggy : {false, true}) {
        Process process;
        HeapApi heap(process);
        FaultPlan faults;
        if (buggy)
            faults.enable(FaultKind::DllMissingPrev, 1.0);
        istl::Context ctx(heap, faults, 7);
        istl::Dll list(ctx, 0);
        list.pushBack();
        for (int i = 0; i < 199; ++i)
            list.insertAtCursor(1 + ctx.rng.below(4));
        std::printf("  %-7s  %%indeg=1 = %5.1f   %%indeg=2 = %5.1f\n",
                    buggy ? "buggy:" : "fixed:",
                    metric(process, MetricId::Indeg1),
                    metric(process, MetricId::Indeg2));
        list.clear();
    }
    std::printf("  Paper: the violation shows on %%indegree=1 "
                "(calibrated range exceeded).\n");
}

void
figure11()
{
    std::printf("\n--- Figure 11: wrong-index typo leaks property "
                "descriptors ---\n");
    for (const bool buggy : {false, true}) {
        Process process;
        HeapApi heap(process);
        FaultPlan faults;
        if (buggy)
            faults.enable(FaultKind::TypoLeak, 1.0);
        istl::Context ctx(heap, faults, 11);
        istl::DescriptorTable table(ctx, 64, 48);
        istl::Dll sink(ctx, 0);
        std::uint64_t leaked = 0;
        for (int round = 0; round < 6; ++round) {
            for (std::uint64_t i = 0; i < 64; ++i)
                if (table.descriptorAt(i) == kNullAddr)
                    table.populate(i);
            for (std::uint64_t i = 0; i < 64; i += 2) {
                leaked +=
                    table.transfer(i, sink) != kNullAddr ? 1 : 0;
                if (sink.size() > 24)
                    sink.popFront();
            }
        }
        std::printf("  %-7s  %%indeg=1 = %5.1f   %%roots = %5.1f   "
                    "leaked descriptors = %llu\n",
                    buggy ? "buggy:" : "fixed:",
                    metric(process, MetricId::Indeg1),
                    metric(process, MetricId::Roots),
                    static_cast<unsigned long long>(leaked));
    }
    std::printf("  Paper: detected when %%indegree=1 violated its "
                "calibrated range.\n");
}

void
figure12()
{
    std::printf("\n--- Figure 12: circular list freed with a "
                "dangling tail ---\n");
    for (const bool buggy : {false, true}) {
        Process process;
        HeapApi heap(process);
        FaultPlan faults;
        if (buggy)
            faults.enable(FaultKind::CircularDanglingTail, 1.0);
        istl::Context ctx(heap, faults, 13);
        istl::CircularList ring(ctx, 16);
        for (int i = 0; i < 150; ++i)
            ring.insert();
        for (int i = 0; i < 60; ++i) {
            // The head roves (as the column-list cursor does in the
            // paper's fragment), so each buggy removal leaves its own
            // dangling predecessor behind.
            for (std::uint64_t r = 0; r < 1 + ctx.rng.below(9); ++r)
                ring.rotate();
            ring.removeHead();
            ring.insert();
        }
        std::printf("  %-7s  %%indeg=1 = %5.1f   %%outdeg=2 = %5.1f  "
                    " %%leaves = %5.1f\n",
                    buggy ? "buggy:" : "fixed:",
                    metric(process, MetricId::Indeg1),
                    metric(process, MetricId::Outdeg2),
                    metric(process, MetricId::Leaves));
        ring.clear();
    }
    std::printf("  Paper: detected when %%indegree=2 violated its "
                "calibrated range (our ring\n  nodes carry payloads, "
                "so the shift shows on outdeg=2/leaves as well).\n");
}

} // namespace

int
main()
{
    bench::banner("Figures 1 / 11 / 12",
                  "Case-study code fragments run directly against "
                  "their data structures");
    figure1();
    figure11();
    figure12();
    return 0;
}
