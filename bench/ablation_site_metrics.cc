/**
 * @file
 * Ablation for the per-allocation-site metric extension (Section 4.4
 * item 2): when a whole-heap metric fires, per-site metrics attribute
 * the anomaly to the data structure that caused it -- the diagnostic
 * refinement the paper sketches for type-aware analysis.
 *
 * Scenario: the Figure 10 bug on PC Game (action).  The whole-heap
 * %indegree=1 violation names the metric; the site breakdown names
 * the structure (the tree code), matching the ground truth.
 */

#include "bench_common.hh"

#include "metrics/site_metrics.hh"

using namespace heapmd;

namespace
{

struct SiteSnapshots : public SampleObserver
{
    void
    onSample(const MetricSample &sample,
             const Process &process) override
    {
        if (sample.pointIndex == 5) {
            before = computeSiteMetrics(process.graph(), 0, 16);
        } else if (sample.pointIndex == 25) {
            after = computeSiteMetrics(process.graph(), 0, 16);
            heapIndeg1 = sample.value(MetricId::Indeg1);
            for (const SiteMetrics &m : after)
                names.push_back(process.registry().name(m.site));
        }
    }

    std::vector<SiteMetrics> before, after;
    std::vector<std::string> names;
    double heapIndeg1 = 0.0;
};

} // namespace

int
main()
{
    bench::banner("Site-metric ablation (Section 4.4)",
                  "Attributing the Figure 10 anomaly to its data "
                  "structure via per-site metrics");

    ProcessConfig pcfg = bench::standardConfig().process;
    Process process(pcfg);
    SiteSnapshots snap;
    process.addSampleObserver(&snap);

    auto app = makeApp("PC Game (action)");
    AppConfig cfg;
    cfg.inputSeed = 200;
    cfg.scale = bench::kScale;
    cfg.faults.enable(FaultKind::TreeMissingParent, 1.0);
    app->run(process, cfg);

    if (snap.after.empty()) {
        std::printf("run too short for the snapshot points\n");
        return 1;
    }

    std::printf("whole-heap %%indeg=1 at the late snapshot: %.1f\n\n",
                snap.heapIndeg1);
    TextTable table({"Allocation site", "Objects", "%indeg=1 (early)",
                     "%indeg=1 (late)", "indeg=1 objects (delta)"});
    for (std::size_t i = 0; i < snap.after.size() && i < 8; ++i) {
        const SiteMetrics &late = snap.after[i];
        double early_pct = 0.0, early_count = 0.0;
        for (const SiteMetrics &m : snap.before) {
            if (m.site == late.site) {
                early_pct = m.value(MetricId::Indeg1);
                early_count = static_cast<double>(m.objectCount) *
                              early_pct / 100.0;
            }
        }
        const double late_count =
            static_cast<double>(late.objectCount) *
            late.value(MetricId::Indeg1) / 100.0;
        table.addRow({snap.names[i],
                      std::to_string(late.objectCount),
                      fmtDouble(early_pct, 1),
                      fmtDouble(late.value(MetricId::Indeg1), 1),
                      (late_count >= early_count ? "+" : "") +
                          fmtDouble(late_count - early_count, 0)});
    }
    table.print(std::cout);

    const std::size_t culprit = largestPropertyGrowth(
        snap.before, snap.after, MetricId::Indeg1, true);
    std::printf("\nattributed structure: %s\n",
                culprit < snap.names.size()
                    ? snap.names[culprit].c_str()
                    : "(none)");
    std::printf("ground truth: the injected bug corrupts "
                "BinaryTree splices -- per-site metrics recover the "
                "structure\nthe whole-heap metric could only hint "
                "at (Section 4.4's proposed refinement).\n");
    return 0;
}
