/**
 * @file
 * Scale proof of the slot-map heap-graph core (DESIGN.md §16).
 *
 * Drives the identical deterministic event stream (ramp to N live
 * objects with pointer wiring, then steady-state alloc/free/write
 * churn) through two graph implementations:
 *
 *  - LegacyGraph: a faithful in-bench copy of the pre-§16 core
 *    (std::map<Addr, ObjectId> address index, per-object hash map,
 *    monotonic ids, per-event Registry telemetry);
 *  - HeapGraph: the production arena + page-index core.
 *
 * At 1M live objects the run is GATED: the new core must fold events
 * at >= 5x the legacy rate and >= an absolute floor, and the p99
 * latency of a metric point (MetricEngine::sample) must stay under
 * budget -- a metric point reads the incremental degree census, so
 * its cost must not grow with the live-object count.  The same
 * measurements at 10M live objects are REPORTED (the O(1) flatness
 * evidence) but not gated: legacy at 10M would dominate CI wall time.
 *
 * Emits BENCH_heapgraph_scale.json; exits non-zero when a gate fails
 * (gates are informational under sanitizers, which skew timing).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

#include "heapgraph/heap_graph.hh"
#include "metrics/metric_engine.hh"
#include "support/build_env.hh"
#include "support/logging.hh"
#include "support/small_map.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

namespace
{

constexpr std::uint64_t kGatedLive = 1'000'000;
constexpr std::uint64_t kReportedLive = 10'000'000;
/** Steady-state churn events after the ramp, per trial. */
constexpr std::uint64_t kChurnEvents = 2'000'000;
/** Timed trials per graph; the gate uses the fastest (min-time
 *  estimator: scheduler noise on a shared runner only ever adds
 *  time, so the minimum is the least-contaminated measurement). */
constexpr int kChurnTrials = 3;
constexpr double kMinSpeedup = 5.0;
constexpr double kMinEventsPerSec = 1e6;
constexpr double kMaxP99SampleNs = 10'000.0; // 10 us per metric point
constexpr int kSamplePoints = 512;

double
nowNs()
{
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * The pre-§16 heap-graph store, reproduced verbatim minus the
 * telemetry macros' registration side effects it shares with the
 * production core: ordered address map (O(log n) owner lookup),
 * per-object unordered_map keyed by monotonic id, 8-wide inline edge
 * maps with inline provenance.  Only the event-path subset the
 * workload drives (allocate/free/write) is carried over.
 */
class LegacyGraph
{
  public:
    struct LegacyRecord
    {
        ObjectId id = kNoObject;
        Addr addr = kNullAddr;
        std::uint64_t size = 0;
        FnId allocSite = kNoFunction;
        Tick allocTick = 0;
        SmallMap<Addr, ObjectId, 8> slots;
        SmallMap<ObjectId, std::uint32_t, 8> outNeighbors;
        SmallMap<Addr, ObjectId, 8> inRefs;
        SmallMap<ObjectId, std::uint32_t, 8> inNeighbors;

        std::size_t indegree() const { return inNeighbors.size(); }
        std::size_t outdegree() const { return outNeighbors.size(); }

        bool
        contains(Addr a) const
        {
            return a >= addr && a - addr < size;
        }
    };

    ObjectId
    allocate(Addr addr, std::uint64_t size, FnId site = kNoFunction,
             Tick tick = 0)
    {
        const ObjectId id = next_id_++;
        LegacyRecord rec;
        rec.id = id;
        rec.addr = addr;
        rec.size = size;
        rec.allocSite = site;
        rec.allocTick = tick;
        objects_.emplace(id, std::move(rec));
        by_addr_.emplace(addr, id);
        hist_.addVertex();
        return id;
    }

    bool
    free(Addr addr)
    {
        auto it = by_addr_.find(addr);
        if (it == by_addr_.end())
            return false;
        LegacyRecord &rec = objects_.at(it->second);
        while (!rec.slots.empty())
            removeEdgeInstance(rec, rec.slots.begin()->first);
        while (!rec.inRefs.empty()) {
            const auto [slot, src_id] = *rec.inRefs.begin();
            removeEdgeInstance(objects_.at(src_id), slot);
        }
        hist_.removeVertex(rec.indegree(), rec.outdegree());
        by_addr_.erase(it);
        objects_.erase(rec.id);
        return true;
    }

    void
    write(Addr addr, Addr value)
    {
        LegacyRecord *owner = ownerOf(addr);
        if (owner == nullptr)
            return;
        if (owner->slots.count(addr) != 0)
            removeEdgeInstance(*owner, addr);
        LegacyRecord *target = ownerOf(value);
        if (target != nullptr)
            addEdgeInstance(*owner, addr, *target);
    }

    std::uint64_t vertexCount() const { return hist_.vertexCount(); }
    std::uint64_t edgeCount() const { return edge_count_; }

  private:
    LegacyRecord *
    ownerOf(Addr addr)
    {
        if (addr == kNullAddr || by_addr_.empty())
            return nullptr;
        auto it = by_addr_.upper_bound(addr);
        if (it == by_addr_.begin())
            return nullptr;
        --it;
        LegacyRecord &rec = objects_.at(it->second);
        return rec.contains(addr) ? &rec : nullptr;
    }

    void
    addEdgeInstance(LegacyRecord &u, Addr slot, LegacyRecord &v)
    {
        const std::size_t u_in = u.indegree();
        const std::size_t u_out = u.outdegree();
        const std::size_t v_in = v.indegree();
        const std::size_t v_out = v.outdegree();
        u.slots.emplace(slot, v.id);
        if (++u.outNeighbors[v.id] == 1)
            ++edge_count_;
        v.inRefs.emplace(slot, u.id);
        ++v.inNeighbors[u.id];
        hist_.transition(u_in, u_out, u.indegree(), u.outdegree());
        if (u.id != v.id)
            hist_.transition(v_in, v_out, v.indegree(), v.outdegree());
    }

    void
    removeEdgeInstance(LegacyRecord &u, Addr slot)
    {
        auto sit = u.slots.find(slot);
        const ObjectId target_id = sit->second;
        LegacyRecord &v = objects_.at(target_id);
        const std::size_t u_in = u.indegree();
        const std::size_t u_out = u.outdegree();
        const std::size_t v_in = v.indegree();
        const std::size_t v_out = v.outdegree();
        u.slots.erase(sit);
        auto out_it = u.outNeighbors.find(target_id);
        if (--out_it->second == 0) {
            u.outNeighbors.erase(out_it);
            --edge_count_;
        }
        v.inRefs.erase(slot);
        auto in_it = v.inNeighbors.find(u.id);
        if (--in_it->second == 0)
            v.inNeighbors.erase(in_it);
        hist_.transition(u_in, u_out, u.indegree(), u.outdegree());
        if (u.id != v.id)
            hist_.transition(v_in, v_out, v.indegree(), v.outdegree());
    }

    std::unordered_map<ObjectId, LegacyRecord> objects_;
    std::map<Addr, ObjectId> by_addr_;
    DegreeHistogram hist_;
    std::uint64_t edge_count_ = 0;
    ObjectId next_id_ = 1;
};

struct ChurnResult
{
    std::uint64_t events = 0;
    std::uint64_t liveObjects = 0;
    std::uint64_t liveEdges = 0;
    double rampSeconds = 0.0;
    double seconds = 0.0;

    double
    eventsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(events) / seconds
                             : 0.0;
    }
};

/**
 * Deterministic workload: ramp to @p target_live objects (each new
 * object immediately wired to a random live one), then
 * @p churn_events of mixed alloc/free/write traffic holding the live
 * count near the target, repeated kChurnTrials times with the
 * fastest trial reported.  Addresses come from a bump allocator so
 * both graph implementations see the exact same stream.  Only the
 * steady-state churn is timed: the gate is the event rate AT the
 * target live count, and the ramp's small-n prefix would flatter the
 * O(log n) legacy core.
 */
template <typename Graph>
ChurnResult
runChurn(Graph &g, std::uint64_t target_live,
         std::uint64_t churn_events)
{
    std::vector<std::pair<Addr, std::uint32_t>> live;
    live.reserve(target_live + target_live / 8);
    Addr next_addr = 0x100000;
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    const auto rng = [&state]() {
        state = state * 6364136223846793005ull +
                1442695040888963407ull;
        return state >> 17;
    };
    Tick tick = 0;
    ChurnResult result;

    const auto doAlloc = [&]() {
        const std::uint32_t size =
            16 + static_cast<std::uint32_t>(rng() & 0xF0);
        const Addr addr = next_addr;
        next_addr += (size + 15) & ~std::uint64_t{15};
        g.allocate(addr, size, kNoFunction, ++tick);
        live.emplace_back(addr, size);
        ++result.events;
    };
    const auto doWrite = [&]() {
        const auto &[owner, owner_size] = live[rng() % live.size()];
        // Stores land in the first few pointer-sized fields, like the
        // handful of pointer members a real struct carries; this also
        // bounds out-degree, so edge density equilibrates instead of
        // creeping for the whole run (which would make later trials
        // measure a denser graph than earlier ones).
        const std::uint64_t fields =
            std::min<std::uint64_t>(owner_size / 8, 4);
        const Addr slot = owner + (rng() % fields) * 8;
        Addr value = 0;
        const std::uint64_t v = rng() % 10;
        if (v < 7) {
            const auto &[target, target_size] =
                live[rng() % live.size()];
            value = target + rng() % target_size;
        } else if (v < 9) {
            value = rng() % 1000; // data word, not a pointer
        }
        g.write(slot, value);
        ++result.events;
    };
    const auto doFree = [&]() {
        const std::size_t i = rng() % live.size();
        g.free(live[i].first);
        live[i] = live.back();
        live.pop_back();
        ++result.events;
    };

    const double ramp0 = nowNs();
    while (live.size() < target_live) {
        doAlloc();
        if (live.size() > 1)
            doWrite(); // wire as we grow: realistic pointer density
    }
    result.rampSeconds = (nowNs() - ramp0) * 1e-9;

    // Steady-state mix: pointer stores dominate a real event stream
    // (the instrumentation sees every pointer-sized write, but only
    // allocator calls make vertices), so churn is 80% writes with
    // matched alloc/free traffic holding the live count on target.
    // Best-of-kChurnTrials: the stream keeps advancing, so every
    // trial is steady-state churn at the target live count.
    result.seconds = 0.0;
    for (int trial = 0; trial < kChurnTrials; ++trial) {
        result.events = 0; // gate on the steady-state rate only
        const double t0 = nowNs();
        for (std::uint64_t i = 0; i < churn_events; ++i) {
            const std::uint64_t op = rng() % 100;
            if (live.size() < target_live - target_live / 16 ||
                (op < 10 &&
                 live.size() < target_live + target_live / 16))
                doAlloc();
            else if (op < 20)
                doFree();
            else
                doWrite();
        }
        const double dt = (nowNs() - t0) * 1e-9;
        if (trial == 0 || dt < result.seconds)
            result.seconds = dt;
    }
    result.liveObjects = g.vertexCount();
    result.liveEdges = g.edgeCount();
    return result;
}

struct LatencyResult
{
    double p50Ns = 0.0;
    double p99Ns = 0.0;
};

/** p50/p99 over kSamplePoints timed MetricEngine::sample calls. */
LatencyResult
measureMetricPoint(const HeapGraph &g)
{
    std::vector<double> ns;
    ns.reserve(kSamplePoints);
    double sink = 0.0;
    for (int i = 0; i < kSamplePoints; ++i) {
        const double t0 = nowNs();
        const MetricSample s = MetricEngine::sample(
            g, static_cast<Tick>(i), static_cast<std::uint64_t>(i));
        ns.push_back(nowNs() - t0);
        sink += s.value(MetricId::Leaves); // defeat dead-code elim
    }
    if (sink < -1.0)
        std::printf("%f\n", sink); // never taken
    std::sort(ns.begin(), ns.end());
    LatencyResult r;
    r.p50Ns = ns[ns.size() / 2];
    r.p99Ns = ns[ns.size() - 1 - ns.size() / 100];
    return r;
}

} // namespace

} // namespace heapmd

int
main()
{
    using namespace heapmd;

    const bool sanitized =
        std::string_view(support::kSanitizeMode) != "none";
    std::printf("heap-graph scale: slot-map core vs legacy map core\n"
                "(gated at %llu live objects, reported at %llu; "
                "best of %d trials; sanitizer: %s)\n",
                static_cast<unsigned long long>(kGatedLive),
                static_cast<unsigned long long>(kReportedLive),
                kChurnTrials, support::kSanitizeMode);
    // Sanitizer builds time the instrumentation, not the data
    // structure: run a token scale and report without gating.
    const std::uint64_t gated_live =
        sanitized ? kGatedLive / 20 : kGatedLive;
    const std::uint64_t reported_live =
        sanitized ? kReportedLive / 20 : kReportedLive;
    const std::uint64_t churn = sanitized ? kChurnEvents / 20
                                          : kChurnEvents;

    LegacyGraph legacy;
    const ChurnResult old_run = runChurn(legacy, gated_live, churn);
    std::printf("legacy @ %7.2e live: %llu steady-state events in "
                "%6.2fs (%0.0f events/s, %llu edges; ramp %0.1fs)\n",
                static_cast<double>(gated_live),
                static_cast<unsigned long long>(old_run.events),
                old_run.seconds, old_run.eventsPerSec(),
                static_cast<unsigned long long>(old_run.liveEdges),
                old_run.rampSeconds);

    LatencyResult lat_1m;
    LatencyResult lat_10m;
    ChurnResult new_run;
    ChurnResult big_run;
    {
        HeapGraph g;
        new_run = runChurn(g, gated_live, churn);
        lat_1m = measureMetricPoint(g);
    }
    std::printf("slot-map @ %7.2e live: %llu steady-state events in "
                "%6.2fs (%0.0f events/s, %llu edges; ramp %0.1fs); "
                "metric point p50 %0.0fns p99 %0.0fns\n",
                static_cast<double>(gated_live),
                static_cast<unsigned long long>(new_run.events),
                new_run.seconds, new_run.eventsPerSec(),
                static_cast<unsigned long long>(new_run.liveEdges),
                new_run.rampSeconds, lat_1m.p50Ns, lat_1m.p99Ns);
    {
        HeapGraph g;
        big_run = runChurn(g, reported_live, churn);
        lat_10m = measureMetricPoint(g);
    }
    std::printf("slot-map @ %7.2e live: %llu steady-state events in "
                "%6.2fs (%0.0f events/s, %llu edges; ramp %0.1fs); "
                "metric point p50 %0.0fns p99 %0.0fns\n",
                static_cast<double>(reported_live),
                static_cast<unsigned long long>(big_run.events),
                big_run.seconds, big_run.eventsPerSec(),
                static_cast<unsigned long long>(big_run.liveEdges),
                big_run.rampSeconds, lat_10m.p50Ns, lat_10m.p99Ns);

    const double speedup =
        old_run.eventsPerSec() > 0.0
            ? new_run.eventsPerSec() / old_run.eventsPerSec()
            : 0.0;
    const double flatness =
        lat_1m.p99Ns > 0.0 ? lat_10m.p99Ns / lat_1m.p99Ns : 0.0;
    const bool speedup_ok = speedup >= kMinSpeedup;
    const bool rate_ok = new_run.eventsPerSec() >= kMinEventsPerSec;
    const bool latency_ok = lat_1m.p99Ns <= kMaxP99SampleNs;
    const bool pass =
        sanitized || (speedup_ok && rate_ok && latency_ok);

    std::printf("speedup %0.2fx (gate >= %0.1fx) %s; "
                "events/s %0.0f (gate >= %0.0f) %s; "
                "p99 metric point %0.0fns (gate <= %0.0fns) %s\n",
                speedup, kMinSpeedup, speedup_ok ? "PASS" : "FAIL",
                new_run.eventsPerSec(), kMinEventsPerSec,
                rate_ok ? "PASS" : "FAIL", lat_1m.p99Ns,
                kMaxP99SampleNs, latency_ok ? "PASS" : "FAIL");
    std::printf("metric-point p99 growth %0.2fx from %7.2e to %7.2e "
                "live objects (reported, not gated)\n",
                flatness, static_cast<double>(gated_live),
                static_cast<double>(reported_live));

    std::FILE *json = std::fopen("BENCH_heapgraph_scale.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr,
                     "cannot write BENCH_heapgraph_scale.json\n");
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"heapgraph_scale\",\n"
        "  \"sanitizer\": \"%s\",\n"
        "  \"gatedLiveObjects\": %llu,\n"
        "  \"reportedLiveObjects\": %llu,\n"
        "  \"legacyEventsPerSec\": %0.0f,\n"
        "  \"newEventsPerSec\": %0.0f,\n"
        "  \"newEventsPerSec10M\": %0.0f,\n"
        "  \"speedup\": %0.2f,\n"
        "  \"minSpeedup\": %0.1f,\n"
        "  \"eventsPerSecFloor\": %0.0f,\n"
        "  \"metricPointP50Ns\": %0.0f,\n"
        "  \"metricPointP99Ns\": %0.0f,\n"
        "  \"metricPointP50Ns10M\": %0.0f,\n"
        "  \"metricPointP99Ns10M\": %0.0f,\n"
        "  \"metricPointP99BudgetNs\": %0.0f,\n"
        "  \"p99GrowthTo10M\": %0.2f,\n"
        "  \"pass\": %s\n"
        "}\n",
        support::kSanitizeMode,
        static_cast<unsigned long long>(gated_live),
        static_cast<unsigned long long>(reported_live),
        old_run.eventsPerSec(), new_run.eventsPerSec(),
        big_run.eventsPerSec(), speedup, kMinSpeedup,
        kMinEventsPerSec, lat_1m.p50Ns, lat_1m.p99Ns, lat_10m.p50Ns,
        lat_10m.p99Ns, kMaxP99SampleNs, flatness,
        pass ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_heapgraph_scale.json\n");
    return pass ? 0 : 1;
}
