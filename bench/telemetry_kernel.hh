/**
 * @file
 * Twin entry points for the telemetry-overhead bench.
 *
 * The same kernel body (telemetry_kernel_body.inc) is compiled into
 * two translation units: one with the telemetry macros enabled and
 * one with HEAPMD_TELEMETRY_ENABLED forced to 0, so one binary can
 * time "instrumented but idle" against "instrumentation compiled
 * out" on identical code.
 */

#ifndef HEAPMD_BENCH_TELEMETRY_KERNEL_HH
#define HEAPMD_BENCH_TELEMETRY_KERNEL_HH

#include <cstdint>

namespace heapmd
{
namespace bench
{

/** Kernel built with the telemetry macros compiled in (idle). */
std::uint64_t telemetryKernelCompiledIn(std::uint64_t iters);

/** Identical kernel with the macros compiled to no-ops. */
std::uint64_t telemetryKernelCompiledOut(std::uint64_t iters);

} // namespace bench
} // namespace heapmd

#endif // HEAPMD_BENCH_TELEMETRY_KERNEL_HH
