/**
 * @file
 * Regenerates Table 1: memory leaks found by SWAT vs HeapMD (plus
 * false positives) on synthesized leak inputs for Multimedia, the
 * Interactive web-app, and PC Game (simulation).
 *
 * Methodology mirrors Section 4.2: for each program a set of leak
 * scenarios (one injected leak bug each) is synthesized; both tools
 * run on the same executions.  SWAT scores a scenario as found when
 * it reports a meaningful share of the ground-truth leaked objects;
 * HeapMD scores it as found when the anomaly detector fires.  SWAT
 * false positives are reachable-but-idle cache objects it reports;
 * HeapMD false positives are reports on clean inputs.
 */

#include "bench_common.hh"

#include <algorithm>
#include <set>

#include "swat/swat_detector.hh"

using namespace heapmd;

namespace
{

struct LeakScenario
{
    const char *description;
    FaultKind kind;
    double rate;
    std::uint64_t budget;
};

struct ProgramPlan
{
    const char *name;
    std::vector<LeakScenario> scenarios;
};

/**
 * The paper reports SWAT/HeapMD leak counts of 4/2, 9/4 and 4/3: a
 * mix of metric-visible leaks (descriptor typos) and leaks HeapMD
 * cannot see (tiny counts, reachable-but-stale objects).
 */
std::vector<ProgramPlan>
plans()
{
    return {
        {"Multimedia",
         {{"typo leak (hot call site)", FaultKind::TypoLeak, 1.0, 0},
          {"typo leak (warm call site)", FaultKind::TypoLeak, 0.5, 0},
          {"small leak (4 objects)", FaultKind::SmallLeak, 1.0, 4},
          {"reachable leak (archive)", FaultKind::ReachableLeak,
           0.002, 0}}},
        {"Interactive web-app.",
         {{"typo leak (session table)", FaultKind::TypoLeak, 1.0, 0},
          {"typo leak (request table)", FaultKind::TypoLeak, 0.85, 0},
          {"typo leak (cold path)", FaultKind::TypoLeak, 0.7, 0},
          {"typo leak (error path)", FaultKind::TypoLeak, 0.55, 0},
          {"small leak (3 objects)", FaultKind::SmallLeak, 1.0, 3},
          {"small leak (6 objects)", FaultKind::SmallLeak, 1.0, 6},
          {"reachable leak (log ring)", FaultKind::ReachableLeak,
           0.002, 0},
          {"reachable leak (session pin)", FaultKind::ReachableLeak,
           0.004, 0},
          {"reachable leak (slow drip)", FaultKind::ReachableLeak,
           0.001, 0}}},
        {"PC Game (simulation)",
         {{"typo leak (asset table)", FaultKind::TypoLeak, 1.0, 0},
          {"typo leak (save path)", FaultKind::TypoLeak, 0.75, 0},
          {"typo leak (mod loader)", FaultKind::TypoLeak, 0.55, 0},
          {"small leak (5 objects)", FaultKind::SmallLeak, 1.0, 5}}},
    };
}

/** Run one scenario under both tools. */
struct ScenarioOutcome
{
    bool swatFound = false;
    bool heapmdFound = false;
    bool swatCacheFp = false;
};

ScenarioOutcome
runScenario(const HeapMD &tool, SyntheticApp &app,
            const HeapModel &model, const LeakScenario &scenario,
            std::uint64_t seed)
{
    AppConfig cfg;
    cfg.inputSeed = seed;
    cfg.scale = bench::kScale;
    cfg.faults.enable(scenario.kind, scenario.rate, scenario.budget);

    ProcessConfig pcfg = bench::standardConfig().process;
    Process process(pcfg);
    ExecutionChecker checker(model);
    checker.attach(process);
    SwatConfig scfg;
    scfg.stalenessThreshold = 60000;
    SwatDetector swat(scfg);
    swat.attach(process);

    const AppResult ground = app.run(process, cfg);

    ScenarioOutcome outcome;
    const CheckResult check = checker.finalize(process);
    outcome.heapmdFound = check.anomalous();

    const std::set<Addr> truth(ground.leakAddrs.begin(),
                               ground.leakAddrs.end());
    const std::set<Addr> cache(ground.cacheAddrs.begin(),
                               ground.cacheAddrs.end());
    std::size_t hits = 0;
    for (const LeakReport &leak : swat.finalize(process.now())) {
        if (truth.count(leak.addr))
            ++hits;
        else if (cache.count(leak.addr))
            outcome.swatCacheFp = true;
    }
    outcome.swatFound =
        !truth.empty() &&
        hits * 3 >= std::max<std::size_t>(1, truth.size());
    return outcome;
}

} // namespace

int
main()
{
    bench::banner("Table 1",
                  "Memory leaks found by SWAT vs HeapMD on "
                  "synthesized leak inputs");

    const HeapMD tool(bench::standardConfig());
    TextTable table({"Program", "SWAT leaks", "SWAT FP",
                     "HeapMD leaks", "HeapMD FP", "Leak bugs"});

    for (const ProgramPlan &plan : plans()) {
        auto app = makeApp(plan.name);
        const TrainingOutcome training = tool.train(
            *app, makeInputs(1, 20, 1, bench::kScale));

        int swat_found = 0, heapmd_found = 0, swat_fp = 0;
        for (std::size_t i = 0; i < plan.scenarios.size(); ++i) {
            ScenarioOutcome best;
            for (std::uint64_t seed = 300 + 10 * i;
                 seed < 300 + 10 * i + 3; ++seed) {
                const ScenarioOutcome out = runScenario(
                    tool, *app, training.model, plan.scenarios[i],
                    seed);
                best.swatFound |= out.swatFound;
                best.heapmdFound |= out.heapmdFound;
                best.swatCacheFp |= out.swatCacheFp;
                if (best.swatFound && best.heapmdFound)
                    break;
            }
            swat_found += best.swatFound ? 1 : 0;
            heapmd_found += best.heapmdFound ? 1 : 0;
            swat_fp |= best.swatCacheFp ? 1 : 0;
        }

        // HeapMD false positives: clean unseen inputs.
        int heapmd_fp = 0;
        for (std::uint64_t seed = 600; seed < 604; ++seed) {
            AppConfig clean;
            clean.inputSeed = seed;
            clean.scale = bench::kScale;
            const CheckOutcome out =
                tool.check(*app, clean, training.model);
            heapmd_fp += out.check.anomalous() ? 1 : 0;
        }

        table.addRow({plan.name, std::to_string(swat_found),
                      std::to_string(swat_fp),
                      std::to_string(heapmd_found),
                      std::to_string(heapmd_fp),
                      std::to_string(plan.scenarios.size())});
    }
    table.print(std::cout);
    std::printf(
        "\nPaper shape (Table 1): SWAT (a dedicated leak detector) "
        "finds more leaks than\nHeapMD; HeapMD finds the subset that "
        "perturbs heap-graph degree metrics.  SWAT\nreports false "
        "positives on reachable-but-idle caches (web-app, game-sim); "
        "HeapMD\nreports none (it does not track staleness).\n");
    return 0;
}
