/**
 * @file
 * Proof bench for the parallel replay pipeline + fast trace decode.
 *
 * Two measurements over a self-recorded corpus of traces:
 *
 *  1. Decode throughput (events/sec) of the three decode paths: the
 *     per-byte istream baseline (trace_format's getVarint over an
 *     ifstream -- the pre-optimization hot path, kept as the
 *     comparison anchor), the buffered TraceReader over the same
 *     stream, and the mmap-backed FileSource.
 *  2. Trace-train wall-clock at --jobs 1/2/4/8: the full
 *     replay-and-summarize pipeline of `heapmd train --trace`, with
 *     a byte-compare of the resulting models proving the parallel
 *     merge is deterministic.
 *
 * Emits BENCH_replay_throughput.json into the working directory
 * (run it from the repo root) and prints the headline speedups.
 * Speedup targets apply to multi-core CI hardware; the JSON records
 * hardwareConcurrency so a 1-core container result is legible, and
 * the sanitizer mode so instrumented-build numbers are never trended
 * against plain ones.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/heapmd.hh"
#include "support/build_env.hh"
#include "support/thread_pool.hh"
#include "trace/trace_format.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_source.hh"
#include "trace/trace_writer.hh"

#if defined(HEAPMD_BENCH_SHIM_PATH) && defined(__unix__)
#define HEAPMD_BENCH_HAS_CAPTURE 1
#include <unistd.h>

#include "capture/capture_session.hh"
#include "obsv/segment.hh"
#endif

using namespace heapmd;

namespace
{

constexpr std::size_t kTraceCount = 16;
constexpr double kScale = 0.35;
constexpr std::uint64_t kFrq = 300;
constexpr int kDecodeReps = 3;

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration_cast<std::chrono::duration<double>>(d)
        .count();
}

/** Record one synthetic run to @p path; returns its event count. */
std::uint64_t
recordTrace(SyntheticApp &app, std::uint64_t seed,
            const std::string &path)
{
    ProcessConfig pcfg;
    pcfg.metricFrequency = kFrq;
    Process process(pcfg);
    std::ofstream out(path, std::ios::binary);
    TraceWriter writer(out, process.registry());
    process.addEventObserver(&writer);
    AppConfig cfg;
    cfg.inputSeed = seed;
    cfg.scale = kScale;
    app.run(process, cfg);
    writer.finish();
    return writer.eventCount();
}

/**
 * The pre-optimization decode loop: per-byte virtual istream calls
 * through trace_format's getVarint, one event at a time.  Kept here
 * (not in the library) purely as the bench baseline.
 */
std::uint64_t
decodeIstreamBaseline(const std::string &path)
{
    // varints per event, indexed by tag (Alloc..FnExit).
    static constexpr int kArgs[] = {2, 1, 3, 2, 1, 1, 1};
    std::ifstream in(path, std::ios::binary);
    trace::Header header;
    if (!trace::readHeader(in, header))
        return 0;
    std::uint64_t events = 0;
    for (;;) {
        const int tag = in.get();
        if (tag < 0 || tag == trace::kFooterMarker)
            break;
        if (tag > 6)
            break;
        std::uint64_t value;
        for (int i = 0; i < kArgs[tag]; ++i) {
            if (!trace::getVarint(in, value))
                return events;
        }
        ++events;
    }
    // Footer: name count, then per-name length + bytes.
    std::uint64_t count;
    if (!trace::getVarint(in, count))
        return events;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t len;
        if (!trace::getVarint(in, len))
            return events;
        in.ignore(static_cast<std::streamsize>(len));
    }
    return events;
}

std::uint64_t
decodeBuffered(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    TraceReader reader(in);
    Event event;
    while (reader.next(event)) {
    }
    return reader.eventCount();
}

std::uint64_t
decodeMmap(const std::string &path)
{
    trace::FileSource source(path);
    TraceReader reader(source);
    Event event;
    while (reader.next(event)) {
    }
    return reader.eventCount();
}

/** Best-of-reps wall time decoding the whole corpus via @p decode. */
template <typename Fn>
double
timeDecode(const std::vector<std::string> &paths, Fn decode,
           std::uint64_t expected_events)
{
    double best = 0.0;
    for (int rep = 0; rep < kDecodeReps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        std::uint64_t events = 0;
        for (const std::string &path : paths)
            events += decode(path);
        const double wall =
            seconds(std::chrono::steady_clock::now() - start);
        if (events != expected_events) {
            std::fprintf(stderr,
                         "decode mismatch: %llu events, expected "
                         "%llu\n",
                         static_cast<unsigned long long>(events),
                         static_cast<unsigned long long>(
                             expected_events));
            std::exit(1);
        }
        if (rep == 0 || wall < best)
            best = wall;
    }
    return best;
}

/**
 * One `train --trace` equivalent over the corpus at the given worker
 * count; returns the wall time and the serialized model bytes.
 */
double
trainFromTraces(const std::vector<std::string> &paths, unsigned jobs,
                std::string &model_bytes)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<MetricSeries> runs(paths.size());
    parallelForIndexed(paths.size(), jobs, [&](std::size_t i) {
        trace::FileSource source(paths[i]);
        TraceReader reader(source);
        ProcessConfig pcfg;
        pcfg.metricFrequency = kFrq;
        Process process(pcfg);
        replayTrace(reader, process);
        runs[i] = process.series();
        runs[i].label = "trace:" + paths[i];
    });
    MetricSummarizer summarizer{SummarizerConfig{}};
    for (MetricSeries &run : runs)
        summarizer.addRun(run);
    const HeapModel model = summarizer.buildModel("bench");
    const double wall =
        seconds(std::chrono::steady_clock::now() - start);
    std::ostringstream out;
    model.save(out);
    model_bytes = out.str();
    return wall;
}

#ifdef HEAPMD_BENCH_HAS_CAPTURE

/**
 * The workload this bench re-execs itself into (--alloc-child) and
 * runs under the capture shim: a single-threaded allocator churn
 * loop, deterministic and long enough (~300k recorded ops) that a
 * 1% capture slowdown is meaningfully above timer noise.
 */
int
runAllocChild()
{
    constexpr int kIterations = 300000;
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    void *held[16] = {};
    std::uint64_t checksum = 0;
    for (int i = 0; i < kIterations; ++i) {
        state = state * 6364136223846793005ull +
                1442695040888963407ull;
        const std::size_t size = 16 + (state >> 33) % 240;
        const int slot = static_cast<int>(state % 16);
        if (held[slot] != nullptr && (state & 0x100) != 0) {
            held[slot] = std::realloc(held[slot], size);
        } else {
            std::free(held[slot]);
            held[slot] = std::malloc(size);
        }
        if (held[slot] != nullptr) {
            std::memset(held[slot], i & 0xff, size);
            checksum +=
                static_cast<unsigned char *>(held[slot])[0];
        }
    }
    for (void *ptr : held)
        std::free(ptr);
    std::printf("checksum %llu\n",
                static_cast<unsigned long long>(checksum));
    return 0;
}

/**
 * One captured run of the alloc child; returns host-side wall time.
 * @p segment toggles stats-segment publication (the ablation).
 */
double
captureWall(const std::string &self, bool segment,
            std::map<std::string, std::uint64_t> *counters)
{
    const std::string trace =
        (std::filesystem::temp_directory_path() /
         "heapmd_publish_bench.trace")
            .string();
    capture::SessionOptions options;
    options.tracePath = trace;
    options.scanFrequency = 100000;
    options.shimPath = HEAPMD_BENCH_SHIM_PATH;
    options.noSegment = !segment;
    capture::SessionResult result;
    std::string error;
    const auto start = std::chrono::steady_clock::now();
    if (!capture::runCapture({self, "--alloc-child"}, options,
                             result, error) ||
        !result.exited || result.exitCode != 0) {
        std::fprintf(stderr, "capture run failed: %s\n",
                     error.c_str());
        std::exit(1);
    }
    const double wall =
        seconds(std::chrono::steady_clock::now() - start);
    if (counters != nullptr)
        *counters = result.counters;
    std::error_code ec;
    std::filesystem::remove(trace, ec);
    std::filesystem::remove(trace + ".stats", ec);
    return wall;
}

/** Steady-state cost of one throttled gauge publish, in nanos. */
double
measurePublishNanos()
{
    obsv::SegmentWriter writer;
    const std::uint32_t pid =
        3899000000u +
        static_cast<std::uint32_t>(::getpid() % 1000000);
    if (!writer.create(pid, "replay_throughput"))
        return 0.0; // shm unavailable: report 0, skip the gate
    std::uint64_t values[8] = {};
    constexpr int kReps = 1000000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
        values[0] = static_cast<std::uint64_t>(i);
        writer.publishPrefix(values, 8);
    }
    const double wall =
        seconds(std::chrono::steady_clock::now() - start);
    writer.unlinkAndClose();
    return wall * 1e9 / kReps;
}

#endif // HEAPMD_BENCH_HAS_CAPTURE

} // namespace

int
main(int argc, char **argv)
{
#ifdef HEAPMD_BENCH_HAS_CAPTURE
    if (argc > 1 && std::strcmp(argv[1], "--alloc-child") == 0)
        return runAllocChild();
#else
    (void)argc;
    (void)argv;
#endif
    const unsigned hw = effectiveJobs(0);
    std::printf("replay throughput bench: %zu traces, %u hardware "
                "thread(s)\n",
                kTraceCount, hw);

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "heapmd_replay_bench";
    std::filesystem::create_directories(dir);

    auto app = makeApp("vpr");
    std::vector<std::string> paths;
    std::uint64_t total_events = 0;
    std::uint64_t total_bytes = 0;
    for (std::size_t i = 0; i < kTraceCount; ++i) {
        std::string stem = "t";
        stem += std::to_string(i);
        stem += ".trace";
        const std::string path = (dir / stem).string();
        total_events += recordTrace(*app, 1 + i, path);
        total_bytes += std::filesystem::file_size(path);
        paths.push_back(path);
    }
    std::printf("recorded %llu events (%0.1f MiB)\n",
                static_cast<unsigned long long>(total_events),
                static_cast<double>(total_bytes) / (1024.0 * 1024.0));

    const double istream_wall = timeDecode(
        paths, decodeIstreamBaseline, total_events);
    const double buffered_wall =
        timeDecode(paths, decodeBuffered, total_events);
    const double mmap_wall =
        timeDecode(paths, decodeMmap, total_events);
    const double istream_eps = total_events / istream_wall;
    const double buffered_eps = total_events / buffered_wall;
    const double mmap_eps = total_events / mmap_wall;
    std::printf("decode: istream %0.2fM ev/s, buffered %0.2fM ev/s "
                "(%0.2fx), mmap %0.2fM ev/s (%0.2fx)\n",
                istream_eps / 1e6, buffered_eps / 1e6,
                buffered_eps / istream_eps, mmap_eps / 1e6,
                mmap_eps / istream_eps);

    const unsigned kJobs[] = {1, 2, 4, 8};
    double train_wall[4];
    std::string model_bytes[4];
    bool deterministic = true;
    for (int i = 0; i < 4; ++i) {
        train_wall[i] =
            trainFromTraces(paths, kJobs[i], model_bytes[i]);
        deterministic =
            deterministic && model_bytes[i] == model_bytes[0];
        std::printf("train --trace x%zu at jobs=%u: %0.3fs%s\n",
                    kTraceCount, kJobs[i], train_wall[i],
                    model_bytes[i] == model_bytes[0]
                        ? ""
                        : "  MODEL MISMATCH");
    }
    const double speedup = train_wall[0] / train_wall[3];
    // On a single-core host the jobs=8 run measures scheduler churn,
    // not the pipeline: publish the number, but flag it so nobody
    // charts a "regression" off a 1-vCPU CI container.
    const bool scaling_reliable = hw > 1;
    std::printf("train speedup jobs=8 vs jobs=1: %0.2fx on %u "
                "hardware thread(s); models %s%s\n",
                speedup, hw,
                deterministic ? "bit-identical" : "DIVERGED",
                scaling_reliable
                    ? ""
                    : "  [unreliable: single-core host, speedup "
                      "is noise]");

    // Stats-segment publication overhead: capture the alloc child
    // with and without the /dev/shm segment.  The raw wall delta is
    // reported for the curious but too noise-prone to gate a CI run
    // on (a 1% budget against ~0.3s runs); the gate instead uses
    // the implied cost: seqlock publishes actually made (sidecar
    // counter) x microtimed cost per publish, over the captured
    // run's wall time.  Throttling in the shim (1 gauge publish per
    // 32 recorded ops) is what keeps this under budget.
    bool publish_ok = true;
    std::string publish_json = "  \"segmentPublish\": "
                               "{\"skipped\": true},\n";
#ifdef HEAPMD_BENCH_HAS_CAPTURE
    {
        constexpr double kBudgetPct = 1.0;
        constexpr int kReps = 3;
        const std::string self =
            std::filesystem::read_symlink("/proc/self/exe")
                .string();
        const double publish_ns = measurePublishNanos();
        double wall_on = 0.0;
        double wall_off = 0.0;
        std::map<std::string, std::uint64_t> counters;
        for (int rep = 0; rep < kReps; ++rep) {
            std::map<std::string, std::uint64_t> rep_counters;
            const double on =
                captureWall(self, true, &rep_counters);
            const double off = captureWall(self, false, nullptr);
            if (rep == 0 || on < wall_on) {
                wall_on = on;
                counters = rep_counters;
            }
            if (rep == 0 || off < wall_off)
                wall_off = off;
        }
        const double publishes = static_cast<double>(
            counters["capture.segment_publishes"]);
        const double raw_delta_pct =
            (wall_on - wall_off) / wall_off * 100.0;
        const double implied_pct =
            publish_ns > 0.0
                ? publishes * publish_ns / (wall_on * 1e9) * 100.0
                : 0.0;
        publish_ok = implied_pct < kBudgetPct;
        std::printf(
            "segment publish: %0.0f publishes at %0.1f ns, capture "
            "%0.3fs on / %0.3fs off (raw %+0.2f%%), implied "
            "overhead %0.3f%% of capture [budget %0.1f%%] %s\n",
            publishes, publish_ns, wall_on, wall_off,
            raw_delta_pct, implied_pct, kBudgetPct,
            publish_ok ? "PASS" : "FAIL");
        char buffer[512];
        std::snprintf(
            buffer, sizeof(buffer),
            "  \"segmentPublish\": {\n"
            "    \"publishNanos\": %0.1f,\n"
            "    \"publishes\": %0.0f,\n"
            "    \"captureWallOnSeconds\": %0.4f,\n"
            "    \"captureWallOffSeconds\": %0.4f,\n"
            "    \"rawDeltaPct\": %0.3f,\n"
            "    \"impliedOverheadPct\": %0.4f,\n"
            "    \"budgetPct\": %0.1f,\n"
            "    \"pass\": %s\n"
            "  },\n",
            publish_ns, publishes, wall_on, wall_off,
            raw_delta_pct, implied_pct, kBudgetPct,
            publish_ok ? "true" : "false");
        publish_json = buffer;
    }
#endif

    std::FILE *json = std::fopen("BENCH_replay_throughput.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot write "
                             "BENCH_replay_throughput.json\n");
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"replay_throughput\",\n"
        "  \"hardwareConcurrency\": %u,\n"
        "  \"sanitizer\": \"%s\",\n"
        "  \"traceCount\": %zu,\n"
        "  \"totalEvents\": %llu,\n"
        "  \"totalBytes\": %llu,\n"
        "  \"decode\": {\n"
        "    \"istreamEventsPerSec\": %0.0f,\n"
        "    \"bufferedEventsPerSec\": %0.0f,\n"
        "    \"mmapEventsPerSec\": %0.0f,\n"
        "    \"bufferedSpeedup\": %0.3f,\n"
        "    \"mmapSpeedup\": %0.3f\n"
        "  },\n"
        "  \"train\": [\n"
        "    {\"jobs\": 1, \"wallSeconds\": %0.4f},\n"
        "    {\"jobs\": 2, \"wallSeconds\": %0.4f},\n"
        "    {\"jobs\": 4, \"wallSeconds\": %0.4f},\n"
        "    {\"jobs\": 8, \"wallSeconds\": %0.4f}\n"
        "  ],\n"
        "  \"trainSpeedupJobs8\": %0.3f,\n"
        "  \"trainSpeedupUnreliable\": %s,\n"
        "%s"
        "  \"modelsDeterministic\": %s\n"
        "}\n",
        hw, support::kSanitizeMode, kTraceCount,
        static_cast<unsigned long long>(total_events),
        static_cast<unsigned long long>(total_bytes), istream_eps,
        buffered_eps, mmap_eps, buffered_eps / istream_eps,
        mmap_eps / istream_eps, train_wall[0], train_wall[1],
        train_wall[2], train_wall[3], speedup,
        scaling_reliable ? "false" : "true",
        publish_json.c_str(), deterministic ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_replay_throughput.json\n");

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return (deterministic && publish_ok) ? 0 : 1;
}
