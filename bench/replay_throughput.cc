/**
 * @file
 * Proof bench for the parallel replay pipeline + fast trace decode.
 *
 * Two measurements over a self-recorded corpus of traces:
 *
 *  1. Decode throughput (events/sec) of the three decode paths: the
 *     per-byte istream baseline (trace_format's getVarint over an
 *     ifstream -- the pre-optimization hot path, kept as the
 *     comparison anchor), the buffered TraceReader over the same
 *     stream, and the mmap-backed FileSource.
 *  2. Trace-train wall-clock at --jobs 1/2/4/8: the full
 *     replay-and-summarize pipeline of `heapmd train --trace`, with
 *     a byte-compare of the resulting models proving the parallel
 *     merge is deterministic.
 *
 * Emits BENCH_replay_throughput.json into the working directory
 * (run it from the repo root) and prints the headline speedups.
 * Speedup targets apply to multi-core CI hardware; the JSON records
 * hardwareConcurrency so a 1-core container result is legible, and
 * the sanitizer mode so instrumented-build numbers are never trended
 * against plain ones.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/heapmd.hh"
#include "support/build_env.hh"
#include "support/thread_pool.hh"
#include "trace/trace_format.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_source.hh"
#include "trace/trace_writer.hh"

using namespace heapmd;

namespace
{

constexpr std::size_t kTraceCount = 16;
constexpr double kScale = 0.35;
constexpr std::uint64_t kFrq = 300;
constexpr int kDecodeReps = 3;

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration_cast<std::chrono::duration<double>>(d)
        .count();
}

/** Record one synthetic run to @p path; returns its event count. */
std::uint64_t
recordTrace(SyntheticApp &app, std::uint64_t seed,
            const std::string &path)
{
    ProcessConfig pcfg;
    pcfg.metricFrequency = kFrq;
    Process process(pcfg);
    std::ofstream out(path, std::ios::binary);
    TraceWriter writer(out, process.registry());
    process.addEventObserver(&writer);
    AppConfig cfg;
    cfg.inputSeed = seed;
    cfg.scale = kScale;
    app.run(process, cfg);
    writer.finish();
    return writer.eventCount();
}

/**
 * The pre-optimization decode loop: per-byte virtual istream calls
 * through trace_format's getVarint, one event at a time.  Kept here
 * (not in the library) purely as the bench baseline.
 */
std::uint64_t
decodeIstreamBaseline(const std::string &path)
{
    // varints per event, indexed by tag (Alloc..FnExit).
    static constexpr int kArgs[] = {2, 1, 3, 2, 1, 1, 1};
    std::ifstream in(path, std::ios::binary);
    trace::Header header;
    if (!trace::readHeader(in, header))
        return 0;
    std::uint64_t events = 0;
    for (;;) {
        const int tag = in.get();
        if (tag < 0 || tag == trace::kFooterMarker)
            break;
        if (tag > 6)
            break;
        std::uint64_t value;
        for (int i = 0; i < kArgs[tag]; ++i) {
            if (!trace::getVarint(in, value))
                return events;
        }
        ++events;
    }
    // Footer: name count, then per-name length + bytes.
    std::uint64_t count;
    if (!trace::getVarint(in, count))
        return events;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t len;
        if (!trace::getVarint(in, len))
            return events;
        in.ignore(static_cast<std::streamsize>(len));
    }
    return events;
}

std::uint64_t
decodeBuffered(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    TraceReader reader(in);
    Event event;
    while (reader.next(event)) {
    }
    return reader.eventCount();
}

std::uint64_t
decodeMmap(const std::string &path)
{
    trace::FileSource source(path);
    TraceReader reader(source);
    Event event;
    while (reader.next(event)) {
    }
    return reader.eventCount();
}

/** Best-of-reps wall time decoding the whole corpus via @p decode. */
template <typename Fn>
double
timeDecode(const std::vector<std::string> &paths, Fn decode,
           std::uint64_t expected_events)
{
    double best = 0.0;
    for (int rep = 0; rep < kDecodeReps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        std::uint64_t events = 0;
        for (const std::string &path : paths)
            events += decode(path);
        const double wall =
            seconds(std::chrono::steady_clock::now() - start);
        if (events != expected_events) {
            std::fprintf(stderr,
                         "decode mismatch: %llu events, expected "
                         "%llu\n",
                         static_cast<unsigned long long>(events),
                         static_cast<unsigned long long>(
                             expected_events));
            std::exit(1);
        }
        if (rep == 0 || wall < best)
            best = wall;
    }
    return best;
}

/**
 * One `train --trace` equivalent over the corpus at the given worker
 * count; returns the wall time and the serialized model bytes.
 */
double
trainFromTraces(const std::vector<std::string> &paths, unsigned jobs,
                std::string &model_bytes)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<MetricSeries> runs(paths.size());
    parallelForIndexed(paths.size(), jobs, [&](std::size_t i) {
        trace::FileSource source(paths[i]);
        TraceReader reader(source);
        ProcessConfig pcfg;
        pcfg.metricFrequency = kFrq;
        Process process(pcfg);
        replayTrace(reader, process);
        runs[i] = process.series();
        runs[i].label = "trace:" + paths[i];
    });
    MetricSummarizer summarizer{SummarizerConfig{}};
    for (MetricSeries &run : runs)
        summarizer.addRun(run);
    const HeapModel model = summarizer.buildModel("bench");
    const double wall =
        seconds(std::chrono::steady_clock::now() - start);
    std::ostringstream out;
    model.save(out);
    model_bytes = out.str();
    return wall;
}

} // namespace

int
main()
{
    const unsigned hw = effectiveJobs(0);
    std::printf("replay throughput bench: %zu traces, %u hardware "
                "thread(s)\n",
                kTraceCount, hw);

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "heapmd_replay_bench";
    std::filesystem::create_directories(dir);

    auto app = makeApp("vpr");
    std::vector<std::string> paths;
    std::uint64_t total_events = 0;
    std::uint64_t total_bytes = 0;
    for (std::size_t i = 0; i < kTraceCount; ++i) {
        std::string stem = "t";
        stem += std::to_string(i);
        stem += ".trace";
        const std::string path = (dir / stem).string();
        total_events += recordTrace(*app, 1 + i, path);
        total_bytes += std::filesystem::file_size(path);
        paths.push_back(path);
    }
    std::printf("recorded %llu events (%0.1f MiB)\n",
                static_cast<unsigned long long>(total_events),
                static_cast<double>(total_bytes) / (1024.0 * 1024.0));

    const double istream_wall = timeDecode(
        paths, decodeIstreamBaseline, total_events);
    const double buffered_wall =
        timeDecode(paths, decodeBuffered, total_events);
    const double mmap_wall =
        timeDecode(paths, decodeMmap, total_events);
    const double istream_eps = total_events / istream_wall;
    const double buffered_eps = total_events / buffered_wall;
    const double mmap_eps = total_events / mmap_wall;
    std::printf("decode: istream %0.2fM ev/s, buffered %0.2fM ev/s "
                "(%0.2fx), mmap %0.2fM ev/s (%0.2fx)\n",
                istream_eps / 1e6, buffered_eps / 1e6,
                buffered_eps / istream_eps, mmap_eps / 1e6,
                mmap_eps / istream_eps);

    const unsigned kJobs[] = {1, 2, 4, 8};
    double train_wall[4];
    std::string model_bytes[4];
    bool deterministic = true;
    for (int i = 0; i < 4; ++i) {
        train_wall[i] =
            trainFromTraces(paths, kJobs[i], model_bytes[i]);
        deterministic =
            deterministic && model_bytes[i] == model_bytes[0];
        std::printf("train --trace x%zu at jobs=%u: %0.3fs%s\n",
                    kTraceCount, kJobs[i], train_wall[i],
                    model_bytes[i] == model_bytes[0]
                        ? ""
                        : "  MODEL MISMATCH");
    }
    const double speedup = train_wall[0] / train_wall[3];
    std::printf("train speedup jobs=8 vs jobs=1: %0.2fx on %u "
                "hardware thread(s); models %s\n",
                speedup, hw,
                deterministic ? "bit-identical" : "DIVERGED");

    std::FILE *json = std::fopen("BENCH_replay_throughput.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot write "
                             "BENCH_replay_throughput.json\n");
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"replay_throughput\",\n"
        "  \"hardwareConcurrency\": %u,\n"
        "  \"sanitizer\": \"%s\",\n"
        "  \"traceCount\": %zu,\n"
        "  \"totalEvents\": %llu,\n"
        "  \"totalBytes\": %llu,\n"
        "  \"decode\": {\n"
        "    \"istreamEventsPerSec\": %0.0f,\n"
        "    \"bufferedEventsPerSec\": %0.0f,\n"
        "    \"mmapEventsPerSec\": %0.0f,\n"
        "    \"bufferedSpeedup\": %0.3f,\n"
        "    \"mmapSpeedup\": %0.3f\n"
        "  },\n"
        "  \"train\": [\n"
        "    {\"jobs\": 1, \"wallSeconds\": %0.4f},\n"
        "    {\"jobs\": 2, \"wallSeconds\": %0.4f},\n"
        "    {\"jobs\": 4, \"wallSeconds\": %0.4f},\n"
        "    {\"jobs\": 8, \"wallSeconds\": %0.4f}\n"
        "  ],\n"
        "  \"trainSpeedupJobs8\": %0.3f,\n"
        "  \"modelsDeterministic\": %s\n"
        "}\n",
        hw, support::kSanitizeMode, kTraceCount,
        static_cast<unsigned long long>(total_events),
        static_cast<unsigned long long>(total_bytes), istream_eps,
        buffered_eps, mmap_eps, buffered_eps / istream_eps,
        mmap_eps / istream_eps, train_wall[0], train_wall[1],
        train_wall[2], train_wall[3], speedup,
        deterministic ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_replay_throughput.json\n");

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return deterministic ? 0 : 1;
}
