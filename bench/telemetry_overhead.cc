/**
 * @file
 * Proves the telemetry layer's overhead budget: with no trace session
 * active, the instrumented kernel must run within 1% of the same
 * kernel with every macro compiled out.
 *
 * Two measurements are reported:
 *  - google-benchmark timings of both kernels (machine-readable via
 *    --benchmark_out=BENCH_telemetry.json --benchmark_out_format=json)
 *  - a min-of-reps paired comparison printing an explicit
 *    PASS/FAIL verdict; min-of-reps discards scheduler noise, which
 *    a mean would fold into the overhead estimate.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>
#ifdef __linux__
#include <ctime>
#endif

#include "telemetry_kernel.hh"

using namespace heapmd;

namespace
{

constexpr std::uint64_t kIters = 1u << 16;
constexpr double kBudgetPercent = 1.0;

// Verdict slices: short enough that frequency drift and scheduler
// interference hit both kernels alike, numerous enough that the
// per-side minimum finds an interference-free slice.
constexpr std::uint64_t kSliceIters = 1u << 13;
constexpr int kSlices = 300;

void
BM_KernelCompiledIn(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bench::telemetryKernelCompiledIn(kIters));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kIters));
}
BENCHMARK(BM_KernelCompiledIn);

void
BM_KernelCompiledOut(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bench::telemetryKernelCompiledOut(kIters));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kIters));
}
BENCHMARK(BM_KernelCompiledOut);

/**
 * Thread CPU time where available: unlike wall-clock it does not
 * charge the kernel for time spent scheduled out, which on a shared
 * CI machine dwarfs the sub-1% effect being measured.
 */
double
cpuNowNs()
{
#ifdef __linux__
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<double>(ts.tv_sec) * 1e9 +
               static_cast<double>(ts.tv_nsec);
    }
#endif
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double
timeOnceNs(std::uint64_t (*kernel)(std::uint64_t),
           std::uint64_t iters)
{
    const double start = cpuNowNs();
    benchmark::DoNotOptimize(kernel(iters));
    return cpuNowNs() - start;
}

double
medianOf(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

/** One interleaved measurement pass; returns the overhead percent. */
double
measureOverheadPercent(double &med_in_ns, double &med_out_ns)
{
    // Warm caches, the allocator, and the registry before timing.
    timeOnceNs(bench::telemetryKernelCompiledOut, kSliceIters);
    timeOnceNs(bench::telemetryKernelCompiledIn, kSliceIters);

    std::vector<double> in_ns, out_ns;
    in_ns.reserve(kSlices);
    out_ns.reserve(kSlices);
    for (int s = 0; s < kSlices; ++s) {
        // Alternate which kernel runs first inside each pair so that
        // allocator reuse, cache warmup, and frequency drift never
        // consistently favor one side.
        if (s % 2 == 0) {
            out_ns.push_back(timeOnceNs(
                bench::telemetryKernelCompiledOut, kSliceIters));
            in_ns.push_back(timeOnceNs(
                bench::telemetryKernelCompiledIn, kSliceIters));
        } else {
            in_ns.push_back(timeOnceNs(
                bench::telemetryKernelCompiledIn, kSliceIters));
            out_ns.push_back(timeOnceNs(
                bench::telemetryKernelCompiledOut, kSliceIters));
        }
    }
    // Per-side medians over many short interleaved slices: outlier
    // slices (scheduler preemption, cgroup throttling) land in the
    // tails and never move the estimate.
    med_in_ns = medianOf(std::move(in_ns));
    med_out_ns = medianOf(std::move(out_ns));
    return 100.0 * (med_in_ns - med_out_ns) / med_out_ns;
}

/** PASS/FAIL verdict; returns the process exit code. */
int
verdict()
{
    // A shared machine can still produce a contaminated pass (the
    // true effect here is a few ns per ~500 ns operation); re-measure
    // a couple of times before declaring the budget blown.
    constexpr int kAttempts = 3;
    int code = 1;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
        double med_in = 0.0, med_out = 0.0;
        const double overhead = measureOverheadPercent(med_in,
                                                       med_out);
        const double ns_per_op =
            (med_in - med_out) / static_cast<double>(kSliceIters);
        const bool pass = overhead < kBudgetPercent;
        std::printf("\ntelemetry overhead, attempt %d/%d (idle "
                    "spans, median over %d slices of %llu ops):\n"
                    "  compiled out: %.3f ms/slice\n"
                    "  compiled in:  %.3f ms/slice\n"
                    "  overhead:     %+.3f%% (%+.2f ns/op, budget "
                    "%.1f%%)\n"
                    "  %s\n",
                    attempt + 1, kAttempts, kSlices,
                    static_cast<unsigned long long>(kSliceIters),
                    med_out / 1e6, med_in / 1e6, overhead, ns_per_op,
                    kBudgetPercent, pass ? "PASS" : "FAIL");
        if (pass) {
            code = 0;
            break;
        }
    }
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return verdict();
}
