/**
 * @file
 * Cost of continuous monitoring: per-event incremental price of the
 * OnlineDetector on the replay path, and the CPU share plus decode
 * lag of a live `heapmd monitor` following a rotating writer.
 *
 * Three measurements, all in-process and deterministic in shape:
 *
 *  1. replay throughput of a rotating segment set through the
 *     monitor's Process configuration WITHOUT a detector (baseline);
 *  2. the same replay with the full hysteresis detector attached --
 *     the delta is the per-event cost `heapmd monitor` adds on top
 *     of plain trace decode;
 *  3. a live follow: a paced writer thread appends rotating segments
 *     (storm-shaped churn) in real time while a MonitorSession tails
 *     them; the monitor thread's CPU time over the wall duration is
 *     its CPU share, gated at < 5%, and the chain's tail lag is
 *     sampled at every idle cycle.
 *
 * Emits BENCH_monitor_overhead.json; exits non-zero when the live
 * CPU share blows the 5% budget.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <time.h>
#include <unistd.h>

#include "model/model.hh"
#include "monitor/monitor.hh"
#include "monitor/online_detector.hh"
#include "runtime/process.hh"
#include "support/build_env.hh"
#include "trace/segment_set.hh"
#include "trace/trace_writer.hh"

namespace heapmd
{

namespace
{

constexpr double kCpuBudgetPct = 5.0;
constexpr std::uint64_t kRotateBytes = 256 * 1024;
constexpr std::uint64_t kScanEvery = 2000; // events per scan marker

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

/** CPU seconds consumed by the calling thread. */
double
threadCpuNow()
{
    timespec ts{};
    ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Model covering every metric: 7 range checks per sample. */
HeapModel
allMetricsModel()
{
    HeapModel model;
    for (MetricId id : kAllMetrics) {
        HeapModel::Entry e;
        e.id = id;
        e.minValue = 0.0;
        e.maxValue = 100.0;
        model.addEntry(e);
    }
    return model;
}

/**
 * Storm-shaped churn generator: a bounded set of held slots, random
 * alloc/free/relink traffic, a scan marker (and the edge rewrites a
 * conservative scan would emit) every kScanEvery events.  The same
 * stream every run: the costs being compared must only differ by the
 * detector.
 */
class ChurnWriter
{
  public:
    explicit ChurnWriter(FunctionRegistry &registry)
        : registry_(registry)
    {
        registry_.intern("bench.scan");
    }

    /** Emit @p count events into @p writer. */
    void
    emit(TraceWriter &writer, std::uint64_t count)
    {
        for (std::uint64_t i = 0; i < count; ++i) {
            state_ = state_ * 6364136223846793005ull +
                     1442695040888963407ull;
            const std::size_t slot = (state_ >> 33) % kSlots;
            if (held_[slot] != 0 && (state_ & 1) != 0) {
                writer.onEvent(Event::free(held_[slot]), ++tick_);
                held_[slot] = 0;
            } else {
                const Addr addr = next_addr_;
                next_addr_ += 0x40;
                writer.onEvent(Event::alloc(addr, 32), ++tick_);
                if (held_[slot] != 0)
                    writer.onEvent(
                        Event::write(held_[slot], addr), ++tick_);
                held_[slot] = addr;
            }
            if (++since_scan_ >= kScanEvery) {
                since_scan_ = 0;
                writer.onEvent(Event::fnEnter(0), ++tick_);
                writer.onEvent(Event::fnExit(0), ++tick_);
            }
        }
    }

  private:
    static constexpr std::size_t kSlots = 64;
    FunctionRegistry &registry_;
    Addr held_[kSlots] = {};
    Addr next_addr_ = 0x100000;
    std::uint64_t state_ = 0x2545f4914f6cdd1dull;
    std::uint64_t tick_ = 0;
    std::uint64_t since_scan_ = 0;
};

/**
 * Write a complete rotating segment set (manifest closed) of roughly
 * @p total_events events under @p base.  @return segments written.
 */
std::uint64_t
writeSegmentSet(const std::string &base, std::uint64_t total_events)
{
    FunctionRegistry registry;
    ChurnWriter churn(registry);
    trace::SegmentManifest manifest;
    manifest.pid = static_cast<std::uint32_t>(::getpid());
    manifest.rotateBytes = kRotateBytes;

    std::uint64_t emitted = 0;
    while (emitted < total_events) {
        const std::string path =
            trace::segmentPath(base, manifest.segments);
        std::ofstream os(path, std::ios::binary);
        TraceWriterOptions opts;
        opts.captureProvenance = true;
        TraceWriter writer(os, registry, opts);
        // ~kRotateBytes per segment at a few bytes per event.
        while (emitted < total_events &&
               static_cast<std::uint64_t>(os.tellp()) <
                   kRotateBytes) {
            churn.emit(writer, 4096);
            emitted += 4096;
            writer.flush();
        }
        writer.finish();
        os.close();
        ++manifest.segments;
        trace::saveSegmentManifest(
            trace::segmentManifestPath(base), manifest);
    }
    manifest.closed = true;
    trace::saveSegmentManifest(trace::segmentManifestPath(base),
                               manifest);
    return manifest.segments;
}

void
removeSegmentSet(const std::string &base)
{
    std::error_code ec;
    for (std::uint64_t index : trace::listSegmentIndices(base))
        std::filesystem::remove(trace::segmentPath(base, index), ec);
    std::filesystem::remove(trace::segmentManifestPath(base), ec);
}

/**
 * Replay the set through the monitor's Process configuration.
 * @return wall seconds; @p events receives the decoded event count.
 */
double
replaySet(const std::string &base, const HeapModel *model,
          std::uint64_t &events)
{
    ProcessConfig cfg;
    cfg.metricFrequency = 1;
    cfg.tolerateAddressReuse = true;
    Process process(cfg);
    std::unique_ptr<monitor::OnlineDetector> detector;
    if (model != nullptr) {
        detector =
            std::make_unique<monitor::OnlineDetector>(*model);
        detector->attach(process);
    }

    const double start = wallNow();
    trace::SegmentChain chain(base, {});
    Event event;
    while (chain.next(event))
        process.onEvent(event);
    const double wall = wallNow() - start;
    events = chain.eventsDecoded();
    return wall;
}

} // namespace

} // namespace heapmd

int
main()
{
    using namespace heapmd;

    std::printf("======================================================"
                "==============\n");
    std::printf("HeapMD bench -- continuous-monitoring overhead\n");
    std::printf("per-event detector cost on replay; CPU share and tail "
                "lag of a live follow\n");
    std::printf("------------------------------------------------------"
                "--------------\n");

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("heapmd_monitor_bench_" + std::to_string(::getpid())))
            .string();
    std::filesystem::create_directories(dir);
    const std::string base = dir + "/bench.trace";

    // ---- 1+2: per-event incremental cost of the detector. --------
    constexpr std::uint64_t kReplayEvents = 2'000'000;
    const std::uint64_t segments =
        writeSegmentSet(base, kReplayEvents);
    const HeapModel model = allMetricsModel();

    std::uint64_t events_base = 0, events_mon = 0;
    // Warm the page cache so run order cannot bias the delta.
    replaySet(base, nullptr, events_base);
    const double wall_base = replaySet(base, nullptr, events_base);
    const double wall_mon = replaySet(base, &model, events_mon);
    const double base_ns = wall_base / events_base * 1e9;
    const double mon_ns = wall_mon / events_mon * 1e9;
    const double delta_ns = mon_ns - base_ns;
    std::printf(
        "replay %llu events over %llu segments: %0.1f ns/event bare, "
        "%0.1f ns/event monitored (+%0.2f ns, %+0.1f%%)\n",
        static_cast<unsigned long long>(events_base),
        static_cast<unsigned long long>(segments), base_ns, mon_ns,
        delta_ns, delta_ns / base_ns * 100.0);
    removeSegmentSet(base);

    // ---- 3: live follow -- CPU share and tail lag. ---------------
    // A paced writer appends the same churn in real time (~2s) at
    // ~70k events/s -- a heavy but realistic rate for a scan-marked
    // allocator trace -- while the monitor tails it.  (Each churn
    // step emits ~1.3 events: allocs often carry a relink write.)
    // The per-event replay cost above tells where the budget
    // saturates: at mon_ns per event, 5% of one core buys
    // 0.05s / mon_ns events per second (~130k/s at the measured
    // ~390 ns); the JSON reports that saturation rate so a
    // regression is visible even while the paced gate still passes.
    constexpr std::uint64_t kLiveBatch = 1'536;
    constexpr int kLiveBatches = 64;
    constexpr std::uint64_t kBatchIntervalUs = 30'000;

    std::atomic<bool> writer_done{false};
    std::thread writer_thread([&] {
        FunctionRegistry registry;
        ChurnWriter churn(registry);
        trace::SegmentManifest manifest;
        manifest.pid = static_cast<std::uint32_t>(::getpid());
        manifest.rotateBytes = kRotateBytes;
        std::uint64_t batch = 0;
        while (batch < kLiveBatches) {
            const std::string path =
                trace::segmentPath(base, manifest.segments);
            std::ofstream os(path, std::ios::binary);
            TraceWriterOptions opts;
            opts.captureProvenance = true;
            TraceWriter writer(os, registry, opts);
            while (batch < kLiveBatches &&
                   static_cast<std::uint64_t>(os.tellp()) <
                       kRotateBytes) {
                churn.emit(writer, kLiveBatch);
                writer.flush();
                os.flush();
                ++batch;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(kBatchIntervalUs));
            }
            writer.finish();
            os.close();
            ++manifest.segments;
            trace::saveSegmentManifest(
                trace::segmentManifestPath(base), manifest);
        }
        manifest.closed = true;
        trace::saveSegmentManifest(
            trace::segmentManifestPath(base), manifest);
        writer_done = true;
    });

    std::uint64_t max_lag = 0;
    double cpu_used = 0.0, wall_used = 0.0;
    monitor::MonitorStats live_stats;
    std::thread monitor_thread([&] {
        monitor::MonitorOptions options;
        options.segmentsBase = base;
        options.follow = true;
        options.pollMs = 10;
        monitor::MonitorSession *session_ptr = nullptr;
        options.onIdle = [&session_ptr, &max_lag] {
            if (session_ptr != nullptr &&
                session_ptr->stats().tailLagBytes > max_lag)
                max_lag = session_ptr->stats().tailLagBytes;
        };
        monitor::MonitorSession session(model, options);
        session_ptr = &session;
        const double wall0 = wallNow();
        const double cpu0 = threadCpuNow();
        std::string error;
        if (!session.run(error))
            std::fprintf(stderr, "monitor failed: %s\n",
                         error.c_str());
        cpu_used = threadCpuNow() - cpu0;
        wall_used = wallNow() - wall0;
        live_stats = session.stats();
    });
    writer_thread.join();
    monitor_thread.join();

    const double cpu_pct = cpu_used / wall_used * 100.0;
    const bool cpu_ok = cpu_pct < kCpuBudgetPct;
    const double live_rate =
        wall_used > 0.0 ? live_stats.events / wall_used : 0.0;
    const double saturation_rate =
        mon_ns > 0.0 ? kCpuBudgetPct / 100.0 * 1e9 / mon_ns : 0.0;
    std::printf(
        "live follow: %llu events / %llu samples over %llu segments "
        "in %0.2fs wall (%0.0f events/s); monitor CPU %0.3fs "
        "(%0.2f%% of wall) [budget %0.1f%%] %s\n",
        static_cast<unsigned long long>(live_stats.events),
        static_cast<unsigned long long>(live_stats.samples),
        static_cast<unsigned long long>(live_stats.segmentsConsumed),
        wall_used, live_rate, cpu_used, cpu_pct, kCpuBudgetPct,
        cpu_ok ? "PASS" : "FAIL");
    std::printf(
        "budget saturates at ~%0.0f events/s (%0.1f ns/event "
        "decode+fold+detect against a %0.1f%% share of one core)\n",
        saturation_rate, mon_ns, kCpuBudgetPct);
    std::printf("tail lag: max %llu bytes observed, %llu at end\n",
                static_cast<unsigned long long>(max_lag),
                static_cast<unsigned long long>(
                    live_stats.tailLagBytes));
    removeSegmentSet(base);

    std::FILE *json = std::fopen("BENCH_monitor_overhead.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr,
                     "cannot write BENCH_monitor_overhead.json\n");
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"monitor_overhead\",\n"
        "  \"sanitizer\": \"%s\",\n"
        "  \"replayEvents\": %llu,\n"
        "  \"perEventBareNs\": %0.2f,\n"
        "  \"perEventMonitoredNs\": %0.2f,\n"
        "  \"detectorDeltaNs\": %0.2f,\n"
        "  \"live\": {\n"
        "    \"events\": %llu,\n"
        "    \"samples\": %llu,\n"
        "    \"segments\": %llu,\n"
        "    \"wallSeconds\": %0.3f,\n"
        "    \"eventsPerSec\": %0.0f,\n"
        "    \"monitorCpuSeconds\": %0.4f,\n"
        "    \"monitorCpuPct\": %0.3f,\n"
        "    \"cpuBudgetPct\": %0.1f,\n"
        "    \"saturationEventsPerSec\": %0.0f,\n"
        "    \"maxTailLagBytes\": %llu,\n"
        "    \"endTailLagBytes\": %llu,\n"
        "    \"pass\": %s\n"
        "  }\n"
        "}\n",
        support::kSanitizeMode,
        static_cast<unsigned long long>(events_base), base_ns,
        mon_ns, delta_ns,
        static_cast<unsigned long long>(live_stats.events),
        static_cast<unsigned long long>(live_stats.samples),
        static_cast<unsigned long long>(live_stats.segmentsConsumed),
        wall_used, live_rate, cpu_used, cpu_pct, kCpuBudgetPct,
        saturation_rate,
        static_cast<unsigned long long>(max_lag),
        static_cast<unsigned long long>(live_stats.tailLagBytes),
        cpu_ok ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_monitor_overhead.json\n");

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return cpu_ok ? 0 : 1;
}
