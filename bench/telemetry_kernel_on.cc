// Telemetry macros compiled IN (but idle: no session, counters only).
#define HEAPMD_TELEMETRY_ENABLED 1

#include <algorithm>

#include "heapgraph/heap_graph.hh"
#include "telemetry/telemetry.hh"
#include "telemetry_kernel.hh"

namespace heapmd
{
namespace bench
{

#define HEAPMD_KERNEL_FN telemetryKernelCompiledIn
#include "telemetry_kernel_body.inc"
#undef HEAPMD_KERNEL_FN

} // namespace bench
} // namespace heapmd
