/**
 * @file
 * Regenerates Figure 6: average and standard deviation of the
 * percentage change of In=Out and Outdeg=1 for vpr on both inputs.
 * The paper's values: In=Out avg 2.47%/-0.18% with stddev 24.80/5.27
 * (unstable); Outdeg=1 avg -0.10%/-0.02% with stddev 1.72/1.79
 * (globally stable).
 */

#include "bench_common.hh"

using namespace heapmd;

int
main()
{
    bench::banner("Figure 6",
                  "vpr: avg / stddev of metric change on two inputs, "
                  "with the stability verdicts");

    const HeapMD tool(bench::standardConfig());
    auto vpr = makeApp("vpr");
    const auto [seed1, seed2] = bench::pickVprInputs(tool, *vpr);

    const StabilityThresholds thr;
    TextTable table({"Metric", "Input", "Average", "Std. Dev.",
                     "Verdict"});

    for (MetricId id : {MetricId::InEqOut, MetricId::Outdeg1}) {
        int which = 1;
        for (std::uint64_t seed : {seed1, seed2}) {
            AppConfig cfg;
            cfg.inputSeed = seed;
            cfg.scale = bench::kScale;
            const RunOutcome run = tool.observe(*vpr, cfg);
            const FluctuationSummary fs =
                analyzeMetric(run.series, id, thr);
            table.addRow({metricName(id),
                          "Input" + std::to_string(which),
                          bench::pct(fs.avgChange, 2) + "%",
                          bench::pct(fs.stdDev, 2),
                          stabilityName(classify(fs, thr))});
            ++which;
        }
    }
    table.print(std::cout);
    std::printf("\nPaper shape: Outdeg=1 is globally stable "
                "(|avg| <= 1%%, stddev <= 5) on both inputs;\n"
                "In=Out fails the thresholds on at least one input "
                "and is not globally stable.\n");
    return 0;
}
