/**
 * @file
 * Regenerates the Section 2 overhead claim: "our current prototype
 * results in a 2-3X slowdown", by running the same workload with the
 * execution logger's heap-graph maintenance enabled and disabled,
 * plus microbenchmarks of the hot heap-graph operations and (on
 * UNIX) of the live stats-segment publish paths the capture shim
 * pays for observability.  The end-to-end <1% publication gate
 * lives in replay_throughput.cc; these numbers explain it.
 */

#include <benchmark/benchmark.h>

#include "apps/workload_engine.hh"
#include "core/heapmd.hh"
#include "metrics/metric_engine.hh"

#ifdef __unix__
#include <unistd.h>

#include "obsv/segment.hh"
#endif

using namespace heapmd;

namespace
{

apps::MixParams
standardMix()
{
    apps::MixParams p;
    p.dllCount = 4;
    p.dllTarget = 120;
    p.dllPayload = 32;
    p.hashCount = 1;
    p.hashBuckets = 256;
    p.hashTarget = 300;
    p.hashPayload = 32;
    p.bstCount = 2;
    p.bstTarget = 120;
    p.bufferCount = 200;
    p.bufferSize = 128;
    p.steadyOps = 6000;
    p.wDll = 0.30;
    p.wHash = 0.25;
    p.wBst = 0.20;
    p.wBuffer = 0.20;
    p.wTraverse = 0.05;
    return p;
}

void
runWorkload(bool instrumented)
{
    ProcessConfig cfg;
    cfg.metricFrequency = 400;
    cfg.instrumentationEnabled = instrumented;
    Process process(cfg);
    HeapApi heap(process);
    FaultPlan faults;
    istl::Context ctx(heap, faults, 99);
    AppResult result;
    apps::WorkloadEngine engine(ctx, standardMix(), result);
    engine.runAll();
}

void
BM_WorkloadInstrumented(benchmark::State &state)
{
    for (auto _ : state)
        runWorkload(true);
}
BENCHMARK(BM_WorkloadInstrumented)->Unit(benchmark::kMillisecond);

void
BM_WorkloadUninstrumented(benchmark::State &state)
{
    // Baseline: same program-side work (simulated heap, shadow
    // memory, events emitted) but the execution logger discards
    // events instead of maintaining the heap-graph image.  The ratio
    // instrumented/uninstrumented is the logger's slowdown, the
    // analogue of the paper's 2-3x claim.
    for (auto _ : state)
        runWorkload(false);
}
BENCHMARK(BM_WorkloadUninstrumented)->Unit(benchmark::kMillisecond);

void
BM_GraphPointerWrite(benchmark::State &state)
{
    HeapGraph graph;
    const int n = 1024;
    for (int i = 0; i < n; ++i)
        graph.allocate(0x10000 + 0x40 * i, 64);
    Rng rng(4);
    for (auto _ : state) {
        const Addr src = 0x10000 + 0x40 * rng.below(n);
        const Addr dst = 0x10000 + 0x40 * rng.below(n);
        graph.write(src + 8, dst);
    }
}
BENCHMARK(BM_GraphPointerWrite);

void
BM_GraphAllocFree(benchmark::State &state)
{
    HeapGraph graph;
    for (auto _ : state) {
        graph.allocate(0x10000, 64);
        graph.free(0x10000);
    }
}
BENCHMARK(BM_GraphAllocFree);

void
BM_MetricSample(benchmark::State &state)
{
    // O(1) sampling from the incrementally maintained census.
    HeapGraph graph;
    for (int i = 0; i < 4096; ++i)
        graph.allocate(0x10000 + 0x40 * i, 64);
    Rng rng(5);
    for (int i = 0; i < 8192; ++i) {
        const Addr src = 0x10000 + 0x40 * rng.below(4096);
        const Addr dst = 0x10000 + 0x40 * rng.below(4096);
        graph.write(src + 8 * rng.below(8), dst);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(MetricEngine::sample(graph, 0, 0));
    }
}
BENCHMARK(BM_MetricSample);

void
BM_ExtendedSample(benchmark::State &state)
{
    // O(V+E) component metrics: the reason they sample at a lower
    // rate than the degree metrics.
    HeapGraph graph;
    for (int i = 0; i < 4096; ++i)
        graph.allocate(0x10000 + 0x40 * i, 64);
    Rng rng(6);
    for (int i = 0; i < 8192; ++i) {
        const Addr src = 0x10000 + 0x40 * rng.below(4096);
        const Addr dst = 0x10000 + 0x40 * rng.below(4096);
        graph.write(src + 8 * rng.below(8), dst);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            MetricEngine::sampleExtended(graph, 0, 0));
    }
}
BENCHMARK(BM_ExtendedSample);

#ifdef __unix__

/**
 * Fixture owning one live stats segment under an unused pid slot,
 * so the publish benches measure steady-state seqlock writes, not
 * shm setup.
 */
class SegmentBench : public benchmark::Fixture
{
  public:
    void
    SetUp(benchmark::State &state) override
    {
        pid_ = 3900000000u +
               static_cast<std::uint32_t>(::getpid() % 1000000);
        if (!writer_.create(pid_, "perf_overhead"))
            state.SkipWithError("shm unavailable");
    }

    void
    TearDown(benchmark::State &) override
    {
        writer_.unlinkAndClose();
    }

  protected:
    obsv::SegmentWriter writer_;
    std::uint32_t pid_ = 0;
};

BENCHMARK_F(SegmentBench, PublishPrefix)(benchmark::State &state)
{
    // The shim's per-op gauge publish (throttled to 1/32 ops there).
    std::uint64_t values[8] = {};
    for (auto _ : state) {
        ++values[0];
        writer_.publishPrefix(values, 8);
    }
}

BENCHMARK_F(SegmentBench, PublishFull)(benchmark::State &state)
{
    // The scan-time publish: every slot including metric percents.
    std::array<std::uint64_t, obsv::kSlotCount> values{};
    for (auto _ : state) {
        ++values[0];
        writer_.publish(values);
    }
}

BENCHMARK_F(SegmentBench, Heartbeat)(benchmark::State &state)
{
    // Lower bound of any publish: one clock read + seqlock write.
    for (auto _ : state)
        writer_.heartbeat();
}

BENCHMARK_F(SegmentBench, ReaderSnapshot)(benchmark::State &state)
{
    // What one `heapmd top` / Prometheus scrape pays per segment.
    obsv::SegmentReader reader;
    std::string error;
    if (!reader.attachPid(pid_, &error)) {
        state.SkipWithError("attach failed");
        return;
    }
    obsv::SegmentSnapshot snapshot;
    for (auto _ : state) {
        if (!reader.read(snapshot, &error)) {
            state.SkipWithError("torn read");
            break;
        }
        benchmark::DoNotOptimize(snapshot);
    }
}

#endif // __unix__

} // namespace

BENCHMARK_MAIN();
