/**
 * @file
 * Regenerates the Figure 3 discussion: the heap-graph can be built at
 * field granularity or object granularity.  For a k-node linked list,
 * field-granularity metrics depend on the struct layout (layout A vs
 * layout B give opposite In=Out pictures), while object-granularity
 * metrics are layout-independent -- the reason HeapMD uses object
 * granularity.
 */

#include "bench_common.hh"

#include "heapgraph/heap_graph.hh"
#include "metrics/metric_engine.hh"

using namespace heapmd;

namespace
{

constexpr int kNodes = 64;

/** Object granularity: one vertex per node, one edge per next. */
double
objectGranularityInEqOut()
{
    HeapGraph graph;
    Addr prev = 0;
    for (int i = 0; i < kNodes; ++i) {
        const Addr node = 0x10000 + 0x40 * i;
        graph.allocate(node, 16); // data word + next word
        if (prev != 0)
            graph.write(prev + 8, node); // next field at offset 8
        prev = node;
    }
    return MetricEngine::sample(graph, 0, 0)
        .value(MetricId::InEqOut);
}

/**
 * Field granularity: each field is its own vertex.  @p data_first
 * selects Figure 3 layout (A) {data, next} vs layout (B) {next,
 * data}.  The next field of node i points at the *first field* of
 * node i+1 (the address the pointer actually holds).
 */
double
fieldGranularityInEqOut(bool data_first)
{
    HeapGraph graph;
    std::vector<Addr> first_field(kNodes), next_field(kNodes);
    for (int i = 0; i < kNodes; ++i) {
        const Addr base = 0x10000 + 0x40 * i;
        const Addr data = data_first ? base : base + 8;
        const Addr next = data_first ? base + 8 : base;
        graph.allocate(data, 8);
        graph.allocate(next, 8);
        first_field[i] = data_first ? data : next;
        next_field[i] = next;
    }
    for (int i = 0; i + 1 < kNodes; ++i)
        graph.write(next_field[i], first_field[i + 1]);
    return MetricEngine::sample(graph, 0, 0)
        .value(MetricId::InEqOut);
}

} // namespace

int
main()
{
    bench::banner("Figure 3 ablation",
                  "Field- vs object-granularity sensitivity of "
                  "In=Out on a 64-node linked list");

    TextTable table({"Granularity", "Layout", "In=Out %"});
    table.addRow({"object", "A {data, next}",
                  fmtDouble(objectGranularityInEqOut(), 1)});
    table.addRow({"object", "B {next, data}",
                  fmtDouble(objectGranularityInEqOut(), 1)});
    table.addRow({"field", "A {data, next}",
                  fmtDouble(fieldGranularityInEqOut(true), 1)});
    table.addRow({"field", "B {next, data}",
                  fmtDouble(fieldGranularityInEqOut(false), 1)});
    table.print(std::cout);

    std::printf(
        "\nPaper shape: at object granularity both layouts give the "
        "same metrics; at\nfield granularity layout A has only two "
        "In=Out vertices (~%.0f%%) while layout B\nhas all but two "
        "(~%.0f%%) -- metrics become layout-sensitive, which is why "
        "the\nimplementation works at object granularity.\n",
        100.0 * 2 / (2 * kNodes),
        100.0 * (2.0 * kNodes - 2) / (2 * kNodes));
    return 0;
}
