/**
 * @file
 * Regenerates the Section 3 threshold-sensitivity claim: "Increasing
 * these thresholds moderately does not result in additional metrics
 * being classified as globally-stable.  On the other hand, decreasing
 * these thresholds results in fewer metrics being classified as
 * globally-stable."
 *
 * Sweep: the avg-change and stddev thresholds are scaled together by
 * a factor; the number of stable metrics per program is reported.
 */

#include "bench_common.hh"

using namespace heapmd;

int
main()
{
    bench::banner("Threshold ablation (Section 3)",
                  "Stable-metric count vs stability-threshold scale "
                  "(paper values: +/-1% avg, stddev 5)");

    const std::vector<double> factors = {0.25, 0.5, 0.75, 1.0,
                                         1.5,  2.0, 3.0};
    std::vector<std::string> header = {"Benchmark"};
    for (double f : factors)
        header.push_back("x" + fmtDouble(f, 2));
    TextTable table(header);

    // Pre-collect each program's training series once, then rescore
    // with each threshold setting (the sweep is pure analysis).
    for (const std::string &name : commercialAppNames()) {
        auto app = makeApp(name);
        const HeapMD tool(bench::standardConfig());
        std::vector<MetricSeries> runs;
        for (const AppConfig &cfg :
             makeInputs(1, 12, 1, bench::kScale)) {
            runs.push_back(tool.observe(*app, cfg).series);
        }

        std::vector<std::string> row = {name};
        for (double f : factors) {
            SummarizerConfig cfg;
            cfg.thresholds.maxAbsAvgChange = 1.0 * f;
            cfg.thresholds.maxStdDev = 5.0 * f;
            MetricSummarizer summarizer(cfg);
            for (const MetricSeries &series : runs)
                summarizer.addRun(series);
            row.push_back(std::to_string(
                summarizer.buildModel(name).stableMetricCount()));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::printf("\nPaper shape: counts plateau at and above the "
                "paper's thresholds (x1.0) --\nraising them adds few "
                "or no metrics; lowering them sheds metrics.\n");
    return 0;
}
