/**
 * @file
 * Regenerates Figure 7(B): for each commercial application, five
 * successive development versions are run on the *same* ten
 * regression inputs.  The paper's finding: the same metrics are
 * identified as stable across versions, with (almost) identical
 * calibrated ranges.
 */

#include "bench_common.hh"

using namespace heapmd;

int
main()
{
    bench::banner("Figure 7(B)",
                  "Stable metrics across 5 development versions x 10 "
                  "shared regression inputs");

    const HeapMD tool(bench::standardConfig());
    TextTable table({"Benchmark", "# Inputs", "# Versions",
                     "# Stable (v1)", "Example stable metric",
                     "Stable in all versions?", "Min % (v1..v5)",
                     "Max % (v1..v5)"});

    for (const std::string &name : commercialAppNames()) {
        auto app = makeApp(name);

        // Train each version against the same ten input seeds.
        std::vector<HeapModel> models;
        for (std::uint32_t version = 1; version <= 5; ++version) {
            const TrainingOutcome training = tool.train(
                *app, makeInputs(1, 10, version, bench::kScale));
            models.push_back(training.model);
        }

        const HeapModel::Entry *example =
            bench::paperExampleMetric(name, models[0]);
        if (example == nullptr) {
            table.addRow({name, "10", "5", "0", "-", "-", "-", "-"});
            continue;
        }

        bool in_all = true;
        double min_lo = example->minValue, max_lo = example->minValue;
        double min_hi = example->maxValue, max_hi = example->maxValue;
        for (const HeapModel &model : models) {
            const auto entry = model.entry(example->id);
            if (!entry) {
                in_all = false;
                continue;
            }
            min_lo = std::min(min_lo, entry->minValue);
            max_lo = std::max(max_lo, entry->minValue);
            min_hi = std::min(min_hi, entry->maxValue);
            max_hi = std::max(max_hi, entry->maxValue);
        }

        table.addRow(
            {name, "10", "5",
             std::to_string(models[0].stableMetricCount()),
             metricName(example->id), in_all ? "yes" : "NO",
             bench::pct(min_lo, 1) + " .. " + bench::pct(max_lo, 1),
             bench::pct(min_hi, 1) + " .. " + bench::pct(max_hi, 1)});
    }
    table.print(std::cout);
    std::printf("\nPaper shape: the *same* example metric is stable "
                "in every version, and the\ncalibrated min/max "
                "values barely move between versions (one exception "
                "in the paper:\nthe max for PC Game/action drifted "
                "from 18.5 to 19.7).\n");
    return 0;
}
