/**
 * @file
 * Regenerates Figure 10: the percentage of vertices with
 * indegree = 1 violating its calibrated range on PC Game (action),
 * caused by a data-structure invariant bug (spliced tree nodes
 * missing the parent back-pointer from their child -- Figure 8/3(B)).
 *
 * Output: the calibrated min/max, a CSV series of the buggy run, the
 * violation report with its logged call stacks, and the root-cause
 * hint.
 */

#include "bench_common.hh"

#include "support/csv.hh"

using namespace heapmd;

int
main()
{
    bench::banner("Figure 10",
                  "%indegree=1 violating its calibrated range on PC "
                  "Game (action)");

    const HeapMD tool(bench::standardConfig());
    auto app = makeApp("PC Game (action)");
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 25, 1, bench::kScale));

    const auto entry = training.model.entry(MetricId::Indeg1);
    if (!entry) {
        std::printf("Indeg=1 was not stable in training; model has "
                    "%zu stable metrics.\n",
                    training.model.stableMetricCount());
        return 1;
    }
    std::printf("Calibrated range for Indeg=1 over 25 training "
                "inputs: [%s, %s]\n",
                bench::pct(entry->minValue, 2).c_str(),
                bench::pct(entry->maxValue, 2).c_str());

    // The buggy input: a call site that splices tree nodes without
    // fixing the child's parent pointer, exercised heavily.
    bool shown = false;
    for (std::uint64_t seed = 200; seed < 206 && !shown; ++seed) {
        AppConfig buggy;
        buggy.inputSeed = seed;
        buggy.scale = bench::kScale;
        buggy.faults.enable(FaultKind::TreeMissingParent, 1.0);
        const CheckOutcome out =
            tool.check(*app, buggy, training.model);

        const BugReport *indeg1_report = nullptr;
        for (const BugReport &r : out.check.reports) {
            if (r.metric == MetricId::Indeg1 &&
                r.direction == AnomalyDirection::AboveMax) {
                indeg1_report = &r;
                break;
            }
        }
        if (indeg1_report == nullptr)
            continue;
        shown = true;

        std::printf("\nBuggy input (seed %llu): VIOLATION at metric "
                    "point %llu, observed %.2f%%\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(
                        indeg1_report->pointIndex),
                    indeg1_report->observedValue);

        std::printf("\n# CSV series: buggy run (point, indeg1, "
                    "calib_min, calib_max)\n");
        CsvWriter csv(std::cout);
        csv.writeRow({"point", "indeg1", "calib_min", "calib_max"});
        for (const MetricSample &s : out.run.series.samples()) {
            csv.writeNumericRow({static_cast<double>(s.pointIndex),
                                 s.value(MetricId::Indeg1),
                                 entry->minValue, entry->maxValue},
                                3);
        }

        // Call-stack logging around the crossing: paper Section 2.2.
        if (!indeg1_report->contextLog.empty()) {
            const FunctionRegistry registry = out.run.registry();
            std::printf("\nCall-stack log around the crossing "
                        "(%zu snapshots; first/middle/last shown):\n",
                        indeg1_report->contextLog.size());
            const auto &log = indeg1_report->contextLog;
            for (std::size_t i :
                 {std::size_t{0}, log.size() / 2, log.size() - 1}) {
                std::printf("  tick %llu (value %.2f): %s\n",
                            static_cast<unsigned long long>(
                                log[i].tick),
                            log[i].metricValue,
                            formatStack(log[i].frames, registry)
                                .c_str());
            }
            const FnId suspect = indeg1_report->suspectFunction();
            if (suspect != kNoFunction) {
                std::printf("  root-cause hint (most frequent "
                            "innermost frame): %s\n",
                            registry.name(suspect).c_str());
            }
        }
        std::printf("\nPaper shape: the series starts inside the "
                    "calibrated band, climbs as corrupted\nnodes "
                    "accumulate, and crosses the calibrated maximum "
                    "-- a data-structure\ninvariant bug of the "
                    "Figure 8/3(B) kind.\n");
    }
    if (!shown) {
        std::printf("\nNo Indeg=1 violation found on the probed "
                    "seeds.\n");
        return 1;
    }
    return 0;
}
