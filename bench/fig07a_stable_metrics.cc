/**
 * @file
 * Regenerates Figure 7(A): for each of the 13 benchmarks (8 SPEC
 * analogues + 5 commercial analogues), the number of inputs, the
 * number of globally stable metrics, and one example stable metric
 * with its average rate of change, stddev of change, and calibrated
 * min/max.
 *
 * Input counts match the paper's (3-6 for most SPEC benchmarks, 100
 * for gzip/parser/gcc, 50 for the commercial applications).
 */

#include "bench_common.hh"

using namespace heapmd;

int
main()
{
    bench::banner("Figure 7(A)",
                  "Identifying globally stable metrics across 13 "
                  "benchmarks");

    const HeapMD tool(bench::standardConfig());
    TextTable table({"Benchmark", "# Inputs", "# Stable metrics",
                     "Example stable metric", "Avg. % rate of change",
                     "Std. Dev.", "Min % of vertexes",
                     "Max % of vertexes"});

    for (const std::string &name : allAppNames()) {
        auto app = makeApp(name);
        const std::size_t inputs = paperInputCount(name);
        const TrainingOutcome training = tool.train(
            *app, makeInputs(1, inputs, 1, bench::kScale));

        const HeapModel::Entry *example =
            bench::paperExampleMetric(name, training.model);
        if (example == nullptr) {
            table.addRow({name, std::to_string(inputs), "0", "-", "-",
                          "-", "-", "-"});
            continue;
        }
        table.addRow({name, std::to_string(inputs),
                      std::to_string(
                          training.model.stableMetricCount()),
                      metricName(example->id),
                      bench::pct(example->avgChange, 1),
                      bench::pct(example->stdDev, 1),
                      bench::pct(example->minValue, 1),
                      bench::pct(example->maxValue, 1)});
    }
    table.print(std::cout);
    std::printf("\nPaper shape: every benchmark has at least one "
                "globally stable metric;\nmost have 1-6; average "
                "rates of change sit within +/-1%% with stddev <= 5;"
                "\ncalibrated ranges are narrow for most programs and "
                "wide for vpr/gcc.\n");
    return 0;
}
