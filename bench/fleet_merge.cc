/**
 * @file
 * Throughput of `heapmd fleet-merge`: how fast a population model is
 * folded out of N run manifests, and whether the parallel load path
 * actually buys wall time while staying byte-deterministic.
 *
 * Synthesizes a fleet of manifests on disk (realistically sized:
 * full metric summaries, counter tables, a few drifting members),
 * then measures the end-to-end merge -- discovery, parallel load,
 * outlier attribution, model rendering -- at --jobs 1 and at the
 * hardware thread count, asserting the two renderings are
 * byte-identical.  Emits BENCH_fleet_merge.json with manifests/sec
 * for both configurations.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/report.hh"
#include "diag/run_manifest.hh"
#include "fleet/fleet_merge.hh"
#include "fleet/fleet_model.hh"
#include "metrics/metric.hh"
#include "support/build_env.hh"

namespace heapmd
{

namespace
{

constexpr std::size_t kFleetSize = 96; //!< >= 64 per the bench spec
constexpr std::size_t kDriftingMembers = 3;
constexpr int kRepetitions = 5;

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

/** One synthetic member, shaped like a real check-run manifest. */
diag::RunManifest
syntheticManifest(std::size_t index, bool drifting)
{
    diag::RunManifest m;
    m.command = "check";
    m.commandLine =
        "heapmd check --app server --model server.model --seed " +
        std::to_string(index);
    m.program = "server seed " + std::to_string(index) + " v1";
    m.metricFrequency = 300;
    m.seed = index;
    m.events = 900000 + 1000 * index;
    m.samples = 3000 + index;
    m.allocs = 400000;
    m.frees = 399000;
    const double drift = drifting ? 18.0 : 0.0;
    for (MetricId id : kAllMetrics) {
        diag::ManifestMetric metric;
        metric.metric = metricName(id);
        metric.summary.count = m.samples;
        metric.summary.mean =
            35.0 + 2.0 * static_cast<double>(metricIndex(id)) +
            0.001 * static_cast<double>(index) + drift;
        metric.summary.min = metric.summary.mean - 3.0;
        metric.summary.max = metric.summary.mean + 3.0;
        metric.summary.stddev = 0.8;
        m.metrics.push_back(std::move(metric));
    }
    for (int c = 0; c < 24; ++c) {
        m.counters.push_back({"bench.counter_" + std::to_string(c),
                              static_cast<std::uint64_t>(
                                  1000 * c + index)});
    }
    return m;
}

/** Timed merge over @p inputs; returns manifests/sec (best of N). */
double
timedMerge(const fleet::FleetInputs &inputs, unsigned jobs,
           std::string &rendering)
{
    double best = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        fleet::FleetMergeOptions options;
        options.jobs = jobs;
        fleet::FleetModel model;
        analysis::Report report;
        std::string error;
        const double t0 = wallNow();
        if (!fleet::mergeFleet(inputs, options, model, report,
                               error)) {
            std::fprintf(stderr, "merge failed: %s\n",
                         error.c_str());
            std::exit(1);
        }
        const double seconds = wallNow() - t0;
        rendering = fleet::fleetToJson(model);
        const double rate =
            static_cast<double>(inputs.manifests.size()) /
            (seconds > 0.0 ? seconds : 1e-9);
        if (rate > best)
            best = rate;
    }
    return best;
}

} // namespace

} // namespace heapmd

int
main()
{
    using namespace heapmd;
    namespace fs = std::filesystem;

    const fs::path dir =
        fs::temp_directory_path() /
        ("heapmd_bench_fleet_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);

    std::uint64_t corpus_bytes = 0;
    for (std::size_t i = 0; i < kFleetSize; ++i) {
        const bool drifting = i % (kFleetSize / kDriftingMembers) ==
                              kFleetSize / kDriftingMembers - 1;
        char name[32];
        std::snprintf(name, sizeof name, "m%04zu.json", i);
        const fs::path path = dir / name;
        std::ofstream out(path, std::ios::binary);
        diag::saveRunManifest(syntheticManifest(i, drifting), out);
        out.flush();
        corpus_bytes += fs::file_size(path);
    }

    fleet::FleetInputs inputs;
    std::string error;
    if (!fleet::collectFleetInputs({dir.string()}, inputs, error)) {
        std::fprintf(stderr, "discovery failed: %s\n",
                     error.c_str());
        return 1;
    }
    std::printf("fleet_merge bench: %zu manifests, %0.1f KiB "
                "corpus\n",
                inputs.manifests.size(),
                static_cast<double>(corpus_bytes) / 1024.0);

    std::string serial_json, parallel_json;
    const double serial_rate = timedMerge(inputs, 1, serial_json);
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    const double parallel_rate =
        timedMerge(inputs, hw, parallel_json);

    const bool deterministic = serial_json == parallel_json;
    std::printf("--jobs 1:  %0.0f manifests/sec\n", serial_rate);
    std::printf("--jobs %u: %0.0f manifests/sec (%0.2fx)\n", hw,
                parallel_rate, parallel_rate / serial_rate);
    std::printf("byte-determinism across jobs: %s\n",
                deterministic ? "PASS" : "FAIL");

    std::FILE *json = std::fopen("BENCH_fleet_merge.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_fleet_merge.json\n");
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"fleet_merge\",\n"
                 "  \"sanitizer\": \"%s\",\n"
                 "  \"manifests\": %zu,\n"
                 "  \"corpusBytes\": %llu,\n"
                 "  \"manifestsPerSecSerial\": %0.1f,\n"
                 "  \"jobs\": %u,\n"
                 "  \"manifestsPerSecParallel\": %0.1f,\n"
                 "  \"speedup\": %0.3f,\n"
                 "  \"byteDeterministic\": %s\n"
                 "}\n",
                 support::kSanitizeMode, inputs.manifests.size(),
                 static_cast<unsigned long long>(corpus_bytes),
                 serial_rate, hw, parallel_rate,
                 parallel_rate / serial_rate,
                 deterministic ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_fleet_merge.json\n");

    std::error_code ec;
    fs::remove_all(dir, ec);
    return deterministic ? 0 : 1;
}
