/**
 * @file
 * Regenerates the Section 4.2 validation: "we also validated HeapMD
 * by using it to successfully identify artificially-injected bugs in
 * several SPEC 2000 benchmarks."
 *
 * A suitable fault is injected into each SPEC analogue and HeapMD is
 * asked to flag the buggy inputs against a model trained on clean
 * inputs.
 */

#include "bench_common.hh"

using namespace heapmd;

namespace
{

struct Injection
{
    const char *program;
    FaultKind kind;
    double rate;
};

std::vector<Injection>
injections()
{
    using FK = FaultKind;
    return {
        {"twolf", FK::DllMissingPrev, 1.0},
        {"crafty", FK::BadHashFunction, 1.0},
        {"mcf", FK::LocalizationBug, 1.0},
        {"vpr", FK::CircularDanglingTail, 0.8},
        {"vortex", FK::SharedStateFree, 1.0},
        {"gzip", FK::SmallLeak, 0.02},
        {"parser", FK::TypoLeak, 1.0},
        {"gcc", FK::DllMissingPrev, 1.0},
    };
}

} // namespace

int
main()
{
    bench::banner("Section 4.2 validation",
                  "Artificially injected bugs in the SPEC analogues");

    const HeapMD tool(bench::standardConfig());
    TextTable table({"Benchmark", "Injected bug", "Buggy inputs",
                     "Detected", "Clean FP (4 inputs)"});

    for (const Injection &inj : injections()) {
        auto app = makeApp(inj.program);
        const TrainingOutcome training = tool.train(
            *app, makeInputs(1, 30, 1, bench::kScale));

        int detected = 0;
        const int buggy_inputs = 4;
        for (std::uint64_t seed = 500; seed < 500 + buggy_inputs;
             ++seed) {
            AppConfig cfg;
            cfg.inputSeed = seed;
            cfg.scale = bench::kScale;
            cfg.faults.enable(inj.kind, inj.rate);
            const CheckOutcome out =
                tool.check(*app, cfg, training.model);
            detected += out.check.anomalous() ? 1 : 0;
        }

        int fp = 0;
        for (std::uint64_t seed = 800; seed < 804; ++seed) {
            AppConfig clean;
            clean.inputSeed = seed;
            clean.scale = bench::kScale;
            const CheckOutcome out =
                tool.check(*app, clean, training.model);
            fp += out.check.anomalous() ? 1 : 0;
        }

        table.addRow({inj.program, faultKindName(inj.kind),
                      std::to_string(buggy_inputs),
                      std::to_string(detected), std::to_string(fp)});
    }
    table.print(std::cout);
    std::printf("\nPaper shape: injected bugs are flagged on the "
                "inputs where they manifest, with\nno false positives "
                "on clean inputs.  (Small leaks are 'well disguised' "
                "and may be\nmissed -- Section 4.2 reports the same "
                "for tiny leak counts.)\n");
    return 0;
}
