/**
 * @file
 * Regenerates Table 2: bugs found by HeapMD in the five commercial
 * applications, by root-cause category (Figures 8 and 9), plus false
 * positives on clean inputs.
 *
 * Paper totals: 11 programming typos, 6 shared-state errors, 17
 * data-structure invariant violations, 6 indirect bugs; 0 false
 * positives.  Each scenario below is one injected bug instance (a
 * distinct fault kind / call-site-rate combination); a bug counts as
 * found when HeapMD reports an anomaly on at least one of the buggy
 * inputs, matching the paper's per-input methodology.
 */

#include "bench_common.hh"

#include <array>

using namespace heapmd;

namespace
{

struct BugScenario
{
    FaultKind kind;
    double rate;
    std::uint64_t budget;
};

struct ProgramPlan
{
    const char *name;
    std::vector<BugScenario> scenarios;
};

/** Bug catalogue mirroring the paper's per-program counts. */
std::vector<ProgramPlan>
plans()
{
    using FK = FaultKind;
    return {
        // Multimedia: 2 typos, 2 shared, 3 invariants, 1 indirect.
        {"Multimedia",
         {{FK::TypoLeak, 1.0, 0},
          {FK::TypoLeak, 0.55, 0},
          {FK::SharedStateFree, 1.0, 0},
          {FK::CircularDanglingTail, 0.8, 0},
          {FK::DllMissingPrev, 1.0, 0},
          {FK::DllMissingPrev, 0.65, 0},
          {FK::TreeMissingParent, 1.0, 0},
          {FK::BadHashFunction, 1.0, 0}}},
        // Interactive web-app: 4 typos, 0 shared, 5 invariants,
        // 1 indirect.
        {"Interactive web-app.",
         {{FK::TypoLeak, 1.0, 0},
          {FK::TypoLeak, 0.85, 0},
          {FK::TypoLeak, 0.70, 0},
          {FK::TypoLeak, 0.55, 0},
          {FK::TreeMissingParent, 1.0, 0},
          {FK::TreeMissingParent, 0.7, 0},
          {FK::DllMissingPrev, 1.0, 0},
          {FK::DllMissingPrev, 0.7, 0},
          {FK::OctTreeDag, 0.9, 0},
          {FK::BadHashFunction, 1.0, 0}}},
        // PC Game (simulation): 3 typos, 3 shared, 2 invariants,
        // 1 indirect.
        {"PC Game (simulation)",
         {{FK::TypoLeak, 1.0, 0},
          {FK::TypoLeak, 0.7, 0},
          {FK::TypoLeak, 0.45, 0},
          {FK::CircularDanglingTail, 1.0, 0},
          {FK::CircularDanglingTail, 0.6, 0},
          {FK::SharedStateFree, 1.0, 0},
          {FK::TreeMissingParent, 1.0, 0},
          {FK::DllMissingPrev, 1.0, 0},
          {FK::BadHashFunction, 1.0, 0}}},
        // PC Game (action): 2 typos, 1 shared, 3 invariants,
        // 2 indirect.
        {"PC Game (action)",
         {{FK::TypoLeak, 1.0, 0},
          {FK::TypoLeak, 0.6, 0},
          {FK::CircularDanglingTail, 0.9, 0},
          {FK::TreeMissingParent, 1.0, 0},
          {FK::TreeMissingParent, 0.7, 0},
          {FK::OctTreeDag, 0.9, 0},
          {FK::SingleChildTree, 1.0, 0},
          {FK::BadHashFunction, 1.0, 0}}},
        // Productivity: 0 typos, 0 shared, 4 invariants (including
        // the B-tree leaf-chain invariant of Section 4.5), 1
        // indirect.
        {"Productivity",
         {{FK::DllMissingPrev, 1.0, 0},
          {FK::DllMissingPrev, 0.7, 0},
          {FK::BTreeLeafUnlinked, 1.0, 0},
          {FK::BTreeLeafUnlinked, 0.7, 0},
          {FK::BadHashFunction, 1.0, 0}}},
    };
}

constexpr std::size_t
categoryIndex(BugCategory category)
{
    return static_cast<std::size_t>(category);
}

} // namespace

int
main()
{
    bench::banner("Table 2",
                  "Bugs found by HeapMD per program and category "
                  "(Figures 8/9 taxonomy)");

    const HeapMD tool(bench::standardConfig());
    TextTable table({"Program", "Programming Typos", "Shared state",
                     "Data struct. Invariants", "Indirect",
                     "False Positives"});

    std::array<int, 4> totals{};
    int total_fp = 0;
    for (const ProgramPlan &plan : plans()) {
        auto app = makeApp(plan.name);
        const TrainingOutcome training = tool.train(
            *app, makeInputs(1, 20, 1, bench::kScale));

        std::array<int, 4> found{};
        for (std::size_t i = 0; i < plan.scenarios.size(); ++i) {
            const BugScenario &scenario = plan.scenarios[i];
            bool detected = false;
            for (std::uint64_t seed = 400 + 16 * i;
                 seed < 400 + 16 * i + 4 && !detected; ++seed) {
                AppConfig cfg;
                cfg.inputSeed = seed;
                cfg.scale = bench::kScale;
                cfg.faults.enable(scenario.kind, scenario.rate,
                                  scenario.budget);
                const CheckOutcome out =
                    tool.check(*app, cfg, training.model);
                detected = out.check.anomalous();
            }
            if (detected)
                ++found[categoryIndex(faultCategory(scenario.kind))];
        }

        int fp = 0;
        for (std::uint64_t seed = 700; seed < 705; ++seed) {
            AppConfig clean;
            clean.inputSeed = seed;
            clean.scale = bench::kScale;
            const CheckOutcome out =
                tool.check(*app, clean, training.model);
            fp += out.check.anomalous() ? 1 : 0;
        }

        table.addRow(
            {plan.name,
             std::to_string(
                 found[categoryIndex(BugCategory::ProgrammingTypo)]),
             std::to_string(
                 found[categoryIndex(BugCategory::SharedState)]),
             std::to_string(found[categoryIndex(
                 BugCategory::DataStructureInvariant)]),
             std::to_string(
                 found[categoryIndex(BugCategory::Indirect)]),
             std::to_string(fp)});
        for (std::size_t c = 0; c < 4; ++c)
            totals[c] += found[c];
        total_fp += fp;
    }
    table.addRow({"Total", std::to_string(totals[0]),
                  std::to_string(totals[1]), std::to_string(totals[2]),
                  std::to_string(totals[3]),
                  std::to_string(total_fp)});
    table.print(std::cout);
    std::printf("\nPaper shape (Table 2): 11 typos / 6 shared-state / "
                "17 invariants / 6 indirect\nbugs found, with 0 false "
                "positives across all five programs.\n");
    return 0;
}
