/**
 * @file
 * Regenerates Figure 5: fluctuation (consecutive-point percentage
 * change) of the Figure 4 metrics, after skipping the startup points.
 */

#include "bench_common.hh"

#include "support/csv.hh"

using namespace heapmd;

namespace
{

void
emitFluctuation(const char *label, const MetricSeries &series)
{
    const StabilityThresholds thr; // 10% trim, paper defaults
    const std::vector<double> in_eq_out = fluctuationOf(
        series.trimmedValuesOf(MetricId::InEqOut, thr.trimFraction));
    const std::vector<double> outdeg1 = fluctuationOf(
        series.trimmedValuesOf(MetricId::Outdeg1, thr.trimFraction));

    std::printf("\n# CSV fluctuation: %s (step, in_eq_out_change_pct, "
                "outdeg1_change_pct)\n",
                label);
    CsvWriter csv(std::cout);
    csv.writeRow({"step", "in_eq_out_change", "outdeg1_change"});
    const std::size_t n = std::min(in_eq_out.size(), outdeg1.size());
    for (std::size_t i = 0; i < n; ++i) {
        csv.writeNumericRow(
            {static_cast<double>(i), in_eq_out[i], outdeg1[i]}, 3);
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 5",
                  "vpr: fluctuation of In=Out and Outdeg=1 after "
                  "skipping startup points");

    const HeapMD tool(bench::standardConfig());
    auto vpr = makeApp("vpr");
    const auto [seed1, seed2] = bench::pickVprInputs(tool, *vpr);

    AppConfig input1;
    input1.inputSeed = seed1;
    input1.scale = bench::kScale;
    AppConfig input2;
    input2.inputSeed = seed2;
    input2.scale = bench::kScale;

    const RunOutcome run1 = tool.observe(*vpr, input1);
    const RunOutcome run2 = tool.observe(*vpr, input2);

    std::printf("Paper shape: the Outdeg=1 fluctuation plot is flat "
                "and close to 0;\nthe In=Out plot shows spikes "
                "(phase changes), marking it unstable.\n");
    emitFluctuation("vpr Input1", run1.series);
    emitFluctuation("vpr Input2", run2.series);
    return 0;
}
