/**
 * @file
 * Regenerates Figure 4: metric reports for two degree-based metrics
 * (% indegree = outdegree and % outdegree = 1) for vpr on two inputs,
 * one of which runs considerably longer than the other.
 *
 * Output: one CSV series per input (plottable), plus a summary table.
 */

#include "bench_common.hh"

#include "support/csv.hh"

using namespace heapmd;

namespace
{

void
emitSeries(const char *label, const MetricSeries &series)
{
    std::printf("\n# CSV series: %s (point, In=Out %%, Outdeg=1 %%)\n",
                label);
    CsvWriter csv(std::cout);
    csv.writeRow({"point", "in_eq_out", "outdeg1"});
    for (const MetricSample &s : series.samples()) {
        csv.writeNumericRow({static_cast<double>(s.pointIndex),
                             s.value(MetricId::InEqOut),
                             s.value(MetricId::Outdeg1)},
                            3);
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 4",
                  "vpr: In=Out and Outdeg=1 metric reports on two "
                  "inputs (Input2 runs longer)");

    const HeapMD tool(bench::standardConfig());
    auto vpr = makeApp("vpr");
    const auto [seed1, seed2] = bench::pickVprInputs(tool, *vpr);

    AppConfig input1;
    input1.inputSeed = seed1;
    input1.scale = bench::kScale;
    AppConfig input2;
    input2.inputSeed = seed2;
    input2.scale = bench::kScale;

    const RunOutcome run1 = tool.observe(*vpr, input1);
    const RunOutcome run2 = tool.observe(*vpr, input2);

    TextTable table({"Input", "Seed", "Metric points", "Peak vertices"});
    table.addRow({"Input1", std::to_string(seed1),
                  std::to_string(run1.series.size()),
                  std::to_string(run1.graphStats.peakVertices)});
    table.addRow({"Input2", std::to_string(seed2),
                  std::to_string(run2.series.size()),
                  std::to_string(run2.graphStats.peakVertices)});
    table.print(std::cout);
    std::printf("\nPaper shape: both metrics move rapidly during "
                "startup, then stabilize;\nInput2 has several times "
                "the metric computation points of Input1.\n");

    emitSeries("vpr Input1", run1.series);
    emitSeries("vpr Input2", run2.series);
    return 0;
}
