// Telemetry macros compiled OUT: every HEAPMD_* site is a no-op, so
// this TU is the zero-overhead baseline for the same kernel body.
#define HEAPMD_TELEMETRY_ENABLED 0

#include <algorithm>

#include "heapgraph/heap_graph.hh"
#include "telemetry/telemetry.hh"
#include "telemetry_kernel.hh"

namespace heapmd
{
namespace bench
{

#define HEAPMD_KERNEL_FN telemetryKernelCompiledOut
#include "telemetry_kernel_body.inc"
#undef HEAPMD_KERNEL_FN

} // namespace bench
} // namespace heapmd
