/**
 * @file
 * Shared helpers for the experiment-regeneration binaries.
 *
 * Every bench prints (a) the paper artifact it regenerates, (b) the
 * configuration used, and (c) the regenerated rows/series in a
 * diffable text format.  Scales are smaller than the paper's
 * hours-long commercial runs; EXPERIMENTS.md records the shape
 * comparison.
 */

#ifndef HEAPMD_BENCH_BENCH_COMMON_HH
#define HEAPMD_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "core/heapmd.hh"
#include "support/table.hh"

namespace heapmd
{

namespace bench
{

/** Workload scale used by the experiment binaries. */
inline constexpr double kScale = 0.6;

/** Metric computation frequency (function entries per sample). */
inline constexpr std::uint64_t kFrq = 300;

/** Standard pipeline configuration for the experiment binaries. */
inline HeapMDConfig
standardConfig()
{
    HeapMDConfig cfg;
    cfg.process.metricFrequency = kFrq;
    return cfg;
}

/** Print the bench banner. */
inline void
banner(const std::string &artifact, const std::string &what)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("HeapMD reproduction -- %s\n", artifact.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("(scale %.2f, frq 1/%llu; see EXPERIMENTS.md for the "
                "paper-vs-measured notes)\n",
                kScale, static_cast<unsigned long long>(kFrq));
    std::printf("-----------------------------------------------"
                "---------------------\n");
}

/** "Leaves" / "Outdeg=1" row helper with paper-style formatting. */
inline std::string
pct(double v, int digits = 1)
{
    return fmtDouble(v, digits);
}

/**
 * The paper's "example stable metric" per benchmark (Figure 7).
 * @return the model entry for that metric when it is stable, else
 *         the generic pick (most stable runs, narrowest range).
 */
inline const HeapModel::Entry *
paperExampleMetric(const std::string &benchmark, const HeapModel &model)
{
    static const std::vector<std::pair<std::string, MetricId>> table = {
        {"twolf", MetricId::Outdeg2},
        {"crafty", MetricId::Leaves},
        {"mcf", MetricId::Roots},
        {"vpr", MetricId::Outdeg1},
        {"vortex", MetricId::Indeg1},
        {"gzip", MetricId::Leaves},
        {"parser", MetricId::InEqOut},
        {"gcc", MetricId::Outdeg1},
        {"Multimedia", MetricId::InEqOut},
        {"Interactive web-app.", MetricId::Indeg1},
        {"PC Game (simulation)", MetricId::Outdeg1},
        {"PC Game (action)", MetricId::Indeg1},
        {"Productivity", MetricId::Leaves},
    };
    for (const auto &[name, id] : table) {
        if (name == benchmark && model.isStable(id)) {
            for (const HeapModel::Entry &e : model.entries()) {
                if (e.id == id)
                    return &e;
            }
        }
    }
    return pickExampleMetric(model);
}

/**
 * Figures 4-6 use vpr on two inputs where Input2 runs much longer
 * than Input1.  Probe a handful of seeds and pick the shortest and
 * longest runs (deterministic).
 *
 * @return {input1 seed, input2 seed}.
 */
inline std::pair<std::uint64_t, std::uint64_t>
pickVprInputs(const HeapMD &tool, SyntheticApp &vpr)
{
    std::uint64_t short_seed = 1, long_seed = 1;
    std::size_t shortest = ~std::size_t{0}, longest = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        AppConfig cfg;
        cfg.inputSeed = seed;
        cfg.scale = kScale;
        const RunOutcome run = tool.observe(vpr, cfg);
        if (run.series.size() < shortest) {
            shortest = run.series.size();
            short_seed = seed;
        }
        if (run.series.size() > longest) {
            longest = run.series.size();
            long_seed = seed;
        }
    }
    return {short_seed, long_seed};
}

} // namespace bench

} // namespace heapmd

#endif // HEAPMD_BENCH_BENCH_COMMON_HH
