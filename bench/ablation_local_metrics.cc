/**
 * @file
 * Ablation for the locally-stable-metric extension (the future work
 * item of Section 4.4: "We are expanding these to a broader set of
 * heap stability metrics, such as locally stable metrics, to enable
 * HeapMD to find more bugs").
 *
 * For each commercial application: how many extra model entries the
 * extension admits, whether clean inputs stay report-free (the wider
 * local bands must not reintroduce false positives), and whether the
 * standard injected bug is still caught.
 */

#include "bench_common.hh"

using namespace heapmd;

int
main()
{
    bench::banner("Local-metric ablation (Section 4.4)",
                  "Model growth and accuracy with locally stable "
                  "metrics admitted");

    HeapMDConfig plain_cfg = bench::standardConfig();
    HeapMDConfig local_cfg = plain_cfg;
    local_cfg.summarizer.includeLocallyStable = true;
    const HeapMD plain(plain_cfg);
    const HeapMD local(local_cfg);

    TextTable table({"Benchmark", "Global entries", "+ Local entries",
                     "Clean FP (4 inputs)", "Bug still caught?"});

    for (const std::string &name : commercialAppNames()) {
        auto app = makeApp(name);
        const TrainingOutcome base =
            plain.train(*app, makeInputs(1, 25, 1, bench::kScale));
        const TrainingOutcome extended =
            local.train(*app, makeInputs(1, 25, 1, bench::kScale));

        int fp = 0;
        for (std::uint64_t seed = 900; seed < 904; ++seed) {
            AppConfig clean;
            clean.inputSeed = seed;
            clean.scale = bench::kScale;
            fp += local.check(*app, clean, extended.model)
                          .check.anomalous()
                      ? 1
                      : 0;
        }

        bool caught = false;
        for (std::uint64_t seed = 950; seed < 953 && !caught;
             ++seed) {
            AppConfig buggy;
            buggy.inputSeed = seed;
            buggy.scale = bench::kScale;
            buggy.faults.enable(FaultKind::TypoLeak, 1.0);
            if (!makeApp(name)) // keep clang-tidy quiet about reuse
                break;
            caught = local.check(*app, buggy, extended.model)
                         .check.anomalous();
        }

        table.addRow(
            {name,
             std::to_string(
                 extended.model.globallyStableMetricCount()),
             "+" + std::to_string(
                       extended.model.locallyStableMetricCount()),
             std::to_string(fp), caught ? "yes" : "NO"});
        (void)base;
    }
    table.print(std::cout);
    std::printf("\nExpected shape: local entries extend the model "
                "without reintroducing false\npositives (their bands "
                "carry extra slack), and detection of the standard "
                "typo\nleak is unaffected.\n");
    return 0;
}
