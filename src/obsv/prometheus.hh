/**
 * @file
 * Prometheus text exposition (format 0.0.4) over stats segments.
 *
 * `heapmd stats --format=prometheus` and `heapmd export` both feed
 * attached SegmentSnapshots through renderPrometheus().  The output
 * is deterministic — fixed family order, snapshots in the caller's
 * (pid-sorted) order, fixed-precision floats, and timestamps taken
 * from the *segment* (start / heartbeat monotonic ms), never from
 * the scraping host — so two scrapes of an idle writer are
 * byte-identical.
 */

#ifndef HEAPMD_OBSV_PROMETHEUS_HH
#define HEAPMD_OBSV_PROMETHEUS_HH

#include <string>
#include <string_view>
#include <vector>

#include "obsv/segment.hh"

namespace heapmd
{
namespace obsv
{

/**
 * Escape a label value per the exposition format: backslash, double
 * quote, and newline become \\, \", and \n.
 */
std::string escapeLabelValue(std::string_view value);

/** Render every snapshot into one exposition document. */
std::string
renderPrometheus(const std::vector<SegmentSnapshot> &snapshots);

} // namespace obsv
} // namespace heapmd

#endif // HEAPMD_OBSV_PROMETHEUS_HH
