/**
 * @file
 * POSIX shm implementation of the stats-segment endpoints.
 */

#include "obsv/segment.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace heapmd
{
namespace obsv
{

namespace
{

/** Bounded seqlock retries before read() gives up on a hot writer. */
constexpr int kReadRetries = 1000;

/** mmap a segment fd; returns nullptr on failure. */
SegmentHeader *
mapSegment(int fd, bool writable)
{
    const int prot = writable ? PROT_READ | PROT_WRITE : PROT_READ;
    void *mem = ::mmap(nullptr, kSegmentBytes, prot, MAP_SHARED, fd, 0);
    return mem == MAP_FAILED ? nullptr
                             : static_cast<SegmentHeader *>(mem);
}

} // namespace

std::uint64_t
monotonicMs()
{
    struct timespec ts;
    if (::clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
        return 0;
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

void
segmentName(std::uint32_t pid, char *out, std::size_t out_len)
{
    std::snprintf(out, out_len, "/%s%u", kSegmentPrefix, pid);
}

SegmentWriter::~SegmentWriter()
{
    // Deliberately no unlink here: lifecycle is explicit.  The shim
    // owns the decision between unlinkAndClose (normal exit) and
    // abandon (forked child); a plain destructor just unmaps.
    if (header_ != nullptr)
        ::munmap(header_, kSegmentBytes);
}

bool
SegmentWriter::create(std::uint32_t pid, const char *program)
{
    if (header_ != nullptr)
        return true;
    segmentName(pid, name_, sizeof name_);
    // O_EXCL after unlinking any stale entry: a previous process with
    // the same (recycled) pid that was SIGKILLed may have left one.
    ::shm_unlink(name_);
    const int fd =
        ::shm_open(name_, O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0)
        return false;
    if (::ftruncate(fd, static_cast<off_t>(kSegmentBytes)) != 0) {
        ::close(fd);
        ::shm_unlink(name_);
        return false;
    }
    SegmentHeader *h = mapSegment(fd, /*writable=*/true);
    ::close(fd);
    if (h == nullptr) {
        ::shm_unlink(name_);
        return false;
    }
    // ftruncate zero-filled the page: sequence == 0 (stable), all
    // slots 0.  Fill identity, mark the metric slots absent, then
    // publish the magic last so a racing reader never sees a
    // half-initialised header.
    h->layoutVersion = kLayoutVersion;
    h->pid = pid;
    std::strncpy(h->program, program == nullptr ? "" : program,
                 sizeof h->program - 1);
    h->startMonoMs = monotonicMs();
    h->heartbeatMonoMs.store(h->startMonoMs,
                             std::memory_order_relaxed);
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        h->slots[slotIndex(Slot::MetricBase) + i].store(
            kMetricAbsent, std::memory_order_relaxed);
    h->magic.store(kSegmentMagic, std::memory_order_release);
    header_ = h;
    return true;
}

void
SegmentWriter::publish(
    const std::array<std::uint64_t, kSlotCount> &values)
{
    publishPrefix(values.data(), values.size());
}

void
SegmentWriter::publishPrefix(const std::uint64_t *values,
                             std::size_t count)
{
    if (header_ == nullptr)
        return;
    SegmentHeader &h = *header_;
    h.sequence.fetch_add(1, std::memory_order_acq_rel);
    if (count > kSlotCount)
        count = kSlotCount;
    for (std::size_t i = 0; i < count; ++i)
        h.slots[i].store(values[i], std::memory_order_relaxed);
    h.heartbeatMonoMs.store(monotonicMs(),
                            std::memory_order_relaxed);
    h.sequence.fetch_add(1, std::memory_order_release);
}

void
SegmentWriter::heartbeat()
{
    if (header_ == nullptr)
        return;
    header_->heartbeatMonoMs.store(monotonicMs(),
                                   std::memory_order_relaxed);
}

void
SegmentWriter::unlinkAndClose()
{
    if (header_ == nullptr)
        return;
    ::munmap(header_, kSegmentBytes);
    header_ = nullptr;
    ::shm_unlink(name_);
}

void
SegmentWriter::abandon()
{
    if (header_ == nullptr)
        return;
    ::munmap(header_, kSegmentBytes);
    header_ = nullptr;
}

SegmentReader::~SegmentReader() { close(); }

bool
SegmentReader::attachPid(std::uint32_t pid, std::string *error)
{
    char name[32];
    segmentName(pid, name, sizeof name);
    return attachName(name, error);
}

bool
SegmentReader::attachName(const std::string &shm_name,
                          std::string *error)
{
    close();
    const int fd = ::shm_open(shm_name.c_str(), O_RDONLY, 0);
    if (fd < 0) {
        if (error != nullptr)
            *error = "cannot open shm segment " + shm_name + ": " +
                     std::strerror(errno);
        return false;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        st.st_size < static_cast<off_t>(kSegmentBytes)) {
        ::close(fd);
        if (error != nullptr)
            *error = "shm segment " + shm_name +
                     " is smaller than a stats segment";
        return false;
    }
    const SegmentHeader *h = mapSegment(fd, /*writable=*/false);
    ::close(fd);
    if (h == nullptr) {
        if (error != nullptr)
            *error = "cannot map shm segment " + shm_name;
        return false;
    }
    header_ = h;
    return true;
}

bool
SegmentReader::read(SegmentSnapshot &out, std::string *error) const
{
    if (header_ == nullptr) {
        if (error != nullptr)
            *error = "segment reader is not attached";
        return false;
    }
    const SegmentHeader &h = *header_;
    if (h.magic.load(std::memory_order_acquire) != kSegmentMagic) {
        if (error != nullptr)
            *error = "segment has no heapmd magic "
                     "(writer still initialising, or not a stats "
                     "segment)";
        return false;
    }
    // Version skew: a segment written by a *newer* layout is
    // rejected outright — slot meanings may have moved.  (Older
    // versions would be handled here once there are any.)
    if (h.layoutVersion != kLayoutVersion) {
        if (error != nullptr)
            *error = "segment layout version " +
                     std::to_string(h.layoutVersion) +
                     " is not supported by this binary (expects " +
                     std::to_string(kLayoutVersion) + ")";
        return false;
    }
    for (int attempt = 0; attempt < kReadRetries; ++attempt) {
        const std::uint64_t s1 =
            h.sequence.load(std::memory_order_acquire);
        if ((s1 & 1u) != 0u)
            continue; // write in progress
        SegmentSnapshot snap;
        snap.pid = h.pid;
        snap.layoutVersion = h.layoutVersion;
        snap.program.assign(
            h.program,
            ::strnlen(h.program, sizeof h.program));
        snap.startMonoMs = h.startMonoMs;
        for (std::size_t i = 0; i < kSlotCount; ++i)
            snap.values[i] =
                h.slots[i].load(std::memory_order_relaxed);
        snap.heartbeatMonoMs =
            h.heartbeatMonoMs.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t s2 =
            h.sequence.load(std::memory_order_relaxed);
        if (s1 == s2) {
            out = snap;
            return true;
        }
    }
    if (error != nullptr)
        *error = "segment writer never quiesced across " +
                 std::to_string(kReadRetries) + " snapshot attempts";
    return false;
}

void
SegmentReader::close()
{
    if (header_ != nullptr) {
        ::munmap(const_cast<SegmentHeader *>(header_),
                 kSegmentBytes);
        header_ = nullptr;
    }
}

std::vector<std::uint32_t>
listSegmentPids()
{
    std::vector<std::uint32_t> pids;
    DIR *dir = ::opendir("/dev/shm");
    if (dir == nullptr)
        return pids;
    const std::size_t prefix_len = std::strlen(kSegmentPrefix);
    while (const dirent *entry = ::readdir(dir)) {
        const char *name = entry->d_name;
        if (std::strncmp(name, kSegmentPrefix, prefix_len) != 0)
            continue;
        const char *digits = name + prefix_len;
        if (*digits == '\0')
            continue;
        char *end = nullptr;
        const unsigned long pid = std::strtoul(digits, &end, 10);
        if (end == nullptr || *end != '\0' || pid == 0)
            continue;
        pids.push_back(static_cast<std::uint32_t>(pid));
    }
    ::closedir(dir);
    std::sort(pids.begin(), pids.end());
    return pids;
}

bool
pidAlive(std::uint32_t pid)
{
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return true;
    return errno == EPERM; // exists, just not ours
}

bool
unlinkSegmentForPid(std::uint32_t pid)
{
    char name[32];
    segmentName(pid, name, sizeof name);
    return ::shm_unlink(name) == 0;
}

ReapResult
reapDeadSegments()
{
    ReapResult result;
    for (const std::uint32_t pid : listSegmentPids()) {
        if (pidAlive(pid)) {
            result.alive.push_back(pid);
        } else if (unlinkSegmentForPid(pid)) {
            result.reaped.push_back(pid);
        }
    }
    return result;
}

} // namespace obsv
} // namespace heapmd
