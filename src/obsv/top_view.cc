/**
 * @file
 * `heapmd top` text renderer.
 */

#include "obsv/top_view.hh"

#include <cinttypes>
#include <cstdio>

namespace heapmd
{
namespace obsv
{

namespace
{

/** 1234567 -> "1.23M"-style human size (objects or bytes). */
std::string
human(std::uint64_t v)
{
    char buf[32];
    if (v >= 10ull * 1024 * 1024 * 1024)
        std::snprintf(buf, sizeof buf, "%.2fG",
                      static_cast<double>(v) / (1024.0 * 1024 * 1024));
    else if (v >= 10ull * 1024 * 1024)
        std::snprintf(buf, sizeof buf, "%.2fM",
                      static_cast<double>(v) / (1024.0 * 1024));
    else if (v >= 10ull * 1024)
        std::snprintf(buf, sizeof buf, "%.1fK",
                      static_cast<double>(v) / 1024.0);
    else
        std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    return buf;
}

std::string
fixed1(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return buf;
}

/** Drift annotation of @p value against the model's range for @p id. */
std::string
driftCell(const HeapModel &model, MetricId id, double value)
{
    const std::optional<HeapModel::Entry> entry = model.entry(id);
    if (!entry)
        return "unstable";
    if (value < entry->minValue)
        return "BELOW [" + fixed1(entry->minValue) + ", " +
               fixed1(entry->maxValue) + "]";
    if (value > entry->maxValue)
        return "ABOVE [" + fixed1(entry->minValue) + ", " +
               fixed1(entry->maxValue) + "]";
    return "in [" + fixed1(entry->minValue) + ", " +
           fixed1(entry->maxValue) + "]";
}

void
renderOne(std::string &out, const SegmentSnapshot &snap,
          const HeapModel *model, std::uint64_t now_mono_ms)
{
    char line[256];
    const std::uint64_t stale = snap.staleMs(now_mono_ms);
    const std::uint64_t up_ms =
        now_mono_ms > snap.startMonoMs
            ? now_mono_ms - snap.startMonoMs
            : 0;
    std::snprintf(line, sizeof line,
                  "pid %u  %s  up %.1fs  heartbeat %.1fs ago%s\n",
                  snap.pid, snap.program.c_str(),
                  static_cast<double>(up_ms) / 1000.0,
                  static_cast<double>(stale) / 1000.0,
                  stale > kStaleAfterMs ? "  [STALE]" : "");
    out += line;
    std::snprintf(
        line, sizeof line,
        "  live %s objs (%sB, peak %s)  edges %s\n",
        human(snap.value(Slot::LiveObjects)).c_str(),
        human(snap.value(Slot::LiveBytes)).c_str(),
        human(snap.value(Slot::PeakLiveObjects)).c_str(),
        human(snap.value(Slot::LiveEdges)).c_str());
    out += line;
    std::snprintf(
        line, sizeof line,
        "  alloc %" PRIu64 "  free %" PRIu64 "  realloc %" PRIu64
        "  dropped %" PRIu64 "  events %" PRIu64 "\n",
        snap.value(Slot::AllocEvents), snap.value(Slot::FreeEvents),
        snap.value(Slot::ReallocEvents),
        snap.value(Slot::DroppedReentrant),
        snap.value(Slot::EventsEmitted));
    out += line;
    std::snprintf(
        line, sizeof line,
        "  scans %" PRIu64 " (%.1fms, %" PRIu64
        " words)  reclaimed %" PRIu64 "  flushes %" PRIu64 "\n",
        snap.value(Slot::ScanPasses),
        static_cast<double>(snap.value(Slot::ScanNanos)) / 1e6,
        snap.value(Slot::ScanWords),
        snap.value(Slot::ScanReclaimedDead),
        snap.value(Slot::Flushes));
    out += line;
    if (!snap.hasMetrics()) {
        out += "  metrics: none yet (no scan has run)\n";
        return;
    }
    out += "  metrics (latest scan):\n";
    for (const MetricId id : kAllMetrics) {
        const double pct = snap.metricPercent(id);
        std::snprintf(line, sizeof line, "    %-10s %6.2f%%",
                      metricName(id).c_str(), pct);
        out += line;
        if (model != nullptr) {
            out += "  ";
            out += driftCell(*model, id, pct);
        }
        out += '\n';
    }
}

} // namespace

std::string
renderTop(const std::vector<SegmentSnapshot> &snapshots,
          const HeapModel *model, std::uint64_t now_mono_ms)
{
    std::string out;
    if (snapshots.empty())
        return "no live heapmd segments in /dev/shm\n";
    char line[128];
    std::snprintf(line, sizeof line,
                  "%zu live heapmd segment%s\n", snapshots.size(),
                  snapshots.size() == 1 ? "" : "s");
    out += line;
    for (const SegmentSnapshot &snap : snapshots) {
        out += '\n';
        renderOne(out, snap, model, now_mono_ms);
    }
    return out;
}

} // namespace obsv
} // namespace heapmd
