/**
 * @file
 * Deterministic Prometheus text-exposition renderer.
 */

#include "obsv/prometheus.hh"

#include <cinttypes>
#include <cstdio>

#include "metrics/metric.hh"

namespace heapmd
{
namespace obsv
{

namespace
{

/** One {pid,program} label set, rendered once per snapshot. */
std::string
labelsFor(const SegmentSnapshot &snap)
{
    return "{pid=\"" + std::to_string(snap.pid) + "\",program=\"" +
           escapeLabelValue(snap.program) + "\"}";
}

struct SlotFamily
{
    Slot slot;
    const char *name; //!< full family name, incl. _total for counters
    const char *type; //!< "gauge" or "counter"
    const char *help;
};

/**
 * Fixed emission order.  Counter families carry the conventional
 * _total suffix; everything here is a plain u64 passthrough.
 */
constexpr SlotFamily kSlotFamilies[] = {
    {Slot::LiveObjects, "heapmd_live_objects", "gauge",
     "Live heap objects tracked by the capture shim."},
    {Slot::LiveBytes, "heapmd_live_bytes", "gauge",
     "Bytes in live tracked heap objects."},
    {Slot::LiveEdges, "heapmd_live_edges", "gauge",
     "Pointer edges tracked by the conservative scan."},
    {Slot::PeakLiveObjects, "heapmd_peak_live_objects", "gauge",
     "High-water mark of live tracked heap objects."},
    {Slot::AllocEvents, "heapmd_alloc_events_total", "counter",
     "Allocation events recorded by the shim."},
    {Slot::FreeEvents, "heapmd_free_events_total", "counter",
     "Free events recorded by the shim."},
    {Slot::ReallocEvents, "heapmd_realloc_events_total", "counter",
     "Realloc events recorded by the shim."},
    {Slot::EventsEmitted, "heapmd_trace_events_total", "counter",
     "Trace events written to the capture stream."},
    {Slot::ScanPasses, "heapmd_scan_passes_total", "counter",
     "Conservative pointer-scan passes completed."},
    {Slot::ScanWords, "heapmd_scan_words_total", "counter",
     "Words visited by pointer scans."},
    {Slot::ScanEdgeWrites, "heapmd_scan_edge_writes_total",
     "counter", "Edge-write deltas emitted by pointer scans."},
    {Slot::ScanEdgeClears, "heapmd_scan_edge_clears_total",
     "counter", "Edge-clear deltas emitted by pointer scans."},
    {Slot::ScanReclaimedDead, "heapmd_scan_reclaimed_dead_total",
     "counter", "Stale live-table extents reclaimed at scan time."},
    {Slot::DroppedReentrant, "heapmd_dropped_reentrant_total",
     "counter", "Allocator events dropped by the reentrancy guard."},
    {Slot::Flushes, "heapmd_flushes_total", "counter",
     "Capture-stream flush+fsync durability points."},
    {Slot::MetricPoints, "heapmd_metric_points_total", "counter",
     "Degree-metric samples published by the shim."},
};

void
appendHeader(std::string &out, const char *name, const char *type,
             const char *help)
{
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
}

void
appendU64Sample(std::string &out, const char *name,
                const std::string &labels, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64,
                  static_cast<std::uint64_t>(value));
    out += name;
    out += labels;
    out += ' ';
    out += buf;
    out += '\n';
}

void
appendF64Sample(std::string &out, const char *name,
                const std::string &labels, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", value);
    out += name;
    out += labels;
    out += ' ';
    out += buf;
    out += '\n';
}

} // namespace

std::string
escapeLabelValue(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c; break;
        }
    }
    return out;
}

std::string
renderPrometheus(const std::vector<SegmentSnapshot> &snapshots)
{
    std::string out;
    std::vector<std::string> labels;
    labels.reserve(snapshots.size());
    for (const SegmentSnapshot &snap : snapshots)
        labels.push_back(labelsFor(snap));

    for (const SlotFamily &family : kSlotFamilies) {
        appendHeader(out, family.name, family.type, family.help);
        for (std::size_t i = 0; i < snapshots.size(); ++i)
            appendU64Sample(out, family.name, labels[i],
                            snapshots[i].value(family.slot));
    }

    appendHeader(out, "heapmd_scan_seconds_total", "counter",
                 "Wall-clock seconds spent inside pointer scans.");
    for (std::size_t i = 0; i < snapshots.size(); ++i)
        appendF64Sample(
            out, "heapmd_scan_seconds_total", labels[i],
            static_cast<double>(snapshots[i].value(Slot::ScanNanos)) /
                1e9);

    appendHeader(out, "heapmd_metric_percent", "gauge",
                 "Degree-metric percentage from the latest scan "
                 "(absent until the first scan).");
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
        const SegmentSnapshot &snap = snapshots[i];
        if (!snap.hasMetrics())
            continue;
        for (const MetricId id : kAllMetrics) {
            std::string metric_labels =
                "{pid=\"" + std::to_string(snap.pid) +
                "\",program=\"" + escapeLabelValue(snap.program) +
                "\",metric=\"" + escapeLabelValue(metricName(id)) +
                "\"}";
            appendF64Sample(out, "heapmd_metric_percent",
                            metric_labels, snap.metricPercent(id));
        }
    }

    // Monotonic-clock identity stamps.  Deliberately *not* scrape
    // time: an idle writer must produce byte-identical scrapes.
    appendHeader(out, "heapmd_start_monotonic_ms", "gauge",
                 "Writer CLOCK_MONOTONIC at segment creation.");
    for (std::size_t i = 0; i < snapshots.size(); ++i)
        appendU64Sample(out, "heapmd_start_monotonic_ms", labels[i],
                        snapshots[i].startMonoMs);
    appendHeader(out, "heapmd_heartbeat_monotonic_ms", "gauge",
                 "Writer CLOCK_MONOTONIC at the last publish.");
    for (std::size_t i = 0; i < snapshots.size(); ++i)
        appendU64Sample(out, "heapmd_heartbeat_monotonic_ms",
                        labels[i], snapshots[i].heartbeatMonoMs);
    return out;
}

} // namespace obsv
} // namespace heapmd
