/**
 * @file
 * Fixed-layout shared-memory stats segment published by the capture
 * shim and attached read-only by `heapmd top` / `stats` / `export`.
 *
 * One segment per captured process, named `/heapmd.<pid>` under
 * /dev/shm.  The layout is a versioned header followed by a flat
 * array of 64-bit slots guarded by a seqlock: the writer never
 * blocks on readers, readers never stop the writer, and a reader
 * that races a write simply retries.  Every mutable word is a
 * `std::atomic<std::uint64_t>` so individual loads and stores are
 * untearable (and TSan-clean); the seqlock only adds *cross-slot*
 * consistency so a snapshot is a single point in time.
 *
 * Protocol (single writer — the shim publishes under its own mutex):
 *
 *   writer: sequence.fetch_add(1, acq_rel)      // odd = in progress
 *           relaxed stores into slots[]
 *           sequence.fetch_add(1, release)      // even = stable
 *
 *   reader: s1 = sequence.load(acquire); retry if odd
 *           relaxed loads of slots[]
 *           atomic_thread_fence(acquire)
 *           s2 = sequence.load(relaxed); done iff s1 == s2
 *
 * Layout changes must bump kLayoutVersion; readers reject segments
 * with a version they do not know (see SegmentReader::read), so a
 * newer shim never feeds garbage to an older CLI.
 */

#ifndef HEAPMD_OBSV_SHM_LAYOUT_HH
#define HEAPMD_OBSV_SHM_LAYOUT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "metrics/metric.hh"

namespace heapmd
{
namespace obsv
{

/** "HEAPMDSG" little-endian; first word of every segment. */
inline constexpr std::uint64_t kSegmentMagic = 0x4753444d50414548ull;

/** Bumped on any layout change; readers reject unknown versions. */
inline constexpr std::uint32_t kLayoutVersion = 1;

/** shm_open name prefix; full name is "/heapmd.<pid>". */
inline constexpr const char *kSegmentPrefix = "heapmd.";

/** Fixed-point scale for the metric slots: percent × 1e4. */
inline constexpr std::uint64_t kMetricScale = 10000;

/** Sentinel slot value: no metric sample published yet. */
inline constexpr std::uint64_t kMetricAbsent = ~0ull;

/**
 * Index of each published 64-bit value.  Gauges first, then the
 * monotonic counters mirrored from the capture sidecar, then the
 * seven degree-metric percentages (fixed point ×kMetricScale, or
 * kMetricAbsent before the first scan).  Append-only: reordering or
 * removing a slot is a layout change and must bump kLayoutVersion.
 */
enum class Slot : std::size_t
{
    LiveObjects,       //!< gauge: extents in the live table
    LiveBytes,         //!< gauge: sum of live extent sizes
    LiveEdges,         //!< gauge: pointer edges tracked by the scan
    PeakLiveObjects,   //!< high-water mark of LiveObjects
    AllocEvents,       //!< counter: malloc/calloc/memalign hits
    FreeEvents,        //!< counter: free hits
    ReallocEvents,     //!< counter: realloc hits
    EventsEmitted,     //!< counter: trace events written
    ScanPasses,        //!< counter: pointer scans completed
    ScanWords,         //!< counter: words visited by scans
    ScanEdgeWrites,    //!< counter: Write deltas emitted by scans
    ScanEdgeClears,    //!< counter: edge-clear deltas emitted
    ScanReclaimedDead, //!< counter: stale extents reclaimed (mincore)
    DroppedReentrant,  //!< counter: events dropped by the guard
    Flushes,           //!< counter: stream flush+fsync points
    ScanNanos,         //!< counter: wall nanos spent inside scans
    MetricPoints,      //!< counter: degree-metric samples published
    MetricBase,        //!< first of kNumMetrics degree-metric slots
};

/** Index of a slot in SegmentHeader::slots. */
constexpr std::size_t
slotIndex(Slot s)
{
    return static_cast<std::size_t>(s);
}

/** Slot holding the fixed-point percentage for @p id. */
constexpr std::size_t
metricSlotIndex(MetricId id)
{
    return slotIndex(Slot::MetricBase) + metricIndex(id);
}

/** Total number of value slots in the segment. */
inline constexpr std::size_t kSlotCount =
    slotIndex(Slot::MetricBase) + kNumMetrics;

/**
 * The mapped segment.  The creating writer zero-fills via ftruncate,
 * fills in the identity fields, then stores `magic` with release
 * ordering as the very last step — a reader that sees the magic is
 * guaranteed a fully initialised header.
 */
struct SegmentHeader
{
    std::atomic<std::uint64_t> magic;           //!< kSegmentMagic when ready
    std::uint32_t layoutVersion;                //!< kLayoutVersion of writer
    std::uint32_t pid;                          //!< writer process id
    char program[64];                           //!< NUL-padded short name
    std::uint64_t startMonoMs;                  //!< CLOCK_MONOTONIC at create
    std::atomic<std::uint64_t> sequence;        //!< seqlock generation
    std::atomic<std::uint64_t> heartbeatMonoMs; //!< CLOCK_MONOTONIC, each publish
    std::uint64_t reserved[4];                  //!< zero; future layout room
    std::atomic<std::uint64_t> slots[kSlotCount];
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "seqlock slots must be lock-free plain words");
static_assert(sizeof(SegmentHeader) <= 4096,
              "segment must fit one page");

/** Bytes to ftruncate/mmap for one segment. */
inline constexpr std::size_t kSegmentBytes = sizeof(SegmentHeader);

} // namespace obsv
} // namespace heapmd

#endif // HEAPMD_OBSV_SHM_LAYOUT_HH
