/**
 * @file
 * Writer/reader endpoints of the shared-memory stats segment.
 *
 * SegmentWriter lives inside the capture shim: after create() it is
 * allocation-free — publish() is a seqlock write of pre-gathered
 * values plus a heartbeat stamp, safe to call from allocator
 * interposers (under the shim's own serialisation; the protocol is
 * single-writer).  SegmentReader lives in the CLI: it attaches to a
 * live process's segment read-only and copies consistent snapshots
 * without ever blocking the writer.
 *
 * Enumeration helpers scan /dev/shm for `heapmd.<pid>` entries so
 * `heapmd top --all` and the Prometheus exporter can discover every
 * captured process on the host, and reap the segments of dead pids
 * (SIGKILL skips the shim's atexit unlink).
 */

#ifndef HEAPMD_OBSV_SEGMENT_HH
#define HEAPMD_OBSV_SEGMENT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obsv/shm_layout.hh"

namespace heapmd
{
namespace obsv
{

/** CLOCK_MONOTONIC now, in milliseconds (0 if the clock fails). */
std::uint64_t monotonicMs();

/** shm name ("/heapmd.<pid>") for @p pid into @p out (>= 32 bytes). */
void segmentName(std::uint32_t pid, char *out, std::size_t out_len);

/**
 * Shim-side endpoint.  create() may allocate (it runs during shim
 * init, before interposition is hot); everything after it is
 * async-signal-tame: no allocation, no syscalls beyond the mapped
 * stores.
 */
class SegmentWriter
{
  public:
    SegmentWriter() = default;
    SegmentWriter(const SegmentWriter &) = delete;
    SegmentWriter &operator=(const SegmentWriter &) = delete;
    ~SegmentWriter();

    /**
     * Create and map "/heapmd.<pid>", stamping identity from
     * @p program (truncated to 63 chars).  Returns false (and stays
     * invalid) if shm is unavailable; the shim then just runs dark.
     */
    bool create(std::uint32_t pid, const char *program);

    bool valid() const { return header_ != nullptr; }

    /**
     * Publish all @p values under one seqlock write section and
     * refresh the heartbeat.  Slots not being published this round
     * should carry their previous value (the writer owns them all).
     */
    void publish(const std::array<std::uint64_t, kSlotCount> &values);

    /**
     * Cheap partial publish for allocator hot paths: updates the
     * first @p count slots only (the gauge/counter prefix), still
     * under the seqlock so readers never see a half-applied batch.
     */
    void publishPrefix(const std::uint64_t *values, std::size_t count);

    /** Stamp the heartbeat without touching any value slot. */
    void heartbeat();

    /** Unmap and shm_unlink: the normal finalize/atexit path. */
    void unlinkAndClose();

    /**
     * Unmap without unlinking: the forked-child path, where the
     * mapping is a copy of the *parent's* live segment and must not
     * be torn down under it.
     */
    void abandon();

  private:
    SegmentHeader *header_ = nullptr;
    char name_[32] = {0};
};

/** One consistent copy of a segment, plus its identity fields. */
struct SegmentSnapshot
{
    std::uint32_t pid = 0;
    std::uint32_t layoutVersion = 0;
    std::string program;
    std::uint64_t startMonoMs = 0;
    std::uint64_t heartbeatMonoMs = 0;
    std::array<std::uint64_t, kSlotCount> values{};

    std::uint64_t value(Slot s) const { return values[slotIndex(s)]; }

    /** True once the shim has published at least one scan's metrics. */
    bool hasMetrics() const
    {
        return values[metricSlotIndex(MetricId::Roots)] != kMetricAbsent;
    }

    /** Degree-metric percentage (0..100); 0 when absent. */
    double metricPercent(MetricId id) const
    {
        const std::uint64_t raw = values[metricSlotIndex(id)];
        return raw == kMetricAbsent
                   ? 0.0
                   : static_cast<double>(raw) /
                         static_cast<double>(kMetricScale);
    }

    /** Milliseconds since the writer's last publish, given mono now. */
    std::uint64_t staleMs(std::uint64_t now_mono_ms) const
    {
        return now_mono_ms > heartbeatMonoMs
                   ? now_mono_ms - heartbeatMonoMs
                   : 0;
    }
};

/** CLI-side endpoint: attach read-only, copy snapshots via seqlock. */
class SegmentReader
{
  public:
    SegmentReader() = default;
    SegmentReader(const SegmentReader &) = delete;
    SegmentReader &operator=(const SegmentReader &) = delete;
    ~SegmentReader();

    /** Attach to the segment of @p pid; false + @p error on failure. */
    bool attachPid(std::uint32_t pid, std::string *error);

    /** Attach by raw shm name (tests / future fleet tooling). */
    bool attachName(const std::string &shm_name, std::string *error);

    bool valid() const { return header_ != nullptr; }

    /**
     * Copy one consistent snapshot.  Retries the seqlock a bounded
     * number of times; fails (false + @p error) on version skew, a
     * missing magic, or a writer that never quiesces.
     */
    bool read(SegmentSnapshot &out, std::string *error) const;

    void close();

  private:
    const SegmentHeader *header_ = nullptr;
};

/** Pids with a "/heapmd.<pid>" segment in /dev/shm, ascending. */
std::vector<std::uint32_t> listSegmentPids();

/** True if @p pid exists (kill(pid, 0) semantics; EPERM counts). */
bool pidAlive(std::uint32_t pid);

/** Unlink @p pid's segment; true if an entry was removed. */
bool unlinkSegmentForPid(std::uint32_t pid);

/** Segments whose writers are gone, removed; survivors, kept. */
struct ReapResult
{
    std::vector<std::uint32_t> reaped;
    std::vector<std::uint32_t> alive;
};

/** Garbage-collect segments of dead pids (`heapmd top --reap`). */
ReapResult reapDeadSegments();

} // namespace obsv
} // namespace heapmd

#endif // HEAPMD_OBSV_SEGMENT_HH
