/**
 * @file
 * Text rendering for `heapmd top`: one block per live segment with
 * heap gauges, scan counters, the latest degree metrics, drift
 * against a trained model's stable ranges, and heartbeat staleness.
 */

#ifndef HEAPMD_OBSV_TOP_VIEW_HH
#define HEAPMD_OBSV_TOP_VIEW_HH

#include <string>
#include <vector>

#include "model/model.hh"
#include "obsv/segment.hh"

namespace heapmd
{
namespace obsv
{

/** Heartbeat older than this renders a STALE banner. */
inline constexpr std::uint64_t kStaleAfterMs = 5000;

/**
 * Render @p snapshots (caller-sorted) as the `heapmd top` view.
 * @p model, when non-null, adds a drift column: each metric with a
 * calibrated stable range shows in/below/above range.
 * @p now_mono_ms is the reader's CLOCK_MONOTONIC (comparable with
 * the writer's on the same host) for staleness.
 */
std::string renderTop(const std::vector<SegmentSnapshot> &snapshots,
                      const HeapModel *model,
                      std::uint64_t now_mono_ms);

} // namespace obsv
} // namespace heapmd

#endif // HEAPMD_OBSV_TOP_VIEW_HH
