/**
 * @file
 * One observation of all metrics at a metric computation point.
 */

#ifndef HEAPMD_METRICS_METRIC_SAMPLE_HH
#define HEAPMD_METRICS_METRIC_SAMPLE_HH

#include <array>
#include <cstdint>

#include "metrics/metric.hh"
#include "support/types.hh"

namespace heapmd
{

/**
 * Values of the seven degree metrics (percent of vertices, 0..100) at
 * one metric computation point, plus enough context to anchor it in
 * the run.
 */
struct MetricSample
{
    /** Event time when the sample was taken. */
    Tick tick = 0;

    /** Ordinal of the metric computation point (0-based). */
    std::uint64_t pointIndex = 0;

    /** Live vertex count at the sample (0 => values are all 0). */
    std::uint64_t vertexCount = 0;

    /** Distinct edge count at the sample. */
    std::uint64_t edgeCount = 0;

    /** Metric values, indexed by metricIndex(). */
    std::array<double, kNumMetrics> values{};

    /** Value of a metric by id. */
    double
    value(MetricId id) const
    {
        return values[metricIndex(id)];
    }
};

/**
 * Optional whole-graph extension metrics (Section 2.1 lists component
 * counts as candidate metrics).  Sampled at a lower rate because they
 * cost O(V + E).
 */
struct ExtendedSample
{
    Tick tick = 0;
    std::uint64_t pointIndex = 0;
    std::uint64_t componentCount = 0;   //!< weakly-connected components
    std::uint64_t largestComponent = 0; //!< vertices in the largest
    std::uint64_t sccCount = 0;         //!< strongly-connected comps
    double meanComponentSize = 0.0;
};

} // namespace heapmd

#endif // HEAPMD_METRICS_METRIC_SAMPLE_HH
