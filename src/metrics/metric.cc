#include "metrics/metric.hh"

#include "support/logging.hh"

namespace heapmd
{

namespace
{

const std::array<std::string, kNumMetrics> kNames = {
    "Root", "Indeg=1", "Indeg=2", "Leaves", "Outdeg=1", "Outdeg=2",
    "In=Out",
};

} // namespace

const std::string &
metricName(MetricId id)
{
    return kNames[metricIndex(id)];
}

MetricId
metricFromName(const std::string &name)
{
    if (const auto id = tryMetricFromName(name))
        return *id;
    HEAPMD_PANIC("unknown metric name '", name, "'");
}

std::optional<MetricId>
tryMetricFromName(const std::string &name)
{
    for (MetricId id : kAllMetrics) {
        if (kNames[metricIndex(id)] == name)
            return id;
    }
    return std::nullopt;
}

} // namespace heapmd
