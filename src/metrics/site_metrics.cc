#include "metrics/site_metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "heapgraph/heap_graph.hh"

namespace heapmd
{

namespace
{

struct SiteAccumulator
{
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t indeg[3] = {0, 0, 0};
    std::uint64_t outdeg[3] = {0, 0, 0};
    std::uint64_t in_eq_out = 0;
};

} // namespace

std::vector<SiteMetrics>
computeSiteMetrics(const HeapGraph &graph, std::size_t top_k,
                   std::uint64_t min_objects)
{
    std::unordered_map<FnId, SiteAccumulator> acc;
    graph.forEachObject([&](const ObjectRecord &rec) {
        SiteAccumulator &a = acc[graph.provenanceOf(rec).allocSite];
        ++a.count;
        a.bytes += rec.size;
        const std::size_t in = rec.indegree();
        const std::size_t out = rec.outdegree();
        if (in < 3)
            ++a.indeg[in];
        if (out < 3)
            ++a.outdeg[out];
        if (in == out)
            ++a.in_eq_out;
    });

    std::vector<SiteMetrics> sites;
    sites.reserve(acc.size());
    for (const auto &[site, a] : acc) {
        if (a.count < min_objects)
            continue;
        SiteMetrics m;
        m.site = site;
        m.objectCount = a.count;
        m.liveBytes = a.bytes;
        const double total = static_cast<double>(a.count);
        const auto pct = [total](std::uint64_t n) {
            return 100.0 * static_cast<double>(n) / total;
        };
        m.values[metricIndex(MetricId::Roots)] = pct(a.indeg[0]);
        m.values[metricIndex(MetricId::Indeg1)] = pct(a.indeg[1]);
        m.values[metricIndex(MetricId::Indeg2)] = pct(a.indeg[2]);
        m.values[metricIndex(MetricId::Leaves)] = pct(a.outdeg[0]);
        m.values[metricIndex(MetricId::Outdeg1)] = pct(a.outdeg[1]);
        m.values[metricIndex(MetricId::Outdeg2)] = pct(a.outdeg[2]);
        m.values[metricIndex(MetricId::InEqOut)] = pct(a.in_eq_out);
        sites.push_back(m);
    }

    std::sort(sites.begin(), sites.end(),
              [](const SiteMetrics &a, const SiteMetrics &b) {
                  if (a.objectCount != b.objectCount)
                      return a.objectCount > b.objectCount;
                  return a.site < b.site; // deterministic tie order
              });
    if (top_k != 0 && sites.size() > top_k)
        sites.resize(top_k);
    return sites;
}

std::size_t
mostDeviantSite(const std::vector<SiteMetrics> &sites, MetricId id,
                double heap_value)
{
    std::size_t best = static_cast<std::size_t>(-1);
    double best_deviation = -1.0;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const double deviation =
            std::fabs(sites[i].value(id) - heap_value);
        if (deviation > best_deviation) {
            best_deviation = deviation;
            best = i;
        }
    }
    return best;
}

std::size_t
mostCulpableSite(const std::vector<SiteMetrics> &sites, MetricId id,
                 double heap_value, bool above_max)
{
    std::size_t best = static_cast<std::size_t>(-1);
    double best_contribution = -1.0;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        double contribution =
            static_cast<double>(sites[i].objectCount) *
            (sites[i].value(id) - heap_value);
        if (!above_max)
            contribution = -contribution;
        if (contribution > best_contribution) {
            best_contribution = contribution;
            best = i;
        }
    }
    return best;
}

std::size_t
largestPropertyGrowth(const std::vector<SiteMetrics> &before,
                      const std::vector<SiteMetrics> &after,
                      MetricId id, bool above_max)
{
    const auto property_count = [id](const SiteMetrics &m) {
        return static_cast<double>(m.objectCount) * m.value(id) /
               100.0;
    };

    std::size_t best = static_cast<std::size_t>(-1);
    double best_growth = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < after.size(); ++i) {
        double baseline = 0.0;
        for (const SiteMetrics &m : before) {
            if (m.site == after[i].site) {
                baseline = property_count(m);
                break;
            }
        }
        double growth = property_count(after[i]) - baseline;
        if (!above_max)
            growth = -growth;
        if (growth > best_growth) {
            best_growth = growth;
            best = i;
        }
    }
    return best;
}

} // namespace heapmd
