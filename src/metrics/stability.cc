#include "metrics/stability.hh"

#include <array>
#include <cmath>

#include "support/stats.hh"

namespace heapmd
{

const std::string &
stabilityName(Stability s)
{
    static const std::array<std::string, 3> names = {
        "globally-stable", "locally-stable", "unstable",
    };
    return names[static_cast<std::size_t>(s)];
}

FluctuationSummary
analyzeMetric(const MetricSeries &series, MetricId id,
              const StabilityThresholds &thresholds)
{
    FluctuationSummary out;
    const std::vector<double> values =
        series.trimmedValuesOf(id, thresholds.trimFraction);
    if (values.empty())
        return out;

    MinMax envelope;
    for (double v : values)
        envelope.push(v);
    out.minValue = envelope.min();
    out.maxValue = envelope.max();

    RunningStats changes;
    for (double c : fluctuationOf(values, thresholds.zeroGuard))
        changes.push(c);
    out.avgChange = changes.mean();
    out.stdDev = changes.stddev();
    out.changeCount = changes.count();
    return out;
}

bool
isGloballyStable(const FluctuationSummary &summary,
                 const StabilityThresholds &thresholds)
{
    // A series with no measurable changes (e.g. constant zero) is
    // trivially flat.
    if (summary.changeCount == 0)
        return true;
    return std::fabs(summary.avgChange) <= thresholds.maxAbsAvgChange &&
           summary.stdDev <= thresholds.maxStdDev;
}

Stability
classify(const FluctuationSummary &summary,
         const StabilityThresholds &thresholds)
{
    if (isGloballyStable(summary, thresholds))
        return Stability::GloballyStable;
    if (std::fabs(summary.avgChange) <= thresholds.maxAbsAvgChange &&
        summary.stdDev <= thresholds.locallyStableStdDev) {
        return Stability::LocallyStable;
    }
    return Stability::Unstable;
}

} // namespace heapmd
