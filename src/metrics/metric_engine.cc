#include "metrics/metric_engine.hh"

#include "heapgraph/graph_algorithms.hh"
#include "heapgraph/heap_graph.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

MetricSample
MetricEngine::sample(const HeapGraph &graph, Tick tick,
                     std::uint64_t point_index)
{
    const DegreeHistogram &h = graph.histogram();
    MetricSample s;
    s.tick = tick;
    s.pointIndex = point_index;
    s.vertexCount = h.vertexCount();
    s.edgeCount = graph.edgeCount();

    if (s.vertexCount == 0)
        return s; // all metrics 0 on an empty heap

    const double total = static_cast<double>(s.vertexCount);
    const auto pct = [total](std::uint64_t count) {
        return 100.0 * static_cast<double>(count) / total;
    };

    s.values[metricIndex(MetricId::Roots)] = pct(h.indegCount(0));
    s.values[metricIndex(MetricId::Indeg1)] = pct(h.indegCount(1));
    s.values[metricIndex(MetricId::Indeg2)] = pct(h.indegCount(2));
    s.values[metricIndex(MetricId::Leaves)] = pct(h.outdegCount(0));
    s.values[metricIndex(MetricId::Outdeg1)] = pct(h.outdegCount(1));
    s.values[metricIndex(MetricId::Outdeg2)] = pct(h.outdegCount(2));
    s.values[metricIndex(MetricId::InEqOut)] = pct(h.inEqOutCount());
    return s;
}

ExtendedSample
MetricEngine::sampleExtended(const HeapGraph &graph, Tick tick,
                             std::uint64_t point_index)
{
    HEAPMD_TRACE_SPAN("metrics.sample_extended");
    HEAPMD_COUNTER_INC("metrics.extended_samples");
    ExtendedSample s;
    s.tick = tick;
    s.pointIndex = point_index;
    const ComponentSummary weak = connectedComponents(graph);
    s.componentCount = weak.count;
    s.largestComponent = weak.largest;
    s.meanComponentSize = weak.meanSize;
    s.sccCount = stronglyConnectedComponents(graph).count;
    return s;
}

} // namespace heapmd
