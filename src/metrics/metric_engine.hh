/**
 * @file
 * Computes metric samples from a heap-graph snapshot.
 */

#ifndef HEAPMD_METRICS_METRIC_ENGINE_HH
#define HEAPMD_METRICS_METRIC_ENGINE_HH

#include "metrics/metric_sample.hh"

namespace heapmd
{

class HeapGraph;

/**
 * Stateless sampler: turns the heap-graph's degree census into the
 * seven percentage metrics.  O(1) per sample thanks to the
 * incrementally maintained DegreeHistogram.
 */
class MetricEngine
{
  public:
    /** Sample the core metrics at the given point. */
    static MetricSample sample(const HeapGraph &graph, Tick tick,
                               std::uint64_t point_index);

    /**
     * Sample the extension metrics (component structure).
     * O(V + E); intended for low-rate sampling only.
     */
    static ExtendedSample sampleExtended(const HeapGraph &graph,
                                         Tick tick,
                                         std::uint64_t point_index);
};

} // namespace heapmd

#endif // HEAPMD_METRICS_METRIC_ENGINE_HH
