/**
 * @file
 * The per-run metric time series and its derived views.
 */

#ifndef HEAPMD_METRICS_SERIES_HH
#define HEAPMD_METRICS_SERIES_HH

#include <cstddef>
#include <string>
#include <vector>

#include "metrics/metric_sample.hh"

namespace heapmd
{

/** One (point, tick, value) observation of a single metric. */
struct SeriesPoint
{
    std::uint64_t pointIndex = 0;
    Tick tick = 0;
    double value = 0.0;
};

/** Summary statistics of one metric over a whole series. */
struct SeriesSummary
{
    std::size_t count = 0;
    double min = 0.0;    //!< 0 when empty
    double max = 0.0;    //!< 0 when empty
    double mean = 0.0;
    double stddev = 0.0; //!< population standard deviation
};

/**
 * All metric samples collected during one run of a program on one
 * input, in collection order (one entry per metric computation point).
 */
class MetricSeries
{
  public:
    /** Append a sample (pointIndex is expected to be monotone). */
    void push(const MetricSample &sample);

    /** Number of metric computation points recorded. */
    std::size_t size() const { return samples_.size(); }

    bool empty() const { return samples_.empty(); }

    /** Sample at position @p i (collection order). */
    const MetricSample &at(std::size_t i) const;

    /** All samples, collection order. */
    const std::vector<MetricSample> &samples() const { return samples_; }

    /** The value series of one metric over all samples. */
    std::vector<double> valuesOf(MetricId id) const;

    /**
     * Index range [first, last) that survives trimming @p fraction of
     * the points at each end (the paper ignores the first and last 10%
     * as startup/shutdown).  Never trims the series to fewer than two
     * points when at least two exist.
     */
    std::pair<std::size_t, std::size_t>
    trimmedRange(double fraction) const;

    /** The value series of one metric within the trimmed range. */
    std::vector<double> trimmedValuesOf(MetricId id,
                                        double fraction) const;

    /**
     * The points of @p id whose pointIndex falls within
     * [center - radius, center + radius] -- the slice an incident
     * bundle captures around a range crossing.  Samples are matched
     * by their recorded pointIndex, not their position, so replayed
     * or subsampled series window correctly.
     */
    std::vector<SeriesPoint> window(MetricId id, std::uint64_t center,
                                    std::uint64_t radius) const;

    /** Whole-series summary statistics of @p id (manifests). */
    SeriesSummary summaryOf(MetricId id) const;

    /** Label for reports ("input 3 of vpr"). */
    std::string label;

  private:
    std::vector<MetricSample> samples_;
};

/**
 * Consecutive-point percentage changes of a value series:
 * (y[i+1] - y[i]) / y[i] * 100 (Section 3 of the paper).
 *
 * Entries whose base value |y[i]| < @p zero_guard are skipped, since
 * the paper's formula divides by y[i].
 */
std::vector<double> fluctuationOf(const std::vector<double> &values,
                                  double zero_guard = 1e-9);

} // namespace heapmd

#endif // HEAPMD_METRICS_SERIES_HH
