/**
 * @file
 * Stability classification of metric series (Section 3 of the paper).
 */

#ifndef HEAPMD_METRICS_STABILITY_HH
#define HEAPMD_METRICS_STABILITY_HH

#include <cstddef>
#include <string>

#include "metrics/series.hh"

namespace heapmd
{

/**
 * Thresholds of the stability definition.  Paper values: a metric is
 * stable when the average change is within +/-1% and the standard
 * deviation of change is below 5, computed over consecutive metric
 * computation points after trimming 10% at each end.
 */
struct StabilityThresholds
{
    double maxAbsAvgChange = 1.0; //!< percent, paper: +/- 1%
    double maxStdDev = 5.0;       //!< paper: 5
    double trimFraction = 0.10;   //!< paper: first/last 10%
    double zeroGuard = 1e-9;      //!< skip changes with |base| below

    /**
     * Upper stddev bound separating *locally stable* from *unstable*
     * when the average change is small.  Our extension (the paper
     * describes locally stable metrics qualitatively).
     */
    double locallyStableStdDev = 25.0;
};

/** Stability classes of Section 2.1's metric summarizer. */
enum class Stability
{
    GloballyStable, //!< flat change distribution, small stddev
    LocallyStable,  //!< flat on average, phase spikes
    Unstable,       //!< drifting or wildly varying
};

/** Display name of a Stability value. */
const std::string &stabilityName(Stability s);

/** Change-distribution summary of one metric in one run. */
struct FluctuationSummary
{
    double avgChange = 0.0; //!< mean percentage change
    double stdDev = 0.0;    //!< stddev of percentage change
    std::size_t changeCount = 0; //!< changes that survived zero-guard
    double minValue = 0.0;  //!< min metric value in the trimmed range
    double maxValue = 0.0;  //!< max metric value in the trimmed range
};

/**
 * Summarize one metric of one run: trim, difference, average.
 *
 * @param series full-run metric series.
 * @param id     which metric.
 * @param thresholds supplies trim fraction and zero guard.
 */
FluctuationSummary analyzeMetric(const MetricSeries &series, MetricId id,
                                 const StabilityThresholds &thresholds);

/** True when the summary meets the globally-stable thresholds. */
bool isGloballyStable(const FluctuationSummary &summary,
                      const StabilityThresholds &thresholds);

/** Three-way classification (globally / locally stable, unstable). */
Stability classify(const FluctuationSummary &summary,
                   const StabilityThresholds &thresholds);

} // namespace heapmd

#endif // HEAPMD_METRICS_STABILITY_HH
