/**
 * @file
 * Per-allocation-site degree metrics.
 *
 * Section 4.4 (item 2) of the paper: with type information, "HeapMD
 * could restrict attention to data members of a particular type, and
 * only compute metrics over these data members", enabling
 * finer-grained bug detection and better root-cause attribution.
 * Binaries here carry no type info (as in the paper's prototype), so
 * the *allocation site* -- the function active at allocation, already
 * recorded on every ObjectRecord -- serves as the type proxy: objects
 * allocated by `BinaryTree::insert` are tree nodes, objects from
 * `BufferPool::acquire` are buffers, and so on.
 *
 * These metrics are O(V) to compute, so they are sampled on demand
 * (e.g. when a whole-heap anomaly fires and needs attribution), not
 * on the hot path.
 */

#ifndef HEAPMD_METRICS_SITE_METRICS_HH
#define HEAPMD_METRICS_SITE_METRICS_HH

#include <string>
#include <vector>

#include "metrics/metric.hh"
#include "support/types.hh"

namespace heapmd
{

class HeapGraph;

/** The seven degree metrics over one allocation site's objects. */
struct SiteMetrics
{
    FnId site = kNoFunction;

    /** Live objects allocated at this site. */
    std::uint64_t objectCount = 0;

    /** Live bytes allocated at this site. */
    std::uint64_t liveBytes = 0;

    /** Metric values (percent of this site's objects). */
    std::array<double, kNumMetrics> values{};

    double
    value(MetricId id) const
    {
        return values[metricIndex(id)];
    }
};

/**
 * Compute degree metrics per allocation site over a graph snapshot.
 *
 * @param graph       the heap-graph image.
 * @param top_k       keep only the top_k sites by live object count
 *                    (0 keeps all sites).
 * @param min_objects drop sites with fewer live objects (percentages
 *                    over tiny populations are noise).
 * @return sites ordered by live object count, descending.
 */
std::vector<SiteMetrics> computeSiteMetrics(const HeapGraph &graph,
                                            std::size_t top_k = 0,
                                            std::uint64_t min_objects =
                                                8);

/**
 * Attribution helper: among the given sites, the one whose value of
 * @p id deviates most from the whole-heap value @p heap_value.
 * @return index into @p sites, or SIZE_MAX when empty.
 */
std::size_t mostDeviantSite(const std::vector<SiteMetrics> &sites,
                            MetricId id, double heap_value);

/**
 * Direction-aware attribution: the site contributing most to a
 * whole-heap excursion of @p id.  Contribution is
 * objectCount * (site value - heap value), signed toward the anomaly
 * direction (@p above_max true for an above-maximum violation).
 * @return index into @p sites, or SIZE_MAX when empty.
 */
std::size_t mostCulpableSite(const std::vector<SiteMetrics> &sites,
                             MetricId id, double heap_value,
                             bool above_max);

/**
 * Temporal attribution: compare two site snapshots of the same run
 * (e.g. shortly after startup vs at the anomaly) and return the site
 * in @p after whose *count of objects with property @p id* grew the
 * most (shrank the most when @p above_max is false).  Static
 * populations that legitimately have the property (an oct-tree is
 * all indegree-1) cancel out; the buggy site keeps accumulating.
 * @return index into @p after, or SIZE_MAX when empty.
 */
std::size_t
largestPropertyGrowth(const std::vector<SiteMetrics> &before,
                      const std::vector<SiteMetrics> &after,
                      MetricId id, bool above_max = true);

} // namespace heapmd

#endif // HEAPMD_METRICS_SITE_METRICS_HH
