#include "metrics/series.hh"

#include <cmath>

#include "support/logging.hh"
#include "support/stats.hh"

namespace heapmd
{

void
MetricSeries::push(const MetricSample &sample)
{
    samples_.push_back(sample);
}

const MetricSample &
MetricSeries::at(std::size_t i) const
{
    if (i >= samples_.size())
        HEAPMD_PANIC("MetricSeries index ", i, " out of range ",
                     samples_.size());
    return samples_[i];
}

std::vector<double>
MetricSeries::valuesOf(MetricId id) const
{
    std::vector<double> out;
    out.reserve(samples_.size());
    for (const MetricSample &s : samples_)
        out.push_back(s.value(id));
    return out;
}

std::pair<std::size_t, std::size_t>
MetricSeries::trimmedRange(double fraction) const
{
    if (fraction < 0.0 || fraction >= 0.5)
        HEAPMD_PANIC("trim fraction ", fraction, " must be in [0, 0.5)");
    const std::size_t n = samples_.size();
    if (n < 2)
        return {0, n};
    std::size_t cut = static_cast<std::size_t>(
        std::floor(static_cast<double>(n) * fraction));
    // Keep at least two points so a change series exists.
    while (cut > 0 && n - 2 * cut < 2)
        --cut;
    return {cut, n - cut};
}

std::vector<double>
MetricSeries::trimmedValuesOf(MetricId id, double fraction) const
{
    const auto [first, last] = trimmedRange(fraction);
    std::vector<double> out;
    out.reserve(last - first);
    for (std::size_t i = first; i < last; ++i)
        out.push_back(samples_[i].value(id));
    return out;
}

std::vector<SeriesPoint>
MetricSeries::window(MetricId id, std::uint64_t center,
                     std::uint64_t radius) const
{
    const std::uint64_t first = center >= radius ? center - radius : 0;
    const std::uint64_t last = center + radius; // saturation unneeded:
                                                // pointIndex is dense
    std::vector<SeriesPoint> out;
    for (const MetricSample &s : samples_) {
        if (s.pointIndex < first || s.pointIndex > last)
            continue;
        out.push_back({s.pointIndex, s.tick, s.value(id)});
    }
    return out;
}

SeriesSummary
MetricSeries::summaryOf(MetricId id) const
{
    RunningStats stats;
    for (const MetricSample &s : samples_)
        stats.push(s.value(id));
    SeriesSummary summary;
    summary.count = stats.count();
    if (stats.count() > 0) {
        summary.min = stats.min();
        summary.max = stats.max();
    }
    summary.mean = stats.mean();
    summary.stddev = stats.stddev();
    return summary;
}

std::vector<double>
fluctuationOf(const std::vector<double> &values, double zero_guard)
{
    std::vector<double> out;
    if (values.size() < 2)
        return out;
    out.reserve(values.size() - 1);
    for (std::size_t i = 0; i + 1 < values.size(); ++i) {
        const double base = values[i];
        if (std::fabs(base) < zero_guard)
            continue;
        out.push_back((values[i + 1] - base) / base * 100.0);
    }
    return out;
}

} // namespace heapmd
