/**
 * @file
 * Identifiers for the heap-graph degree metrics.
 */

#ifndef HEAPMD_METRICS_METRIC_HH
#define HEAPMD_METRICS_METRIC_HH

#include <array>
#include <cstddef>
#include <optional>
#include <string>

namespace heapmd
{

/**
 * The seven degree-based metrics of Section 2.1, in paper order.
 * Each is a percentage of live heap-graph vertices.
 */
enum class MetricId : std::size_t
{
    Roots,   //!< % vertices with indegree = 0
    Indeg1,  //!< % vertices with indegree = 1
    Indeg2,  //!< % vertices with indegree = 2
    Leaves,  //!< % vertices with outdegree = 0
    Outdeg1, //!< % vertices with outdegree = 1
    Outdeg2, //!< % vertices with outdegree = 2
    InEqOut, //!< % vertices with indegree = outdegree
};

/** Number of core metrics. */
inline constexpr std::size_t kNumMetrics = 7;

/** All metric ids, for iteration. */
inline constexpr std::array<MetricId, kNumMetrics> kAllMetrics = {
    MetricId::Roots,   MetricId::Indeg1,  MetricId::Indeg2,
    MetricId::Leaves,  MetricId::Outdeg1, MetricId::Outdeg2,
    MetricId::InEqOut,
};

/** Zero-based index of a metric id. */
constexpr std::size_t
metricIndex(MetricId id)
{
    return static_cast<std::size_t>(id);
}

/** Short display name matching the paper's tables (e.g. "Outdeg=1"). */
const std::string &metricName(MetricId id);

/** Parse a short display name back to an id; panics on unknown name. */
MetricId metricFromName(const std::string &name);

/** Parse a display name back to an id; nullopt on unknown name. */
std::optional<MetricId> tryMetricFromName(const std::string &name);

} // namespace heapmd

#endif // HEAPMD_METRICS_METRIC_HH
