/**
 * @file
 * Streaming range detector with hysteresis for `heapmd monitor`.
 *
 * The batch AnomalyDetector is built for finite replayed runs: it
 * arms on approach, reports every excursion, and is finalized once at
 * the end.  A monitor that never ends needs different ergonomics --
 * nobody should be paged because one noisy metric point grazed a
 * bound.  OnlineDetector therefore wraps the same calibrated ranges
 * (identical boundSlack() arithmetic, so a violation here is a
 * violation in `heapmd check` too) in a per-metric hysteresis state
 * machine:
 *
 *     Armed --violating--> Suspect --debounce met--> Firing
 *       ^                     | in-range               | in-range
 *       |                     v                        v
 *       +--rearm met-------- Cooling <--violating------+
 *                              (violation during Cooling returns to
 *                               Firing without a new report)
 *
 * A BugReport is emitted exactly once per excursion, at the sample
 * that completes the debounce streak; re-arming requires a full
 * streak of in-range samples, so a metric oscillating around its
 * bound produces one incident, not a pager storm.
 */

#ifndef HEAPMD_MONITOR_ONLINE_DETECTOR_HH
#define HEAPMD_MONITOR_ONLINE_DETECTOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "detector/anomaly_detector.hh"
#include "detector/bug_report.hh"
#include "metrics/metric_sample.hh"
#include "model/model.hh"
#include "runtime/process.hh"
#include "support/ring_buffer.hh"

namespace heapmd
{

namespace monitor
{

/** Tunables of the streaming detector. */
struct OnlineDetectorConfig
{
    /**
     * Range-slack knobs, shared with the batch detector so the two
     * agree on what "violating" means (logCapacity/afterSamples of
     * the batch machinery are unused here).
     */
    DetectorConfig detector;

    /**
     * Consecutive violating samples before an incident fires.  One
     * noisy metric point never pages anyone; a real excursion
     * violates every sample until the heap graph recovers.
     */
    std::size_t debounceSamples = 3;

    /**
     * Consecutive in-range samples after an excursion before the
     * metric re-arms and may fire again.
     */
    std::size_t rearmSamples = 8;

    /** Per-metric context ring: recent samples kept for the report. */
    std::size_t contextCapacity = 64;

    /** Frames captured per context snapshot (Process-fed mode). */
    std::size_t callStackDepth = 16;
};

/** Where a metric is in the hysteresis cycle. */
enum class MetricPhase
{
    Armed,   //!< in range, ready to detect
    Suspect, //!< violating, debounce streak building
    Firing,  //!< incident emitted, still violating
    Cooling, //!< back in range, re-arm streak building
};

/** Stable lowercase name ("armed", "suspect", ...). */
const char *metricPhaseName(MetricPhase phase);

/** Live per-metric state exported to the Prometheus families. */
struct MetricView
{
    MetricId id = MetricId::Roots;
    bool observed = false; //!< at least one sample seen
    double value = 0.0;    //!< most recent observed value
    double lo = 0.0;       //!< slacked lower bound
    double hi = 0.0;       //!< slacked upper bound
    /** Points beyond the slacked range (0 while in range). */
    double distance = 0.0;
    MetricPhase phase = MetricPhase::Armed;
    std::uint64_t violatingSamples = 0;
    std::uint64_t incidents = 0;
};

/**
 * Per-sample streaming checker.
 *
 * Feed it with observe() (any sample source: a followed segment
 * chain through a Process, or percentages read from a live shm stats
 * segment), or attach it to a Process as a SampleObserver.  Incidents
 * surface through the onIncident callback at the firing sample, so a
 * caller can write the bundle while the monitored process is still
 * running.
 */
class OnlineDetector : public SampleObserver
{
  public:
    /** @param model calibrated model; must outlive the detector. */
    explicit OnlineDetector(const HeapModel &model,
                            OnlineDetectorConfig config = {});

    /** Called with each finalized report, at the firing sample. */
    void
    setIncidentCallback(std::function<void(const BugReport &)> cb)
    {
        on_incident_ = std::move(cb);
    }

    /**
     * Check one sample.  @p frames is the call-stack context stored
     * with the sample (innermost first); sources without a shadow
     * stack pass whatever marker they have (the scan-pass FnId).
     */
    void observe(const MetricSample &sample,
                 const std::vector<FnId> &frames);

    /** SampleObserver: observe() with the process's shadow stack. */
    void onSample(const MetricSample &sample,
                  const Process &process) override;

    /** Register with @p process as a sample observer. */
    void attach(Process &process) { process.addSampleObserver(this); }

    /** Live per-metric state, in model-entry order. */
    std::vector<MetricView> views() const;

    /** Reports fired so far (one per excursion). */
    const std::vector<BugReport> &reports() const { return reports_; }

    /** Samples examined. */
    std::uint64_t samplesChecked() const { return samples_checked_; }

    /** True when at least one incident fired. */
    bool anomalous() const { return !reports_.empty(); }

  private:
    struct MetricState
    {
        explicit MetricState(std::size_t context_capacity)
            : context(context_capacity)
        {
        }

        MetricPhase phase = MetricPhase::Armed;
        std::size_t streak = 0; //!< debounce or re-arm progress
        bool observed = false;
        double lastValue = 0.0;
        double lastDistance = 0.0;
        std::uint64_t violatingSamples = 0;
        std::uint64_t incidents = 0;
        RingBuffer<StackLogEntry> context;
    };

    void fire(std::size_t entry_index, MetricState &state,
              const MetricSample &sample, double value);

    const HeapModel &model_;
    OnlineDetectorConfig config_;
    std::vector<MetricState> states_; //!< parallel to model entries()
    std::vector<BugReport> reports_;
    std::function<void(const BugReport &)> on_incident_;
    std::uint64_t samples_checked_ = 0;
};

} // namespace monitor

} // namespace heapmd

#endif // HEAPMD_MONITOR_ONLINE_DETECTOR_HH
