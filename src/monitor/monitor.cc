#include "monitor/monitor.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <utility>

#include "capture/capture_env.hh"
#include "obsv/prometheus.hh"
#include "obsv/segment.hh"
#include "telemetry/telemetry.hh"
#include "trace/segment_set.hh"

namespace heapmd
{

namespace monitor
{

namespace
{

namespace fs = std::filesystem;

void
sleepMs(std::uint64_t ms)
{
    timespec ts;
    ts.tv_sec = static_cast<time_t>(ms / 1000);
    ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
    while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
    }
}

void
appendHeader(std::string &out, const char *name, const char *type,
             const char *help)
{
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
}

std::string
metricLabels(MetricId id)
{
    return "{metric=\"" + obsv::escapeLabelValue(metricName(id)) +
           "\"}";
}

void
appendU64(std::string &out, const char *name,
          const std::string &labels, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += name;
    out += labels;
    out += ' ';
    out += buf;
    out += '\n';
}

void
appendF64(std::string &out, const char *name,
          const std::string &labels, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", value);
    out += name;
    out += labels;
    out += ' ';
    out += buf;
    out += '\n';
}

} // namespace

MonitorSession::MonitorSession(const HeapModel &model,
                               MonitorOptions options)
    : model_(model), options_(std::move(options))
{
    if (options_.pollMs == 0)
        options_.pollMs = 1;
}

MonitorSession::~MonitorSession() = default;

const FunctionRegistry &
MonitorSession::registry() const
{
    return process_ != nullptr ? process_->registry() : own_registry_;
}

const MetricSeries &
MonitorSession::series() const
{
    return process_ != nullptr ? process_->series() : own_series_;
}

std::vector<MetricView>
MonitorSession::views() const
{
    if (detector_ == nullptr)
        return {};
    return detector_->views();
}

bool
MonitorSession::run(std::string &error)
{
    HEAPMD_TRACE_SPAN("monitor.run");
    HEAPMD_PHASE_SPAN_NAMED(phase, "phase.monitor");

    bool ok = false;
    if (!options_.segmentsBase.empty() && options_.pid != 0) {
        error = "monitor needs exactly one source: a segment base "
                "path or a pid, not both";
    } else if (!options_.segmentsBase.empty()) {
        ok = runSegments(error);
    } else if (options_.pid != 0) {
        ok = runPid(error);
    } else {
        error = "monitor needs a source: a segment base path or a "
                "pid";
    }

    phase.addBytes(bytes_consumed_);
    HEAPMD_COUNTER_ADD("monitor.events", stats_.events);
    HEAPMD_COUNTER_ADD("monitor.samples", stats_.samples);
    HEAPMD_COUNTER_ADD("monitor.incidents", stats_.incidents);
    return ok;
}

void
MonitorSession::idle()
{
    if (detector_ != nullptr)
        stats_.samples = detector_->samplesChecked();
    if (options_.onIdle)
        options_.onIdle();
}

void
MonitorSession::handleIncident(const BugReport &report)
{
    ++stats_.incidents;
    reports_.push_back(report);
    if (detector_ != nullptr)
        stats_.samples = detector_->samplesChecked();

    if (!options_.bundleDir.empty()) {
        std::error_code ec;
        fs::create_directories(options_.bundleDir, ec);
        const diag::IncidentBundle bundle = diag::makeIncidentBundle(
            report, registry(), series(), options_.windowRadius);
        char name[48];
        std::snprintf(name, sizeof name, "incident-%03" PRIu64
                      ".json",
                      stats_.bundlesWritten);
        const fs::path path = fs::path(options_.bundleDir) / name;
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (out) {
            diag::saveIncidentBundle(bundle, out);
            out.flush();
            if (out)
                ++stats_.bundlesWritten;
        }
    }

    if (options_.onIncident)
        options_.onIncident(report);
}

bool
MonitorSession::runSegments(std::string &error)
{
    ProcessConfig pcfg;
    pcfg.metricFrequency = 1; // one sample per shim scan marker
    pcfg.callStackDepth = options_.detector.callStackDepth;
    pcfg.tolerateAddressReuse = true;
    process_ = std::make_unique<Process>(pcfg);

    // Interning the footer name tables as segments complete keeps
    // FnIds aligned with the writer's (each footer lists names in id
    // order and is a superset of its predecessors), so reports from
    // segment N symbolize with the names of segment N-1's footer.
    const auto intern_names =
        [this](const std::vector<std::string> &names) {
            for (const std::string &name : names)
                process_->registry().intern(name);
        };

    ExecutionChecker checker(model_);
    if (options_.follow) {
        detector_ = std::make_unique<OnlineDetector>(
            model_, options_.detector);
        detector_->setIncidentCallback(
            [this](const BugReport &report) {
                handleIncident(report);
            });
        detector_->attach(*process_);
    } else {
        checker.attach(*process_);
    }

    trace::SegmentChain *chain_ptr = nullptr;
    trace::SegmentChain::Options copts;
    copts.follow = options_.follow;
    copts.pollMs = options_.pollMs;
    copts.stopped = options_.stopped;
    copts.onWait = [this, &chain_ptr] {
        if (chain_ptr != nullptr)
            stats_.tailLagBytes = chain_ptr->tailLagBytes();
        idle();
    };
    trace::SegmentChain chain(options_.segmentsBase, copts);
    chain_ptr = &chain;

    Event event;
    while (chain.next(event)) {
        process_->onEvent(event);
        ++stats_.events;
        if (chain.segmentsConsumed() != stats_.segmentsConsumed) {
            stats_.segmentsConsumed = chain.segmentsConsumed();
            intern_names(chain.functionNames());
        }
    }
    bytes_consumed_ = chain.bytesConsumed();
    stats_.segmentsConsumed = chain.segmentsConsumed();
    stats_.truncatedTail = chain.sawTruncatedTail();
    stats_.tailLagBytes = chain.tailLagBytes();
    intern_names(chain.functionNames());

    if (chain.failed()) {
        error = chain.error();
        return false;
    }

    if (options_.follow) {
        stats_.samples = detector_->samplesChecked();
    } else {
        const CheckResult result = checker.finalize(*process_);
        stats_.samples = result.samplesChecked;
        for (const BugReport &report : result.reports)
            handleIncident(report);
    }
    return true;
}

bool
MonitorSession::runPid(std::string &error)
{
    detector_ =
        std::make_unique<OnlineDetector>(model_, options_.detector);
    detector_->setIncidentCallback([this](const BugReport &report) {
        handleIncident(report);
    });

    // The shm channel publishes aggregate percentages, not stacks;
    // every synthesized sample carries the scan marker as its only
    // context frame.
    const std::vector<FnId> scan_frames = {
        own_registry_.intern(capture::kScanFunctionName)};

    obsv::SegmentReader reader;
    std::uint64_t last_scans = 0;
    bool sampled = false;
    bool attached = false;

    for (;;) {
        if (options_.stopped && options_.stopped())
            break;

        if (!attached) {
            std::string attach_error;
            if (reader.attachPid(options_.pid, &attach_error)) {
                attached = true;
            } else if (!obsv::pidAlive(options_.pid)) {
                if (sampled)
                    break; // watched it to the end
                error = "process " + std::to_string(options_.pid) +
                        " is gone and left no stats segment";
                return false;
            } else if (!options_.follow) {
                error = attach_error;
                return false;
            } else {
                idle();
                sleepMs(options_.pollMs);
                continue;
            }
        }

        obsv::SegmentSnapshot snap;
        std::string read_error;
        if (!reader.read(snap, &read_error)) {
            if (!obsv::pidAlive(options_.pid))
                break; // writer died mid-run; nothing more to read
            error = read_error;
            return false;
        }

        if (own_series_.label.empty() && !snap.program.empty())
            own_series_.label = snap.program;
        stats_.events = snap.value(obsv::Slot::EventsEmitted);

        const std::uint64_t scans =
            snap.value(obsv::Slot::ScanPasses);
        if (snap.hasMetrics() && (!sampled || scans != last_scans)) {
            MetricSample sample;
            sample.tick = snap.value(obsv::Slot::EventsEmitted);
            sample.pointIndex = stats_.samples;
            sample.vertexCount = snap.value(obsv::Slot::LiveObjects);
            sample.edgeCount = snap.value(obsv::Slot::LiveEdges);
            for (const MetricId id : kAllMetrics)
                sample.values[metricIndex(id)] =
                    snap.metricPercent(id);
            own_series_.push(sample);
            detector_->observe(sample, scan_frames);
            stats_.samples = detector_->samplesChecked();
            last_scans = scans;
            sampled = true;
        }

        if (!options_.follow)
            break; // --once: one consistent snapshot is the answer

        if (!obsv::pidAlive(options_.pid))
            break;
        idle();
        sleepMs(options_.pollMs);
    }

    stats_.samples = detector_->samplesChecked();
    return true;
}

std::string
MonitorSession::renderPrometheus() const
{
    const std::vector<MetricView> views = this->views();
    std::string out;
    out.reserve(2048);

    appendHeader(out, "heapmd_monitor_metric_percent", "gauge",
                 "Most recent observed value of each monitored "
                 "degree metric (percent of vertices).");
    for (const MetricView &view : views) {
        if (!view.observed)
            continue;
        appendF64(out, "heapmd_monitor_metric_percent",
                  metricLabels(view.id), view.value);
    }

    appendHeader(out, "heapmd_monitor_range_distance", "gauge",
                 "Percentage points the metric sits beyond its "
                 "slacked calibrated range (0 while in range).");
    for (const MetricView &view : views) {
        if (!view.observed)
            continue;
        appendF64(out, "heapmd_monitor_range_distance",
                  metricLabels(view.id), view.distance);
    }

    appendHeader(out, "heapmd_monitor_violating_samples_total",
                 "counter",
                 "Samples observed outside the slacked calibrated "
                 "range, per metric.");
    for (const MetricView &view : views)
        appendU64(out, "heapmd_monitor_violating_samples_total",
                  metricLabels(view.id), view.violatingSamples);

    appendHeader(out, "heapmd_monitor_incidents_total", "counter",
                 "Incidents fired by the hysteresis detector.");
    appendU64(out, "heapmd_monitor_incidents_total", "",
              stats_.incidents);

    appendHeader(out, "heapmd_monitor_bundles_written_total",
                 "counter",
                 "Incident bundles persisted to the bundle "
                 "directory.");
    appendU64(out, "heapmd_monitor_bundles_written_total", "",
              stats_.bundlesWritten);

    appendHeader(out, "heapmd_monitor_samples_total", "counter",
                 "Metric samples checked against the model.");
    appendU64(out, "heapmd_monitor_samples_total", "",
              stats_.samples);

    appendHeader(out, "heapmd_monitor_events_total", "counter",
                 "Trace events folded into the monitor's heap-graph "
                 "image (writer-reported in shm mode).");
    appendU64(out, "heapmd_monitor_events_total", "", stats_.events);

    appendHeader(out, "heapmd_monitor_segments_consumed_total",
                 "counter",
                 "Trace segments fully decoded by the monitor.");
    appendU64(out, "heapmd_monitor_segments_consumed_total", "",
              stats_.segmentsConsumed);

    appendHeader(out, "heapmd_monitor_tail_lag_bytes", "gauge",
                 "Bytes on disk the monitor has not yet decoded "
                 "(decode lag behind the writer).");
    appendU64(out, "heapmd_monitor_tail_lag_bytes", "",
              stats_.tailLagBytes);

    return out;
}

} // namespace monitor

} // namespace heapmd
