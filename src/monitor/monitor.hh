/**
 * @file
 * The continuous-monitoring session behind `heapmd monitor`.
 *
 * A MonitorSession watches one captured process and checks its heap
 * metrics against a trained model *while the process runs*, through
 * one of two sources:
 *
 *  - segments mode (`--segments`, a rotating capture base path):
 *    tail the rotating trace-segment set with trace::SegmentChain,
 *    fold every event into a Process (exactly the `heapmd check`
 *    replay configuration: one sample per shim scan marker,
 *    allocator address reuse tolerated), and feed each sample to the
 *    detector.  This is the high-fidelity path -- full call-stack
 *    context, full incident bundles.
 *
 *  - shm mode (`--pid`): attach the live /dev/shm stats segment and
 *    synthesize a sample whenever the shim publishes a new scan's
 *    metric percentages.  No trace needed, near-zero cost, but the
 *    context log carries only the scan marker (the shm channel has no
 *    stacks).
 *
 * In follow mode the OnlineDetector's hysteresis machine fires
 * incident bundles (diag schema, `incident-NNN.json`) the moment an
 * excursion survives its debounce, so a bundle exists while the
 * monitored workload is still alive.  In --once mode (follow = false)
 * the session replays the completed set under the same batch
 * ExecutionChecker that `heapmd check` uses, so its verdicts match a
 * check of the concatenated trace by construction.
 */

#ifndef HEAPMD_MONITOR_MONITOR_HH
#define HEAPMD_MONITOR_MONITOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "detector/execution_checker.hh"
#include "diag/incident_bundle.hh"
#include "metrics/series.hh"
#include "model/model.hh"
#include "monitor/online_detector.hh"
#include "runtime/process.hh"

namespace heapmd
{

namespace monitor
{

/** What to watch and how to react. */
struct MonitorOptions
{
    /**
     * Base path of a rotating segment set (or a plain completed
     * trace -- SegmentChain degrades gracefully).  Mutually exclusive
     * with pid.
     */
    std::string segmentsBase;

    /** Live process to watch via its shm stats segment (0 = unset). */
    std::uint32_t pid = 0;

    /** Directory for incident-NNN.json bundles; empty = don't write. */
    std::string bundleDir;

    /**
     * Keep watching a set/process still being written (the daemon
     * mode).  false = `--once`: consume what exists and finalize with
     * the batch checker for `heapmd check` parity.
     */
    bool follow = true;

    /** Wait granularity while idle, in milliseconds. */
    std::uint64_t pollMs = 50;

    /** +/- pointIndex radius of each bundle's metric window. */
    std::uint64_t windowRadius = diag::kDefaultWindowRadius;

    /** Hysteresis and range-slack tuning. */
    OnlineDetectorConfig detector;

    /** Abort check, polled while waiting (wire to a signal flag). */
    std::function<bool()> stopped;

    /**
     * Idle hook, pumped at least once per wait cycle; the CLI serves
     * pending Prometheus scrapes from here.
     */
    std::function<void()> onIdle;

    /** Incident hook, called after each bundle is (maybe) written. */
    std::function<void(const BugReport &)> onIncident;
};

/** Counters of one monitoring run (exported to Prometheus). */
struct MonitorStats
{
    std::uint64_t events = 0;   //!< trace events folded in
    std::uint64_t samples = 0;  //!< metric samples checked
    std::uint64_t segmentsConsumed = 0;
    std::uint64_t incidents = 0;
    std::uint64_t bundlesWritten = 0;
    std::uint64_t tailLagBytes = 0; //!< last observed decode lag
    bool truncatedTail = false; //!< final segment had no footer
};

/**
 * One monitoring run.  Construct, then run() -- it blocks until the
 * source ends (writer finalized the set / process died / --once
 * consumed everything) or stopped() fires.  All accessors are safe
 * from the onIdle/onIncident hooks: the session is single-threaded.
 */
class MonitorSession
{
  public:
    /** @param model calibrated model; must outlive the session. */
    MonitorSession(const HeapModel &model, MonitorOptions options);
    ~MonitorSession();

    MonitorSession(const MonitorSession &) = delete;
    MonitorSession &operator=(const MonitorSession &) = delete;

    /**
     * Watch until the source ends or stop is requested.
     * @return false with @p error set on a fatal condition (broken
     *         chain, unreadable shm segment); incidents are *not*
     *         fatal.
     */
    bool run(std::string &error);

    const MonitorStats &stats() const { return stats_; }

    /** Incidents fired (follow) or batch reports (--once). */
    const std::vector<BugReport> &reports() const { return reports_; }

    bool anomalous() const { return !reports_.empty(); }

    /** Registry for report symbolization. */
    const FunctionRegistry &registry() const;

    /** Metric series accumulated so far. */
    const MetricSeries &series() const;

    /** Per-metric detector state (empty in --once mode). */
    std::vector<MetricView> views() const;

    /**
     * Render the heapmd_monitor_* Prometheus exposition from current
     * state (text format 0.0.4; passes tools/check_prom.py).
     */
    std::string renderPrometheus() const;

  private:
    bool runSegments(std::string &error);
    bool runPid(std::string &error);
    void handleIncident(const BugReport &report);
    void idle();

    const HeapModel &model_;
    MonitorOptions options_;
    MonitorStats stats_;
    std::vector<BugReport> reports_;

    /** Segments mode state (null in shm mode). */
    std::unique_ptr<Process> process_;

    /** Shm mode state: monitor-owned series + registry. */
    MetricSeries own_series_;
    FunctionRegistry own_registry_;

    std::unique_ptr<OnlineDetector> detector_;
    std::uint64_t bytes_consumed_ = 0;
};

} // namespace monitor

} // namespace heapmd

#endif // HEAPMD_MONITOR_MONITOR_HH
