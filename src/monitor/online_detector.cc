#include "monitor/online_detector.hh"

#include <utility>

namespace heapmd
{

namespace monitor
{

const char *
metricPhaseName(MetricPhase phase)
{
    switch (phase) {
    case MetricPhase::Armed:
        return "armed";
    case MetricPhase::Suspect:
        return "suspect";
    case MetricPhase::Firing:
        return "firing";
    case MetricPhase::Cooling:
        return "cooling";
    }
    return "unknown";
}

OnlineDetector::OnlineDetector(const HeapModel &model,
                               OnlineDetectorConfig config)
    : model_(model), config_(config)
{
    if (config_.debounceSamples == 0)
        config_.debounceSamples = 1;
    if (config_.rearmSamples == 0)
        config_.rearmSamples = 1;
    if (config_.contextCapacity == 0)
        config_.contextCapacity = 1;
    states_.reserve(model_.entries().size());
    for (std::size_t i = 0; i < model_.entries().size(); ++i)
        states_.emplace_back(config_.contextCapacity);
}

void
OnlineDetector::onSample(const MetricSample &sample,
                         const Process &process)
{
    observe(sample,
            process.callStack().capture(config_.callStackDepth));
}

void
OnlineDetector::observe(const MetricSample &sample,
                        const std::vector<FnId> &frames)
{
    ++samples_checked_;
    const auto &entries = model_.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const HeapModel::Entry &entry = entries[i];
        MetricState &state = states_[i];
        const double value = sample.value(entry.id);

        state.observed = true;
        state.lastValue = value;
        state.context.push(StackLogEntry{sample.tick,
                                         sample.pointIndex, value,
                                         frames});

        const double slack = boundSlack(config_.detector, entry);
        const double lo = entry.minValue - slack;
        const double hi = entry.maxValue + slack;
        const bool violating = value < lo || value > hi;
        state.lastDistance =
            violating ? (value < lo ? lo - value : value - hi) : 0.0;
        if (violating)
            ++state.violatingSamples;

        switch (state.phase) {
        case MetricPhase::Armed:
            if (violating) {
                state.phase = MetricPhase::Suspect;
                state.streak = 1;
                if (state.streak >= config_.debounceSamples)
                    fire(i, state, sample, value);
            }
            break;
        case MetricPhase::Suspect:
            if (violating) {
                ++state.streak;
                if (state.streak >= config_.debounceSamples)
                    fire(i, state, sample, value);
            } else {
                state.phase = MetricPhase::Armed;
                state.streak = 0;
            }
            break;
        case MetricPhase::Firing:
            if (!violating) {
                state.phase = MetricPhase::Cooling;
                state.streak = 1;
                if (state.streak >= config_.rearmSamples) {
                    state.phase = MetricPhase::Armed;
                    state.streak = 0;
                }
            }
            break;
        case MetricPhase::Cooling:
            if (violating) {
                // Same excursion flaring back up: no new report.
                state.phase = MetricPhase::Firing;
                state.streak = 0;
            } else {
                ++state.streak;
                if (state.streak >= config_.rearmSamples) {
                    state.phase = MetricPhase::Armed;
                    state.streak = 0;
                }
            }
            break;
        }
    }
}

void
OnlineDetector::fire(std::size_t entry_index, MetricState &state,
                     const MetricSample &sample, double value)
{
    const HeapModel::Entry &entry = model_.entries()[entry_index];

    BugReport report;
    report.klass = BugClass::HeapAnomaly;
    report.metric = entry.id;
    report.direction = value < entry.minValue
                           ? AnomalyDirection::BelowMin
                           : AnomalyDirection::AboveMax;
    report.observedValue = value;
    report.calibratedMin = entry.minValue;
    report.calibratedMax = entry.maxValue;
    report.tick = sample.tick;
    report.pointIndex = sample.pointIndex;
    report.contextLog = state.context.snapshot();

    state.phase = MetricPhase::Firing;
    state.streak = 0;
    ++state.incidents;

    reports_.push_back(report);
    if (on_incident_)
        on_incident_(reports_.back());
}

std::vector<MetricView>
OnlineDetector::views() const
{
    std::vector<MetricView> out;
    const auto &entries = model_.entries();
    out.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const HeapModel::Entry &entry = entries[i];
        const MetricState &state = states_[i];
        const double slack = boundSlack(config_.detector, entry);
        MetricView view;
        view.id = entry.id;
        view.observed = state.observed;
        view.value = state.lastValue;
        view.lo = entry.minValue - slack;
        view.hi = entry.maxValue + slack;
        view.distance = state.lastDistance;
        view.phase = state.phase;
        view.violatingSamples = state.violatingSamples;
        view.incidents = state.incidents;
        out.push_back(view);
    }
    return out;
}

} // namespace monitor

} // namespace heapmd
