/**
 * @file
 * Deflating CaptureStreamBuf: the writer half of gzip segment
 * compression (HEAPMD_CAPTURE_COMPRESS).
 *
 * The shim's TraceWriter keeps writing through std::ostream exactly
 * as before; this buf deflates the raw trace bytes into a single
 * gzip member on the way to the fd.  Durability mirrors FdStreamBuf:
 * syncToDisk() emits a Z_SYNC_FLUSH block and fsyncs, so the
 * decodable prefix of a ".heapmd.gz" segment grows in lockstep with
 * the fsync'd prefix and a killed writer leaves a truncated-but-
 * decodable tail; closeFd() finishes the member (Z_FINISH, with the
 * gzip CRC trailer) before closing.
 *
 * Shim survival rules are honored: every buffer -- the raw put area,
 * the deflate output staging area, and zlib's internal state -- is
 * allocated once during construction (which runs under the shim's
 * reentrancy guard) and never grows afterward.
 *
 * totalBytes() reports RAW bytes accepted, so segment rotation keeps
 * its threshold in uncompressed-trace terms and the number of events
 * per segment does not depend on how well they compress.
 *
 * Without zlib (HEAPMD_HAVE_ZLIB undefined) construction fails
 * cleanly: ok() is false and every write errors.
 */

#ifndef HEAPMD_CAPTURE_GZIP_STREAM_HH
#define HEAPMD_CAPTURE_GZIP_STREAM_HH

#include <cstddef>
#include <vector>

#include "capture/fd_stream.hh"

namespace heapmd
{

namespace capture
{

/** Deflating CaptureStreamBuf over a POSIX file descriptor. */
class GzipStreamBuf : public CaptureStreamBuf
{
  public:
    /** Wraps @p fd; the caller keeps ownership unless closeFd(). */
    explicit GzipStreamBuf(int fd,
                           std::size_t buffer_bytes = 1 << 16);

    GzipStreamBuf(const GzipStreamBuf &) = delete;
    GzipStreamBuf &operator=(const GzipStreamBuf &) = delete;

    /** Flushes buffered bytes; never closes the fd. */
    ~GzipStreamBuf() override;

    /** False when deflate could not be initialized (or no zlib). */
    bool ok() const { return stream_ != nullptr; }

    bool syncToDisk() override;
    bool closeFd() override;
    bool hadError() const override { return had_error_; }

    /** Compressed bytes pushed to the fd so far. */
    std::size_t bytesWritten() const override
    {
        return compressed_bytes_;
    }

    /** Raw bytes accepted so far (deflated plus pending put area). */
    std::size_t
    totalBytes() const override
    {
        return raw_bytes_ +
               static_cast<std::size_t>(pptr() - pbase());
    }

  protected:
    int_type overflow(int_type ch) override;
    int sync() override;

  private:
    /** Deflate the put area with @p flush_mode; resets the area. */
    bool deflateBuffer(int flush_mode);
    bool writeAll(const unsigned char *data, std::size_t size);

    int fd_;
    std::vector<char> buffer_; //!< raw put area
    std::vector<unsigned char> out_; //!< deflate staging
    void *stream_ = nullptr; //!< opaque z_stream
    std::size_t raw_bytes_ = 0; //!< raw bytes deflated
    std::size_t compressed_bytes_ = 0; //!< bytes pushed to the fd
    bool had_error_ = false;
    bool finished_ = false;
};

} // namespace capture

} // namespace heapmd

#endif // HEAPMD_CAPTURE_GZIP_STREAM_HH
