/**
 * @file
 * The allocator-interposition shim: libheapmd_capture.so.
 *
 * Preloaded into a real process (LD_PRELOAD, arranged by `heapmd
 * capture`), it interposes malloc/free/calloc/realloc/aligned_alloc/
 * posix_memalign, mirrors the live-object set, and records the heapmd
 * trace format the offline pipeline already consumes.  Pointer edges
 * -- which the paper recovered by instrumenting stores -- are
 * reconstructed by a periodic conservative scan over the live objects
 * (see live_table.hh and DESIGN.md section 10).
 *
 * Survival rules of an interposer, all load-bearing:
 *  - real entry points come from dlsym(RTLD_NEXT, ...), and glibc's
 *    dlsym itself calls calloc, so allocations made while resolution
 *    is in flight are served from a static bootstrap arena;
 *  - a thread-local guard makes the shim's own bookkeeping
 *    allocations (std::map nodes, trace buffers) invisible: any
 *    allocator entry while the guard is up passes straight through to
 *    the real allocator, counted as capture.dropped_reentrant;
 *  - one global mutex serializes table + writer access (correct event
 *    order beats parallel recording);
 *  - the trace is finalized via atexit, and periodically
 *    flushed+fsynced at scan points so a killed child still leaves a
 *    readable truncated trace (the capture-provenance header flag
 *    downgrades the missing footer to a lint warning);
 *  - a pthread_atfork child handler and a pid armed in the
 *    environment keep forked children and exec'd grandchildren from
 *    corrupting the parent's trace file.
 */

#include <array>
#include <atomic>
#include <cerrno>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <new>
#include <ostream>
#include <vector>

#include <dlfcn.h>
#include <fcntl.h>
#include <pthread.h>
#include <sched.h>
#include <sys/mman.h>
#include <unistd.h>

#include "capture/bootstrap_arena.hh"
#include "capture/capture_env.hh"
#include "capture/fd_stream.hh"
#include "capture/gzip_stream.hh"
#include "capture/live_table.hh"
#include "trace/gzip_source.hh"
#include "capture/stats_sidecar.hh"
#include "obsv/segment.hh"
#include "trace/segment_set.hh"
#include "runtime/call_stack.hh"
#include "runtime/events.hh"
#include "trace/trace_writer.hh"

namespace
{

using heapmd::Event;
using heapmd::FnId;
using heapmd::FunctionRegistry;
using heapmd::TraceWriter;
using heapmd::TraceWriterOptions;
using heapmd::capture::BootstrapArena;
using heapmd::capture::CaptureCounters;
using heapmd::capture::CaptureStreamBuf;
using heapmd::capture::FdStreamBuf;
using heapmd::capture::GzipStreamBuf;
using heapmd::capture::LiveTable;
using heapmd::capture::ScanStats;

struct RealAllocFns
{
    void *(*malloc)(std::size_t) = nullptr;
    void (*free)(void *) = nullptr;
    void *(*calloc)(std::size_t, std::size_t) = nullptr;
    void *(*realloc)(void *, std::size_t) = nullptr;
    void *(*aligned_alloc)(std::size_t, std::size_t) = nullptr;
    int (*posix_memalign)(void **, std::size_t, std::size_t) = nullptr;
};

alignas(BootstrapArena::kMinAlign) char g_arena_buffer[1 << 20];
constinit BootstrapArena g_arena(g_arena_buffer,
                                 sizeof(g_arena_buffer));

RealAllocFns g_real;

/** 0 = unresolved, 1 = dlsym in flight, 2 = ready. */
std::atomic<int> g_resolve_state{0};

/**
 * Thread-local flags with initial-exec TLS: the default dynamic TLS
 * model can call malloc from __tls_get_addr on first access, which
 * would recurse straight back into the interposer.
 */
__thread bool t_resolving __attribute__((tls_model("initial-exec")));
__thread bool t_busy __attribute__((tls_model("initial-exec")));

/** Allocator ops that passed through unrecorded (guard was up). */
std::atomic<std::uint64_t> g_dropped{0};

pthread_mutex_t g_mutex = PTHREAD_MUTEX_INITIALIZER;

/** 0 = not decided, 1 = active, 2 = disabled (or finalized). */
std::atomic<int> g_sink_state{0};

/**
 * One trace file being written: fd buffer, stream, encoder.  Under
 * segment rotation the Sink replaces its TraceFile per segment while
 * the registry, live table, and counters live on in the Sink -- the
 * function registry in particular must persist so FnIds stay stable
 * across segments (each segment's footer then carries a superset of
 * its predecessor's table).
 */
struct TraceFile
{
    /** Owned; FdStreamBuf, or GzipStreamBuf when compressing. */
    CaptureStreamBuf *buf;
    std::ostream os;
    TraceWriter writer;

    TraceFile(int fd, bool compress, FunctionRegistry &registry,
              CaptureCounters &counters)
        : buf(makeBuf(fd, compress)),
          os(buf),
          writer(os, registry,
                 TraceWriterOptions{
                     true,
                     [this, &counters] {
                         if (buf != nullptr)
                             buf->syncToDisk();
                         ++counters.flushes;
                     }})
    {
    }

    ~TraceFile() { delete buf; }

    TraceFile(const TraceFile &) = delete;
    TraceFile &operator=(const TraceFile &) = delete;

    /** False when the buf could not be set up (alloc/zlib failure). */
    bool ok() const { return buf != nullptr && !buf->hadError(); }

  private:
    static CaptureStreamBuf *
    makeBuf(int fd, bool compress)
    {
        if (compress) {
            auto *gz = new (std::nothrow) GzipStreamBuf(fd, 1 << 18);
            if (gz != nullptr && !gz->ok()) {
                delete gz; // fd stays open; the caller closes it
                return nullptr;
            }
            return gz;
        }
        return new (std::nothrow) FdStreamBuf(fd, 1 << 18);
    }
};

/** Everything the recording side owns; heap-allocated, never freed. */
struct Sink
{
    FunctionRegistry registry;
    LiveTable table;
    CaptureCounters counters;
    /** Active segment; replaced on rotation, null only mid-rotate. */
    TraceFile *file = nullptr;
    /** Configured output path (segment names derive from it). */
    std::string base_path;
    /** Rotation threshold in bytes; 0 = one monolithic trace. */
    std::uint64_t rotate_bytes;
    /** Gzip each segment (".heapmd.gz"); implies rotation. */
    bool compress = false;
    /** Raw trace bytes in *finished* segments. */
    std::uint64_t raw_bytes_done = 0;
    /** On-disk bytes of those finished segments. */
    std::uint64_t compressed_bytes_done = 0;
    /** Index of the active segment (meaningful when rotating). */
    std::uint64_t segment_index = 0;
    std::uint64_t scan_frequency;
    std::uint64_t allocs_since_scan = 0;
    FnId scan_fn;
    std::string stats_path;
    bool log;
    bool finalized = false;
    /** Live stats segment (/dev/shm/heapmd.<pid>); may be invalid. */
    heapmd::obsv::SegmentWriter segment;
    /** Staging buffer for full seqlock publishes; no per-op allocs. */
    std::array<std::uint64_t, heapmd::obsv::kSlotCount> slots{};
    /** Recorded ops since the last gauge publish (throttling). */
    std::uint64_t ops_since_publish = 0;

    Sink(int fd, std::string out, std::uint64_t rotate, bool gz,
         std::uint64_t frq, std::string stats, bool verbose)
        : file(new (std::nothrow)
                   TraceFile(fd, gz, registry, counters)),
          base_path(std::move(out)),
          rotate_bytes(rotate),
          compress(gz),
          scan_frequency(frq),
          scan_fn(registry.intern(
              heapmd::capture::kScanFunctionName)),
          stats_path(std::move(stats)),
          log(verbose)
    {
        for (std::size_t i = 0; i < heapmd::kNumMetrics; ++i)
            slots[heapmd::obsv::slotIndex(
                      heapmd::obsv::Slot::MetricBase) +
                  i] = heapmd::obsv::kMetricAbsent;
    }
};

Sink *g_sink = nullptr;

void
shimLog(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void
shimLog(const char *fmt, ...)
{
    char line[256];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(line, sizeof(line), fmt, args);
    va_end(args);
    if (n > 0) {
        ssize_t ignored [[maybe_unused]] =
            ::write(2, line, static_cast<std::size_t>(
                                 n < static_cast<int>(sizeof(line))
                                     ? n
                                     : sizeof(line) - 1));
    }
}

/** Resolve the real allocator entry points exactly once. */
void
ensureResolved()
{
    for (;;) {
        int state = g_resolve_state.load(std::memory_order_acquire);
        if (state == 2)
            return;
        int expected = 0;
        if (g_resolve_state.compare_exchange_strong(
                expected, 1, std::memory_order_acq_rel)) {
            t_resolving = true;
            g_real.malloc = reinterpret_cast<void *(*)(std::size_t)>(
                ::dlsym(RTLD_NEXT, "malloc"));
            g_real.free = reinterpret_cast<void (*)(void *)>(
                ::dlsym(RTLD_NEXT, "free"));
            g_real.calloc =
                reinterpret_cast<void *(*)(std::size_t, std::size_t)>(
                    ::dlsym(RTLD_NEXT, "calloc"));
            g_real.realloc =
                reinterpret_cast<void *(*)(void *, std::size_t)>(
                    ::dlsym(RTLD_NEXT, "realloc"));
            g_real.aligned_alloc =
                reinterpret_cast<void *(*)(std::size_t, std::size_t)>(
                    ::dlsym(RTLD_NEXT, "aligned_alloc"));
            g_real.posix_memalign = reinterpret_cast<int (*)(
                void **, std::size_t, std::size_t)>(
                ::dlsym(RTLD_NEXT, "posix_memalign"));
            t_resolving = false;
            g_resolve_state.store(2, std::memory_order_release);
            return;
        }
        // Another thread is resolving; its dlsym calls are short.
        ::sched_yield();
    }
}

void finalizeLocked(Sink &sink);

void
finalizeAtExit()
{
    // A forked child that exits via exit() runs this inherited
    // handler: onForkChild disabled the sink, and the mutex was
    // cloned in an unknown (possibly locked) state, so the disabled
    // check must come before the lock -- locking could deadlock, and
    // finalizing would write into the trace fd shared with the
    // parent.  The same check makes a second explicit finalize a
    // no-op without taking the lock.
    if (g_sink_state.load(std::memory_order_acquire) == 2)
        return;
    t_busy = true;
    ::pthread_mutex_lock(&g_mutex);
    if (g_sink != nullptr)
        finalizeLocked(*g_sink);
    ::pthread_mutex_unlock(&g_mutex);
    t_busy = false;
}

void
onForkChild()
{
    // The trace fd is shared with the parent: any write from the
    // child corrupts the parent's stream.  Go dark; the mutex was
    // cloned in an unknown state, so do not touch it either (the
    // disabled check precedes every lock acquisition).
    g_sink_state.store(2, std::memory_order_release);
}

/**
 * Refresh the advisory segment manifest (tmp + rename).  No-op for a
 * monolithic capture; failure is tolerated -- readers fall back to
 * directory listing and pid liveness.
 */
void
writeManifestLocked(Sink &sink, bool closed)
{
    if (sink.rotate_bytes == 0)
        return;
    heapmd::trace::SegmentManifest manifest;
    manifest.pid = static_cast<std::uint32_t>(::getpid());
    manifest.rotateBytes = sink.rotate_bytes;
    manifest.segments = sink.segment_index + 1;
    manifest.closed = closed;
    manifest.compress = sink.compress;
    manifest.rawBytes = sink.raw_bytes_done;
    manifest.compressedBytes = sink.compressed_bytes_done;
    if (sink.file != nullptr && sink.file->buf != nullptr) {
        manifest.rawBytes += sink.file->buf->totalBytes();
        manifest.compressedBytes += sink.file->buf->bytesWritten();
    }
    heapmd::trace::saveSegmentManifest(
        heapmd::trace::segmentManifestPath(sink.base_path), manifest);
}

/** Build the sink on first recorded operation; may disable capture. */
Sink *
sinkLocked()
{
    const int state = g_sink_state.load(std::memory_order_relaxed);
    if (state == 1)
        return g_sink->finalized ? nullptr : g_sink;
    if (state == 2)
        return nullptr;

    g_sink_state.store(2, std::memory_order_relaxed); // until proven
    const char *out = ::getenv(heapmd::capture::kEnvOut);
    if (out == nullptr || *out == '\0')
        return nullptr; // preloaded without a capture armed
    const bool verbose = [] {
        const char *log = ::getenv(heapmd::capture::kEnvLog);
        return log != nullptr && log[0] == '1';
    }();
    const char *pid_env = ::getenv(heapmd::capture::kEnvPid);
    if (pid_env != nullptr && *pid_env != '\0') {
        const std::uint64_t armed =
            heapmd::capture::envToU64(pid_env, 0);
        if (armed != static_cast<std::uint64_t>(::getpid())) {
            if (verbose)
                shimLog("[heapmd-capture] pid %d not armed (%s); "
                        "capture stays off\n",
                        static_cast<int>(::getpid()), pid_env);
            return nullptr;
        }
    }

    // With rotation armed the first file is segment 000000; without
    // it, the classic monolithic trace at the configured path.
    const std::uint64_t rotate = heapmd::capture::envToU64(
        ::getenv(heapmd::capture::kEnvRotateBytes), 0);
    bool compress = [] {
        const char *v = ::getenv(heapmd::capture::kEnvCompress);
        return v != nullptr && v[0] == '1';
    }();
    if (compress && rotate == 0) {
        if (verbose)
            shimLog("[heapmd-capture] compression needs rotation "
                    "(HEAPMD_CAPTURE_ROTATE_BYTES); recording "
                    "uncompressed\n");
        compress = false;
    }
    if (compress && !heapmd::trace::gzipSupported()) {
        shimLog("[heapmd-capture] built without zlib; recording "
                "uncompressed segments\n");
        compress = false;
    }
    const std::string trace_path =
        rotate > 0 ? heapmd::trace::segmentPath(out, 0, compress)
                   : std::string(out);

    const int fd = ::open(trace_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        shimLog("[heapmd-capture] cannot open trace '%s': %s\n",
                trace_path.c_str(), std::strerror(errno));
        return nullptr;
    }

    const std::uint64_t frq = heapmd::capture::envToU64(
        ::getenv(heapmd::capture::kEnvFrq),
        heapmd::capture::kDefaultScanFrequency);
    const char *stats_env =
        ::getenv(heapmd::capture::kEnvStatsOut);
    std::string stats_path =
        (stats_env != nullptr && *stats_env != '\0')
            ? std::string(stats_env)
            : heapmd::capture::defaultStatsPath(out);

    g_sink = new (std::nothrow) Sink(fd, out, rotate, compress, frq,
                                     std::move(stats_path), verbose);
    if (g_sink == nullptr) {
        ::close(fd);
        return nullptr;
    }
    if (g_sink->file == nullptr || !g_sink->file->ok()) {
        delete g_sink->file;
        g_sink->file = nullptr;
        delete g_sink;
        g_sink = nullptr;
        ::close(fd);
        return nullptr;
    }
    std::atexit(finalizeAtExit);
    ::pthread_atfork(nullptr, nullptr, onForkChild);
    // Live stats segment for `heapmd top` / `stats` / `export`.
    // Failure just means running dark -- capture itself is unharmed.
    const char *no_segment =
        ::getenv(heapmd::capture::kEnvNoSegment);
    if (no_segment == nullptr || no_segment[0] != '1') {
        char comm[64] = {0};
        const int comm_fd =
            ::open("/proc/self/comm", O_RDONLY | O_CLOEXEC);
        if (comm_fd >= 0) {
            const ssize_t n =
                ::read(comm_fd, comm, sizeof comm - 1);
            ::close(comm_fd);
            if (n > 0)
                comm[comm[n - 1] == '\n' ? n - 1 : n] = '\0';
            else
                comm[0] = '\0';
        }
        g_sink->segment.create(
            static_cast<std::uint32_t>(::getpid()), comm);
    }
    // Push the header to disk immediately: a child that _exit()s (or
    // is killed) before the first scan point must still leave a
    // readable, truncated trace rather than an empty file.
    g_sink->file->writer.flush();
    writeManifestLocked(*g_sink, false);
    g_sink_state.store(1, std::memory_order_release);
    if (verbose)
        shimLog("[heapmd-capture] recording pid %d to '%s' "
                "(scan frq %llu)\n",
                static_cast<int>(::getpid()), out,
                static_cast<unsigned long long>(frq));
    return g_sink;
}

void
writeEvent(Sink &sink, const Event &event)
{
    sink.file->writer.onEvent(event, 0);
    ++sink.counters.eventsEmitted;
}

/**
 * Stop recording mid-run (segment I/O failure): persist the counter
 * sidecar and close out the manifest so readers stop waiting, keep
 * every finished segment on disk, and go dark.
 */
void
goDarkLocked(Sink &sink)
{
    sink.finalized = true;
    sink.counters.droppedReentrant =
        g_dropped.load(std::memory_order_relaxed);
    sink.counters.bootstrapBytes = g_arena.bytesUsed();
    sink.counters.bootstrapAllocs = g_arena.allocationCount();
    sink.counters.rawTraceBytes = sink.raw_bytes_done;
    sink.counters.compressedTraceBytes =
        sink.compressed_bytes_done;
    std::ofstream stats(sink.stats_path, std::ios::trunc);
    if (stats)
        heapmd::capture::writeStatsSidecar(stats, sink.counters);
    writeManifestLocked(sink, true);
    sink.segment.unlinkAndClose();
    g_sink_state.store(2, std::memory_order_release);
}

/**
 * Close out the active segment and open its successor.
 *
 * Ordering is the reader's whole contract: the old segment gets its
 * footer, fsync, and close *before* the successor file is created, so
 * "segment N+1 exists" proves segment N is complete and only the
 * newest segment can ever be truncated by a crash.
 */
void
rotateLocked(Sink &sink)
{
    sink.file->writer.finalize();
    sink.file->buf->closeFd();
    // Fold the finished segment into the set-wide byte totals the
    // manifest advertises (equal values when not compressing).
    sink.raw_bytes_done += sink.file->buf->totalBytes();
    sink.compressed_bytes_done += sink.file->buf->bytesWritten();
    delete sink.file;
    sink.file = nullptr;
    ++sink.counters.segmentsRotated;

    const std::uint64_t next_index = sink.segment_index + 1;
    const std::string next_path = heapmd::trace::segmentPath(
        sink.base_path, next_index, sink.compress);
    const int fd = ::open(next_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    TraceFile *file =
        fd >= 0 ? new (std::nothrow) TraceFile(fd, sink.compress,
                                               sink.registry,
                                               sink.counters)
                : nullptr;
    if (file != nullptr && !file->ok()) {
        delete file;
        file = nullptr;
    }
    if (file == nullptr) {
        if (fd >= 0)
            ::close(fd);
        shimLog("[heapmd-capture] cannot open segment '%s': %s; "
                "capture stops after %llu finished segment(s)\n",
                next_path.c_str(), std::strerror(errno),
                static_cast<unsigned long long>(
                    sink.counters.segmentsRotated));
        goDarkLocked(sink);
        return;
    }
    sink.file = file;
    sink.segment_index = next_index;
    // Durable header before any event, same as the first segment.
    sink.file->writer.flush();
    writeManifestLocked(sink, false);
    if (sink.log)
        shimLog("[heapmd-capture] rotated to segment %llu ('%s')\n",
                static_cast<unsigned long long>(next_index),
                next_path.c_str());
}

/**
 * Rotate when the active segment has reached the threshold.  Called
 * only *after* an allocator operation is fully recorded (and after
 * any scan pass the op triggered), so no event record -- and no scan
 * marker pair -- is ever split across a segment boundary.
 */
void
maybeRotateLocked(Sink &sink)
{
    if (sink.rotate_bytes == 0 || sink.finalized)
        return;
    if (sink.file->buf->totalBytes() < sink.rotate_bytes)
        return;
    rotateLocked(sink);
}

namespace obsv = heapmd::obsv;

/** CLOCK_MONOTONIC nanos for scan timing (0 if the clock fails). */
std::uint64_t
nowNanos()
{
    struct timespec ts;
    if (::clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
        return 0;
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

// The allocator hot path publishes only the gauge/event prefix of
// the slot array; these pins make sure the prefix and the layout
// never drift apart.
static_assert(obsv::slotIndex(obsv::Slot::LiveObjects) == 0);
static_assert(obsv::slotIndex(obsv::Slot::EventsEmitted) == 7);
constexpr std::size_t kOpPublishSlots =
    obsv::slotIndex(obsv::Slot::EventsEmitted) + 1;

/**
 * Gauge publishes happen at most once per this many recorded ops.
 * An unthrottled publish (a heartbeat clock read plus ~10 atomic
 * stores, ~50ns) costs 10-15% of an allocation-dominated capture;
 * at 1/32 it is under the 1% budget bench/replay_throughput.cc
 * enforces, and a slow allocator (one op per 50ms) still refreshes
 * the heartbeat every ~1.6s -- well inside `top`'s 5s staleness
 * window.  Scan-time publishes are never throttled.
 */
constexpr std::uint64_t kOpPublishPeriod = 32;

/**
 * Light per-operation publish: refresh the live gauges and event
 * counters (first kOpPublishSlots slots) plus the heartbeat, under
 * one seqlock write.  Allocation-free; called with the shim mutex
 * held after every recorded allocator op so `heapmd top` tracks the
 * heap between scans (throttled to every kOpPublishPeriod'th op).
 */
void
publishOpLocked(Sink &sink)
{
    if (!sink.segment.valid())
        return;
    if (++sink.ops_since_publish < kOpPublishPeriod)
        return;
    sink.ops_since_publish = 0;
    ++sink.counters.segmentPublishes;
    std::uint64_t values[kOpPublishSlots];
    values[obsv::slotIndex(obsv::Slot::LiveObjects)] =
        sink.table.objectCount();
    values[obsv::slotIndex(obsv::Slot::LiveBytes)] =
        sink.table.liveBytes();
    values[obsv::slotIndex(obsv::Slot::LiveEdges)] =
        sink.table.edgeCount();
    values[obsv::slotIndex(obsv::Slot::PeakLiveObjects)] =
        sink.counters.peakLiveObjects;
    values[obsv::slotIndex(obsv::Slot::AllocEvents)] =
        sink.counters.allocEvents;
    values[obsv::slotIndex(obsv::Slot::FreeEvents)] =
        sink.counters.freeEvents;
    values[obsv::slotIndex(obsv::Slot::ReallocEvents)] =
        sink.counters.reallocEvents;
    values[obsv::slotIndex(obsv::Slot::EventsEmitted)] =
        sink.counters.eventsEmitted;
    sink.segment.publishPrefix(values, kOpPublishSlots);
}

/**
 * Full scan-time publish: every counter plus the degree-metric
 * percentages from a fresh census.  The census allocates (the
 * caller holds the reentrancy guard, so those allocations pass
 * through unrecorded); the publish itself is one seqlock write of
 * the staged slot array.
 */
void
publishScanLocked(Sink &sink)
{
    if (!sink.segment.valid())
        return;
    sink.ops_since_publish = 0; // a full publish just refreshed all
    ++sink.counters.segmentPublishes;
    auto &s = sink.slots;
    s[obsv::slotIndex(obsv::Slot::LiveObjects)] =
        sink.table.objectCount();
    s[obsv::slotIndex(obsv::Slot::LiveBytes)] =
        sink.table.liveBytes();
    s[obsv::slotIndex(obsv::Slot::LiveEdges)] =
        sink.table.edgeCount();
    s[obsv::slotIndex(obsv::Slot::PeakLiveObjects)] =
        sink.counters.peakLiveObjects;
    s[obsv::slotIndex(obsv::Slot::AllocEvents)] =
        sink.counters.allocEvents;
    s[obsv::slotIndex(obsv::Slot::FreeEvents)] =
        sink.counters.freeEvents;
    s[obsv::slotIndex(obsv::Slot::ReallocEvents)] =
        sink.counters.reallocEvents;
    s[obsv::slotIndex(obsv::Slot::EventsEmitted)] =
        sink.counters.eventsEmitted;
    s[obsv::slotIndex(obsv::Slot::ScanPasses)] =
        sink.counters.scanPasses;
    s[obsv::slotIndex(obsv::Slot::ScanWords)] =
        sink.counters.scanWords;
    s[obsv::slotIndex(obsv::Slot::ScanEdgeWrites)] =
        sink.counters.scanEdgeWrites;
    s[obsv::slotIndex(obsv::Slot::ScanEdgeClears)] =
        sink.counters.scanEdgeClears;
    s[obsv::slotIndex(obsv::Slot::ScanReclaimedDead)] =
        sink.counters.scanReclaimedDead;
    s[obsv::slotIndex(obsv::Slot::DroppedReentrant)] =
        g_dropped.load(std::memory_order_relaxed);
    s[obsv::slotIndex(obsv::Slot::Flushes)] =
        sink.counters.flushes;
    s[obsv::slotIndex(obsv::Slot::ScanNanos)] =
        sink.counters.scanNanos;
    s[obsv::slotIndex(obsv::Slot::MetricPoints)] =
        sink.counters.scanPasses;
    const heapmd::capture::DegreeCensus census =
        sink.table.degreeCensus();
    for (const heapmd::MetricId id : heapmd::kAllMetrics)
        s[obsv::metricSlotIndex(id)] = static_cast<std::uint64_t>(
            census.percent[heapmd::metricIndex(id)] *
                static_cast<double>(obsv::kMetricScale) +
            0.5);
    sink.segment.publish(s);
}

/** True when every page of [addr, addr + size) is still mapped. */
bool
rangeMapped(std::uintptr_t addr, std::size_t size)
{
    static const std::uintptr_t page =
        static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
    std::uintptr_t lo = addr & ~(page - 1);
    const std::uintptr_t hi =
        (addr + (size > 0 ? size : 1) + page - 1) & ~(page - 1);
    unsigned char vec[256];
    while (lo < hi) {
        std::uintptr_t span = hi - lo;
        if (span > page * sizeof(vec))
            span = page * sizeof(vec);
        if (::mincore(reinterpret_cast<void *>(lo), span, vec) != 0 &&
            errno == ENOMEM)
            return false; // some page in the range is unmapped
        lo += span;
    }
    return true;
}

/**
 * Drop live-table entries whose memory is no longer mapped.
 *
 * The allocator entry points call the real allocator before taking
 * the lock, so a pointer freed by another thread in that window is
 * recorded as live with no Free ever pairing it.  For large chunks
 * glibc munmaps on free, and a conservative scan dereferencing the
 * stale range would fault; mincore asks "still mapped?" without
 * touching the memory.  Each dead extent gets the Free the race
 * swallowed, keeping the trace alloc/free-paired.  (Stale entries
 * over still-mapped heap pages are safe to read -- conservative
 * scanning tolerates garbage -- and are repaired by
 * reclaimOverlapLocked when the range is recycled.)
 */
void
reclaimUnmappedLocked(Sink &sink)
{
    std::vector<std::uintptr_t> dead;
    sink.table.forEachExtent(
        [&dead](std::uintptr_t addr, std::size_t size) {
            if (!rangeMapped(addr, size))
                dead.push_back(addr);
        });
    for (const std::uintptr_t addr : dead) {
        writeEvent(sink, Event::free(addr));
        ++sink.counters.freeEvents;
        ++sink.counters.scanReclaimedDead;
        sink.table.erase(addr);
    }
}

/** One conservative pass: edge delta, scan marker, durability point. */
void
scanLocked(Sink &sink)
{
    const std::uint64_t scan_start = nowNanos();
    reclaimUnmappedLocked(sink);
    const ScanStats stats = sink.table.scan(
        [&sink](std::uintptr_t slot, std::uintptr_t value) {
            writeEvent(sink, Event::write(slot, value));
        });
    ++sink.counters.scanPasses;
    sink.counters.scanWords += stats.wordsScanned;
    sink.counters.scanEdgeWrites += stats.writesEmitted;
    sink.counters.scanEdgeClears += stats.clearsEmitted;

    // The marker pair makes the replayed Process take one metric
    // sample here (FnEnter is the sampling trigger), after the edge
    // delta so the sample sees the refreshed graph.
    writeEvent(sink, Event::fnEnter(sink.scan_fn));
    writeEvent(sink, Event::fnExit(sink.scan_fn));
    sink.file->writer.flush(); // + fsync via the sync hook
    sink.counters.scanNanos += nowNanos() - scan_start;
    publishScanLocked(sink); // counters + fresh degree metrics
}

void
maybeScanLocked(Sink &sink)
{
    if (++sink.allocs_since_scan < sink.scan_frequency)
        return;
    sink.allocs_since_scan = 0;
    scanLocked(sink);
}

/**
 * Emit Free for stale objects overlapping a range the allocator just
 * handed out: their frees were missed (dropped under the guard), and
 * the trace must stay overlap-clean for the audit.
 */
void
reclaimOverlapLocked(Sink &sink, std::uintptr_t addr,
                     std::size_t size, std::uintptr_t exclude)
{
    for (const std::uintptr_t start :
         sink.table.overlapping(addr, size, exclude)) {
        writeEvent(sink, Event::free(start));
        ++sink.counters.freeEvents;
        sink.table.erase(start);
    }
}

void
finalizeLocked(Sink &sink)
{
    if (sink.finalized)
        return;
    sink.finalized = true;

    scanLocked(sink); // final edge refresh + end-state sample point
    sink.counters.droppedReentrant =
        g_dropped.load(std::memory_order_relaxed);
    sink.counters.bootstrapBytes = g_arena.bytesUsed();
    sink.counters.bootstrapAllocs = g_arena.allocationCount();
    sink.file->writer.finalize();
    sink.file->buf->closeFd();
    sink.raw_bytes_done += sink.file->buf->totalBytes();
    sink.compressed_bytes_done += sink.file->buf->bytesWritten();
    sink.counters.rawTraceBytes = sink.raw_bytes_done;
    sink.counters.compressedTraceBytes = sink.compressed_bytes_done;
    delete sink.file;
    sink.file = nullptr;
    writeManifestLocked(sink, true); // closed: readers stop waiting

    std::ofstream stats(sink.stats_path, std::ios::trunc);
    if (stats)
        heapmd::capture::writeStatsSidecar(stats, sink.counters);

    // Retire the live stats segment with the process.  Only this
    // normal-finalize path unlinks: a forked child goes dark through
    // onForkChild (state 2) and must never tear the segment down
    // under the parent, and a SIGKILLed process leaves the entry for
    // the host-side reap (`heapmd capture` harvest or `top --reap`).
    sink.segment.unlinkAndClose();

    g_sink_state.store(2, std::memory_order_release);
    if (sink.log)
        shimLog("[heapmd-capture] finalized: %llu events, "
                "%llu scan passes, %llu dropped reentrant\n",
                static_cast<unsigned long long>(
                    sink.counters.eventsEmitted),
                static_cast<unsigned long long>(
                    sink.counters.scanPasses),
                static_cast<unsigned long long>(
                    sink.counters.droppedReentrant));
}

/** True when the calling thread should try to record this op. */
bool
captureArmed()
{
    return g_sink_state.load(std::memory_order_acquire) != 2;
}

void
recordAlloc(void *ptr, std::size_t size)
{
    if (ptr == nullptr)
        return;
    if (!captureArmed())
        return;
    if (t_busy) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    t_busy = true;
    ::pthread_mutex_lock(&g_mutex);
    if (Sink *sink = sinkLocked()) {
        const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
        const std::uint64_t recorded =
            size > 0 ? size : 1; // malloc(0) returns a unique extent
        reclaimOverlapLocked(*sink, addr, recorded, 0);
        sink->table.insert(addr, recorded);
        if (sink->table.objectCount() >
            sink->counters.peakLiveObjects)
            sink->counters.peakLiveObjects =
                sink->table.objectCount();
        writeEvent(*sink, Event::alloc(addr, recorded));
        ++sink->counters.allocEvents;
        maybeScanLocked(*sink);
        maybeRotateLocked(*sink);
        publishOpLocked(*sink);
    }
    ::pthread_mutex_unlock(&g_mutex);
    t_busy = false;
}

/** Record the free of @p ptr; returns with the table entry gone. */
void
recordFree(void *ptr)
{
    if (ptr == nullptr || !captureArmed())
        return;
    if (t_busy) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    t_busy = true;
    ::pthread_mutex_lock(&g_mutex);
    if (Sink *sink = sinkLocked()) {
        const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
        // Only extents we recorded may emit Free: anything else
        // (pre-capture or guard-dropped allocations) would lint as
        // trace.free-before-alloc.
        if (sink->table.erase(addr) != 0) {
            writeEvent(*sink, Event::free(addr));
            ++sink->counters.freeEvents;
            maybeRotateLocked(*sink);
            publishOpLocked(*sink);
        }
    }
    ::pthread_mutex_unlock(&g_mutex);
    t_busy = false;
}

/**
 * Largest safe memcpy length out of @p ptr for a realloc of @p size
 * bytes.  The bootstrap arena stores no per-block sizes, so copies
 * out of an arena block are clamped to the bytes the arena has
 * actually handed out past @p ptr -- over-copying stale neighbour
 * bytes is harmless, reading past the static buffer is not.
 */
std::size_t
arenaCopyLimit(const void *ptr, std::size_t size)
{
    if (!g_arena.contains(ptr))
        return size;
    const std::size_t avail = g_arena.bytesBeyond(ptr);
    return size < avail ? size : avail;
}

} // namespace

extern "C"
{

void *
malloc(std::size_t size)
{
    if (g_resolve_state.load(std::memory_order_acquire) != 2) {
        if (t_resolving)
            return g_arena.allocate(size);
        ensureResolved();
    }
    void *ptr = g_real.malloc(size);
    recordAlloc(ptr, size);
    return ptr;
}

void *
calloc(std::size_t count, std::size_t size)
{
    if (g_resolve_state.load(std::memory_order_acquire) != 2) {
        // dlsym's own calloc lands here; arena memory is static and
        // therefore already zeroed.  Real calloc rejects count*size
        // overflow, so the arena path must too.
        if (t_resolving) {
            if (count != 0 && size > SIZE_MAX / count)
                return nullptr;
            return g_arena.allocate(count * size);
        }
        ensureResolved();
    }
    void *ptr = g_real.calloc(count, size);
    recordAlloc(ptr, count * size);
    return ptr;
}

void
free(void *ptr)
{
    if (ptr == nullptr)
        return;
    if (g_arena.contains(ptr))
        return; // bootstrap allocations are never reclaimed
    if (g_resolve_state.load(std::memory_order_acquire) != 2) {
        if (t_resolving)
            return; // cannot reach the real free yet; leak it
        ensureResolved();
    }
    // Record first: once the real free runs, another thread may be
    // handed this address and record its Alloc, which must sort
    // after our Free in the trace.
    recordFree(ptr);
    g_real.free(ptr);
}

void *
realloc(void *ptr, std::size_t size)
{
    if (g_resolve_state.load(std::memory_order_acquire) != 2) {
        if (t_resolving) {
            // Arena block with unknown size: realloc within the arena
            // by over-copying up to the bytes the arena has handed
            // out past ptr (worst case stale neighbour bytes, never a
            // read past the static buffer).
            void *fresh = g_arena.allocate(size);
            if (fresh != nullptr && ptr != nullptr)
                std::memcpy(fresh, ptr, arenaCopyLimit(ptr, size));
            return fresh;
        }
        ensureResolved();
    }
    if (ptr != nullptr && g_arena.contains(ptr)) {
        void *fresh = malloc(size);
        if (fresh != nullptr)
            std::memcpy(fresh, ptr,
                        arenaCopyLimit(ptr, size)); // see arena note
        return fresh;
    }
    if (!captureArmed() || t_busy) {
        if (captureArmed())
            g_dropped.fetch_add(1, std::memory_order_relaxed);
        return g_real.realloc(ptr, size);
    }

    // Unlike malloc, the real call runs under the lock: it can free
    // the old extent, and a concurrent allocation reusing that range
    // must not get its Alloc recorded before our Realloc.
    t_busy = true;
    ::pthread_mutex_lock(&g_mutex);
    void *fresh = g_real.realloc(ptr, size);
    if (Sink *sink = sinkLocked()) {
        const auto old_addr = reinterpret_cast<std::uintptr_t>(ptr);
        const auto new_addr = reinterpret_cast<std::uintptr_t>(fresh);
        const std::uint64_t recorded = size > 0 ? size : 1;
        const bool old_tracked =
            ptr != nullptr && sink->table.contains(old_addr);
        if (ptr == nullptr) {
            // Pure allocation.
            if (fresh != nullptr) {
                reclaimOverlapLocked(*sink, new_addr, recorded, 0);
                sink->table.insert(new_addr, recorded);
                writeEvent(*sink, Event::alloc(new_addr, recorded));
                ++sink->counters.allocEvents;
                maybeScanLocked(*sink);
            }
        } else if (size == 0) {
            // Pure free (C23 made this undefined; glibc frees).
            if (old_tracked) {
                sink->table.erase(old_addr);
                writeEvent(*sink, Event::free(old_addr));
                ++sink->counters.freeEvents;
            }
        } else if (fresh != nullptr) {
            if (!old_tracked) {
                // The old extent predates capture; record the result
                // as a plain allocation.
                reclaimOverlapLocked(*sink, new_addr, recorded, 0);
                sink->table.insert(new_addr, recorded);
                writeEvent(*sink, Event::alloc(new_addr, recorded));
                ++sink->counters.allocEvents;
            } else {
                if (new_addr == old_addr) {
                    reclaimOverlapLocked(*sink, new_addr, recorded,
                                         old_addr);
                    sink->table.resize(old_addr, recorded);
                } else {
                    sink->table.erase(old_addr);
                    reclaimOverlapLocked(*sink, new_addr, recorded,
                                         0);
                    sink->table.insert(new_addr, recorded);
                }
                writeEvent(*sink, Event::realloc(old_addr, new_addr,
                                                 recorded));
                ++sink->counters.reallocEvents;
            }
            maybeScanLocked(*sink);
        }
        if (sink->table.objectCount() >
            sink->counters.peakLiveObjects)
            sink->counters.peakLiveObjects =
                sink->table.objectCount();
        maybeRotateLocked(*sink);
        publishOpLocked(*sink);
    }
    ::pthread_mutex_unlock(&g_mutex);
    t_busy = false;
    return fresh;
}

void *
aligned_alloc(std::size_t alignment, std::size_t size)
{
    if (g_resolve_state.load(std::memory_order_acquire) != 2) {
        if (t_resolving)
            return g_arena.allocate(size, alignment);
        ensureResolved();
    }
    void *ptr = g_real.aligned_alloc(alignment, size);
    recordAlloc(ptr, size);
    return ptr;
}

int
posix_memalign(void **out, std::size_t alignment, std::size_t size)
{
    if (g_resolve_state.load(std::memory_order_acquire) != 2) {
        if (t_resolving) {
            void *ptr = g_arena.allocate(size, alignment);
            if (ptr == nullptr)
                return ENOMEM;
            *out = ptr;
            return 0;
        }
        ensureResolved();
    }
    const int rc = g_real.posix_memalign(out, alignment, size);
    if (rc == 0)
        recordAlloc(*out, size);
    return rc;
}

/**
 * Finalize the capture now (flush, footer, sidecar).  Exported for
 * monitored programs that terminate via paths atexit cannot observe
 * (_exit, exec); `heapmd capture` itself relies on atexit.
 */
void
heapmd_capture_finalize(void)
{
    finalizeAtExit();
}

} // extern "C"
