#include "capture/capture_session.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <sys/wait.h>
#include <unistd.h>

#include "capture/stats_sidecar.hh"
#include "obsv/segment.hh"
#include "telemetry/registry.hh"
#include "trace/segment_set.hh"

extern char **environ;

namespace heapmd
{

namespace capture
{

namespace
{

namespace fs = std::filesystem;

/** Directory of the running executable, or empty. */
fs::path
selfExeDir()
{
    std::error_code ec;
    const fs::path exe =
        fs::read_symlink("/proc/self/exe", ec);
    if (ec)
        return {};
    return exe.parent_path();
}

/** "a" + ":" + existing LD_PRELOAD (ours first wins symbol lookup). */
std::string
preloadValue(const std::string &shim)
{
    const char *existing = ::getenv("LD_PRELOAD");
    if (existing == nullptr || *existing == '\0')
        return shim;
    return shim + ":" + existing;
}

} // namespace

std::string
findShimLibrary()
{
    constexpr const char *kSoName = "libheapmd_capture.so";
    std::error_code ec;

    const char *override = ::getenv(kEnvLib);
    if (override != nullptr && *override != '\0') {
        if (fs::exists(override, ec))
            return override;
        return {}; // an explicit override must not fall through
    }

    const fs::path exe_dir = selfExeDir();
    if (exe_dir.empty())
        return {};
    for (const fs::path &candidate : {
             exe_dir / kSoName,
             // Build tree: tools/heapmd and src/capture/ are siblings.
             exe_dir / ".." / "src" / "capture" / kSoName,
             exe_dir / ".." / "lib" / kSoName,
         }) {
        if (fs::exists(candidate, ec))
            return fs::weakly_canonical(candidate, ec).string();
    }
    return {};
}

bool
runCapture(const std::vector<std::string> &argv,
           const SessionOptions &options, SessionResult &result,
           std::string &error)
{
    if (argv.empty()) {
        error = "no command to capture";
        return false;
    }

    std::string shim = options.shimPath;
    if (shim.empty())
        shim = findShimLibrary();
    std::error_code ec;
    if (shim.empty() || !fs::exists(shim, ec)) {
        error = "cannot locate libheapmd_capture.so (set " +
                std::string(kEnvLib) +
                " or pass --lib; was the build configured with "
                "HEAPMD_BUILD_CAPTURE=ON?)";
        return false;
    }

    result.tracePath = options.tracePath;
    result.statsPath = defaultStatsPath(options.tracePath);

    // A stale trace must not masquerade as this run's output when
    // the child dies before the shim opens the file.
    fs::remove(result.tracePath, ec);
    fs::remove(result.statsPath, ec);
    if (options.rotateBytes > 0) {
        for (const std::uint64_t idx :
             trace::listSegmentIndices(result.tracePath)) {
            fs::remove(trace::segmentPath(result.tracePath, idx),
                       ec);
            fs::remove(
                trace::segmentPath(result.tracePath, idx, true), ec);
        }
        fs::remove(trace::segmentManifestPath(result.tracePath), ec);
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        error = std::string("fork: ") + std::strerror(errno);
        return false;
    }

    if (pid == 0) {
        // Child: finish wiring the environment (the armed pid can
        // only be known here) and exec.  Only async-signal-unsafe in
        // ways that do not matter pre-exec in practice (setenv).
        ::setenv("LD_PRELOAD", preloadValue(shim).c_str(), 1);
        ::setenv(kEnvOut, options.tracePath.c_str(), 1);
        ::setenv(kEnvStatsOut, result.statsPath.c_str(), 1);
        char number[32];
        std::snprintf(number, sizeof(number), "%llu",
                      static_cast<unsigned long long>(
                          options.scanFrequency));
        ::setenv(kEnvFrq, number, 1);
        std::snprintf(number, sizeof(number), "%d",
                      static_cast<int>(::getpid()));
        ::setenv(kEnvPid, number, 1);
        if (options.verbose)
            ::setenv(kEnvLog, "1", 1);
        if (options.noSegment)
            ::setenv(kEnvNoSegment, "1", 1);
        if (options.rotateBytes > 0) {
            std::snprintf(number, sizeof(number), "%llu",
                          static_cast<unsigned long long>(
                              options.rotateBytes));
            ::setenv(kEnvRotateBytes, number, 1);
        }
        if (options.compress)
            ::setenv(kEnvCompress, "1", 1);

        std::vector<char *> child_argv;
        child_argv.reserve(argv.size() + 1);
        for (const std::string &arg : argv)
            child_argv.push_back(const_cast<char *>(arg.c_str()));
        child_argv.push_back(nullptr);
        ::execvp(child_argv[0], child_argv.data());
        std::fprintf(stderr, "heapmd capture: exec %s: %s\n",
                     child_argv[0], std::strerror(errno));
        ::_exit(127);
    }

    int status = 0;
    for (;;) {
        if (::waitpid(pid, &status, 0) >= 0)
            break;
        if (errno != EINTR) {
            error = std::string("waitpid: ") + std::strerror(errno);
            return false;
        }
    }

    if (WIFEXITED(status)) {
        result.exited = true;
        result.exitCode = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        result.exited = false;
        result.termSignal = WTERMSIG(status);
    }

    // The shim unlinks its live stats segment from atexit, but a
    // child killed by signal (or _exit before finalize) cannot; the
    // host owns the cleanup so no run leaks a /dev/shm entry.  ENOENT
    // after a clean exit is the expected case.
    obsv::unlinkSegmentForPid(static_cast<std::uint32_t>(pid));

    if (result.exited && result.exitCode == 127) {
        error = "child failed to exec '" + argv.front() + "'";
        return false;
    }
    if (options.rotateBytes > 0) {
        for (const std::uint64_t idx :
             trace::listSegmentIndices(result.tracePath)) {
            const std::string seg =
                trace::resolveSegmentPath(result.tracePath, idx);
            if (!seg.empty())
                result.segmentPaths.push_back(seg);
        }
        if (result.segmentPaths.empty()) {
            error = "child produced no trace segments under '" +
                    result.tracePath + "' (did it allocate at all?)";
            return false;
        }
    } else if (!fs::exists(result.tracePath, ec)) {
        error = "child produced no trace at '" + result.tracePath +
                "' (did it allocate at all?)";
        return false;
    }

    result.counters = readStatsSidecarFile(result.statsPath);
    mergeCountersIntoTelemetry(result.counters);
    return true;
}

void
mergeCountersIntoTelemetry(
    const std::map<std::string, std::uint64_t> &counters)
{
    for (const auto &[name, value] : counters)
        telemetry::Registry::instance().counter(name).add(value);
}

} // namespace capture

} // namespace heapmd
