#include "capture/gzip_stream.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#if HEAPMD_HAVE_ZLIB
#include <zlib.h>
#endif

namespace heapmd
{

namespace capture
{

#if HEAPMD_HAVE_ZLIB

namespace
{

/** deflateInit2 windowBits: gzip wrapper, max window. */
constexpr int kGzipWindowBits = 15 + 16;

/**
 * Z_BEST_SPEED: the deflate runs inside interposed allocator calls,
 * so cycles matter more than the last few percent of ratio (trace
 * records are highly repetitive and compress well at any level).
 */
constexpr int kGzipLevel = 1;

} // namespace

GzipStreamBuf::GzipStreamBuf(int fd, std::size_t buffer_bytes)
    : fd_(fd),
      buffer_(buffer_bytes > 0 ? buffer_bytes : 1),
      // deflateBound-ish headroom: deflate may expand incompressible
      // input slightly; a same-size staging area just means more
      // write(2) calls per drain, never an error.
      out_(buffer_.size())
{
    auto *strm = new (std::nothrow) z_stream();
    if (strm == nullptr)
        return;
    std::memset(strm, 0, sizeof(*strm));
    if (::deflateInit2(strm, kGzipLevel, Z_DEFLATED, kGzipWindowBits,
                       8, Z_DEFAULT_STRATEGY) != Z_OK) {
        delete strm;
        return;
    }
    stream_ = strm;
    setp(buffer_.data(), buffer_.data() + buffer_.size());
}

GzipStreamBuf::~GzipStreamBuf()
{
    if (stream_ != nullptr) {
        if (!finished_)
            deflateBuffer(Z_SYNC_FLUSH);
        auto *strm = static_cast<z_stream *>(stream_);
        ::deflateEnd(strm);
        delete strm;
    }
}

bool
GzipStreamBuf::writeAll(const unsigned char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t put = ::write(fd_, data, size);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            had_error_ = true;
            return false;
        }
        data += put;
        size -= static_cast<std::size_t>(put);
        compressed_bytes_ += static_cast<std::size_t>(put);
    }
    return true;
}

bool
GzipStreamBuf::deflateBuffer(int flush_mode)
{
    if (stream_ == nullptr || finished_) {
        had_error_ = true;
        return false;
    }
    auto *strm = static_cast<z_stream *>(stream_);
    const std::size_t pending =
        static_cast<std::size_t>(pptr() - pbase());
    strm->next_in = reinterpret_cast<Bytef *>(pbase());
    strm->avail_in = static_cast<uInt>(pending);

    for (;;) {
        strm->next_out = out_.data();
        strm->avail_out = static_cast<uInt>(out_.size());
        const int rc = ::deflate(strm, flush_mode);
        if (rc == Z_STREAM_ERROR) {
            had_error_ = true;
            return false;
        }
        const std::size_t produced = out_.size() - strm->avail_out;
        if (produced > 0 && !writeAll(out_.data(), produced))
            return false;
        if (rc == Z_STREAM_END) {
            finished_ = true;
            break;
        }
        // Done when deflate consumed all input and has no buffered
        // output left (it signals "call me again" by filling
        // avail_out completely, and Z_FINISH by not returning
        // Z_STREAM_END yet).
        if (strm->avail_in == 0 && strm->avail_out != 0 &&
            flush_mode != Z_FINISH)
            break;
        if (flush_mode == Z_FINISH && rc == Z_BUF_ERROR &&
            produced == 0) {
            had_error_ = true;
            return false;
        }
    }
    raw_bytes_ += pending;
    setp(buffer_.data(), buffer_.data() + buffer_.size());
    return true;
}

bool
GzipStreamBuf::syncToDisk()
{
    if (!deflateBuffer(Z_SYNC_FLUSH))
        return false;
    if (::fsync(fd_) != 0 && errno != EINVAL && errno != EROFS) {
        // EINVAL/EROFS: fd does not support fsync; the flush alone
        // is the best we can do (same policy as FdStreamBuf).
        had_error_ = true;
        return false;
    }
    return true;
}

bool
GzipStreamBuf::closeFd()
{
    bool ok = deflateBuffer(Z_FINISH);
    if (ok && ::fsync(fd_) != 0 && errno != EINVAL &&
        errno != EROFS) {
        had_error_ = true;
        ok = false;
    }
    if (::close(fd_) != 0)
        had_error_ = true;
    fd_ = -1;
    return ok && !had_error_;
}

GzipStreamBuf::int_type
GzipStreamBuf::overflow(int_type ch)
{
    if (!deflateBuffer(Z_NO_FLUSH))
        return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
        *pptr() = traits_type::to_char_type(ch);
        pbump(1);
    }
    return traits_type::not_eof(ch);
}

int
GzipStreamBuf::sync()
{
    return deflateBuffer(Z_NO_FLUSH) ? 0 : -1;
}

#else // !HEAPMD_HAVE_ZLIB

GzipStreamBuf::GzipStreamBuf(int fd, std::size_t buffer_bytes)
    : fd_(fd), buffer_(1), out_(1)
{
    (void)buffer_bytes;
    had_error_ = true; // stream_ stays null; ok() is false
}

GzipStreamBuf::~GzipStreamBuf() = default;

bool
GzipStreamBuf::writeAll(const unsigned char *, std::size_t)
{
    return false;
}

bool
GzipStreamBuf::deflateBuffer(int)
{
    return false;
}

bool
GzipStreamBuf::syncToDisk()
{
    return false;
}

bool
GzipStreamBuf::closeFd()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
    return false;
}

GzipStreamBuf::int_type
GzipStreamBuf::overflow(int_type)
{
    return traits_type::eof();
}

int
GzipStreamBuf::sync()
{
    return -1;
}

#endif // HEAPMD_HAVE_ZLIB

} // namespace capture

} // namespace heapmd
