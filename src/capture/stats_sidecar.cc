#include "capture/stats_sidecar.hh"

#include <fstream>
#include <ostream>
#include <sstream>

namespace heapmd
{

namespace capture
{

void
writeStatsSidecar(std::ostream &os, const CaptureCounters &counters)
{
    os << "capture.events_emitted " << counters.eventsEmitted << "\n"
       << "capture.alloc_events " << counters.allocEvents << "\n"
       << "capture.free_events " << counters.freeEvents << "\n"
       << "capture.realloc_events " << counters.reallocEvents << "\n"
       << "capture.scan_passes " << counters.scanPasses << "\n"
       << "capture.scan_words " << counters.scanWords << "\n"
       << "capture.scan_edge_writes " << counters.scanEdgeWrites
       << "\n"
       << "capture.scan_edge_clears " << counters.scanEdgeClears
       << "\n"
       << "capture.scan_reclaimed_dead "
       << counters.scanReclaimedDead << "\n"
       << "capture.scan_ns " << counters.scanNanos << "\n"
       << "capture.dropped_reentrant " << counters.droppedReentrant
       << "\n"
       << "capture.bootstrap_bytes " << counters.bootstrapBytes << "\n"
       << "capture.bootstrap_allocs " << counters.bootstrapAllocs
       << "\n"
       << "capture.flushes " << counters.flushes << "\n"
       << "capture.peak_live_objects " << counters.peakLiveObjects
       << "\n"
       << "capture.segment_publishes "
       << counters.segmentPublishes << "\n"
       << "capture.segments_rotated "
       << counters.segmentsRotated << "\n"
       << "capture.trace_raw_bytes " << counters.rawTraceBytes
       << "\n"
       << "capture.trace_compressed_bytes "
       << counters.compressedTraceBytes << "\n";
}

std::map<std::string, std::uint64_t>
readStatsSidecar(std::istream &is)
{
    std::map<std::string, std::uint64_t> values;
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream fields(line);
        std::string name;
        std::uint64_t value = 0;
        if ((fields >> name >> value) && !name.empty())
            values[name] = value;
    }
    return values;
}

std::map<std::string, std::uint64_t>
readStatsSidecarFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    return readStatsSidecar(in);
}

} // namespace capture

} // namespace heapmd
