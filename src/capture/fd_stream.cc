#include "capture/fd_stream.hh"

#include <cerrno>

#include <unistd.h>

namespace heapmd
{

namespace capture
{

FdStreamBuf::FdStreamBuf(int fd, std::size_t buffer_bytes)
    : fd_(fd), buffer_(buffer_bytes > 0 ? buffer_bytes : 1)
{
    setp(buffer_.data(), buffer_.data() + buffer_.size());
}

FdStreamBuf::~FdStreamBuf()
{
    flushBuffer();
}

bool
FdStreamBuf::flushBuffer()
{
    const char *data = pbase();
    std::size_t remaining = static_cast<std::size_t>(pptr() - pbase());
    while (remaining > 0) {
        const ssize_t put = ::write(fd_, data, remaining);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            had_error_ = true;
            return false;
        }
        data += put;
        remaining -= static_cast<std::size_t>(put);
        bytes_written_ += static_cast<std::size_t>(put);
    }
    setp(buffer_.data(), buffer_.data() + buffer_.size());
    return true;
}

bool
FdStreamBuf::syncToDisk()
{
    if (!flushBuffer())
        return false;
    if (::fsync(fd_) != 0 && errno != EINVAL && errno != EROFS) {
        // EINVAL/EROFS: fd does not support fsync (pipe, some
        // pseudo-filesystems); the flush alone is the best we can do.
        had_error_ = true;
        return false;
    }
    return true;
}

bool
FdStreamBuf::closeFd()
{
    const bool ok = syncToDisk();
    if (::close(fd_) != 0)
        had_error_ = true;
    fd_ = -1;
    return ok && !had_error_;
}

FdStreamBuf::int_type
FdStreamBuf::overflow(int_type ch)
{
    if (!flushBuffer())
        return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
        *pptr() = traits_type::to_char_type(ch);
        pbump(1);
    }
    return traits_type::not_eof(ch);
}

int
FdStreamBuf::sync()
{
    return flushBuffer() ? 0 : -1;
}

} // namespace capture

} // namespace heapmd
