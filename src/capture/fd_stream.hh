/**
 * @file
 * File-descriptor streambuf with explicit durability control.
 *
 * The shim writes the trace through std::ostream (what TraceWriter
 * expects) but needs two things std::ofstream cannot promise: a fixed
 * internal buffer that never reallocates inside interposed calls, and
 * an fsync hook so flushed prefixes survive a crashing child.
 */

#ifndef HEAPMD_CAPTURE_FD_STREAM_HH
#define HEAPMD_CAPTURE_FD_STREAM_HH

#include <cstddef>
#include <streambuf>
#include <vector>

namespace heapmd
{

namespace capture
{

/**
 * std::streambuf over a POSIX file descriptor (output only).
 *
 * The buffer is allocated once in the constructor; overflow and
 * sync() push it to the fd with write(2), retrying on EINTR and
 * short writes.
 */
class FdStreamBuf : public std::streambuf
{
  public:
    /** Wraps @p fd; the caller keeps ownership unless closeFd(). */
    explicit FdStreamBuf(int fd, std::size_t buffer_bytes = 1 << 16);

    FdStreamBuf(const FdStreamBuf &) = delete;
    FdStreamBuf &operator=(const FdStreamBuf &) = delete;

    /** Flushes buffered bytes; never closes the fd. */
    ~FdStreamBuf() override;

    /** Flush to the kernel and fsync(2).  @return false on error. */
    bool syncToDisk();

    /** Flush, fsync, and close(2) the fd.  @return false on error. */
    bool closeFd();

    /** True once any write(2) or fsync(2) has failed. */
    bool hadError() const { return had_error_; }

    /** Bytes pushed to the fd so far. */
    std::size_t bytesWritten() const { return bytes_written_; }

    /**
     * Total bytes accepted so far: pushed to the fd plus still
     * pending in the put area.  This is the size the file will have
     * after a flush -- what segment rotation compares against its
     * byte threshold without forcing a flush per operation.
     */
    std::size_t
    totalBytes() const
    {
        return bytes_written_ +
               static_cast<std::size_t>(pptr() - pbase());
    }

  protected:
    int_type overflow(int_type ch) override;
    int sync() override;

  private:
    bool flushBuffer();

    int fd_;
    std::vector<char> buffer_;
    std::size_t bytes_written_ = 0;
    bool had_error_ = false;
};

} // namespace capture

} // namespace heapmd

#endif // HEAPMD_CAPTURE_FD_STREAM_HH
