/**
 * @file
 * File-descriptor streambuf with explicit durability control.
 *
 * The shim writes the trace through std::ostream (what TraceWriter
 * expects) but needs two things std::ofstream cannot promise: a fixed
 * internal buffer that never reallocates inside interposed calls, and
 * an fsync hook so flushed prefixes survive a crashing child.
 */

#ifndef HEAPMD_CAPTURE_FD_STREAM_HH
#define HEAPMD_CAPTURE_FD_STREAM_HH

#include <cstddef>
#include <streambuf>
#include <vector>

namespace heapmd
{

namespace capture
{

/**
 * Shim-facing streambuf contract: fixed buffering (no reallocation
 * inside interposed calls), explicit durability, and byte accounting
 * for segment rotation.  FdStreamBuf writes raw bytes; GzipStreamBuf
 * (gzip_stream.hh) deflates them first.
 */
class CaptureStreamBuf : public std::streambuf
{
  public:
    ~CaptureStreamBuf() override = default;

    /** Flush to the kernel and fsync(2).  @return false on error. */
    virtual bool syncToDisk() = 0;

    /** Flush, fsync, and close(2) the fd.  @return false on error. */
    virtual bool closeFd() = 0;

    /** True once any write(2) or fsync(2) has failed. */
    virtual bool hadError() const = 0;

    /** Bytes pushed to the fd so far (compressed when gzipping). */
    virtual std::size_t bytesWritten() const = 0;

    /**
     * Raw (pre-compression) bytes accepted so far, including bytes
     * still pending in the put area.  Segment rotation compares this
     * against its byte threshold -- always in raw-trace terms, so the
     * event count per segment does not depend on compressibility.
     */
    virtual std::size_t totalBytes() const = 0;
};

/**
 * CaptureStreamBuf over a POSIX file descriptor (output only).
 *
 * The buffer is allocated once in the constructor; overflow and
 * sync() push it to the fd with write(2), retrying on EINTR and
 * short writes.
 */
class FdStreamBuf : public CaptureStreamBuf
{
  public:
    /** Wraps @p fd; the caller keeps ownership unless closeFd(). */
    explicit FdStreamBuf(int fd, std::size_t buffer_bytes = 1 << 16);

    FdStreamBuf(const FdStreamBuf &) = delete;
    FdStreamBuf &operator=(const FdStreamBuf &) = delete;

    /** Flushes buffered bytes; never closes the fd. */
    ~FdStreamBuf() override;

    bool syncToDisk() override;
    bool closeFd() override;
    bool hadError() const override { return had_error_; }
    std::size_t bytesWritten() const override
    {
        return bytes_written_;
    }

    std::size_t
    totalBytes() const override
    {
        return bytes_written_ +
               static_cast<std::size_t>(pptr() - pbase());
    }

  protected:
    int_type overflow(int_type ch) override;
    int sync() override;

  private:
    bool flushBuffer();

    int fd_;
    std::vector<char> buffer_;
    std::size_t bytes_written_ = 0;
    bool had_error_ = false;
};

} // namespace capture

} // namespace heapmd

#endif // HEAPMD_CAPTURE_FD_STREAM_HH
