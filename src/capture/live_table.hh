/**
 * @file
 * Live-object table and conservative pointer scanner for the capture
 * shim.
 *
 * The paper instruments every pointer store; an LD_PRELOAD shim cannot
 * see stores, so edges are recovered the way gperftools' heap checker
 * finds references: periodically walk every live object word by word
 * and treat any word that resolves into another live object as a
 * pointer.  To keep the trace (and the replayed heap-graph) in sync
 * without re-emitting the whole edge set each pass, the scanner diffs
 * against the previous pass: a new or retargeted slot emits
 * Write(slot, value), a slot whose word no longer resolves emits
 * Write(slot, 0), and an unchanged slot emits nothing.
 *
 * The table is single-threaded by design — the shim serializes access
 * under its global mutex — and host-testable: it reads process memory
 * through plain loads, so unit tests exercise it against ordinary
 * heap buffers without any interposition.
 */

#ifndef HEAPMD_CAPTURE_LIVE_TABLE_HH
#define HEAPMD_CAPTURE_LIVE_TABLE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "metrics/metric.hh"

namespace heapmd
{

namespace capture
{

/** Per-pass census of one conservative scan. */
struct ScanStats
{
    std::uint64_t objectsScanned = 0; //!< live objects walked
    std::uint64_t wordsScanned = 0;   //!< aligned words inspected
    std::uint64_t liveEdges = 0;      //!< words resolving to a live object
    std::uint64_t writesEmitted = 0;  //!< new/retargeted edges emitted
    std::uint64_t clearsEmitted = 0;  //!< vanished edges emitted as 0
};

/**
 * The paper's seven degree-metric percentages (Section 2.1) computed
 * directly over the live table's edge state — the shim publishes
 * these into the shared-memory stats segment at each scan, so
 * `heapmd top` shows live drift without replaying the trace.
 */
struct DegreeCensus
{
    std::uint64_t objects = 0; //!< live extents the census covers
    /** Percentages (0..100) indexed by metricIndex(MetricId). */
    std::array<double, kNumMetrics> percent{};
};

/**
 * Tracks the extents of live allocations plus the edge set the last
 * scan reported, so each pass emits only the delta.
 */
class LiveTable
{
  public:
    /** Sink for recovered pointer writes (value 0 = slot cleared). */
    using EmitFn =
        std::function<void(std::uintptr_t slot, std::uintptr_t value)>;

    /** Register a live extent.  @p addr must not be tracked already. */
    void insert(std::uintptr_t addr, std::size_t size);

    /**
     * Forget the extent starting at @p addr along with every edge
     * recorded from or to it (the replayed graph severs those edges
     * on Free; keeping them would suppress their re-emission when the
     * address range is recycled).
     *
     * @return the extent's size, or 0 when @p addr was not tracked.
     */
    std::size_t erase(std::uintptr_t addr);

    /**
     * Resize the extent at @p addr in place (in-place realloc).
     * Edges from slots beyond the new end are forgotten.
     *
     * @return false when @p addr is not tracked.
     */
    bool resize(std::uintptr_t addr, std::size_t new_size);

    /** True when an extent starts exactly at @p addr. */
    bool contains(std::uintptr_t addr) const;

    /**
     * Starts of live extents overlapping [addr, addr + size), except
     * an extent starting exactly at @p exclude.  The shim frees these
     * in the trace before recording an allocation over the range: the
     * allocator handing it out proves their frees went unobserved
     * (e.g. dropped under the reentrancy guard).
     */
    std::vector<std::uintptr_t>
    overlapping(std::uintptr_t addr, std::size_t size,
                std::uintptr_t exclude = 0) const;

    /** Start of the live extent containing @p value, or 0. */
    std::uintptr_t resolve(std::uintptr_t value) const;

    /**
     * Visit every tracked extent as (start, size), in address order.
     * @p fn must not mutate the table; collect starts and erase after.
     */
    void forEachExtent(
        const std::function<void(std::uintptr_t, std::size_t)> &fn)
        const;

    /** Live extents currently tracked. */
    std::size_t objectCount() const { return live_.size(); }

    /** Bytes currently tracked. */
    std::uint64_t liveBytes() const { return live_bytes_; }

    /** Edges the previous scan left established. */
    std::size_t edgeCount() const { return edges_.size(); }

    /**
     * Conservatively scan all live extents and emit the edge delta
     * relative to the previous pass.  Words are read at pointer
     * alignment; unaligned head/tail bytes of an extent are skipped.
     */
    ScanStats scan(const EmitFn &emit);

    /**
     * Degree percentages over the current table, using the edge set
     * the last scan established (call right after scan() for a
     * point-in-time sample).  O(V + E log V); allocates, so shim
     * callers must hold the reentrancy guard.
     */
    DegreeCensus degreeCensus() const;

  private:
    struct EdgeState
    {
        std::uintptr_t value;       //!< word observed at the slot
        std::uintptr_t targetStart; //!< start of the extent it hit
    };

    void dropEdge(std::map<std::uintptr_t, EdgeState>::iterator it);
    void dropEdgesFrom(std::uintptr_t begin, std::uintptr_t end);

    std::map<std::uintptr_t, std::size_t> live_;
    std::map<std::uintptr_t, EdgeState> edges_;
    /** Reverse index: extent start -> slots whose edge targets it. */
    std::map<std::uintptr_t, std::set<std::uintptr_t>> in_refs_;
    std::uint64_t live_bytes_ = 0;
};

} // namespace capture

} // namespace heapmd

#endif // HEAPMD_CAPTURE_LIVE_TABLE_HH
