/**
 * @file
 * Constant-initializable bump arena for pre-init allocations.
 *
 * The shim resolves the real allocator entry points with
 * dlsym(RTLD_NEXT, ...), and glibc's dlsym itself calls calloc — a
 * chicken-and-egg the classic preload interposers (gperftools,
 * jemalloc) all break with a static bootstrap arena.  Allocations made
 * while the resolution is in flight are served from a fixed buffer and
 * never freed; free()/realloc() recognise arena pointers and leave
 * them alone.
 */

#ifndef HEAPMD_CAPTURE_BOOTSTRAP_ARENA_HH
#define HEAPMD_CAPTURE_BOOTSTRAP_ARENA_HH

#include <atomic>
#include <cstddef>

namespace heapmd
{

namespace capture
{

/**
 * Lock-free bump allocator over an externally owned buffer.
 *
 * All members are constant-initializable so the shim's instance needs
 * no dynamic initializer (interposed entry points can run before any
 * constructor in the preloaded library).  The buffer must be static
 * (and therefore zero-initialized: calloc can hand out arena memory
 * without memset, since bump allocation never reuses a byte).
 */
class BootstrapArena
{
  public:
    constexpr BootstrapArena(char *base, std::size_t capacity)
        : base_(base), capacity_(capacity)
    {
    }

    BootstrapArena(const BootstrapArena &) = delete;
    BootstrapArena &operator=(const BootstrapArena &) = delete;

    /**
     * Bump-allocate @p size bytes aligned to @p align (which must be
     * a power of two).  Returns nullptr when the arena is exhausted —
     * callers treat that as allocation failure.
     */
    void *allocate(std::size_t size, std::size_t align = kMinAlign);

    /** True when @p ptr points into the arena's buffer. */
    bool contains(const void *ptr) const;

    /**
     * Bytes between @p ptr and the end of the region handed out so
     * far, or 0 when @p ptr is not inside that region.  The arena
     * stores no per-block sizes, so this is the tightest safe bound
     * when copying out of an arena block of unknown size.
     */
    std::size_t bytesBeyond(const void *ptr) const;

    /** Bytes handed out so far (including alignment padding). */
    std::size_t bytesUsed() const
    {
        return used_.load(std::memory_order_relaxed);
    }

    /** Allocations served so far. */
    std::size_t allocationCount() const
    {
        return allocs_.load(std::memory_order_relaxed);
    }

    /** Default alignment, matching malloc's fundamental alignment. */
    static constexpr std::size_t kMinAlign = 2 * sizeof(void *);

  private:
    char *base_;
    std::size_t capacity_;
    std::atomic<std::size_t> used_{0};
    std::atomic<std::size_t> allocs_{0};
};

} // namespace capture

} // namespace heapmd

#endif // HEAPMD_CAPTURE_BOOTSTRAP_ARENA_HH
