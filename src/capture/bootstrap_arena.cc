#include "capture/bootstrap_arena.hh"

#include <cstdint>

namespace heapmd
{

namespace capture
{

void *
BootstrapArena::allocate(std::size_t size, std::size_t align)
{
    if (align < kMinAlign)
        align = kMinAlign;
    if (size == 0)
        size = 1;

    // CAS loop instead of fetch_add: a failed oversized request must
    // not consume the space remaining for later small ones.
    std::size_t old_used = used_.load(std::memory_order_relaxed);
    for (;;) {
        const std::uintptr_t raw =
            reinterpret_cast<std::uintptr_t>(base_) + old_used;
        const std::uintptr_t aligned =
            (raw + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
        const std::size_t new_used =
            (aligned - reinterpret_cast<std::uintptr_t>(base_)) + size;
        if (new_used > capacity_ || new_used < old_used)
            return nullptr;
        if (used_.compare_exchange_weak(old_used, new_used,
                                        std::memory_order_relaxed)) {
            allocs_.fetch_add(1, std::memory_order_relaxed);
            return reinterpret_cast<void *>(aligned);
        }
    }
}

bool
BootstrapArena::contains(const void *ptr) const
{
    const char *p = static_cast<const char *>(ptr);
    return p >= base_ && p < base_ + capacity_;
}

std::size_t
BootstrapArena::bytesBeyond(const void *ptr) const
{
    const char *p = static_cast<const char *>(ptr);
    const char *end = base_ + used_.load(std::memory_order_acquire);
    if (p < base_ || p >= end)
        return 0;
    return static_cast<std::size_t>(end - p);
}

} // namespace capture

} // namespace heapmd
