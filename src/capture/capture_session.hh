/**
 * @file
 * Host side of live capture: arranging the preload, running the
 * child, and harvesting its artifacts.
 *
 * `heapmd capture -- <cmd> [args]` builds the child environment
 * (LD_PRELOAD plus the HEAPMD_CAPTURE_* contract of capture_env.hh),
 * fork/execs the command, reaps it, and merges the shim's counter
 * sidecar into the host telemetry registry so `--stats` and run
 * manifests see capture.* counters.
 */

#ifndef HEAPMD_CAPTURE_CAPTURE_SESSION_HH
#define HEAPMD_CAPTURE_CAPTURE_SESSION_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "capture/capture_env.hh"

namespace heapmd
{

namespace capture
{

/** Host-side knobs of one capture run. */
struct SessionOptions
{
    /** Trace destination (HEAPMD_CAPTURE_OUT). */
    std::string tracePath = "capture.trace";

    /** Conservative-scan frequency (HEAPMD_CAPTURE_FRQ). */
    std::uint64_t scanFrequency = kDefaultScanFrequency;

    /** Shim path; empty = discover next to the running binary. */
    std::string shimPath;

    /** Forward HEAPMD_CAPTURE_LOG=1 to the shim. */
    bool verbose = false;

    /**
     * Forward HEAPMD_CAPTURE_NO_SEGMENT=1: run without the live
     * stats segment (overhead ablation; artifact-free deployments).
     */
    bool noSegment = false;

    /**
     * Segment-rotation threshold (HEAPMD_CAPTURE_ROTATE_BYTES).
     * 0 = one monolithic trace at tracePath; positive = the shim
     * records rotating "<tracePath>.NNNNNN.heapmd" segments plus a
     * manifest, which `heapmd monitor` can follow live.
     */
    std::uint64_t rotateBytes = 0;

    /**
     * Gzip each rotation segment (HEAPMD_CAPTURE_COMPRESS=1):
     * segments become "<tracePath>.NNNNNN.heapmd.gz".  Requires
     * rotateBytes > 0 and a zlib-enabled build; the CLI validates
     * both before arming.
     */
    bool compress = false;
};

/** Outcome of one capture run. */
struct SessionResult
{
    /** Child terminated normally (vs. by signal). */
    bool exited = false;

    /** exit(3) status when @ref exited. */
    int exitCode = 0;

    /** Terminating signal when not @ref exited. */
    int termSignal = 0;

    /**
     * Paths actually used.  Under rotation tracePath is the *base*
     * path segment names derive from (the file itself is not
     * created); segmentPaths lists the segments that exist after the
     * run, in index order.
     */
    std::string tracePath;
    std::string statsPath;
    std::vector<std::string> segmentPaths;

    /** capture.* counters parsed from the sidecar (may be empty). */
    std::map<std::string, std::uint64_t> counters;
};

/**
 * Locate libheapmd_capture.so.
 *
 * Order: the HEAPMD_CAPTURE_LIB environment override, the directory
 * of the running executable, then the build-tree layout relative to
 * it (src/capture/).  Returns an empty string when nothing exists.
 */
std::string findShimLibrary();

/**
 * Run @p argv under the capture preload.
 *
 * Blocks until the child is reaped.  Returns false (with @p error
 * set) only when the capture could not be *started* — shim missing,
 * fork failure, exec failure, or no trace produced; a child that ran
 * and failed is reported through @p result instead.
 */
bool runCapture(const std::vector<std::string> &argv,
                const SessionOptions &options, SessionResult &result,
                std::string &error);

/**
 * Fold sidecar counters into the process-wide telemetry registry
 * (no-op per entry when telemetry is compiled out).
 */
void mergeCountersIntoTelemetry(
    const std::map<std::string, std::uint64_t> &counters);

} // namespace capture

} // namespace heapmd

#endif // HEAPMD_CAPTURE_CAPTURE_SESSION_HH
