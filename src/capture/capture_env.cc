#include "capture/capture_env.hh"

#include <cerrno>
#include <cstdlib>

namespace heapmd
{

namespace capture
{

std::string
defaultStatsPath(const std::string &trace_path)
{
    return trace_path + ".stats";
}

std::uint64_t
envToU64(const char *value, std::uint64_t fallback)
{
    if (value == nullptr || *value == '\0')
        return fallback;
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (errno != 0 || end == value || *end != '\0' || parsed == 0)
        return fallback;
    return static_cast<std::uint64_t>(parsed);
}

} // namespace capture

} // namespace heapmd
