/**
 * @file
 * Environment-variable contract between `heapmd capture` (the host
 * side) and the preloaded shim (the child side).
 *
 * The host sets these before exec'ing the child; the shim reads them
 * during lazy initialization.  The full reference table is in
 * README.md ("Capturing a real process") and DESIGN.md section 10.
 */

#ifndef HEAPMD_CAPTURE_CAPTURE_ENV_HH
#define HEAPMD_CAPTURE_CAPTURE_ENV_HH

#include <cstdint>
#include <string>

namespace heapmd
{

namespace capture
{

/** Trace output path; capture is disabled when unset. */
inline constexpr const char *kEnvOut = "HEAPMD_CAPTURE_OUT";

/** Conservative-scan frequency, in allocation events. */
inline constexpr const char *kEnvFrq = "HEAPMD_CAPTURE_FRQ";

/** Counter-sidecar path (default: "<trace>.stats"). */
inline constexpr const char *kEnvStatsOut = "HEAPMD_CAPTURE_STATS_OUT";

/**
 * Pid the capture is armed for.  The host cannot know the child's
 * pid before fork, so the child hook sets it between fork and exec;
 * the shim stays disabled in any *other* process that inherits the
 * environment (grandchildren would otherwise truncate the trace).
 */
inline constexpr const char *kEnvPid = "HEAPMD_CAPTURE_PID";

/** "1": shim logs its lifecycle to stderr. */
inline constexpr const char *kEnvLog = "HEAPMD_CAPTURE_LOG";

/**
 * "1": skip the live stats segment (/dev/shm/heapmd.<pid>) entirely.
 * The overhead bench ablates publication with this; deployments that
 * must not leave /dev/shm artifacts can set it too.
 */
inline constexpr const char *kEnvNoSegment =
    "HEAPMD_CAPTURE_NO_SEGMENT";

/**
 * Segment rotation threshold in bytes.  Unset or 0 records one
 * monolithic trace at HEAPMD_CAPTURE_OUT (the pre-rotation behavior).
 * Any positive value switches the shim to rotating segment files
 * ("<out>.000000.heapmd", "<out>.000001.heapmd", ...): whenever the
 * active segment reaches the threshold the shim finalizes it
 * (footer + fsync + close) at an operation boundary and opens the
 * next one, so a crash loses at most the in-progress segment and
 * `heapmd monitor` can consume finished segments while the process
 * still runs.  Rotation happens only *between* recorded allocator
 * operations -- an event record is never split across segments.
 */
inline constexpr const char *kEnvRotateBytes =
    "HEAPMD_CAPTURE_ROTATE_BYTES";

/**
 * "1": gzip each rotation segment (".heapmd.gz" instead of
 * ".heapmd").  Requires rotation (HEAPMD_CAPTURE_ROTATE_BYTES > 0)
 * and a zlib-enabled build; otherwise the shim logs a notice and
 * records uncompressed.  The rotation threshold keeps counting RAW
 * trace bytes, so compression changes segment sizes on disk but not
 * the events per segment.  The segment manifest records the
 * raw/compressed byte totals (the compression ratio).
 */
inline constexpr const char *kEnvCompress = "HEAPMD_CAPTURE_COMPRESS";

/** Host-side override of the shim library path. */
inline constexpr const char *kEnvLib = "HEAPMD_CAPTURE_LIB";

/**
 * Default scan frequency: one conservative edge-recovery pass per
 * this many allocation events (the capture analogue of the paper's
 * frq; production deployments raise it, e.g. 100000).
 */
inline constexpr std::uint64_t kDefaultScanFrequency = 10000;

/** Name interned for the scan-pass marker function (always FnId 0). */
inline constexpr const char *kScanFunctionName =
    "heapmd.capture.scan";

/** Derive the default sidecar path from the trace path. */
std::string defaultStatsPath(const std::string &trace_path);

/**
 * Parse a positive integer environment value; falls back on missing,
 * empty, malformed, or zero input.
 */
std::uint64_t envToU64(const char *value, std::uint64_t fallback);

} // namespace capture

} // namespace heapmd

#endif // HEAPMD_CAPTURE_CAPTURE_ENV_HH
