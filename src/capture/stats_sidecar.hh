/**
 * @file
 * Counter sidecar: how capture.* telemetry crosses the process
 * boundary.
 *
 * The shim's counters live in the *child* process and cannot reach
 * the host CLI's telemetry registry directly, so the shim serializes
 * them to a tiny text sidecar ("<trace>.stats") at finalize and the
 * host parses it back, merging the values into its own registry for
 * `heapmd stats` and the run manifest.
 *
 * Format: one "<name> <value>\n" pair per line, names already carrying
 * the "capture." prefix.  Unknown lines are ignored on read so the
 * format can grow.
 */

#ifndef HEAPMD_CAPTURE_STATS_SIDECAR_HH
#define HEAPMD_CAPTURE_STATS_SIDECAR_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace heapmd
{

namespace capture
{

/** Counters the shim accumulates over one captured run. */
struct CaptureCounters
{
    std::uint64_t eventsEmitted = 0;    //!< trace events written
    std::uint64_t allocEvents = 0;      //!< Alloc events
    std::uint64_t freeEvents = 0;       //!< Free events
    std::uint64_t reallocEvents = 0;    //!< Realloc events
    std::uint64_t scanPasses = 0;       //!< conservative scan passes
    std::uint64_t scanWords = 0;        //!< words inspected by scans
    std::uint64_t scanEdgeWrites = 0;   //!< edge writes emitted
    std::uint64_t scanEdgeClears = 0;   //!< edge clears emitted
    std::uint64_t scanReclaimedDead = 0; //!< unmapped extents reclaimed
    std::uint64_t scanNanos = 0;        //!< wall nanos inside scan passes
    std::uint64_t droppedReentrant = 0; //!< ops unrecorded (reentrancy)
    std::uint64_t bootstrapBytes = 0;   //!< bootstrap-arena bytes used
    std::uint64_t bootstrapAllocs = 0;  //!< pre-init allocations served
    std::uint64_t flushes = 0;          //!< explicit flush/fsync points
    std::uint64_t peakLiveObjects = 0;  //!< live-table high-water mark
    std::uint64_t segmentPublishes = 0; //!< stats-segment seqlock writes
    std::uint64_t segmentsRotated = 0;  //!< finished trace segments
    std::uint64_t rawTraceBytes = 0;    //!< trace bytes before gzip
    std::uint64_t compressedTraceBytes = 0; //!< bytes on disk
};

/** Serialize @p counters as "capture.* value" lines. */
void writeStatsSidecar(std::ostream &os,
                       const CaptureCounters &counters);

/**
 * Parse a sidecar stream into name -> value.  Malformed lines are
 * skipped; an empty map simply means nothing usable was found.
 */
std::map<std::string, std::uint64_t>
readStatsSidecar(std::istream &is);

/** Convenience: parse the sidecar file at @p path (empty if absent). */
std::map<std::string, std::uint64_t>
readStatsSidecarFile(const std::string &path);

} // namespace capture

} // namespace heapmd

#endif // HEAPMD_CAPTURE_STATS_SIDECAR_HH
