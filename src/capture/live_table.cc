#include "capture/live_table.hh"

#include <cstring>

namespace heapmd
{

namespace capture
{

namespace
{

constexpr std::uintptr_t kWord = sizeof(std::uintptr_t);

std::uintptr_t
alignUp(std::uintptr_t addr)
{
    return (addr + (kWord - 1)) & ~(kWord - 1);
}

std::uintptr_t
alignDown(std::uintptr_t addr)
{
    return addr & ~(kWord - 1);
}

} // namespace

void
LiveTable::insert(std::uintptr_t addr, std::size_t size)
{
    live_[addr] = size;
    live_bytes_ += size;
}

std::size_t
LiveTable::erase(std::uintptr_t addr)
{
    const auto it = live_.find(addr);
    if (it == live_.end())
        return 0;
    const std::size_t size = it->second;
    live_.erase(it);
    live_bytes_ -= size;

    // Forget out-edges recorded from slots inside the freed extent.
    dropEdgesFrom(addr, addr + size);

    // Forget in-edges: the graph severs them on Free, so the next
    // scan must re-emit any slot still (or newly) resolving here.
    const auto refs = in_refs_.find(addr);
    if (refs != in_refs_.end()) {
        for (const std::uintptr_t slot : refs->second)
            edges_.erase(slot);
        in_refs_.erase(refs);
    }
    return size;
}

bool
LiveTable::resize(std::uintptr_t addr, std::size_t new_size)
{
    const auto it = live_.find(addr);
    if (it == live_.end())
        return false;
    const std::size_t old_size = it->second;
    if (new_size < old_size)
        dropEdgesFrom(addr + new_size, addr + old_size);
    live_bytes_ += new_size;
    live_bytes_ -= old_size;
    it->second = new_size;
    return true;
}

bool
LiveTable::contains(std::uintptr_t addr) const
{
    return live_.find(addr) != live_.end();
}

std::vector<std::uintptr_t>
LiveTable::overlapping(std::uintptr_t addr, std::size_t size,
                       std::uintptr_t exclude) const
{
    std::vector<std::uintptr_t> starts;
    if (live_.empty() || size == 0)
        return starts;
    auto it = live_.upper_bound(addr);
    if (it != live_.begin()) {
        const auto prev = std::prev(it);
        if (prev->first + prev->second > addr &&
            prev->first != exclude)
            starts.push_back(prev->first);
    }
    const std::uintptr_t end = addr + size;
    for (; it != live_.end() && it->first < end; ++it) {
        if (it->first != exclude)
            starts.push_back(it->first);
    }
    return starts;
}

std::uintptr_t
LiveTable::resolve(std::uintptr_t value) const
{
    if (value == 0 || live_.empty())
        return 0;
    auto it = live_.upper_bound(value);
    if (it == live_.begin())
        return 0;
    --it;
    if (value < it->first + it->second)
        return it->first;
    return 0;
}

void
LiveTable::forEachExtent(
    const std::function<void(std::uintptr_t, std::size_t)> &fn) const
{
    for (const auto &[addr, size] : live_)
        fn(addr, size);
}

ScanStats
LiveTable::scan(const EmitFn &emit)
{
    ScanStats stats;
    if (live_.empty())
        return stats;

    // The hot loop visits every word of every live object, so both
    // per-word map lookups have to go.  (a) Non-pointer words (small
    // integers, flags, text) are rejected with one range compare
    // against the live address span before paying resolve()'s
    // upper_bound.  (b) live_ is address-ordered and objects are
    // disjoint, so slots are visited in strictly increasing order
    // across the whole pass; a single forward sweep of edges_
    // replaces the per-word find().
    const std::uintptr_t span_lo = live_.begin()->first;
    const auto last = std::prev(live_.end());
    const std::uintptr_t span_hi = last->first + last->second;

    auto eit = edges_.begin();
    for (const auto &[addr, size] : live_) {
        ++stats.objectsScanned;
        const std::uintptr_t begin = alignUp(addr);
        const std::uintptr_t end = alignDown(addr + size);
        for (std::uintptr_t slot = begin; slot < end; slot += kWord) {
            ++stats.wordsScanned;
            while (eit != edges_.end() && eit->first < slot)
                ++eit;
            const bool has_prev =
                eit != edges_.end() && eit->first == slot;
            std::uintptr_t value;
            std::memcpy(&value, reinterpret_cast<const void *>(slot),
                        sizeof(value));
            const std::uintptr_t target =
                value >= span_lo && value < span_hi ? resolve(value)
                                                    : 0;
            if (target != 0) {
                ++stats.liveEdges;
                if (has_prev && eit->second.value == value &&
                    eit->second.targetStart == target)
                    continue; // unchanged since the last pass
                if (has_prev) {
                    const auto next = std::next(eit);
                    dropEdge(eit);
                    eit = next;
                }
                emit(slot, value);
                ++stats.writesEmitted;
                eit = edges_.emplace(slot, EdgeState{value, target})
                          .first;
                in_refs_[target].insert(slot);
            } else if (has_prev) {
                emit(slot, 0);
                ++stats.clearsEmitted;
                const auto next = std::next(eit);
                dropEdge(eit);
                eit = next;
            }
        }
    }
    return stats;
}

void
LiveTable::dropEdge(std::map<std::uintptr_t, EdgeState>::iterator it)
{
    const auto refs = in_refs_.find(it->second.targetStart);
    if (refs != in_refs_.end()) {
        refs->second.erase(it->first);
        if (refs->second.empty())
            in_refs_.erase(refs);
    }
    edges_.erase(it);
}

void
LiveTable::dropEdgesFrom(std::uintptr_t begin, std::uintptr_t end)
{
    auto it = edges_.lower_bound(begin);
    while (it != edges_.end() && it->first < end) {
        const auto next = std::next(it);
        dropEdge(it);
        it = next;
    }
}

DegreeCensus
LiveTable::degreeCensus() const
{
    DegreeCensus census;
    census.objects = live_.size();
    if (live_.empty())
        return census;

    struct Degrees
    {
        std::uint32_t in = 0;
        std::uint32_t out = 0;
    };
    std::map<std::uintptr_t, Degrees> degrees;
    // Out-degree: every recorded edge originates from a slot inside
    // a live extent (erase/resize drop edges from dead ranges).
    for (const auto &[slot, edge] : edges_) {
        (void)edge;
        const std::uintptr_t from = resolve(slot);
        if (from != 0)
            ++degrees[from].out;
    }
    // In-degree: the reverse index counts referring slots per target.
    for (const auto &[target, slots] : in_refs_) {
        if (live_.count(target) != 0)
            degrees[target].in +=
                static_cast<std::uint32_t>(slots.size());
    }

    std::array<std::uint64_t, kNumMetrics> hits{};
    for (const auto &[start, size] : live_) {
        (void)size;
        Degrees d;
        if (const auto it = degrees.find(start);
            it != degrees.end())
            d = it->second;
        hits[metricIndex(MetricId::Roots)] += d.in == 0;
        hits[metricIndex(MetricId::Indeg1)] += d.in == 1;
        hits[metricIndex(MetricId::Indeg2)] += d.in == 2;
        hits[metricIndex(MetricId::Leaves)] += d.out == 0;
        hits[metricIndex(MetricId::Outdeg1)] += d.out == 1;
        hits[metricIndex(MetricId::Outdeg2)] += d.out == 2;
        hits[metricIndex(MetricId::InEqOut)] += d.in == d.out;
    }
    const double denom = static_cast<double>(census.objects);
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        census.percent[i] =
            100.0 * static_cast<double>(hits[i]) / denom;
    return census;
}

} // namespace capture

} // namespace heapmd
