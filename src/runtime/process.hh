/**
 * @file
 * The execution logger: consumes instrumentation events, mirrors the
 * heap-graph, and samples metrics at metric computation points.
 */

#ifndef HEAPMD_RUNTIME_PROCESS_HH
#define HEAPMD_RUNTIME_PROCESS_HH

#include <cstdint>
#include <vector>

#include "heapgraph/heap_graph.hh"
#include "metrics/metric_sample.hh"
#include "metrics/series.hh"
#include "runtime/call_stack.hh"
#include "runtime/events.hh"

namespace heapmd
{

class Process;

/** Receives every raw instrumentation event (e.g. SWAT, tracing). */
class EventObserver
{
  public:
    virtual ~EventObserver() = default;

    /** Called for each event, after the Process has folded it in. */
    virtual void onEvent(const Event &event, Tick tick) = 0;
};

/** Receives each metric sample (e.g. the anomaly detector). */
class SampleObserver
{
  public:
    virtual ~SampleObserver() = default;

    /** Called at every metric computation point. */
    virtual void onSample(const MetricSample &sample,
                          const Process &process) = 0;
};

/** Static configuration of a Process. */
struct ProcessConfig
{
    /**
     * Metric computation frequency: one sample per this many function
     * entries (the paper's frq; it used 1/100,000 on hours-long
     * commercial runs, our synthetic workloads default to 1/2,000).
     */
    std::uint64_t metricFrequency = 2000;

    /**
     * Take an O(V+E) extended sample every this many core samples;
     * 0 disables extended sampling.
     */
    std::uint64_t extendedEvery = 0;

    /** Frames captured per call-stack snapshot. */
    std::size_t callStackDepth = 16;

    /**
     * When false the logger discards events without maintaining the
     * heap-graph (the "uninstrumented" baseline of the overhead
     * bench).
     */
    bool instrumentationEnabled = true;

    /**
     * Tolerate the address-space reuse of real allocators when
     * folding in live-capture traces: an Alloc over a range we still
     * consider live implicitly frees the stale objects (their free
     * was missed, e.g. dropped as reentrant by the capture shim),
     * and zero-size allocations are promoted to one byte as malloc
     * does.  Off for synthetic runs, where such an event is a logger
     * bug and should panic.
     */
    bool tolerateAddressReuse = false;
};

/**
 * HeapMD's model of one monitored execution.
 *
 * Feed it the event stream of an instrumented program (live via
 * HeapApi, or recorded via trace replay); it maintains the heap-graph
 * image, the shadow call stack, and collects a MetricSeries with one
 * sample per metric computation point.
 */
class Process
{
  public:
    explicit Process(ProcessConfig config = {});

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    /** Fold one event in and notify observers. */
    void onEvent(const Event &event);

    /** @name Typed event intake (thin wrappers over onEvent). */
    ///@{
    void onAlloc(Addr addr, std::uint64_t size);
    void onFree(Addr addr);
    void onRealloc(Addr old_addr, Addr new_addr, std::uint64_t size);
    void onWrite(Addr addr, Addr value);
    void onRead(Addr addr);
    void onFnEnter(FnId fn);
    void onFnExit(FnId fn);
    ///@}

    /** Force a metric sample now (e.g. at end of run). */
    const MetricSample &forceSample();

    /** The heap-graph image. */
    const HeapGraph &graph() const { return graph_; }

    /** Shadow call stack (innermost = most recent FnEnter). */
    const CallStack &callStack() const { return call_stack_; }

    /** Function-name registry shared with the instrumented program. */
    FunctionRegistry &registry() { return registry_; }
    const FunctionRegistry &registry() const { return registry_; }

    /** Metric samples collected so far. */
    const MetricSeries &series() const { return series_; }

    /** Extended samples collected so far (empty unless enabled). */
    const std::vector<ExtendedSample> &
    extendedSeries() const
    {
        return extended_;
    }

    /** Event count so far (event time). */
    Tick now() const { return tick_; }

    /** Function entries observed so far. */
    std::uint64_t fnEntries() const { return fn_entries_; }

    /**
     * Stale objects implicitly freed by address-space reuse (always
     * 0 unless tolerateAddressReuse is on).
     */
    std::uint64_t reusedRangeFrees() const
    {
        return reused_range_frees_;
    }

    const ProcessConfig &config() const { return config_; }

    /**
     * Fold any batched graph-telemetry deltas into the Registry.
     * Call when a fold completes and a Registry snapshot (manifest,
     * stats table) is about to be taken while this Process is still
     * alive -- counters are otherwise only current as of the last
     * metric point or batch boundary.
     */
    void flushTelemetry() { graph_.flushTelemetry(); }

    /** Register a raw-event observer (not owned; must outlive us). */
    void addEventObserver(EventObserver *observer);

    /** Register a metric-sample observer (not owned). */
    void addSampleObserver(SampleObserver *observer);

  private:
    void takeSample();
    void reclaimReusedRange(Addr addr, std::uint64_t size,
                            Addr exclude);

    ProcessConfig config_;
    HeapGraph graph_;
    CallStack call_stack_;
    FunctionRegistry registry_;
    MetricSeries series_;
    std::vector<ExtendedSample> extended_;
    std::vector<EventObserver *> event_observers_;
    std::vector<SampleObserver *> sample_observers_;
    Tick tick_ = 0;
    std::uint64_t fn_entries_ = 0;
    std::uint64_t sample_count_ = 0;
    std::uint64_t reused_range_frees_ = 0;
};

} // namespace heapmd

#endif // HEAPMD_RUNTIME_PROCESS_HH
