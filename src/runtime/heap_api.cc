#include "runtime/heap_api.hh"

#include <vector>

#include "support/logging.hh"

namespace heapmd
{

HeapApi::HeapApi(Process &process)
    : process_(process)
{
}

Addr
HeapApi::malloc(std::uint64_t size)
{
    if (size == 0)
        size = 1;
    const Addr addr = space_.allocate(size);
    sizes_.emplace(addr, size);
    process_.onAlloc(addr, size);
    return addr;
}

void
HeapApi::free(Addr addr)
{
    // Report first: a buggy double free is still an observable event.
    process_.onFree(addr);
    auto it = sizes_.find(addr);
    if (it == sizes_.end())
        return; // invalid free; the logger counted it
    eraseShadowRange(addr, it->second);
    sizes_.erase(it);
    space_.release(addr);
}

Addr
HeapApi::realloc(Addr addr, std::uint64_t new_size)
{
    if (addr == kNullAddr)
        return malloc(new_size);
    auto it = sizes_.find(addr);
    if (it == sizes_.end())
        HEAPMD_PANIC("realloc of unknown block ", addr);

    if (new_size == 0) {
        free(addr);
        return kNullAddr;
    }

    const std::uint64_t old_size = it->second;
    const Addr new_addr = space_.reallocate(addr, new_size);

    if (new_addr == addr) {
        if (new_size < old_size)
            eraseShadowRange(addr + new_size, old_size - new_size);
        it->second = new_size;
    } else {
        // Copy surviving pointer slots (memcpy semantics).
        std::vector<std::pair<Addr, Addr>> moved;
        const std::uint64_t copy_len =
            new_size < old_size ? new_size : old_size;
        auto lo = shadow_.lower_bound(addr);
        auto hi = shadow_.lower_bound(addr + copy_len);
        for (auto s = lo; s != hi; ++s)
            moved.emplace_back(new_addr + (s->first - addr), s->second);
        eraseShadowRange(addr, old_size);
        sizes_.erase(it);
        sizes_.emplace(new_addr, new_size);
        for (const auto &[slot, value] : moved)
            shadow_.emplace(slot, value);
    }

    process_.onRealloc(addr, new_addr, new_size);
    return new_addr;
}

void
HeapApi::storePtr(Addr slot, Addr value)
{
    if (value == kNullAddr)
        shadow_.erase(slot);
    else
        shadow_[slot] = value;
    process_.onWrite(slot, value);
}

Addr
HeapApi::loadPtr(Addr slot)
{
    process_.onRead(slot);
    auto it = shadow_.find(slot);
    return it == shadow_.end() ? kNullAddr : it->second;
}

void
HeapApi::storeData(Addr slot, std::uint64_t value)
{
    // Data words are not kept in shadow memory (only pointers are
    // read back by the workloads), but the store is still observable.
    process_.onWrite(slot, value);
}

void
HeapApi::touch(Addr addr)
{
    process_.onRead(addr);
}

FnId
HeapApi::intern(const std::string &name)
{
    return process_.registry().intern(name);
}

void
HeapApi::fnEnter(FnId fn)
{
    process_.onFnEnter(fn);
}

void
HeapApi::fnExit(FnId fn)
{
    process_.onFnExit(fn);
}

std::uint64_t
HeapApi::blockSize(Addr addr) const
{
    auto it = sizes_.find(addr);
    return it == sizes_.end() ? 0 : it->second;
}

void
HeapApi::eraseShadowRange(Addr base, std::uint64_t len)
{
    auto lo = shadow_.lower_bound(base);
    auto hi = shadow_.lower_bound(base + len);
    shadow_.erase(lo, hi);
}

} // namespace heapmd
