#include "runtime/address_space.hh"

#include "support/logging.hh"

namespace heapmd
{

std::uint64_t
AddressSpace::roundToClass(std::uint64_t size)
{
    if (size == 0)
        size = 1;
    if (size <= 256)
        return (size + 15) & ~std::uint64_t{15};
    if (size <= 4096)
        return (size + 63) & ~std::uint64_t{63};
    return (size + 4095) & ~std::uint64_t{4095};
}

Addr
AddressSpace::allocate(std::uint64_t size)
{
    const std::uint64_t cls = roundToClass(size);
    ++stats_.allocs;

    auto it = free_lists_.find(cls);
    if (it != free_lists_.end() && !it->second.empty()) {
        const Addr addr = it->second.back();
        it->second.pop_back();
        live_.emplace(addr, cls);
        ++stats_.reusedBlocks;
        return addr;
    }

    const Addr addr = next_;
    next_ += cls;
    if (next_ < addr)
        HEAPMD_PANIC("synthetic address space exhausted");
    live_.emplace(addr, cls);
    stats_.bumpBytes += cls;
    return addr;
}

bool
AddressSpace::release(Addr addr)
{
    auto it = live_.find(addr);
    if (it == live_.end()) {
        ++stats_.doubleFrees;
        return false;
    }
    free_lists_[it->second].push_back(addr);
    live_.erase(it);
    ++stats_.frees;
    return true;
}

Addr
AddressSpace::reallocate(Addr addr, std::uint64_t new_size)
{
    if (addr == kNullAddr)
        return allocate(new_size);
    auto it = live_.find(addr);
    if (it == live_.end())
        HEAPMD_PANIC("reallocate of unknown block ", addr);
    const std::uint64_t new_cls = roundToClass(new_size);
    if (new_cls == it->second)
        return addr; // same bin: grow/shrink in place
    release(addr);
    return allocate(new_size);
}

std::uint64_t
AddressSpace::blockSize(Addr addr) const
{
    auto it = live_.find(addr);
    return it == live_.end() ? 0 : it->second;
}

bool
AddressSpace::isLive(Addr addr) const
{
    return live_.count(addr) != 0;
}

} // namespace heapmd
