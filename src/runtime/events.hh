/**
 * @file
 * The event vocabulary produced by instrumented execution.
 *
 * This is the substitution for Vulcan binary instrumentation (see
 * DESIGN.md): whatever the paper's rewritten binary reported to the
 * execution logger, our instrumented runtime reports as a stream of
 * these events.  The same stream can be recorded to a trace and
 * replayed offline (the paper's post-mortem design).
 */

#ifndef HEAPMD_RUNTIME_EVENTS_HH
#define HEAPMD_RUNTIME_EVENTS_HH

#include <cstdint>

#include "support/types.hh"

namespace heapmd
{

/** Kinds of instrumentation events. */
enum class EventKind : std::uint8_t
{
    Alloc,   //!< heap allocation: addr, size
    Free,    //!< heap deallocation: addr
    Realloc, //!< heap reallocation: addr (old), value (new addr), size
    Write,   //!< pointer-sized store: addr, value
    Read,    //!< pointer-sized load / access: addr
    FnEnter, //!< function entry: fn
    FnExit,  //!< function exit: fn
};

/** Display name of an event kind. */
const char *eventKindName(EventKind kind);

/**
 * One instrumentation event.  A flat POD so the trace codec can write
 * it compactly; unused fields are zero for a given kind.
 */
struct Event
{
    EventKind kind = EventKind::Write;
    FnId fn = kNoFunction;    //!< FnEnter/FnExit
    Addr addr = kNullAddr;    //!< Alloc/Free/Realloc(old)/Write/Read
    Addr value = kNullAddr;   //!< Write value; Realloc new address
    std::uint64_t size = 0;   //!< Alloc/Realloc size

    static Event alloc(Addr addr, std::uint64_t size);
    static Event free(Addr addr);
    static Event realloc(Addr old_addr, Addr new_addr,
                         std::uint64_t size);
    static Event write(Addr addr, Addr value);
    static Event read(Addr addr);
    static Event fnEnter(FnId fn);
    static Event fnExit(FnId fn);
};

bool operator==(const Event &a, const Event &b);

} // namespace heapmd

#endif // HEAPMD_RUNTIME_EVENTS_HH
