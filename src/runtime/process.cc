#include "runtime/process.hh"

#include <algorithm>

#include "metrics/metric_engine.hh"
#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

Process::Process(ProcessConfig config)
    : config_(config)
{
    if (config_.metricFrequency == 0)
        HEAPMD_FATAL("metricFrequency must be positive");
}

void
Process::onEvent(const Event &event)
{
    ++tick_;

    if (config_.instrumentationEnabled) {
        switch (event.kind) {
          case EventKind::Alloc: {
            std::uint64_t size = event.size;
            if (config_.tolerateAddressReuse) {
                size = std::max<std::uint64_t>(size, 1);
                reclaimReusedRange(event.addr, size, kNullAddr);
            }
            graph_.allocate(event.addr, size, call_stack_.top(),
                            tick_);
            break;
          }
          case EventKind::Free:
            graph_.free(event.addr);
            break;
          case EventKind::Realloc:
            if (config_.tolerateAddressReuse && event.size != 0) {
                // The stale-object sweep must spare the source
                // object: reallocate() itself frees (or resizes) it.
                reclaimReusedRange(event.value, event.size,
                                   event.addr);
            }
            graph_.reallocate(event.addr, event.value, event.size,
                              call_stack_.top(), tick_);
            break;
          case EventKind::Write:
            graph_.write(event.addr, event.value);
            break;
          case EventKind::Read:
            break; // reads do not alter connectivity
          case EventKind::FnEnter:
            call_stack_.push(event.fn);
            ++fn_entries_;
            if (fn_entries_ % config_.metricFrequency == 0)
                takeSample();
            break;
          case EventKind::FnExit:
            call_stack_.pop(event.fn);
            break;
        }
    } else if (event.kind == EventKind::FnEnter) {
        ++fn_entries_; // keep run-length accounting comparable
    }

    for (EventObserver *observer : event_observers_)
        observer->onEvent(event, tick_);
}

void
Process::onAlloc(Addr addr, std::uint64_t size)
{
    onEvent(Event::alloc(addr, size));
}

void
Process::onFree(Addr addr)
{
    onEvent(Event::free(addr));
}

void
Process::onRealloc(Addr old_addr, Addr new_addr, std::uint64_t size)
{
    onEvent(Event::realloc(old_addr, new_addr, size));
}

void
Process::onWrite(Addr addr, Addr value)
{
    onEvent(Event::write(addr, value));
}

void
Process::onRead(Addr addr)
{
    onEvent(Event::read(addr));
}

void
Process::onFnEnter(FnId fn)
{
    onEvent(Event::fnEnter(fn));
}

void
Process::onFnExit(FnId fn)
{
    onEvent(Event::fnExit(fn));
}

void
Process::reclaimReusedRange(Addr addr, std::uint64_t size,
                            Addr exclude)
{
    const std::size_t reclaimed =
        graph_.freeOverlapping(addr, size, exclude);
    if (reclaimed != 0) {
        reused_range_frees_ += reclaimed;
        HEAPMD_COUNTER_ADD("runtime.address_reuse_frees", reclaimed);
    }
}

const MetricSample &
Process::forceSample()
{
    takeSample();
    return series_.samples().back();
}

void
Process::addEventObserver(EventObserver *observer)
{
    if (observer == nullptr)
        HEAPMD_PANIC("null event observer");
    event_observers_.push_back(observer);
}

void
Process::addSampleObserver(SampleObserver *observer)
{
    if (observer == nullptr)
        HEAPMD_PANIC("null sample observer");
    sample_observers_.push_back(observer);
}

void
Process::takeSample()
{
    HEAPMD_TIMED_NS("metrics.compute_ns", "metrics.sample_ns");
    HEAPMD_COUNTER_INC("metrics.samples");

    const MetricSample sample =
        MetricEngine::sample(graph_, tick_, sample_count_);
    series_.push(sample);
    // Graph telemetry is batched off the per-event path; a metric
    // point is where mid-run Registry readers expect fresh values.
    graph_.flushTelemetry();
    HEAPMD_TRACE_COUNTER("graph.nodes_live", graph_.vertexCount());
    HEAPMD_TRACE_COUNTER("graph.edges_live", graph_.edgeCount());

    if (config_.extendedEvery != 0 &&
        sample_count_ % config_.extendedEvery == 0) {
        extended_.push_back(
            MetricEngine::sampleExtended(graph_, tick_, sample_count_));
    }
    ++sample_count_;

    for (SampleObserver *observer : sample_observers_)
        observer->onSample(sample, *this);
}

} // namespace heapmd
