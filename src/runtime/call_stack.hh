/**
 * @file
 * Shadow call stack and function-name registry.
 *
 * The paper logs call stacks around metric-extreme crossings
 * (Section 2.2).  Our substitution for x86 stack unwinding is a
 * shadow stack of function ids maintained by FnEnter/FnExit events.
 */

#ifndef HEAPMD_RUNTIME_CALL_STACK_HH
#define HEAPMD_RUNTIME_CALL_STACK_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "support/types.hh"

namespace heapmd
{

/** Maps function names to dense FnIds and back. */
class FunctionRegistry
{
  public:
    /** Intern @p name, returning its id (idempotent). */
    FnId intern(const std::string &name);

    /**
     * Name of @p fn; "<fn#N>" when unregistered (including the
     * kNoFunction sentinel), so callers can render ids from foreign
     * or truncated registries without crashing.
     */
    std::string name(FnId fn) const;

    /** True when @p fn was interned into this registry. */
    bool contains(FnId fn) const { return fn < names_.size(); }

    /** Number of interned functions. */
    std::size_t size() const { return names_.size(); }

  private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, FnId> ids_;
};

/** Shadow stack of function ids. */
class CallStack
{
  public:
    /** Record entry into @p fn. */
    void push(FnId fn) { frames_.push_back(fn); }

    /**
     * Record exit from @p fn.  Unbalanced exits are tolerated (the
     * instrumented program may longjmp): frames are popped down to
     * and including the matching @p fn when present, else ignored.
     */
    void pop(FnId fn);

    /** Innermost function, or kNoFunction when empty. */
    FnId top() const;

    std::size_t depth() const { return frames_.size(); }

    bool empty() const { return frames_.empty(); }

    /**
     * Copy of the innermost @p max_frames frames, innermost first.
     * @p max_frames of 0 captures the whole stack.
     */
    std::vector<FnId> capture(std::size_t max_frames = 0) const;

    /** Drop all frames. */
    void clear() { frames_.clear(); }

  private:
    std::vector<FnId> frames_;
};

/** Render a captured stack as "inner <- mid <- outer". */
std::string formatStack(const std::vector<FnId> &frames,
                        const FunctionRegistry &registry);

} // namespace heapmd

#endif // HEAPMD_RUNTIME_CALL_STACK_HH
