#include "runtime/call_stack.hh"

#include <algorithm>

namespace heapmd
{

FnId
FunctionRegistry::intern(const std::string &name)
{
    auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    const FnId id = static_cast<FnId>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
}

std::string
FunctionRegistry::name(FnId fn) const
{
    if (fn < names_.size())
        return names_[fn];
    return "<fn#" + std::to_string(fn) + ">";
}

void
CallStack::pop(FnId fn)
{
    // Common case: balanced.
    if (!frames_.empty() && frames_.back() == fn) {
        frames_.pop_back();
        return;
    }
    // Tolerate unwinding past frames (longjmp/exceptions): pop down
    // to the matching frame when one exists.
    auto it = std::find(frames_.rbegin(), frames_.rend(), fn);
    if (it != frames_.rend())
        frames_.erase(std::prev(it.base()), frames_.end());
}

FnId
CallStack::top() const
{
    return frames_.empty() ? kNoFunction : frames_.back();
}

std::vector<FnId>
CallStack::capture(std::size_t max_frames) const
{
    std::vector<FnId> out;
    const std::size_t n = frames_.size();
    const std::size_t take =
        (max_frames == 0) ? n : std::min(max_frames, n);
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i)
        out.push_back(frames_[n - 1 - i]);
    return out;
}

std::string
formatStack(const std::vector<FnId> &frames,
            const FunctionRegistry &registry)
{
    std::string out;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (i)
            out += " <- ";
        out += registry.name(frames[i]);
    }
    return out.empty() ? "<empty stack>" : out;
}

} // namespace heapmd
