/**
 * @file
 * The instrumented program's view of its heap.
 *
 * HeapApi is the substitution for a Vulcan-instrumented binary: every
 * allocation, deallocation, pointer store and pointer load performed
 * through it is reported to the execution logger (Process) as the
 * event the rewritten binary would have produced.  The synthetic
 * workloads (src/istl, src/apps) perform *all* of their heap work
 * through this class, including reading their own pointers back from
 * the simulated memory, so the monitored heap genuinely lives here.
 */

#ifndef HEAPMD_RUNTIME_HEAP_API_HH
#define HEAPMD_RUNTIME_HEAP_API_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "runtime/address_space.hh"
#include "runtime/process.hh"
#include "support/types.hh"

namespace heapmd
{

/**
 * Program-side heap: a synthetic address space plus a shadow word
 * store for pointer slots, with full instrumentation event emission.
 */
class HeapApi
{
  public:
    /** @param process the execution logger receiving our events. */
    explicit HeapApi(Process &process);

    HeapApi(const HeapApi &) = delete;
    HeapApi &operator=(const HeapApi &) = delete;

    /** Allocate @p size bytes; reports an Alloc event. */
    Addr malloc(std::uint64_t size);

    /**
     * Free the block at @p addr; reports a Free event even when the
     * free is invalid (double free), exactly as an instrumented
     * buggy binary would.
     */
    void free(Addr addr);

    /**
     * Reallocate to @p new_size; memcpy semantics for stored pointer
     * slots.  Reports a Realloc event.  @return the new block address.
     */
    Addr realloc(Addr addr, std::uint64_t new_size);

    /** Store pointer @p value at @p slot; reports a Write event. */
    void storePtr(Addr slot, Addr value);

    /**
     * Load the pointer stored at @p slot; reports a Read event.
     * @return kNullAddr when the slot holds no pointer.
     */
    Addr loadPtr(Addr slot);

    /**
     * Store a non-pointer word; reports a Write event carrying the
     * raw value.  (A value that happens to land inside a live object
     * will create an edge -- the tool is type-blind, as in the paper.)
     */
    void storeData(Addr slot, std::uint64_t value);

    /** Report a Read access at @p addr (feeds SWAT's staleness). */
    void touch(Addr addr);

    /** Intern a function name in the shared registry. */
    FnId intern(const std::string &name);

    /** Report entry into @p fn. */
    void fnEnter(FnId fn);

    /** Report exit from @p fn. */
    void fnExit(FnId fn);

    /** Requested (un-rounded) size of a live block; 0 when unknown. */
    std::uint64_t blockSize(Addr addr) const;

    /** True when @p addr starts a live block. */
    bool isLive(Addr addr) const { return sizes_.count(addr) != 0; }

    /** Number of live blocks (program's own view). */
    std::size_t liveCount() const { return sizes_.size(); }

    /** The underlying synthetic address space (for tests/benches). */
    const AddressSpace &space() const { return space_; }

    /** The logger this program reports to. */
    Process &process() { return process_; }

  private:
    /** Drop shadow slots in [base, base + len). */
    void eraseShadowRange(Addr base, std::uint64_t len);

    Process &process_;
    AddressSpace space_;
    /** Live blocks: requested size by address. */
    std::unordered_map<Addr, std::uint64_t> sizes_;
    /** Shadow memory for pointer slots (ordered for range erase). */
    std::map<Addr, Addr> shadow_;
};

/**
 * RAII function-entry marker: the workload's substitute for the
 * instrumented function prologue/epilogue.
 */
class FunctionScope
{
  public:
    FunctionScope(HeapApi &heap, FnId fn)
        : heap_(heap), fn_(fn)
    {
        heap_.fnEnter(fn_);
    }

    ~FunctionScope() { heap_.fnExit(fn_); }

    FunctionScope(const FunctionScope &) = delete;
    FunctionScope &operator=(const FunctionScope &) = delete;

  private:
    HeapApi &heap_;
    FnId fn_;
};

} // namespace heapmd

#endif // HEAPMD_RUNTIME_HEAP_API_HH
