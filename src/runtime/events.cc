#include "runtime/events.hh"

namespace heapmd
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Alloc:
        return "alloc";
      case EventKind::Free:
        return "free";
      case EventKind::Realloc:
        return "realloc";
      case EventKind::Write:
        return "write";
      case EventKind::Read:
        return "read";
      case EventKind::FnEnter:
        return "fn-enter";
      case EventKind::FnExit:
        return "fn-exit";
    }
    return "unknown";
}

Event
Event::alloc(Addr addr, std::uint64_t size)
{
    Event e;
    e.kind = EventKind::Alloc;
    e.addr = addr;
    e.size = size;
    return e;
}

Event
Event::free(Addr addr)
{
    Event e;
    e.kind = EventKind::Free;
    e.addr = addr;
    return e;
}

Event
Event::realloc(Addr old_addr, Addr new_addr, std::uint64_t size)
{
    Event e;
    e.kind = EventKind::Realloc;
    e.addr = old_addr;
    e.value = new_addr;
    e.size = size;
    return e;
}

Event
Event::write(Addr addr, Addr value)
{
    Event e;
    e.kind = EventKind::Write;
    e.addr = addr;
    e.value = value;
    return e;
}

Event
Event::read(Addr addr)
{
    Event e;
    e.kind = EventKind::Read;
    e.addr = addr;
    return e;
}

Event
Event::fnEnter(FnId fn)
{
    Event e;
    e.kind = EventKind::FnEnter;
    e.fn = fn;
    return e;
}

Event
Event::fnExit(FnId fn)
{
    Event e;
    e.kind = EventKind::FnExit;
    e.fn = fn;
    return e;
}

bool
operator==(const Event &a, const Event &b)
{
    return a.kind == b.kind && a.fn == b.fn && a.addr == b.addr &&
           a.value == b.value && a.size == b.size;
}

} // namespace heapmd
