/**
 * @file
 * Deterministic synthetic heap address space.
 *
 * The synthetic workloads do not allocate from the host heap; they
 * draw addresses from this allocator so that (a) runs are bit-stable
 * across machines, (b) traces replay exactly, and (c) freed addresses
 * are *reused* through size-class free lists, so stale pointers can
 * re-bind to new objects exactly as on a real heap.
 */

#ifndef HEAPMD_RUNTIME_ADDRESS_SPACE_HH
#define HEAPMD_RUNTIME_ADDRESS_SPACE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/types.hh"

namespace heapmd
{

/**
 * Bump allocator with LIFO size-class free lists.
 *
 * All blocks are aligned to 16 bytes.  Sizes are rounded up to a size
 * class (16-byte steps to 256, 64-byte steps to 4 KiB, then 4 KiB
 * pages), mimicking a production allocator's binning so address reuse
 * across same-class objects is common.
 */
class AddressSpace
{
  public:
    /** Heap base; chosen away from 0 so kNullAddr is never mapped. */
    static constexpr Addr kHeapBase = 0x10000000ull;

    /** Block alignment in bytes. */
    static constexpr std::uint64_t kAlignment = 16;

    /** Statistics for tests and the overhead bench. */
    struct Stats
    {
        std::uint64_t allocs = 0;
        std::uint64_t frees = 0;
        std::uint64_t reusedBlocks = 0; //!< allocs served by free lists
        std::uint64_t bumpBytes = 0;    //!< fresh bytes carved
        std::uint64_t doubleFrees = 0;  //!< rejected frees
    };

    /**
     * Reserve a block of at least @p size bytes (size 0 is promoted
     * to 1, as with malloc).  @return the block's start address.
     */
    Addr allocate(std::uint64_t size);

    /**
     * Release the block starting at @p addr.
     * @return false (and count a double free) when @p addr is not a
     *         currently allocated block; the call is then a no-op.
     */
    bool release(Addr addr);

    /**
     * Move semantics of realloc over the synthetic space: same size
     * class stays in place, otherwise allocate-new/release-old.
     * @return the (possibly unchanged) block address.
     */
    Addr reallocate(Addr addr, std::uint64_t new_size);

    /** Rounded (size-class) size of a live block; 0 when unknown. */
    std::uint64_t blockSize(Addr addr) const;

    /** True when @p addr is the start of a live block. */
    bool isLive(Addr addr) const;

    /** Number of live blocks. */
    std::size_t liveCount() const { return live_.size(); }

    const Stats &stats() const { return stats_; }

    /** Size-class rounding used by the allocator (exposed for tests). */
    static std::uint64_t roundToClass(std::uint64_t size);

  private:
    Addr next_ = kHeapBase;
    std::unordered_map<Addr, std::uint64_t> live_; // addr -> class size
    std::unordered_map<std::uint64_t, std::vector<Addr>> free_lists_;
    Stats stats_;
};

} // namespace heapmd

#endif // HEAPMD_RUNTIME_ADDRESS_SPACE_HH
