/**
 * @file
 * Two-level page-indexed extent map: O(1) owner lookup for the
 * heap-graph (DESIGN.md §16).
 *
 * Replaces the ordered std::map<Addr, ObjectId> address index.  The
 * address space is cut into 4 KiB pages grouped into 512-page leaves;
 * a hash directory maps leaf number -> leaf (the two-level radix
 * shape of gperftools' addressmap).  Each page records
 *
 *  - the objects *starting* in the page, as a small offset-sorted
 *    array (an object start fits in a u16 page offset + u32 slot);
 *  - at most one *spanner*: the slot of the object that covers the
 *    page's first byte but starts in an earlier page.
 *
 * Lookup invariant (extents of live objects are disjoint): the owner
 * of an address, if any, is the single candidate
 *
 *      predecessor start in the page, else the page's spanner
 *
 * because an in-page start at offset <= a hides the spanner (the
 * spanner's extent must end before that start begins), and any
 * earlier in-page start must end before the predecessor start.  The
 * caller still checks contains() -- the candidate may simply end
 * before the queried byte.
 *
 * Ordered iteration (freeOverlapping, consistency oracles) walks the
 * page range ascending and visits each page's start array in offset
 * order; no global ordered structure is kept.
 */

#ifndef HEAPMD_HEAPGRAPH_PAGE_INDEX_HH
#define HEAPMD_HEAPGRAPH_PAGE_INDEX_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "support/logging.hh"
#include "support/types.hh"

namespace heapmd
{

class PageIndex
{
  public:
    static constexpr std::uint64_t kPageShift = 12;
    static constexpr std::uint64_t kPageSize = std::uint64_t{1}
                                               << kPageShift;
    static constexpr std::uint64_t kPageMask = kPageSize - 1;
    /** Pages per leaf (directory fan-out). */
    static constexpr std::uint64_t kLeafBits = 9;
    static constexpr std::uint64_t kLeafSize = std::uint64_t{1}
                                               << kLeafBits;
    static constexpr std::uint64_t kLeafMask = kLeafSize - 1;

    /** Sentinel slot ("no object"). */
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

    /** An object start within a page. */
    struct Start
    {
        std::uint32_t slot = kNoSlot;
        std::uint16_t offset = 0; //!< start address & kPageMask
    };

    struct Page
    {
        /** Object covering the page's first byte from an earlier
         *  page, or kNoSlot. */
        std::uint32_t spanner = kNoSlot;
        /** Objects starting in this page, ascending by offset. */
        std::vector<Start> starts;

        bool
        empty() const
        {
            return spanner == kNoSlot && starts.empty();
        }
    };

    static constexpr std::uint64_t
    pageOf(Addr addr)
    {
        return addr >> kPageShift;
    }

    /** Index the extent [addr, addr + size) under @p slot. */
    void
    insert(Addr addr, std::uint64_t size, std::uint32_t slot)
    {
        const std::uint64_t first = pageOf(addr);
        const std::uint64_t last = pageOf(addr + size - 1);
        Page &pg = page(first);
        const auto off = static_cast<std::uint16_t>(addr & kPageMask);
        const auto pos = std::lower_bound(
            pg.starts.begin(), pg.starts.end(), off,
            [](const Start &s, std::uint16_t o) { return s.offset < o; });
        if (pos != pg.starts.end() && pos->offset == off)
            HEAPMD_PANIC("page index: duplicate start at ", addr);
        pg.starts.insert(pos, Start{slot, off});
        for (std::uint64_t p = first + 1; p <= last; ++p)
            page(p).spanner = slot;
        ++start_count_;
    }

    /** Remove the extent [addr, addr + size). */
    void
    erase(Addr addr, std::uint64_t size)
    {
        const std::uint64_t first = pageOf(addr);
        const std::uint64_t last = pageOf(addr + size - 1);
        Page *pg = findPage(first);
        const auto off = static_cast<std::uint16_t>(addr & kPageMask);
        if (pg == nullptr)
            HEAPMD_PANIC("page index: erase of unindexed page");
        const auto pos = std::lower_bound(
            pg->starts.begin(), pg->starts.end(), off,
            [](const Start &s, std::uint16_t o) { return s.offset < o; });
        if (pos == pg->starts.end() || pos->offset != off)
            HEAPMD_PANIC("page index: erase of unindexed start ", addr);
        pg->starts.erase(pos);
        for (std::uint64_t p = first + 1; p <= last; ++p)
            page(p).spanner = kNoSlot;
        --start_count_;
    }

    /**
     * Single candidate owner of @p addr, or kNoSlot.  The caller must
     * confirm the candidate's extent actually contains @p addr.
     */
    std::uint32_t
    lookup(Addr addr) const
    {
        const Page *pg = findPage(pageOf(addr));
        if (pg == nullptr)
            return kNoSlot;
        const auto off = static_cast<std::uint16_t>(addr & kPageMask);
        // Predecessor start: last entry with offset <= off.
        const auto pos = std::upper_bound(
            pg->starts.begin(), pg->starts.end(), off,
            [](std::uint16_t o, const Start &s) { return o < s.offset; });
        if (pos != pg->starts.begin())
            return std::prev(pos)->slot;
        return pg->spanner;
    }

    /** Slot of the object starting exactly at @p addr, or kNoSlot. */
    std::uint32_t
    startAt(Addr addr) const
    {
        const Page *pg = findPage(pageOf(addr));
        if (pg == nullptr)
            return kNoSlot;
        const auto off = static_cast<std::uint16_t>(addr & kPageMask);
        const auto pos = std::lower_bound(
            pg->starts.begin(), pg->starts.end(), off,
            [](const Start &s, std::uint16_t o) { return s.offset < o; });
        if (pos != pg->starts.end() && pos->offset == off)
            return pos->slot;
        return kNoSlot;
    }

    /**
     * Visit every object start in [lo, hi) in ascending address
     * order, as f(Addr start, std::uint32_t slot).  One pass over the
     * covered pages.
     */
    template <typename F>
    void
    forEachStartIn(Addr lo, Addr hi, F &&f) const
    {
        if (lo >= hi)
            return;
        const std::uint64_t first = pageOf(lo);
        const std::uint64_t last = pageOf(hi - 1);
        for (std::uint64_t p = first; p <= last; ++p) {
            const Page *pg = findPage(p);
            if (pg == nullptr)
                continue;
            const Addr base = p << kPageShift;
            for (const Start &s : pg->starts) {
                const Addr start = base + s.offset;
                if (start < lo)
                    continue;
                if (start >= hi)
                    break;
                f(start, s.slot);
            }
        }
    }

    /**
     * First object start in [lo, hi): fills @p out_addr / @p out_slot
     * and returns true, or returns false when the range holds none.
     */
    bool
    firstStartIn(Addr lo, Addr hi, Addr &out_addr,
                 std::uint32_t &out_slot) const
    {
        bool found = false;
        forEachStartIn(lo, hi, [&](Addr start, std::uint32_t slot) {
            if (!found) {
                out_addr = start;
                out_slot = slot;
                found = true;
            }
        });
        return found;
    }

    /** Total indexed object starts. */
    std::size_t startCount() const { return start_count_; }

    /**
     * Visit every materialized page as f(pageNumber, const Page &).
     * Unordered across leaves; used by consistency checks only.
     */
    template <typename F>
    void
    forEachPage(F &&f) const
    {
        for (const auto &[leaf_no, leaf] : leaves_) {
            for (std::uint64_t i = 0; i < kLeafSize; ++i) {
                const Page &pg = leaf->pages[i];
                if (!pg.empty())
                    f((leaf_no << kLeafBits) | i, pg);
            }
        }
    }

    void
    clear()
    {
        leaves_.clear();
        cache_.fill(CacheEntry{});
        start_count_ = 0;
    }

  private:
    struct Leaf
    {
        Page pages[kLeafSize];
    };

    /**
     * Direct-mapped leaf cache in front of the hash directory.  Every
     * event does 1-4 leaf resolutions; a graph holding 10M small
     * objects spans only a few hundred leaves (a leaf covers 2 MiB of
     * address space), so nearly every resolution hits here and skips
     * the unordered_map probe.  Leaves are never deleted outside
     * clear(), so cached pointers cannot dangle.
     */
    static constexpr std::size_t kCacheSize = 1024;

    struct CacheEntry
    {
        std::uint64_t leaf_no = ~std::uint64_t{0};
        Leaf *leaf = nullptr;
    };

    Page &
    page(std::uint64_t page_no)
    {
        Leaf *leaf = leafFor(page_no, /*create=*/true);
        return leaf->pages[page_no & kLeafMask];
    }

    Page *
    findPage(std::uint64_t page_no) const
    {
        Leaf *leaf =
            const_cast<PageIndex *>(this)->leafFor(page_no,
                                                   /*create=*/false);
        return leaf == nullptr ? nullptr
                               : &leaf->pages[page_no & kLeafMask];
    }

    Leaf *
    leafFor(std::uint64_t page_no, bool create)
    {
        const std::uint64_t leaf_no = page_no >> kLeafBits;
        CacheEntry &slot = cache_[leaf_no & (kCacheSize - 1)];
        if (slot.leaf_no == leaf_no)
            return slot.leaf;
        Leaf *leaf = nullptr;
        auto it = leaves_.find(leaf_no);
        if (it != leaves_.end()) {
            leaf = it->second.get();
        } else if (create) {
            leaf = leaves_.emplace(leaf_no, std::make_unique<Leaf>())
                       .first->second.get();
        } else {
            return nullptr;
        }
        slot = {leaf_no, leaf};
        return leaf;
    }

    std::unordered_map<std::uint64_t, std::unique_ptr<Leaf>> leaves_;
    std::array<CacheEntry, kCacheSize> cache_{};
    std::size_t start_count_ = 0;
};

} // namespace heapmd

#endif // HEAPMD_HEAPGRAPH_PAGE_INDEX_HH
