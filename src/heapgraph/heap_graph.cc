#include "heapgraph/heap_graph.hh"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

ObjectId
HeapGraph::allocate(Addr addr, std::uint64_t size, FnId site, Tick tick)
{
    if (addr == kNullAddr)
        HEAPMD_PANIC("allocate at null address");
    if (size == 0)
        HEAPMD_PANIC("allocate with size 0");

    // Overlap checks against the neighbours in address order.
    auto next = by_addr_.lower_bound(addr);
    if (next != by_addr_.end() && next->first < addr + size)
        HEAPMD_PANIC("allocation [", addr, ", +", size,
                     ") overlaps a live object at ", next->first);
    if (next != by_addr_.begin()) {
        auto prev = std::prev(next);
        const ObjectRecord &before = objects_.at(prev->second);
        if (before.contains(addr))
            HEAPMD_PANIC("allocation at ", addr,
                         " lands inside live object ", before.id);
    }

    const ObjectId id = next_id_++;
    ObjectRecord rec;
    rec.id = id;
    rec.addr = addr;
    rec.size = size;
    rec.allocSite = site;
    rec.allocTick = tick;
    objects_.emplace(id, std::move(rec));
    by_addr_.emplace(addr, id);
    hist_.addVertex();

    ++stats_.allocs;
    HEAPMD_COUNTER_INC("graph.allocs");
    HEAPMD_GAUGE_ADD("graph.nodes_live", 1);
    stats_.liveBytes += size;
    stats_.peakLiveBytes = std::max(stats_.peakLiveBytes,
                                    stats_.liveBytes);
    stats_.peakVertices = std::max(stats_.peakVertices,
                                   hist_.vertexCount());
    return id;
}

bool
HeapGraph::free(Addr addr)
{
    auto it = by_addr_.find(addr);
    if (it == by_addr_.end()) {
        ++stats_.unknownFrees;
        return false;
    }
    const ObjectId id = it->second;
    ObjectRecord &rec = objects_.at(id);

    // Sever out-edges: every slot this object holds.
    while (!rec.slots.empty())
        removeEdgeInstance(rec, rec.slots.begin()->first);

    // Sever in-edges: every slot elsewhere that targets this object.
    while (!rec.inRefs.empty()) {
        const auto [slot, src_id] = *rec.inRefs.begin();
        ObjectRecord *src = mutableById(src_id);
        if (src == nullptr)
            HEAPMD_PANIC("in-ref from freed object ", src_id);
        removeEdgeInstance(*src, slot);
    }

    hist_.removeVertex(rec.indegree(), rec.outdegree());
    stats_.liveBytes -= rec.size;
    ++stats_.frees;
    HEAPMD_COUNTER_INC("graph.frees");
    HEAPMD_GAUGE_ADD("graph.nodes_live", -1);
    by_addr_.erase(it);
    objects_.erase(id);
    return true;
}

ObjectId
HeapGraph::reallocate(Addr old_addr, Addr new_addr,
                      std::uint64_t new_size, FnId site, Tick tick)
{
    ++stats_.reallocs;
    HEAPMD_COUNTER_INC("graph.reallocs");

    if (old_addr == kNullAddr) // realloc(NULL, n) == malloc(n)
        return allocate(new_addr, new_size, site, tick);

    auto it = by_addr_.find(old_addr);
    if (it == by_addr_.end()) {
        ++stats_.unknownFrees;
        if (new_size == 0)
            return kNoObject;
        return allocate(new_addr, new_size, site, tick);
    }

    if (new_size == 0) { // realloc(p, 0) == free(p)
        free(old_addr);
        return kNoObject;
    }

    ObjectRecord &old_rec = objects_.at(it->second);

    if (new_addr == old_addr) {
        // In-place resize: in-edges survive; slots beyond the new
        // extent are severed when shrinking.
        if (new_size > old_rec.size) {
            auto next = by_addr_.upper_bound(old_addr);
            if (next != by_addr_.end() &&
                next->first < old_addr + new_size) {
                HEAPMD_PANIC("in-place realloc grows into object at ",
                             next->first);
            }
        }
        std::vector<Addr> doomed;
        for (const auto &[slot, target] : old_rec.slots) {
            (void)target;
            if (slot - old_rec.addr >= new_size)
                doomed.push_back(slot);
        }
        for (Addr slot : doomed)
            removeEdgeInstance(old_rec, slot);
        stats_.liveBytes += new_size; // adjust live-byte accounting
        stats_.liveBytes -= old_rec.size;
        stats_.peakLiveBytes = std::max(stats_.peakLiveBytes,
                                        stats_.liveBytes);
        old_rec.size = new_size;
        return old_rec.id;
    }

    // Moving realloc: capture surviving out-slots (memcpy semantics),
    // free the old extent (in-edges dangle), then rebuild.
    struct SavedSlot { std::uint64_t offset; ObjectId target; };
    std::vector<SavedSlot> saved;
    saved.reserve(old_rec.slots.size());
    const ObjectId old_id = old_rec.id;
    for (const auto &[slot, target] : old_rec.slots) {
        const std::uint64_t offset = slot - old_rec.addr;
        if (offset < new_size)
            saved.push_back({offset, target});
    }

    free(old_addr);

    const ObjectId new_id = allocate(new_addr, new_size, site, tick);
    ObjectRecord &new_rec = objects_.at(new_id);
    for (const SavedSlot &s : saved) {
        // A copied self-pointer still holds the *old* address: it now
        // dangles rather than re-targeting the moved object.
        if (s.target == old_id)
            continue;
        ObjectRecord *target = mutableById(s.target);
        if (target == nullptr)
            continue; // target freed while severing (defensive)
        addEdgeInstance(new_rec, new_addr + s.offset, *target);
    }
    return new_id;
}

std::size_t
HeapGraph::freeOverlapping(Addr addr, std::uint64_t size,
                          Addr exclude)
{
    std::vector<Addr> doomed;
    // The object owning the range's first byte may start before it.
    auto it = by_addr_.upper_bound(addr);
    if (it != by_addr_.begin()) {
        auto prev = std::prev(it);
        const ObjectRecord &rec = objects_.at(prev->second);
        if (rec.contains(addr) && prev->first != exclude)
            doomed.push_back(prev->first);
    }
    for (; it != by_addr_.end() && it->first < addr + size; ++it) {
        if (it->first != exclude)
            doomed.push_back(it->first);
    }
    for (Addr start : doomed)
        free(start);
    return doomed.size();
}

void
HeapGraph::write(Addr addr, Addr value)
{
    ++stats_.writes;

    ObjectRecord *owner = mutableOwnerOf(addr);
    if (owner == nullptr) {
        // Stack/global/unmapped store: not a heap-graph vertex, so no
        // edge originates here (such referents stay "roots").
        ++stats_.ignoredWrites;
        return;
    }

    const bool had_edge = owner->slots.count(addr) != 0;
    if (had_edge)
        removeEdgeInstance(*owner, addr);

    ObjectRecord *target = mutableOwnerOf(value);
    if (target != nullptr) {
        addEdgeInstance(*owner, addr, *target);
        ++stats_.pointerWrites;
        HEAPMD_COUNTER_INC("graph.pointer_writes");
    } else if (had_edge) {
        ++stats_.clearedSlots;
    }
}

const ObjectRecord *
HeapGraph::objectAt(Addr addr) const
{
    return const_cast<HeapGraph *>(this)->mutableOwnerOf(addr);
}

const ObjectRecord *
HeapGraph::objectStartingAt(Addr addr) const
{
    auto it = by_addr_.find(addr);
    return it == by_addr_.end() ? nullptr : &objects_.at(it->second);
}

const ObjectRecord *
HeapGraph::objectById(ObjectId id) const
{
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : &it->second;
}

bool
HeapGraph::hasEdge(ObjectId u, ObjectId v) const
{
    const ObjectRecord *src = objectById(u);
    return src != nullptr && src->outNeighbors.count(v) != 0;
}

DegreeHistogram
HeapGraph::recomputeHistogram() const
{
    DegreeHistogram fresh;
    for (const auto &[id, rec] : objects_) {
        (void)id;
        fresh.addVertex();
        fresh.transition(0, 0, rec.indegree(), rec.outdegree());
    }
    return fresh;
}

void
HeapGraph::checkConsistency() const
{
    if (objects_.size() != by_addr_.size())
        HEAPMD_PANIC("object map and address map sizes differ");
    if (hist_.vertexCount() != objects_.size())
        HEAPMD_PANIC("histogram vertex count drifted");

    std::uint64_t live_bytes = 0;
    std::uint64_t distinct_edges = 0;

    Addr prev_end = 0;
    for (const auto &[addr, id] : by_addr_) {
        const auto oit = objects_.find(id);
        if (oit == objects_.end())
            HEAPMD_PANIC("address map references freed object ", id);
        const ObjectRecord &rec = oit->second;
        if (rec.addr != addr)
            HEAPMD_PANIC("address map key disagrees with record");
        if (addr < prev_end)
            HEAPMD_PANIC("live objects overlap at ", addr);
        prev_end = addr + rec.size;
    }

    for (const auto &[id, rec] : objects_) {
        if (rec.id != id)
            HEAPMD_PANIC("object keyed under wrong id");
        live_bytes += rec.size;
        distinct_edges += rec.outNeighbors.size();

        // slots <-> outNeighbors multiplicity agreement.
        std::unordered_map<ObjectId, std::uint32_t> out_mult;
        for (const auto &[slot, target] : rec.slots) {
            if (!rec.contains(slot))
                HEAPMD_PANIC("slot ", slot, " outside object ", id);
            const ObjectRecord *t = objectById(target);
            if (t == nullptr)
                HEAPMD_PANIC("slot targets freed object ", target);
            ++out_mult[target];
            // Mirror entry must exist on the target.
            auto mir = t->inRefs.find(slot);
            if (mir == t->inRefs.end() || mir->second != id)
                HEAPMD_PANIC("missing inRef mirror for slot ", slot);
        }
        if (out_mult != rec.outNeighbors)
            HEAPMD_PANIC("outNeighbors multiplicities drifted for ", id);

        // inRefs <-> inNeighbors multiplicity agreement.
        std::unordered_map<ObjectId, std::uint32_t> in_mult;
        for (const auto &[slot, src] : rec.inRefs) {
            const ObjectRecord *s = objectById(src);
            if (s == nullptr)
                HEAPMD_PANIC("inRef from freed object ", src);
            auto sit = s->slots.find(slot);
            if (sit == s->slots.end() || sit->second != id)
                HEAPMD_PANIC("inRef without matching source slot");
            ++in_mult[src];
        }
        if (in_mult != rec.inNeighbors)
            HEAPMD_PANIC("inNeighbors multiplicities drifted for ", id);
    }

    if (live_bytes != stats_.liveBytes)
        HEAPMD_PANIC("liveBytes accounting drifted");
    if (distinct_edges != edge_count_)
        HEAPMD_PANIC("edge count drifted: ", edge_count_, " vs ",
                     distinct_edges);

    const DegreeHistogram fresh = recomputeHistogram();
    const bool same =
        fresh.vertexCount() == hist_.vertexCount() &&
        fresh.inEqOutCount() == hist_.inEqOutCount() &&
        fresh.indegCount(0) == hist_.indegCount(0) &&
        fresh.indegCount(1) == hist_.indegCount(1) &&
        fresh.indegCount(2) == hist_.indegCount(2) &&
        fresh.outdegCount(0) == hist_.outdegCount(0) &&
        fresh.outdegCount(1) == hist_.outdegCount(1) &&
        fresh.outdegCount(2) == hist_.outdegCount(2);
    if (!same)
        HEAPMD_PANIC("incremental histogram disagrees with recompute");
}

void
HeapGraph::clear()
{
    HEAPMD_GAUGE_ADD("graph.nodes_live",
                     -static_cast<std::int64_t>(objects_.size()));
    HEAPMD_GAUGE_ADD("graph.edges_live",
                     -static_cast<std::int64_t>(edge_count_));
    objects_.clear();
    by_addr_.clear();
    hist_.reset();
    stats_ = Stats{};
    edge_count_ = 0;
    // next_id_ deliberately keeps counting: vertex ids stay unique
    // across clear() so stale ids can never alias new vertices.
}

ObjectRecord *
HeapGraph::mutableOwnerOf(Addr addr)
{
    if (addr == kNullAddr || by_addr_.empty())
        return nullptr;
    auto it = by_addr_.upper_bound(addr);
    if (it == by_addr_.begin())
        return nullptr;
    --it;
    ObjectRecord &rec = objects_.at(it->second);
    return rec.contains(addr) ? &rec : nullptr;
}

ObjectRecord *
HeapGraph::mutableById(ObjectId id)
{
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : &it->second;
}

void
HeapGraph::addEdgeInstance(ObjectRecord &u, Addr slot, ObjectRecord &v)
{
    if (u.slots.count(slot))
        HEAPMD_PANIC("slot ", slot, " already holds an edge");

    const std::size_t u_in = u.indegree();
    const std::size_t u_out = u.outdegree();
    const std::size_t v_in = v.indegree();
    const std::size_t v_out = v.outdegree();

    u.slots.emplace(slot, v.id);
    if (++u.outNeighbors[v.id] == 1) {
        ++edge_count_;
        HEAPMD_GAUGE_ADD("graph.edges_live", 1);
    }
    v.inRefs.emplace(slot, u.id);
    ++v.inNeighbors[u.id];

    if (u.id == v.id) {
        hist_.transition(u_in, u_out, u.indegree(), u.outdegree());
    } else {
        hist_.transition(u_in, u_out, u.indegree(), u.outdegree());
        hist_.transition(v_in, v_out, v.indegree(), v.outdegree());
    }
}

void
HeapGraph::removeEdgeInstance(ObjectRecord &u, Addr slot)
{
    auto sit = u.slots.find(slot);
    if (sit == u.slots.end())
        HEAPMD_PANIC("removeEdgeInstance on empty slot ", slot);
    const ObjectId target_id = sit->second;
    ObjectRecord *v = mutableById(target_id);
    if (v == nullptr)
        HEAPMD_PANIC("edge targets freed object ", target_id);

    const std::size_t u_in = u.indegree();
    const std::size_t u_out = u.outdegree();
    const std::size_t v_in = v->indegree();
    const std::size_t v_out = v->outdegree();

    u.slots.erase(sit);
    auto out_it = u.outNeighbors.find(target_id);
    if (out_it == u.outNeighbors.end() || out_it->second == 0)
        HEAPMD_PANIC("outNeighbors underflow for ", target_id);
    if (--out_it->second == 0) {
        u.outNeighbors.erase(out_it);
        --edge_count_;
        HEAPMD_GAUGE_ADD("graph.edges_live", -1);
    }

    v->inRefs.erase(slot);
    auto in_it = v->inNeighbors.find(u.id);
    if (in_it == v->inNeighbors.end() || in_it->second == 0)
        HEAPMD_PANIC("inNeighbors underflow for ", u.id);
    if (--in_it->second == 0)
        v->inNeighbors.erase(in_it);

    if (u.id == v->id) {
        hist_.transition(u_in, u_out, u.indegree(), u.outdegree());
    } else {
        hist_.transition(u_in, u_out, u.indegree(), u.outdegree());
        hist_.transition(v_in, v_out, v->indegree(), v->outdegree());
    }
}

} // namespace heapmd
