#include "heapgraph/heap_graph.hh"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "support/logging.hh"
#include "support/prefetch.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

ObjectId
HeapGraph::allocate(Addr addr, std::uint64_t size, FnId site, Tick tick)
{
    if (addr == kNullAddr)
        HEAPMD_PANIC("allocate at null address");
    if (size == 0)
        HEAPMD_PANIC("allocate with size 0");

    // Overlap checks: any live start inside the new extent, then an
    // earlier-starting object covering its first byte.
    Addr clash_addr = 0;
    std::uint32_t clash_slot = PageIndex::kNoSlot;
    if (pages_.firstStartIn(addr, addr + size, clash_addr, clash_slot))
        HEAPMD_PANIC("allocation [", addr, ", +", size,
                     ") overlaps a live object at ", clash_addr);
    const std::uint32_t owner = pages_.lookup(addr);
    if (owner != PageIndex::kNoSlot) {
        const ObjectRecord &before = hot_[owner];
        if (before.contains(addr))
            HEAPMD_PANIC("allocation at ", addr,
                         " lands inside live object ", before.id);
    }

    const std::uint32_t slot = alloc_.acquire();
    if (slot == hot_.size()) {
        hot_.push();
        cold_.push();
    }
    ObjectRecord &rec = hot_[slot];
    rec.id = alloc_.idOf(slot);
    rec.addr = addr;
    rec.size = size;
    cold_[slot].allocSite = site;
    cold_[slot].allocTick = tick;
    pages_.insert(addr, size, slot);
    hist_.addVertex();

    ++stats_.allocs;
    stats_.liveBytes += size;
    stats_.peakLiveBytes = std::max(stats_.peakLiveBytes,
                                    stats_.liveBytes);
    stats_.peakVertices = std::max(stats_.peakVertices,
                                   hist_.vertexCount());
    noteEvent();
    return rec.id;
}

bool
HeapGraph::free(Addr addr)
{
    const std::uint32_t slot = pages_.startAt(addr);
    if (slot == PageIndex::kNoSlot) {
        ++stats_.unknownFrees;
        noteEvent();
        return false;
    }
    severAndRelease(slot);
    noteEvent();
    return true;
}

void
HeapGraph::severAndRelease(std::uint32_t slot)
{
    ObjectRecord &rec = hot_[slot];

    // Severing touches every neighbour record in turn; issue all the
    // fetches up front so they overlap.  Targets and sources of live
    // edges are live by invariant, so slotOf() suffices (no
    // generation check needed just to form the prefetch address).
    for (const auto &[slot_addr, target] : rec.slots) {
        (void)slot_addr;
        alloc_.prefetchMeta(SlotAllocator::slotOf(target));
        prefetchRead(&hot_[SlotAllocator::slotOf(target)]);
    }
    for (const auto &[slot_addr, src] : rec.inRefs) {
        (void)slot_addr;
        alloc_.prefetchMeta(SlotAllocator::slotOf(src));
        prefetchRead(&hot_[SlotAllocator::slotOf(src)]);
    }

    // Sever out-edges: every slot this object holds.
    while (!rec.slots.empty())
        removeEdgeInstance(rec, rec.slots.begin()->first);

    // Sever in-edges: every slot elsewhere that targets this object.
    while (!rec.inRefs.empty()) {
        const auto [slot_addr, src_id] = *rec.inRefs.begin();
        ObjectRecord *src = mutableById(src_id);
        if (src == nullptr)
            HEAPMD_PANIC("in-ref from freed object ", src_id);
        removeEdgeInstance(*src, slot_addr);
    }

    hist_.removeVertex(rec.indegree(), rec.outdegree());
    stats_.liveBytes -= rec.size;
    ++stats_.frees;
    pages_.erase(rec.addr, rec.size);
    rec = ObjectRecord{}; // also drops spilled SmallMap storage
    alloc_.release(slot);
}

ObjectId
HeapGraph::reallocate(Addr old_addr, Addr new_addr,
                      std::uint64_t new_size, FnId site, Tick tick)
{
    ++stats_.reallocs;
    noteEvent();

    if (old_addr == kNullAddr) // realloc(NULL, n) == malloc(n)
        return allocate(new_addr, new_size, site, tick);

    const std::uint32_t slot = pages_.startAt(old_addr);
    if (slot == PageIndex::kNoSlot) {
        ++stats_.unknownFrees;
        if (new_size == 0)
            return kNoObject;
        return allocate(new_addr, new_size, site, tick);
    }

    if (new_size == 0) { // realloc(p, 0) == free(p)
        free(old_addr);
        return kNoObject;
    }

    ObjectRecord &old_rec = hot_[slot];

    if (new_addr == old_addr) {
        // In-place resize: in-edges survive; slots beyond the new
        // extent are severed when shrinking.
        if (new_size > old_rec.size) {
            Addr clash_addr = 0;
            std::uint32_t clash_slot = PageIndex::kNoSlot;
            if (pages_.firstStartIn(old_addr + 1, old_addr + new_size,
                                    clash_addr, clash_slot))
                HEAPMD_PANIC("in-place realloc grows into object at ",
                             clash_addr);
        }
        std::vector<Addr> doomed;
        for (const auto &[slot_addr, target] : old_rec.slots) {
            (void)target;
            if (slot_addr - old_rec.addr >= new_size)
                doomed.push_back(slot_addr);
        }
        for (Addr slot_addr : doomed)
            removeEdgeInstance(old_rec, slot_addr);
        pages_.erase(old_addr, old_rec.size);
        pages_.insert(old_addr, new_size, slot);
        stats_.liveBytes += new_size; // adjust live-byte accounting
        stats_.liveBytes -= old_rec.size;
        stats_.peakLiveBytes = std::max(stats_.peakLiveBytes,
                                        stats_.liveBytes);
        old_rec.size = new_size;
        return old_rec.id;
    }

    // Moving realloc: capture surviving out-slots (memcpy semantics),
    // free the old extent (in-edges dangle), then rebuild.
    struct SavedSlot { std::uint64_t offset; ObjectId target; };
    std::vector<SavedSlot> saved;
    saved.reserve(old_rec.slots.size());
    const ObjectId old_id = old_rec.id;
    for (const auto &[slot_addr, target] : old_rec.slots) {
        const std::uint64_t offset = slot_addr - old_rec.addr;
        if (offset < new_size)
            saved.push_back({offset, target});
    }

    free(old_addr);

    const ObjectId new_id = allocate(new_addr, new_size, site, tick);
    ObjectRecord &new_rec = hot_[SlotAllocator::slotOf(new_id)];
    for (const SavedSlot &s : saved) {
        // A copied self-pointer still holds the *old* address: it now
        // dangles rather than re-targeting the moved object.
        if (s.target == old_id)
            continue;
        ObjectRecord *target = mutableById(s.target);
        if (target == nullptr)
            continue; // target freed while severing (defensive)
        addEdgeInstance(new_rec, new_addr + s.offset, *target);
    }
    return new_id;
}

std::size_t
HeapGraph::freeOverlapping(Addr addr, std::uint64_t size,
                          Addr exclude)
{
    // One pass: the object owning the range's first byte (it may
    // start before the range), then every start inside the range.
    std::vector<std::uint32_t> doomed;
    const ObjectRecord *owner = mutableOwnerOf(addr);
    if (owner != nullptr && owner->addr != exclude)
        doomed.push_back(SlotAllocator::slotOf(owner->id));
    pages_.forEachStartIn(addr + 1, addr + size,
                          [&](Addr start, std::uint32_t slot) {
                              if (start != exclude)
                                  doomed.push_back(slot);
                          });
    for (std::uint32_t slot : doomed)
        severAndRelease(slot);
    noteEvent();
    return doomed.size();
}

void
HeapGraph::write(Addr addr, Addr value)
{
    ++stats_.writes;

    // Resolve both page-index candidates before touching either
    // record: the writer and target records are independent fetches
    // from a multi-hundred-MB arena, and issuing both up front lets
    // the misses overlap instead of serializing owner -> target
    // behind the dependent branches below.  Edge removal never frees
    // an object or moves an extent, so the target candidate resolved
    // here stays valid across the had_edge sever.
    const std::uint32_t u_slot = pages_.lookup(addr);
    if (u_slot == PageIndex::kNoSlot) {
        // Stack/global/unmapped store: not a heap-graph vertex, so no
        // edge originates here (such referents stay "roots").
        ++stats_.ignoredWrites;
        noteEvent();
        return;
    }
    prefetchRead(&hot_[u_slot]); // overlaps the target's index probe
    const std::uint32_t v_slot =
        value == kNullAddr ? PageIndex::kNoSlot : pages_.lookup(value);
    if (v_slot != PageIndex::kNoSlot && v_slot != u_slot)
        prefetchRead(&hot_[v_slot]);

    ObjectRecord &owner = hot_[u_slot];
    if (!owner.contains(addr)) {
        ++stats_.ignoredWrites;
        noteEvent();
        return;
    }

    const auto sit = owner.slots.find(addr);
    const bool had_edge = sit != owner.slots.end();
    if (had_edge) {
        // Old target of the overwritten slot: a third independent
        // record; start its fetch before severing.
        alloc_.prefetchMeta(SlotAllocator::slotOf(sit->second));
        prefetchRead(&hot_[SlotAllocator::slotOf(sit->second)]);
        removeEdgeInstance(owner, addr);
    }

    ObjectRecord *target = nullptr;
    if (v_slot != PageIndex::kNoSlot) {
        ObjectRecord &cand = hot_[v_slot];
        if (cand.contains(value))
            target = &cand;
    }
    if (target != nullptr) {
        addEdgeInstance(owner, addr, *target);
        ++stats_.pointerWrites;
    } else if (had_edge) {
        ++stats_.clearedSlots;
    }
    noteEvent();
}

const ObjectRecord *
HeapGraph::objectAt(Addr addr) const
{
    return const_cast<HeapGraph *>(this)->mutableOwnerOf(addr);
}

const ObjectRecord *
HeapGraph::objectStartingAt(Addr addr) const
{
    const std::uint32_t slot = pages_.startAt(addr);
    return slot == PageIndex::kNoSlot ? nullptr : &hot_[slot];
}

const ObjectRecord *
HeapGraph::objectById(ObjectId id) const
{
    return const_cast<HeapGraph *>(this)->mutableById(id);
}

bool
HeapGraph::hasEdge(ObjectId u, ObjectId v) const
{
    const ObjectRecord *src = objectById(u);
    return src != nullptr && src->outNeighbors.count(v) != 0;
}

DegreeHistogram
HeapGraph::recomputeHistogram() const
{
    DegreeHistogram fresh;
    forEachObject([&](const ObjectRecord &rec) {
        fresh.addVertex();
        fresh.transition(0, 0, rec.indegree(), rec.outdegree());
    });
    return fresh;
}

void
HeapGraph::checkConsistency() const
{
    // From-scratch ordered/hashed oracles over the live object set:
    // the structures the slot-map + page-index store replaced.
    std::map<Addr, ObjectId> addr_oracle;
    std::unordered_map<ObjectId, const ObjectRecord *> id_oracle;
    forEachObject([&](const ObjectRecord &rec) {
        if (!addr_oracle.emplace(rec.addr, rec.id).second)
            HEAPMD_PANIC("duplicate live start address ", rec.addr);
        if (!id_oracle.emplace(rec.id, &rec).second)
            HEAPMD_PANIC("duplicate live object id ", rec.id);
    });

    if (id_oracle.size() != alloc_.liveCount())
        HEAPMD_PANIC("slot allocator live count drifted");
    if (addr_oracle.size() != id_oracle.size())
        HEAPMD_PANIC("object map and address map sizes differ");
    if (hist_.vertexCount() != id_oracle.size())
        HEAPMD_PANIC("histogram vertex count drifted");
    if (pages_.startCount() != id_oracle.size())
        HEAPMD_PANIC("page index start count drifted");
    if (alloc_.liveCount() + alloc_.freeCount() != alloc_.size())
        HEAPMD_PANIC("slot free-list bookkeeping drifted");

    // Address order / overlap, via the ordered oracle.
    Addr prev_end = 0;
    for (const auto &[addr, id] : addr_oracle) {
        const ObjectRecord &rec = *id_oracle.at(id);
        if (rec.addr != addr)
            HEAPMD_PANIC("address oracle key disagrees with record");
        if (addr < prev_end)
            HEAPMD_PANIC("live objects overlap at ", addr);
        prev_end = addr + rec.size;
    }

    std::uint64_t live_bytes = 0;
    std::uint64_t distinct_edges = 0;

    forEachObject([&](const ObjectRecord &rec) {
        const ObjectId id = rec.id;
        const std::uint32_t slot = SlotAllocator::slotOf(id);

        // Slot-map generation tags.
        if (!alloc_.live(slot) || alloc_.idOf(slot) != id ||
            SlotAllocator::genOf(id) != alloc_.generation(slot))
            HEAPMD_PANIC("slot generation disagrees with id ", id);

        // Page-index agreement with the record's extent: the exact
        // start, the first/middle/last byte, one byte past either
        // end, and the spanner entry of every covered page.
        if (pages_.startAt(rec.addr) != slot)
            HEAPMD_PANIC("page index start drifted at ", rec.addr);
        if (objectAt(rec.addr) != &rec ||
            objectAt(rec.addr + rec.size - 1) != &rec ||
            objectAt(rec.addr + rec.size / 2) != &rec)
            HEAPMD_PANIC("page index owner lookup drifted for ", id);
        if (objectAt(rec.addr + rec.size) == &rec ||
            objectAt(rec.addr - 1) == &rec)
            HEAPMD_PANIC("page index lookup overshoots extent of ",
                         id);
        const std::uint64_t first_page = PageIndex::pageOf(rec.addr);
        const std::uint64_t last_page =
            PageIndex::pageOf(rec.addr + rec.size - 1);
        for (std::uint64_t p = first_page + 1; p <= last_page; ++p) {
            if (objectAt(p << PageIndex::kPageShift) != &rec)
                HEAPMD_PANIC("page spanner missing for ", id,
                             " at page ", p);
        }

        live_bytes += rec.size;
        distinct_edges += rec.outNeighbors.size();

        // slots <-> outNeighbors multiplicity agreement.
        std::unordered_map<ObjectId, std::uint32_t> out_mult;
        for (const auto &[slot_addr, target] : rec.slots) {
            if (!rec.contains(slot_addr))
                HEAPMD_PANIC("slot ", slot_addr, " outside object ",
                             id);
            const ObjectRecord *t = objectById(target);
            if (t == nullptr)
                HEAPMD_PANIC("slot targets freed object ", target);
            ++out_mult[target];
            // Mirror entry must exist on the target.
            auto mir = t->inRefs.find(slot_addr);
            if (mir == t->inRefs.end() || mir->second != id)
                HEAPMD_PANIC("missing inRef mirror for slot ",
                             slot_addr);
        }
        if (out_mult != rec.outNeighbors)
            HEAPMD_PANIC("outNeighbors multiplicities drifted for ",
                         id);

        // inRefs <-> inNeighbors multiplicity agreement.
        std::unordered_map<ObjectId, std::uint32_t> in_mult;
        for (const auto &[slot_addr, src] : rec.inRefs) {
            const ObjectRecord *s = objectById(src);
            if (s == nullptr)
                HEAPMD_PANIC("inRef from freed object ", src);
            auto sit = s->slots.find(slot_addr);
            if (sit == s->slots.end() || sit->second != id)
                HEAPMD_PANIC("inRef without matching source slot");
            ++in_mult[src];
        }
        if (in_mult != rec.inNeighbors)
            HEAPMD_PANIC("inNeighbors multiplicities drifted for ",
                         id);
    });

    // Page-index structural invariants: every start entry references
    // a live object starting there, start arrays are strictly
    // offset-sorted, and every spanner covers its page's first byte
    // from an earlier page.
    std::size_t seen_starts = 0;
    pages_.forEachPage([&](std::uint64_t page_no,
                           const PageIndex::Page &pg) {
        const Addr base = page_no << PageIndex::kPageShift;
        int prev_off = -1;
        for (const PageIndex::Start &s : pg.starts) {
            if (static_cast<int>(s.offset) <= prev_off)
                HEAPMD_PANIC("page starts unsorted in page ",
                             page_no);
            prev_off = static_cast<int>(s.offset);
            if (!alloc_.live(s.slot) ||
                hot_[s.slot].addr != base + s.offset)
                HEAPMD_PANIC("page start entry drifted at ",
                             base + s.offset);
            ++seen_starts;
        }
        if (pg.spanner != PageIndex::kNoSlot) {
            if (!alloc_.live(pg.spanner))
                HEAPMD_PANIC("page spanner references dead slot");
            const ObjectRecord &sp = hot_[pg.spanner];
            if (sp.addr >= base || !sp.contains(base))
                HEAPMD_PANIC("page spanner does not cover page ",
                             page_no);
        }
    });
    if (seen_starts != pages_.startCount())
        HEAPMD_PANIC("page index start count disagrees with pages");

    if (live_bytes != stats_.liveBytes)
        HEAPMD_PANIC("liveBytes accounting drifted");
    if (distinct_edges != edge_count_)
        HEAPMD_PANIC("edge count drifted: ", edge_count_, " vs ",
                     distinct_edges);

    const DegreeHistogram fresh = recomputeHistogram();
    const bool same =
        fresh.vertexCount() == hist_.vertexCount() &&
        fresh.inEqOutCount() == hist_.inEqOutCount() &&
        fresh.indegCount(0) == hist_.indegCount(0) &&
        fresh.indegCount(1) == hist_.indegCount(1) &&
        fresh.indegCount(2) == hist_.indegCount(2) &&
        fresh.outdegCount(0) == hist_.outdegCount(0) &&
        fresh.outdegCount(1) == hist_.outdegCount(1) &&
        fresh.outdegCount(2) == hist_.outdegCount(2);
    if (!same)
        HEAPMD_PANIC("incremental histogram disagrees with recompute");
}

void
HeapGraph::clear()
{
    // Fold pending counter deltas first, then drop the live gauges to
    // zero (the flush brought them up to the current live values).
    flushTelemetry();
    HEAPMD_GAUGE_ADD("graph.nodes_live",
                     -static_cast<std::int64_t>(hist_.vertexCount()));
    HEAPMD_GAUGE_ADD("graph.edges_live",
                     -static_cast<std::int64_t>(edge_count_));

    const std::size_t n = alloc_.size();
    for (std::size_t slot = 0; slot < n; ++slot) {
        if (alloc_.live(static_cast<std::uint32_t>(slot)))
            hot_[slot] = ObjectRecord{};
    }
    // Generations keep counting across clear(): vertex ids stay
    // unique so stale ids can never alias new vertices.
    alloc_.clear();
    pages_.clear();
    hist_.reset();
    stats_ = Stats{};
    edge_count_ = 0;
    flushed_ = Stats{};
    flushed_nodes_ = 0;
    flushed_edges_ = 0;
    events_since_flush_ = 0;
}

void
HeapGraph::flushTelemetry()
{
    events_since_flush_ = 0;
    // Guards reproduce lazy registration: an instrument appears in
    // the Registry only once its event class has occurred, exactly as
    // the per-event macros did (manifest counter sets are compared
    // byte-for-byte across versions).
    if (stats_.allocs > 0) {
        HEAPMD_COUNTER_ADD("graph.allocs",
                           stats_.allocs - flushed_.allocs);
        HEAPMD_GAUGE_ADD(
            "graph.nodes_live",
            static_cast<std::int64_t>(hist_.vertexCount()) -
                static_cast<std::int64_t>(flushed_nodes_));
    }
    if (stats_.frees > 0)
        HEAPMD_COUNTER_ADD("graph.frees",
                           stats_.frees - flushed_.frees);
    if (stats_.reallocs > 0)
        HEAPMD_COUNTER_ADD("graph.reallocs",
                           stats_.reallocs - flushed_.reallocs);
    if (stats_.pointerWrites > 0) {
        HEAPMD_COUNTER_ADD("graph.pointer_writes",
                           stats_.pointerWrites -
                               flushed_.pointerWrites);
        HEAPMD_GAUGE_ADD("graph.edges_live",
                         static_cast<std::int64_t>(edge_count_) -
                             static_cast<std::int64_t>(flushed_edges_));
    }
    flushed_ = stats_;
    flushed_nodes_ = hist_.vertexCount();
    flushed_edges_ = edge_count_;
}

ObjectRecord *
HeapGraph::mutableOwnerOf(Addr addr)
{
    if (addr == kNullAddr)
        return nullptr;
    const std::uint32_t slot = pages_.lookup(addr);
    if (slot == PageIndex::kNoSlot)
        return nullptr;
    ObjectRecord &rec = hot_[slot];
    return rec.contains(addr) ? &rec : nullptr;
}

ObjectRecord *
HeapGraph::mutableById(ObjectId id)
{
    const std::uint32_t slot = alloc_.resolve(id);
    return slot == SlotAllocator::kNoSlot ? nullptr : &hot_[slot];
}

void
HeapGraph::addEdgeInstance(ObjectRecord &u, Addr slot, ObjectRecord &v)
{
    if (u.slots.count(slot))
        HEAPMD_PANIC("slot ", slot, " already holds an edge");

    const std::size_t u_in = u.indegree();
    const std::size_t u_out = u.outdegree();
    const std::size_t v_in = v.indegree();
    const std::size_t v_out = v.outdegree();

    u.slots.emplace(slot, v.id);
    if (++u.outNeighbors[v.id] == 1)
        ++edge_count_;
    v.inRefs.emplace(slot, u.id);
    ++v.inNeighbors[u.id];

    if (u.id == v.id) {
        hist_.transition(u_in, u_out, u.indegree(), u.outdegree());
    } else {
        hist_.transition(u_in, u_out, u.indegree(), u.outdegree());
        hist_.transition(v_in, v_out, v.indegree(), v.outdegree());
    }
}

void
HeapGraph::removeEdgeInstance(ObjectRecord &u, Addr slot)
{
    auto sit = u.slots.find(slot);
    if (sit == u.slots.end())
        HEAPMD_PANIC("removeEdgeInstance on empty slot ", slot);
    const ObjectId target_id = sit->second;
    // The record's arena address depends only on the slot bits, not
    // on the meta word resolve() is about to read -- start the record
    // fetch now so it overlaps the generation check.
    prefetchRead(&hot_[SlotAllocator::slotOf(target_id)]);
    ObjectRecord *v = mutableById(target_id);
    if (v == nullptr)
        HEAPMD_PANIC("edge targets freed object ", target_id);

    const std::size_t u_in = u.indegree();
    const std::size_t u_out = u.outdegree();
    const std::size_t v_in = v->indegree();
    const std::size_t v_out = v->outdegree();

    u.slots.erase(sit);
    auto out_it = u.outNeighbors.find(target_id);
    if (out_it == u.outNeighbors.end() || out_it->second == 0)
        HEAPMD_PANIC("outNeighbors underflow for ", target_id);
    if (--out_it->second == 0) {
        u.outNeighbors.erase(out_it);
        --edge_count_;
    }

    v->inRefs.erase(slot);
    auto in_it = v->inNeighbors.find(u.id);
    if (in_it == v->inNeighbors.end() || in_it->second == 0)
        HEAPMD_PANIC("inNeighbors underflow for ", u.id);
    if (--in_it->second == 0)
        v->inNeighbors.erase(in_it);

    if (u.id == v->id) {
        hist_.transition(u_in, u_out, u.indegree(), u.outdegree());
    } else {
        hist_.transition(u_in, u_out, u.indegree(), u.outdegree());
        hist_.transition(v_in, v_out, v->indegree(), v->outdegree());
    }
}

} // namespace heapmd
