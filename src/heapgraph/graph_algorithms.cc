#include "heapgraph/graph_algorithms.hh"

#include <algorithm>
#include <cstddef>
#include <unordered_map>

#include "heapgraph/heap_graph.hh"
#include "support/types.hh"

namespace heapmd
{

namespace
{

/** Compact the live vertex ids into [0, n) for array-based traversal. */
struct CompactGraph
{
    std::vector<ObjectId> ids;                       // index -> id
    std::unordered_map<ObjectId, std::size_t> index; // id -> index
    std::vector<std::vector<std::size_t>> out;       // forward edges
    std::vector<std::vector<std::size_t>> in;        // reverse edges
};

CompactGraph
compact(const HeapGraph &graph)
{
    CompactGraph cg;
    cg.ids.reserve(graph.vertexCount());
    graph.forEachObject([&](const ObjectRecord &rec) {
        cg.index.emplace(rec.id, cg.ids.size());
        cg.ids.push_back(rec.id);
    });
    cg.out.resize(cg.ids.size());
    cg.in.resize(cg.ids.size());
    graph.forEachObject([&](const ObjectRecord &rec) {
        const std::size_t u = cg.index.at(rec.id);
        for (const auto &[target, mult] : rec.outNeighbors) {
            (void)mult;
            const std::size_t v = cg.index.at(target);
            cg.out[u].push_back(v);
            cg.in[v].push_back(u);
        }
    });
    return cg;
}

ComponentSummary
summarize(const std::vector<std::uint64_t> &sizes)
{
    ComponentSummary s;
    s.count = sizes.size();
    std::uint64_t total = 0;
    for (std::uint64_t size : sizes) {
        total += size;
        s.largest = std::max(s.largest, size);
        if (size == 1)
            ++s.singletons;
    }
    if (s.count > 0)
        s.meanSize = static_cast<double>(total) /
                     static_cast<double>(s.count);
    return s;
}

} // namespace

std::vector<std::uint64_t>
componentSizes(const HeapGraph &graph)
{
    const CompactGraph cg = compact(graph);
    const std::size_t n = cg.ids.size();
    std::vector<bool> seen(n, false);
    std::vector<std::uint64_t> sizes;
    std::vector<std::size_t> stack;

    for (std::size_t start = 0; start < n; ++start) {
        if (seen[start])
            continue;
        std::uint64_t size = 0;
        stack.push_back(start);
        seen[start] = true;
        while (!stack.empty()) {
            const std::size_t u = stack.back();
            stack.pop_back();
            ++size;
            for (std::size_t v : cg.out[u]) {
                if (!seen[v]) {
                    seen[v] = true;
                    stack.push_back(v);
                }
            }
            for (std::size_t v : cg.in[u]) {
                if (!seen[v]) {
                    seen[v] = true;
                    stack.push_back(v);
                }
            }
        }
        sizes.push_back(size);
    }
    std::sort(sizes.rbegin(), sizes.rend());
    return sizes;
}

ComponentSummary
connectedComponents(const HeapGraph &graph)
{
    return summarize(componentSizes(graph));
}

ComponentSummary
stronglyConnectedComponents(const HeapGraph &graph)
{
    const CompactGraph cg = compact(graph);
    const std::size_t n = cg.ids.size();

    // Iterative Tarjan.
    constexpr std::size_t kUnvisited = ~std::size_t{0};
    std::vector<std::size_t> low(n, 0), disc(n, kUnvisited);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> scc_stack;
    std::vector<std::uint64_t> sizes;
    std::size_t timer = 0;

    struct Frame { std::size_t v; std::size_t child; };
    std::vector<Frame> call;

    for (std::size_t root = 0; root < n; ++root) {
        if (disc[root] != kUnvisited)
            continue;
        call.push_back({root, 0});
        while (!call.empty()) {
            Frame &f = call.back();
            const std::size_t v = f.v;
            if (f.child == 0) {
                disc[v] = low[v] = timer++;
                scc_stack.push_back(v);
                on_stack[v] = true;
            }
            bool descended = false;
            while (f.child < cg.out[v].size()) {
                const std::size_t w = cg.out[v][f.child++];
                if (disc[w] == kUnvisited) {
                    call.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (on_stack[w])
                    low[v] = std::min(low[v], disc[w]);
            }
            if (descended)
                continue;
            if (low[v] == disc[v]) {
                std::uint64_t size = 0;
                for (;;) {
                    const std::size_t w = scc_stack.back();
                    scc_stack.pop_back();
                    on_stack[w] = false;
                    ++size;
                    if (w == v)
                        break;
                }
                sizes.push_back(size);
            }
            call.pop_back();
            if (!call.empty()) {
                const std::size_t parent = call.back().v;
                low[parent] = std::min(low[parent], low[v]);
            }
        }
    }
    return summarize(sizes);
}

} // namespace heapmd
