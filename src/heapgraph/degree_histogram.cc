#include "heapgraph/degree_histogram.hh"

#include "support/logging.hh"

namespace heapmd
{

void
DegreeHistogram::addVertex()
{
    ++vertex_count_;
    applyVertex(0, 0, +1);
}

void
DegreeHistogram::removeVertex(std::size_t indeg, std::size_t outdeg)
{
    if (vertex_count_ == 0)
        HEAPMD_PANIC("removeVertex on empty DegreeHistogram");
    --vertex_count_;
    applyVertex(indeg, outdeg, -1);
}

void
DegreeHistogram::transition(std::size_t old_in, std::size_t old_out,
                            std::size_t new_in, std::size_t new_out)
{
    if (old_in == new_in && old_out == new_out)
        return;
    applyVertex(old_in, old_out, -1);
    applyVertex(new_in, new_out, +1);
}

std::uint64_t
DegreeHistogram::indegCount(std::size_t d) const
{
    if (d >= kExactBuckets)
        HEAPMD_PANIC("indegCount bucket ", d, " not tracked");
    return indeg_[d];
}

std::uint64_t
DegreeHistogram::outdegCount(std::size_t d) const
{
    if (d >= kExactBuckets)
        HEAPMD_PANIC("outdegCount bucket ", d, " not tracked");
    return outdeg_[d];
}

void
DegreeHistogram::reset()
{
    *this = DegreeHistogram{};
}

void
DegreeHistogram::applyVertex(std::size_t indeg, std::size_t outdeg,
                             int delta)
{
    const auto bump = [delta](std::uint64_t &counter) {
        if (delta > 0) {
            ++counter;
        } else {
            if (counter == 0)
                HEAPMD_PANIC("DegreeHistogram bucket underflow");
            --counter;
        }
    };

    if (indeg < kExactBuckets)
        bump(indeg_[indeg]);
    if (outdeg < kExactBuckets)
        bump(outdeg_[outdeg]);
    if (indeg == outdeg)
        bump(in_eq_out_);
}

} // namespace heapmd
