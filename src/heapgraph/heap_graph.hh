/**
 * @file
 * The heap-graph mirror: HeapMD's image of the monitored heap.
 *
 * The execution logger (paper, Section 2.1) maintains "an image of the
 * heap-graph ... that only stores connectivity information between
 * objects on the heap".  This class is that image: vertices are live
 * allocations, and a directed edge u -> v exists iff some pointer-sized
 * slot inside u currently stores an address within v's extent.  All
 * seven degree metrics are served in O(1) from an incrementally
 * maintained DegreeHistogram, and the storage layer (slot-map arena +
 * page-indexed extent map, DESIGN.md §16) makes the per-event fold
 * O(1) in vertex count as well.
 */

#ifndef HEAPMD_HEAPGRAPH_HEAP_GRAPH_HH
#define HEAPMD_HEAPGRAPH_HEAP_GRAPH_HH

#include <cstdint>

#include "heapgraph/degree_histogram.hh"
#include "heapgraph/object_record.hh"
#include "heapgraph/page_index.hh"
#include "support/chunked_vector.hh"
#include "support/slot_map.hh"
#include "support/types.hh"

namespace heapmd
{

/**
 * Object-granularity heap-graph with incremental degree maintenance.
 *
 * Semantics (see DESIGN.md, "Key design decisions"):
 *  - interior pointers count: any stored value that resolves to any
 *    byte of a live object creates an edge (the tool is type-blind);
 *  - edges are established at write time against the then-live object
 *    set; freeing a vertex severs its in- and out-edges, and a later
 *    allocation at the same address does NOT resurrect dangling edges;
 *  - degrees count distinct neighbours; self-edges are permitted.
 *
 * Storage (DESIGN.md §16): ObjectRecords live in a ChunkedVector
 * arena indexed by dense slot, identity is generation-tagged
 * (SlotAllocator), owner lookup goes through a two-level PageIndex,
 * and cold provenance sits in a parallel arena.  Registry telemetry
 * is batched: per-event counters accumulate in stats_ and are folded
 * into the global Registry every kTelemetryFlushInterval events, on
 * clear(), and at destruction.
 */
class HeapGraph
{
  public:
    /** Counters describing the event stream folded into the graph. */
    struct Stats
    {
        std::uint64_t allocs = 0;        //!< allocate() calls
        std::uint64_t frees = 0;         //!< successful free() calls
        std::uint64_t reallocs = 0;      //!< reallocate() calls
        std::uint64_t writes = 0;        //!< write() calls
        std::uint64_t pointerWrites = 0; //!< writes that created an edge
        std::uint64_t clearedSlots = 0;  //!< writes that severed an edge
        std::uint64_t ignoredWrites = 0; //!< writes outside any object
        std::uint64_t unknownFrees = 0;  //!< free() of a non-object
        std::uint64_t liveBytes = 0;     //!< bytes currently allocated
        std::uint64_t peakLiveBytes = 0; //!< high-water mark of the above
        std::uint64_t peakVertices = 0;  //!< high-water vertex count
    };

    /** Events between Registry telemetry flushes. */
    static constexpr std::uint64_t kTelemetryFlushInterval = 4096;

    HeapGraph() = default;
    ~HeapGraph() { flushTelemetry(); }
    HeapGraph(const HeapGraph &) = delete;
    HeapGraph &operator=(const HeapGraph &) = delete;

    /**
     * Register an allocation.
     *
     * @param addr  start of the new extent; must not overlap any live
     *              object (the synthetic address space guarantees it).
     * @param size  extent size in bytes, > 0.
     * @param site  function active at the allocation (for reports).
     * @param tick  event time of the allocation.
     * @return the id of the new vertex.
     */
    ObjectId allocate(Addr addr, std::uint64_t size,
                      FnId site = kNoFunction, Tick tick = 0);

    /**
     * Register a deallocation of the object starting at @p addr.
     * Severs all of its in- and out-edges.
     *
     * @return false when @p addr is not the start of a live object
     *         (double free / wild free); the call is then a no-op.
     */
    bool free(Addr addr);

    /**
     * Register a reallocation.  Models memcpy semantics: out-edges
     * whose slot offset survives the resize are re-established at the
     * new address; in-edges dangle (other objects still hold the old
     * address).  An in-place realloc (same address) keeps in-edges.
     *
     * @return the id of the resulting vertex, or kNoObject when
     *         @p new_size is 0 (pure free).
     */
    ObjectId reallocate(Addr old_addr, Addr new_addr,
                        std::uint64_t new_size,
                        FnId site = kNoFunction, Tick tick = 0);

    /**
     * Free every live object overlapping [addr, addr + size), except
     * an object starting exactly at @p exclude.  Used by the
     * address-space-reuse tolerance of live-capture replay: a real
     * allocator handing out a range proves any object we still hold
     * there was freed without us seeing the event.  One pass over the
     * page range collects every victim before severing.
     *
     * @return the number of objects freed.
     */
    std::size_t freeOverlapping(Addr addr, std::uint64_t size,
                                Addr exclude = kNullAddr);

    /**
     * Register a pointer-sized store of @p value at @p addr.
     * Updates at most one out-slot of the owning object: the previous
     * edge from that slot (if any) is severed, and a new edge is drawn
     * when @p value resolves to a live object.
     */
    void write(Addr addr, Addr value);

    /** Degree census used by the metric engine. */
    const DegreeHistogram &histogram() const { return hist_; }

    /** Live vertex count. */
    std::uint64_t vertexCount() const { return hist_.vertexCount(); }

    /** Distinct-edge count. */
    std::uint64_t edgeCount() const { return edge_count_; }

    /** Event counters. */
    const Stats &stats() const { return stats_; }

    /** Object owning @p addr (interval lookup), or nullptr. */
    const ObjectRecord *objectAt(Addr addr) const;

    /** Object whose extent starts exactly at @p addr, or nullptr. */
    const ObjectRecord *objectStartingAt(Addr addr) const;

    /** Object by vertex id, or nullptr when freed/unknown (stale ids
     *  fail the generation check even after the slot is recycled). */
    const ObjectRecord *objectById(ObjectId id) const;

    /** Cold provenance of a live record returned by this graph. */
    const ObjectProvenance &
    provenanceOf(const ObjectRecord &rec) const
    {
        return cold_[SlotAllocator::slotOf(rec.id)];
    }

    /** True when the distinct edge u -> v currently exists. */
    bool hasEdge(ObjectId u, ObjectId v) const;

    /**
     * Visit every live object as f(const ObjectRecord &), in arena
     * slot order.  The order is deterministic for a given event
     * stream (unlike hash-map iteration); callers needing id order
     * must sort, as graph_snapshot does.
     */
    template <typename F>
    void
    forEachObject(F &&f) const
    {
        const std::size_t n = alloc_.size();
        for (std::size_t slot = 0; slot < n; ++slot) {
            if (alloc_.live(static_cast<std::uint32_t>(slot)))
                f(hot_[slot]);
        }
    }

    /**
     * Recompute the degree census from scratch (O(V + E)).
     * Used by property tests to validate incremental maintenance.
     */
    DegreeHistogram recomputeHistogram() const;

    /**
     * Exhaustively validate internal invariants (slot/inRef symmetry,
     * neighbour multiplicities, histogram) and cross-validate the
     * page index and slot-map generations against from-scratch
     * std::map / std::unordered_map oracles.  Panics on any
     * violation; intended for tests.
     */
    void checkConsistency() const;

    /** Drop every vertex and reset counters. */
    void clear();

    /**
     * Fold telemetry deltas accumulated since the last flush into the
     * global Registry (counters graph.allocs/frees/reallocs/
     * pointer_writes, gauges graph.nodes_live/edges_live).  Called
     * automatically every kTelemetryFlushInterval events and at
     * destruction; call explicitly before scraping the Registry
     * mid-run.
     */
    void flushTelemetry();

  private:
    ObjectRecord *mutableOwnerOf(Addr addr);
    ObjectRecord *mutableById(ObjectId id);

    /** Arena record backing @p slot (must be live). */
    ObjectRecord &record(std::uint32_t slot) { return hot_[slot]; }
    const ObjectRecord &
    record(std::uint32_t slot) const
    {
        return hot_[slot];
    }

    /** Sever every edge of the live object in @p slot and release it
     *  (the arena-level half of free()). */
    void severAndRelease(std::uint32_t slot);

    /** Draw the edge instance (u, slot) -> v; updates the census. */
    void addEdgeInstance(ObjectRecord &u, Addr slot, ObjectRecord &v);

    /** Sever the edge instance recorded at (u, slot). */
    void removeEdgeInstance(ObjectRecord &u, Addr slot);

    /** Count one folded event toward the batched telemetry flush. */
    void
    noteEvent()
    {
        if (++events_since_flush_ >= kTelemetryFlushInterval)
            flushTelemetry();
    }

    SlotAllocator alloc_;
    ChunkedVector<ObjectRecord> hot_;
    ChunkedVector<ObjectProvenance> cold_;
    PageIndex pages_;
    DegreeHistogram hist_;
    Stats stats_;
    std::uint64_t edge_count_ = 0;

    // Telemetry batching state: Registry values at the last flush.
    Stats flushed_;
    std::uint64_t flushed_nodes_ = 0;
    std::uint64_t flushed_edges_ = 0;
    std::uint64_t events_since_flush_ = 0;
};

} // namespace heapmd

#endif // HEAPMD_HEAPGRAPH_HEAP_GRAPH_HH
