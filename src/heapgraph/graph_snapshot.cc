#include "heapgraph/graph_snapshot.hh"

#include <algorithm>
#include <vector>

#include "heapgraph/heap_graph.hh"
#include "metrics/metric.hh"

namespace heapmd
{

void
saveGraphSnapshot(const HeapGraph &graph, std::ostream &os)
{
    std::vector<const ObjectRecord *> vertices;
    vertices.reserve(graph.vertexCount());
    graph.forEachObject([&](const ObjectRecord &record) {
        vertices.push_back(&record);
    });
    std::sort(vertices.begin(), vertices.end(),
              [](const ObjectRecord *a, const ObjectRecord *b) {
                  return a->id < b->id;
              });

    os << kGraphSnapshotHeader << '\n';
    os << "vertices " << vertices.size() << '\n';
    os << "edges " << graph.edgeCount() << '\n';
    for (const ObjectRecord *v : vertices) {
        os << "vertex " << v->id << " addr " << v->addr << " size "
           << v->size << " indeg " << v->indegree() << " outdeg "
           << v->outdegree() << '\n';
    }
    for (const ObjectRecord *v : vertices) {
        std::vector<ObjectId> targets;
        targets.reserve(v->outNeighbors.size());
        for (const auto &[target, multiplicity] : v->outNeighbors)
            targets.push_back(target);
        std::sort(targets.begin(), targets.end());
        for (ObjectId target : targets)
            os << "edge " << v->id << ' ' << target << '\n';
    }

    const DegreeHistogram &h = graph.histogram();
    os << "hist vertices " << h.vertexCount();
    os << " indeg";
    for (std::size_t d = 0; d < DegreeHistogram::kExactBuckets; ++d)
        os << ' ' << h.indegCount(d);
    os << " outdeg";
    for (std::size_t d = 0; d < DegreeHistogram::kExactBuckets; ++d)
        os << ' ' << h.outdegCount(d);
    os << " ineqout " << h.inEqOutCount() << '\n';

    os.precision(17);
    const double total = static_cast<double>(h.vertexCount());
    const auto pct = [total](std::uint64_t count) {
        return total == 0.0
                   ? 0.0
                   : 100.0 * static_cast<double>(count) / total;
    };
    os << "metric " << metricName(MetricId::Roots) << ' '
       << pct(h.indegCount(0)) << '\n';
    os << "metric " << metricName(MetricId::Indeg1) << ' '
       << pct(h.indegCount(1)) << '\n';
    os << "metric " << metricName(MetricId::Indeg2) << ' '
       << pct(h.indegCount(2)) << '\n';
    os << "metric " << metricName(MetricId::Leaves) << ' '
       << pct(h.outdegCount(0)) << '\n';
    os << "metric " << metricName(MetricId::Outdeg1) << ' '
       << pct(h.outdegCount(1)) << '\n';
    os << "metric " << metricName(MetricId::Outdeg2) << ' '
       << pct(h.outdegCount(2)) << '\n';
    os << "metric " << metricName(MetricId::InEqOut) << ' '
       << pct(h.inEqOutCount()) << '\n';
    os << "end\n";
    os.flush();
}

} // namespace heapmd
