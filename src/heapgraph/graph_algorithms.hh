/**
 * @file
 * Offline whole-graph algorithms over a HeapGraph snapshot.
 *
 * The paper lists "the size and number of connected and strongly
 * connected components" as candidate metrics beyond the seven
 * degree-based ones (Section 2.1).  These routines implement that
 * extension; they are O(V + E) and are only run on demand (never on
 * the hot incremental path).
 */

#ifndef HEAPMD_HEAPGRAPH_GRAPH_ALGORITHMS_HH
#define HEAPMD_HEAPGRAPH_GRAPH_ALGORITHMS_HH

#include <cstdint>
#include <vector>

namespace heapmd
{

class HeapGraph;

/** Summary of a component decomposition of the heap-graph. */
struct ComponentSummary
{
    /** Number of components. */
    std::uint64_t count = 0;

    /** Size of the largest component (vertices); 0 when empty. */
    std::uint64_t largest = 0;

    /** Mean component size; 0 when empty. */
    double meanSize = 0.0;

    /** Number of singleton components. */
    std::uint64_t singletons = 0;
};

/**
 * Weakly-connected components (edges treated as undirected).
 */
ComponentSummary connectedComponents(const HeapGraph &graph);

/**
 * Strongly-connected components (Tarjan's algorithm, iterative so deep
 * list-shaped heaps cannot overflow the native stack).
 */
ComponentSummary stronglyConnectedComponents(const HeapGraph &graph);

/**
 * Full component-size distribution of the weakly-connected
 * decomposition, sorted descending.  Used by tests and the extended
 * metric engine.
 */
std::vector<std::uint64_t> componentSizes(const HeapGraph &graph);

} // namespace heapmd

#endif // HEAPMD_HEAPGRAPH_GRAPH_ALGORITHMS_HH
