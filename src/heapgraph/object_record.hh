/**
 * @file
 * Per-vertex bookkeeping for the heap-graph.
 */

#ifndef HEAPMD_HEAPGRAPH_OBJECT_RECORD_HH
#define HEAPMD_HEAPGRAPH_OBJECT_RECORD_HH

#include <cstdint>

#include "support/small_map.hh"
#include "support/types.hh"

namespace heapmd
{

/**
 * One live heap object (a vertex of the heap-graph).
 *
 * The heap-graph is maintained at object granularity (Section 2.1 of
 * the paper): an edge u -> v exists iff at least one pointer-sized
 * slot inside u currently stores an address within v's extent.
 * Degrees count *distinct* neighbours; multiplicities are kept so the
 * distinct counts can be maintained incrementally and exactly.
 *
 * Records live in the heap-graph's slot-map arena (DESIGN.md §16),
 * split struct-of-arrays style: this struct is the *hot* half touched
 * by every write event (extent + adjacency), while provenance that
 * only reports read (ObjectProvenance below) sits in a parallel cold
 * arena so the hot record stays small -- at 10M live objects every
 * byte here is 10 MB of resident working set.
 *
 * The four per-object maps use SmallMap: the paper's own metrics show
 * typical degree is 0-2, so kSmallDegree entries live inline in the
 * record (no allocation, no hashing) and only unusually connected
 * objects spill to a hash map.  checkConsistency() compares them
 * against std::unordered_map oracles rebuilt from scratch.
 */
/** Inline capacity of the per-object edge maps before spilling. */
inline constexpr std::size_t kSmallDegree = 6;

struct ObjectRecord
{
    /** Vertex identity: generation << 32 | arena slot (slot_map.hh);
     *  unique over the life of the graph. */
    ObjectId id = kNoObject;

    /** Start address of the object's extent. */
    Addr addr = kNullAddr;

    /** Extent size in bytes (never 0 for a live object). */
    std::uint64_t size = 0;

    /**
     * Outgoing pointer slots: slot address (within this object's
     * extent) -> target object id.  Only slots whose stored value
     * currently resolves to a live object are present.
     */
    SmallMap<Addr, ObjectId, kSmallDegree> slots;

    /** Distinct out-neighbour -> number of slots targeting it. */
    SmallMap<ObjectId, std::uint32_t, kSmallDegree> outNeighbors;

    /**
     * Incoming references: slot address (within some *other* live
     * object, or this one for self-edges) -> source object id.
     * Mirror of the sources' @c slots entries targeting this object;
     * lets free() sever in-edges without a global scan.
     */
    SmallMap<Addr, ObjectId, kSmallDegree> inRefs;

    /** Distinct in-neighbour -> number of slots it points with. */
    SmallMap<ObjectId, std::uint32_t, kSmallDegree> inNeighbors;

    /** Distinct-neighbour indegree. */
    std::size_t indegree() const { return inNeighbors.size(); }

    /** Distinct-neighbour outdegree. */
    std::size_t outdegree() const { return outNeighbors.size(); }

    /** True when @p a falls within this object's extent. */
    bool
    contains(Addr a) const
    {
        return a >= addr && a - addr < size;
    }
};

/**
 * Cold per-object provenance, kept in an arena parallel to the hot
 * ObjectRecord one and read only by reporting paths (site metrics,
 * leak attribution).  Fetch via HeapGraph::provenanceOf().
 */
struct ObjectProvenance
{
    /** Function active when the object was allocated. */
    FnId allocSite = kNoFunction;

    /** Event time of the allocation. */
    Tick allocTick = 0;
};

} // namespace heapmd

#endif // HEAPMD_HEAPGRAPH_OBJECT_RECORD_HH
