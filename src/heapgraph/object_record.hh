/**
 * @file
 * Per-vertex bookkeeping for the heap-graph.
 */

#ifndef HEAPMD_HEAPGRAPH_OBJECT_RECORD_HH
#define HEAPMD_HEAPGRAPH_OBJECT_RECORD_HH

#include <cstdint>

#include "support/small_map.hh"
#include "support/types.hh"

namespace heapmd
{

/**
 * One live heap object (a vertex of the heap-graph).
 *
 * The heap-graph is maintained at object granularity (Section 2.1 of
 * the paper): an edge u -> v exists iff at least one pointer-sized
 * slot inside u currently stores an address within v's extent.
 * Degrees count *distinct* neighbours; multiplicities are kept so the
 * distinct counts can be maintained incrementally and exactly.
 *
 * The four per-object maps use SmallMap: typical degree is 0-2 by the
 * paper's own metrics, so up to kSmallDegree entries live inline in
 * the record (no allocation, no hashing) and only unusually connected
 * objects spill to a hash map.  checkConsistency() compares them
 * against std::unordered_map oracles rebuilt from scratch.
 */
/** Inline capacity of the per-object edge maps before spilling. */
inline constexpr std::size_t kSmallDegree = 8;

struct ObjectRecord
{
    /** Vertex identity, unique over the life of the graph. */
    ObjectId id = kNoObject;

    /** Start address of the object's extent. */
    Addr addr = kNullAddr;

    /** Extent size in bytes (never 0 for a live object). */
    std::uint64_t size = 0;

    /** Function active when the object was allocated. */
    FnId allocSite = kNoFunction;

    /** Event time of the allocation. */
    Tick allocTick = 0;

    /**
     * Outgoing pointer slots: slot address (within this object's
     * extent) -> target object id.  Only slots whose stored value
     * currently resolves to a live object are present.
     */
    SmallMap<Addr, ObjectId, kSmallDegree> slots;

    /** Distinct out-neighbour -> number of slots targeting it. */
    SmallMap<ObjectId, std::uint32_t, kSmallDegree> outNeighbors;

    /**
     * Incoming references: slot address (within some *other* live
     * object, or this one for self-edges) -> source object id.
     * Mirror of the sources' @c slots entries targeting this object;
     * lets free() sever in-edges without a global scan.
     */
    SmallMap<Addr, ObjectId, kSmallDegree> inRefs;

    /** Distinct in-neighbour -> number of slots it points with. */
    SmallMap<ObjectId, std::uint32_t, kSmallDegree> inNeighbors;

    /** Distinct-neighbour indegree. */
    std::size_t indegree() const { return inNeighbors.size(); }

    /** Distinct-neighbour outdegree. */
    std::size_t outdegree() const { return outNeighbors.size(); }

    /** True when @p a falls within this object's extent. */
    bool
    contains(Addr a) const
    {
        return a >= addr && a - addr < size;
    }
};

} // namespace heapmd

#endif // HEAPMD_HEAPGRAPH_OBJECT_RECORD_HH
