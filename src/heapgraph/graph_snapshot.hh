/**
 * @file
 * Serialization of a HeapGraph snapshot.
 *
 * Layout (line-oriented text, whitespace-separated tokens):
 *
 *   heapmd-graph v1
 *   vertices <N>
 *   edges <M>
 *   vertex <id> addr <addr> size <size> indeg <i> outdeg <o>   (x N)
 *   edge <from-id> <to-id>                                     (x M)
 *   hist vertices <n> indeg <c0> <c1> <c2> outdeg <c0> <c1> <c2> \
 *        ineqout <c>
 *   metric <name> <value>                                      (x 7)
 *   end
 *
 * The redundancy is deliberate: per-vertex degrees, the edge list,
 * the degree histogram and the derived metrics are all recomputable
 * from each other, so the offline graph auditor
 * (analysis/graph_lint.hh) can cross-check them without access to the
 * producing process.
 */

#ifndef HEAPMD_HEAPGRAPH_GRAPH_SNAPSHOT_HH
#define HEAPMD_HEAPGRAPH_GRAPH_SNAPSHOT_HH

#include <ostream>

namespace heapmd
{

class HeapGraph;

/** Magic first line of a snapshot document. */
inline constexpr const char *kGraphSnapshotHeader = "heapmd-graph v1";

/**
 * Serialize the live graph as a snapshot document.
 *
 * Vertices and edges are emitted in ascending id order so documents
 * are byte-stable across runs with identical event streams.
 */
void saveGraphSnapshot(const HeapGraph &graph, std::ostream &os);

} // namespace heapmd

#endif // HEAPMD_HEAPGRAPH_GRAPH_SNAPSHOT_HH
