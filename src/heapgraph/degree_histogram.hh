/**
 * @file
 * Incrementally-maintained vertex-degree census of the heap-graph.
 */

#ifndef HEAPMD_HEAPGRAPH_DEGREE_HISTOGRAM_HH
#define HEAPMD_HEAPGRAPH_DEGREE_HISTOGRAM_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace heapmd
{

/**
 * Counts of vertices at the low degrees the paper's seven metrics
 * observe, maintained in O(1) per degree change.
 *
 * Buckets 0, 1 and 2 are tracked exactly per the paper ("vertices of
 * the heap-graph typically have low indegrees and outdegrees, only
 * rarely exceeding 2"); higher degrees are pooled.
 */
class DegreeHistogram
{
  public:
    /** Number of exact low-degree buckets (0, 1, 2). */
    static constexpr std::size_t kExactBuckets = 3;

    /** Account for a new vertex with indegree = outdegree = 0. */
    void addVertex();

    /** Account for the removal of a vertex of the given degrees. */
    void removeVertex(std::size_t indeg, std::size_t outdeg);

    /**
     * Account for one vertex's degree transition.  Call *after* the
     * underlying record has been updated, passing both snapshots.
     */
    void transition(std::size_t old_in, std::size_t old_out,
                    std::size_t new_in, std::size_t new_out);

    /** Total live vertices. */
    std::uint64_t vertexCount() const { return vertex_count_; }

    /** Vertices with indegree exactly @p d (d < kExactBuckets). */
    std::uint64_t indegCount(std::size_t d) const;

    /** Vertices with outdegree exactly @p d (d < kExactBuckets). */
    std::uint64_t outdegCount(std::size_t d) const;

    /** Vertices with indegree == outdegree (any value). */
    std::uint64_t inEqOutCount() const { return in_eq_out_; }

    /** Drop all counts. */
    void reset();

  private:
    void applyVertex(std::size_t indeg, std::size_t outdeg, int delta);

    std::uint64_t vertex_count_ = 0;
    std::array<std::uint64_t, kExactBuckets> indeg_{};
    std::array<std::uint64_t, kExactBuckets> outdeg_{};
    std::uint64_t in_eq_out_ = 0;
};

} // namespace heapmd

#endif // HEAPMD_HEAPGRAPH_DEGREE_HISTOGRAM_HH
