#include "swat/swat_detector.hh"

#include "support/logging.hh"

namespace heapmd
{

SwatDetector::SwatDetector(SwatConfig config)
    : config_(config), rng_(config.seed)
{
}

void
SwatDetector::attach(Process &process)
{
    if (process_ != nullptr)
        HEAPMD_PANIC("SWAT detector already attached");
    process_ = &process;
    process.addEventObserver(this);
}

void
SwatDetector::onEvent(const Event &event, Tick tick)
{
    switch (event.kind) {
      case EventKind::Alloc: {
        Tracked t;
        t.size = event.size;
        t.allocSite =
            process_ != nullptr ? process_->callStack().top()
                                : kNoFunction;
        t.allocTick = tick;
        t.lastAccess = tick; // allocation counts as an access
        by_addr_[event.addr] = t;
        break;
      }
      case EventKind::Free: {
        auto it = by_addr_.find(event.addr);
        if (it == by_addr_.end())
            break;
        // SWAT runs *during* execution: an object that sat stale past
        // the threshold was already reported before this (cleanup)
        // free.  Record it sticky so end-of-run teardown cannot hide
        // the report.
        const Tracked &t = it->second;
        if (tick - t.allocTick >= config_.minObjectAge &&
            tick - t.lastAccess >= config_.stalenessThreshold) {
            LeakReport leak;
            leak.addr = event.addr;
            leak.size = t.size;
            leak.allocSite = t.allocSite;
            leak.allocTick = t.allocTick;
            leak.lastAccess = t.lastAccess;
            leak.staleness = tick - t.lastAccess;
            sticky_.push_back(leak);
        }
        by_addr_.erase(it);
        break;
      }
      case EventKind::Realloc: {
        auto it = by_addr_.find(event.addr);
        Tracked t;
        if (it != by_addr_.end()) {
            t = it->second;
            by_addr_.erase(it);
        } else {
            t.allocTick = tick;
        }
        t.size = event.size;
        t.lastAccess = tick;
        if (event.size > 0)
            by_addr_[event.value] = t;
        break;
      }
      case EventKind::Write:
      case EventKind::Read:
        recordAccess(event.addr, tick);
        break;
      case EventKind::FnEnter:
      case EventKind::FnExit:
        break;
    }
}

std::vector<LeakReport>
SwatDetector::finalize(Tick end_tick) const
{
    std::vector<LeakReport> leaks = sticky_;
    for (const auto &[addr, t] : by_addr_) {
        if (end_tick - t.allocTick < config_.minObjectAge)
            continue; // too young to judge
        const Tick staleness = end_tick - t.lastAccess;
        if (staleness < config_.stalenessThreshold)
            continue;
        LeakReport leak;
        leak.addr = addr;
        leak.size = t.size;
        leak.allocSite = t.allocSite;
        leak.allocTick = t.allocTick;
        leak.lastAccess = t.lastAccess;
        leak.staleness = staleness;
        leaks.push_back(leak);
    }
    return leaks;
}

std::map<Addr, SwatDetector::Tracked>::iterator
SwatDetector::ownerOf(Addr addr)
{
    if (by_addr_.empty())
        return by_addr_.end();
    auto it = by_addr_.upper_bound(addr);
    if (it == by_addr_.begin())
        return by_addr_.end();
    --it;
    const Addr start = it->first;
    if (addr >= start && addr - start < it->second.size)
        return it;
    return by_addr_.end();
}

void
SwatDetector::recordAccess(Addr addr, Tick tick)
{
    ++total_;
    auto it = ownerOf(addr);
    if (it == by_addr_.end())
        return;

    // Adaptive sampling: frequently-accessed allocation sites are
    // observed at a decaying rate.
    std::uint64_t &n = site_accesses_[it->second.allocSite];
    const double rate = config_.samplingK /
                        (config_.samplingK + static_cast<double>(n));
    if (!rng_.chance(rate))
        return;
    ++n;
    ++sampled_;
    it->second.lastAccess = tick;
}

} // namespace heapmd
