/**
 * @file
 * SWAT baseline: staleness-based memory-leak detection.
 *
 * Table 1 of the paper compares HeapMD against SWAT (Chilimbi &
 * Hauswirth, ASPLOS'04).  SWAT samples heap accesses (adaptively:
 * rarely executed paths are sampled at a higher rate) and marks
 * objects that have not been accessed for a "long" time as leaked.
 * This reimplementation consumes the same instrumentation event
 * stream as HeapMD's execution logger, so the two tools can be run
 * over identical executions.
 *
 * The behavioural contrasts the paper draws are preserved:
 *  - SWAT tracks *staleness*, not reachability, so it also catches
 *    reachable leaks (which HeapMD's degree metrics may miss) and
 *    very small leaks;
 *  - reachable-but-idle caches make SWAT report false positives,
 *    while HeapMD reports none (it does not track staleness).
 */

#ifndef HEAPMD_SWAT_SWAT_DETECTOR_HH
#define HEAPMD_SWAT_SWAT_DETECTOR_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "runtime/process.hh"
#include "support/random.hh"
#include "support/types.hh"

namespace heapmd
{

/** Tunables of the SWAT reimplementation. */
struct SwatConfig
{
    /**
     * An object is reported as leaked when it has not been (observed
     * to be) accessed for this many ticks by the end of the run.
     */
    Tick stalenessThreshold = 200000;

    /**
     * Adaptive sampling substitute: the chance of observing an access
     * to an object of allocation-site s decays as k / (k + n_s) where
     * n_s counts accesses attributed to s, approximating SWAT's
     * "sample rate inversely proportional to execution frequency".
     * The default is effectively "observe everything": the paper's
     * SWAT runs lasted hours to months, long enough for sampling to
     * converge; on our short synthetic runs aggressive sampling would
     * add staleness noise the real tool did not have.  Tests exercise
     * smaller k explicitly.
     */
    double samplingK = 1e12;

    /** Ignore objects younger than this at end of run. */
    Tick minObjectAge = 1000;

    /** Seed of the sampling decisions (deterministic runs). */
    std::uint64_t seed = 0x5ca1ab1e;
};

/** One leaked (stale) object. */
struct LeakReport
{
    Addr addr = kNullAddr;
    std::uint64_t size = 0;
    FnId allocSite = kNoFunction;
    Tick allocTick = 0;
    Tick lastAccess = 0;
    Tick staleness = 0; //!< end-of-run tick minus last access
};

/**
 * Event-stream staleness tracker.  Attach as an EventObserver to the
 * same Process HeapMD monitors; call finalize() at end of run.
 */
class SwatDetector : public EventObserver
{
  public:
    explicit SwatDetector(SwatConfig config = {});

    /** Register with @p process (also records the shadow stack). */
    void attach(Process &process);

    void onEvent(const Event &event, Tick tick) override;

    /**
     * Report all live objects stale beyond the threshold.
     * @param end_tick event time considered "end of run".
     */
    std::vector<LeakReport> finalize(Tick end_tick) const;

    /** Objects currently tracked live. */
    std::size_t liveCount() const { return by_addr_.size(); }

    /** Accesses that were sampled (observed) vs total. */
    std::uint64_t sampledAccesses() const { return sampled_; }
    std::uint64_t totalAccesses() const { return total_; }

  private:
    struct Tracked
    {
        std::uint64_t size = 0;
        FnId allocSite = kNoFunction;
        Tick allocTick = 0;
        Tick lastAccess = 0;
    };

    /** Owner lookup over the tracked live set. */
    std::map<Addr, Tracked>::iterator ownerOf(Addr addr);

    void recordAccess(Addr addr, Tick tick);

    SwatConfig config_;
    Process *process_ = nullptr;
    std::map<Addr, Tracked> by_addr_;
    /** Objects that went stale and were later freed (still reported). */
    std::vector<LeakReport> sticky_;
    /** Per-allocation-site observed access counts (adaptive rate). */
    std::unordered_map<FnId, std::uint64_t> site_accesses_;
    Rng rng_;
    std::uint64_t sampled_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace heapmd

#endif // HEAPMD_SWAT_SWAT_DETECTOR_HH
