#include "faults/fault_plan.hh"

#include "support/logging.hh"

namespace heapmd
{

namespace
{

constexpr std::size_t
idx(FaultKind kind)
{
    return static_cast<std::size_t>(kind);
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DllMissingPrev:
        return "dll-missing-prev";
      case FaultKind::TypoLeak:
        return "typo-leak";
      case FaultKind::CircularDanglingTail:
        return "circular-dangling-tail";
      case FaultKind::TreeMissingParent:
        return "tree-missing-parent";
      case FaultKind::OctTreeDag:
        return "oct-tree-dag";
      case FaultKind::BadHashFunction:
        return "bad-hash-function";
      case FaultKind::SingleChildTree:
        return "single-child-tree";
      case FaultKind::SharedStateFree:
        return "shared-state-free";
      case FaultKind::SmallLeak:
        return "small-leak";
      case FaultKind::ReachableLeak:
        return "reachable-leak";
      case FaultKind::LocalizationBug:
        return "localization-bug";
      case FaultKind::BTreeLeafUnlinked:
        return "btree-leaf-unlinked";
    }
    return "unknown";
}

BugCategory
faultCategory(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TypoLeak:
      case FaultKind::SmallLeak:
      case FaultKind::ReachableLeak:
        return BugCategory::ProgrammingTypo;
      case FaultKind::CircularDanglingTail:
      case FaultKind::SharedStateFree:
        return BugCategory::SharedState;
      case FaultKind::DllMissingPrev:
      case FaultKind::TreeMissingParent:
      case FaultKind::OctTreeDag:
      case FaultKind::BTreeLeafUnlinked:
        return BugCategory::DataStructureInvariant;
      case FaultKind::BadHashFunction:
      case FaultKind::SingleChildTree:
      case FaultKind::LocalizationBug:
        return BugCategory::Indirect;
    }
    return BugCategory::Indirect;
}

bool
faultLeaks(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TypoLeak:
      case FaultKind::SmallLeak:
      case FaultKind::ReachableLeak:
        return true;
      default:
        return false;
    }
}

FaultKind
faultKindFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
        const auto kind = static_cast<FaultKind>(i);
        if (name == faultKindName(kind))
            return kind;
    }
    HEAPMD_FATAL("unknown fault kind '", name, "'");
}

void
FaultPlan::enable(FaultKind kind, double rate, std::uint64_t budget)
{
    if (rate < 0.0 || rate > 1.0)
        HEAPMD_FATAL("fault rate ", rate, " must be in [0, 1]");
    Slot &slot = slots_[idx(kind)];
    slot.active = true;
    slot.rate = rate;
    slot.budget = budget;
    slot.fired = 0;
}

bool
FaultPlan::isActive(FaultKind kind) const
{
    return slots_[idx(kind)].active;
}

bool
FaultPlan::fire(FaultKind kind, Rng &rng)
{
    Slot &slot = slots_[idx(kind)];
    if (!slot.active)
        return false;
    if (slot.budget != 0 && slot.fired >= slot.budget)
        return false;
    if (!rng.chance(slot.rate))
        return false;
    ++slot.fired;
    return true;
}

std::uint64_t
FaultPlan::firedCount(FaultKind kind) const
{
    return slots_[idx(kind)].fired;
}

std::vector<FaultKind>
FaultPlan::activeKinds() const
{
    std::vector<FaultKind> kinds;
    for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
        if (slots_[i].active)
            kinds.push_back(static_cast<FaultKind>(i));
    }
    return kinds;
}

bool
FaultPlan::empty() const
{
    return activeKinds().empty();
}

void
FaultPlan::resetCounters()
{
    for (Slot &slot : slots_)
        slot.fired = 0;
}

} // namespace heapmd
