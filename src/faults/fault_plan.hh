/**
 * @file
 * Fault-injection plans: the bug catalogue of Figures 1, 8, 9, 11, 12.
 *
 * The paper found naturally occurring bugs in commercial code; our
 * substitution injects the same code patterns into the synthetic
 * workloads' data-structure operations, with ground-truth labels so
 * the benches can score detections (Tables 1 and 2).
 */

#ifndef HEAPMD_FAULTS_FAULT_PLAN_HH
#define HEAPMD_FAULTS_FAULT_PLAN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "detector/classification.hh"
#include "support/random.hh"

namespace heapmd
{

/** The injectable bug catalogue. */
enum class FaultKind : std::size_t
{
    /** Fig. 1: doubly-linked insert forgets the prev-pointer update. */
    DllMissingPrev,

    /** Fig. 11: wrong index nulls a live slot -> unreachable leak. */
    TypoLeak,

    /** Fig. 12: circular-list head freed, tail left dangling. */
    CircularDanglingTail,

    /** Fig. 10 bug: spliced tree node missing back-pointer from child. */
    TreeMissingParent,

    /** Sec. 4.3: oct-tree construction shares children (DAG). */
    OctTreeDag,

    /** Sec. 4.3: degenerate hash function -> a few huge chains. */
    BadHashFunction,

    /** Sec. 4.3: tree vertices built with one child instead of two. */
    SingleChildTree,

    /** Shared payload freed while other structures still point at it. */
    SharedStateFree,

    /** Well-disguised: leak so few objects the metrics barely move. */
    SmallLeak,

    /** Invisible to HeapMD: leaked but still reachable (SWAT finds). */
    ReachableLeak,

    /** Sec. 4.3: localization bug producing atypical adjacency lists. */
    LocalizationBug,

    /** Sec. 4.5: B-tree invariant -- leaf split forgets the sibling
     *  chain link (B+-tree leaf scans silently skip entries). */
    BTreeLeafUnlinked,
};

/** Number of fault kinds. */
inline constexpr std::size_t kNumFaultKinds = 12;

/** Display name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** Parse a display name back to a kind; fatal on unknown name. */
FaultKind faultKindFromName(const std::string &name);

/** Ground-truth Figure 8/9 category of a fault kind. */
BugCategory faultCategory(FaultKind kind);

/** True when the fault manifests (partly) as a memory leak. */
bool faultLeaks(FaultKind kind);

/**
 * Active faults with trigger rates and optional budgets.
 *
 * Containers consult the plan at their injection sites via fire():
 * the fault triggers with probability @c rate, at most @c budget
 * times (budget 0 = unlimited).
 */
class FaultPlan
{
  public:
    /** A plan with no active faults. */
    FaultPlan() = default;

    /**
     * Activate @p kind.
     * @param rate   per-site trigger probability in [0, 1].
     * @param budget maximum number of triggers; 0 for unlimited.
     */
    void enable(FaultKind kind, double rate = 1.0,
                std::uint64_t budget = 0);

    /** True when @p kind is enabled (regardless of budget). */
    bool isActive(FaultKind kind) const;

    /**
     * Roll the dice at an injection site.
     * @return true when the fault should be injected here.
     */
    bool fire(FaultKind kind, Rng &rng);

    /** Times @p kind actually triggered so far. */
    std::uint64_t firedCount(FaultKind kind) const;

    /** All enabled kinds. */
    std::vector<FaultKind> activeKinds() const;

    /** True when no fault is enabled. */
    bool empty() const;

    /** Reset fired counters (budgets refill). */
    void resetCounters();

  private:
    struct Slot
    {
        bool active = false;
        double rate = 0.0;
        std::uint64_t budget = 0; // 0 = unlimited
        std::uint64_t fired = 0;
    };

    std::array<Slot, kNumFaultKinds> slots_{};
};

} // namespace heapmd

#endif // HEAPMD_FAULTS_FAULT_PLAN_HH
