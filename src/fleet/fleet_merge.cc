#include "fleet/fleet_merge.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

#include "diag/incident_bundle.hh"
#include "diag/json.hh"
#include "diag/run_manifest.hh"
#include "metrics/metric.hh"
#include "support/thread_pool.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_json.hh"

namespace heapmd
{
namespace fleet
{

namespace
{

namespace fs = std::filesystem;

/**
 * A fleet of identical processes still jitters a little; means
 * within one percentage point of each other are never outliers, no
 * matter how tight the population's own spread is.
 */
constexpr double kSigmaFloor = 1.0;

/** The document "kind" of @p path, or "" when unreadable. */
std::string
probeKind(const std::string &path)
{
    std::string text;
    if (!diag::readFileText(path, text, nullptr))
        return {};
    telemetry::JsonValue root;
    if (!telemetry::parseJson(text, root, nullptr) ||
        !root.isObject()) {
        return {};
    }
    const telemetry::JsonValue *kind = root.find("kind");
    if (kind == nullptr || !kind->isString())
        return {};
    return kind->string;
}

/** One member's contribution to one metric. */
struct MetricSample
{
    std::size_t member = 0; //!< index into the sorted member list
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double weight = 1.0; //!< max(1, summary count)
    std::uint64_t count = 0;
};

/** Fold @p bundle into the cluster map under @p member_path. */
void
clusterBundle(const diag::IncidentBundle &bundle,
              const std::string &member_path,
              std::map<std::string, std::set<std::string>> &clusters,
              std::map<std::string, std::uint64_t> &counts)
{
    std::vector<std::string> suspects;
    for (const diag::BundleSuspect &suspect : bundle.suspects) {
        if (suspects.size() == 3)
            break;
        suspects.push_back(suspect.name);
    }
    const std::string signature =
        incidentSignature(bundle.bugClass, bundle.metric, suspects);
    clusters[signature].insert(member_path);
    ++counts[signature];
}

} // namespace

std::string
incidentSignature(const std::string &bug_class,
                  const std::string &metric,
                  const std::vector<std::string> &suspects)
{
    std::string signature = bug_class + "|" + metric + "|";
    for (std::size_t i = 0; i < suspects.size() && i < 3; ++i) {
        if (i > 0)
            signature += ',';
        signature += suspects[i];
    }
    return signature;
}

bool
collectFleetInputs(const std::vector<std::string> &paths,
                   FleetInputs &out, std::string &error)
{
    for (const std::string &path : paths) {
        std::error_code ec;
        if (fs::is_directory(path, ec)) {
            std::vector<std::string> found;
            for (const fs::directory_entry &entry :
                 fs::recursive_directory_iterator(path, ec)) {
                if (!entry.is_regular_file(ec))
                    continue;
                const std::string file = entry.path().string();
                if (file.size() >= 5 &&
                    file.compare(file.size() - 5, 5, ".json") == 0) {
                    found.push_back(file);
                }
            }
            // readdir order is filesystem whim; discovery must not be.
            std::sort(found.begin(), found.end());
            for (const std::string &file : found) {
                const std::string kind = probeKind(file);
                if (kind == diag::kManifestKind)
                    out.manifests.push_back(file);
                else if (kind == "heapmd.incident")
                    out.bundles.push_back(file);
                // Other kinds (models, flow incidents) are not fleet
                // inputs; skipping them keeps mixed artifact
                // directories usable as-is.
            }
            continue;
        }
        if (!fs::exists(path, ec)) {
            error = "fleet input '" + path + "' does not exist";
            return false;
        }
        out.manifests.push_back(path);
    }
    return true;
}

bool
mergeFleet(const FleetInputs &inputs,
           const FleetMergeOptions &options, FleetModel &out,
           analysis::Report &report, std::string &error)
{
    HEAPMD_PHASE_SPAN_NAMED(span, "phase.fleet_merge");

    struct Loaded
    {
        std::string path;
        diag::RunManifest manifest;
        std::string error;
        std::uint64_t bytes = 0;
    };
    std::vector<Loaded> loads(inputs.manifests.size());
    parallelForIndexed(
        inputs.manifests.size(), options.jobs, [&](std::size_t i) {
            loads[i].path = inputs.manifests[i];
            std::string text;
            if (!diag::readFileText(loads[i].path, text,
                                    &loads[i].error)) {
                return;
            }
            loads[i].bytes = text.size();
            if (!diag::loadRunManifest(text, loads[i].manifest,
                                       &loads[i].error)) {
                loads[i].manifest = diag::RunManifest{};
            }
        });
    for (const Loaded &load : loads) {
        if (!load.error.empty()) {
            error = "cannot load manifest '" + load.path +
                    "': " + load.error;
            return false;
        }
        span.addBytes(load.bytes);
    }

    // Everything downstream runs over the path-sorted, deduplicated
    // member list: the one total order that byte-determinism hangs
    // off, whatever the input order or worker count was.
    std::sort(loads.begin(), loads.end(),
              [](const Loaded &a, const Loaded &b) {
                  return a.path < b.path;
              });
    std::vector<const Loaded *> members;
    for (const Loaded &load : loads) {
        if (!members.empty() && members.back()->path == load.path) {
            report.note("fleet.duplicate",
                        "manifest '" + load.path +
                            "' was given more than once");
            continue;
        }
        members.push_back(&load);
    }
    if (members.empty()) {
        error = "no run manifests among the fleet inputs";
        return false;
    }

    FleetModel model;
    for (const Loaded *load : members) {
        const diag::RunManifest &m = load->manifest;
        FleetMember member;
        member.path = load->path;
        member.program = m.program;
        member.command = m.command;
        member.schemaVersion = m.schemaVersion;
        member.events = m.events;
        member.samples = m.samples;
        member.reports = m.reportsTotal;
        member.metricFrequency = m.metricFrequency;
        member.rotateBytes = m.rotateBytes;
        model.members.push_back(std::move(member));
    }
    model.processes = model.members.size();

    // Sampling/rotation provenance: the fleet takes the first
    // member's values; any disagreement makes pooled ranges an
    // apples-to-oranges comparison, which the model records and the
    // report surfaces.
    model.metricFrequency = model.members.front().metricFrequency;
    model.rotateBytes = model.members.front().rotateBytes;
    for (const FleetMember &member : model.members) {
        if (member.metricFrequency != model.metricFrequency ||
            member.rotateBytes != model.rotateBytes) {
            model.mixedProvenance = true;
            report.warning(
                "fleet.mixed-provenance",
                "member '" + member.path + "' sampled at frq " +
                    std::to_string(member.metricFrequency) +
                    " / rotate_bytes " +
                    std::to_string(member.rotateBytes) +
                    " but the fleet baseline is frq " +
                    std::to_string(model.metricFrequency) +
                    " / rotate_bytes " +
                    std::to_string(model.rotateBytes) +
                    "; pooled ranges mix sampling provenances");
            break;
        }
    }

    for (const MetricId id : kAllMetrics) {
        const std::string name = metricName(id);
        std::vector<MetricSample> samples;
        for (std::size_t i = 0; i < members.size(); ++i) {
            for (const diag::ManifestMetric &metric :
                 members[i]->manifest.metrics) {
                if (metric.metric != name ||
                    metric.summary.count == 0) {
                    continue;
                }
                MetricSample sample;
                sample.member = i;
                sample.mean = metric.summary.mean;
                sample.min = metric.summary.min;
                sample.max = metric.summary.max;
                sample.count = metric.summary.count;
                sample.weight = static_cast<double>(
                    std::max<std::uint64_t>(1, metric.summary.count));
                samples.push_back(sample);
            }
        }
        if (samples.empty())
            continue;

        // Leave-one-out attribution: each member's mean is scored
        // against the weighted population of the *others*, so one
        // drifting process cannot drag the yardstick toward itself.
        std::set<std::size_t> outlier_members;
        if (samples.size() >= options.minMembers) {
            double total_w = 0.0, total_wx = 0.0, total_wx2 = 0.0;
            for (const MetricSample &s : samples) {
                total_w += s.weight;
                total_wx += s.weight * s.mean;
                total_wx2 += s.weight * s.mean * s.mean;
            }
            for (const MetricSample &s : samples) {
                const double w = total_w - s.weight;
                if (w <= 0.0)
                    continue;
                const double mean = (total_wx - s.weight * s.mean) / w;
                double var =
                    (total_wx2 - s.weight * s.mean * s.mean) / w -
                    mean * mean;
                if (var < 0.0)
                    var = 0.0;
                const double sigma =
                    std::max(std::sqrt(var), kSigmaFloor);
                const double score =
                    std::fabs(s.mean - mean) / sigma;
                if (score < options.outlierScore)
                    continue;
                outlier_members.insert(s.member);
                FleetOutlier outlier;
                outlier.path = model.members[s.member].path;
                outlier.metric = name;
                outlier.score = score;
                outlier.memberMean = s.mean;
                outlier.fleetMean = mean;
                model.outliers.push_back(std::move(outlier));
            }
        }

        // The pooled range describes the *healthy* population, so
        // outlier members do not stretch it; their sample counts
        // still tally (the fleet did run them).
        FleetMetricRange range;
        range.metric = name;
        range.members = samples.size();
        double total_w = 0.0, total_wx = 0.0, total_wx2 = 0.0;
        bool first = true;
        for (const MetricSample &s : samples) {
            range.samples += s.count;
            if (outlier_members.count(s.member) != 0)
                continue;
            if (first || s.min < range.min)
                range.min = s.min;
            if (first || s.max > range.max)
                range.max = s.max;
            first = false;
            total_w += s.weight;
            total_wx += s.weight * s.mean;
            total_wx2 += s.weight * s.mean * s.mean;
        }
        if (first) {
            // Degenerate: every contributor was flagged.  Fall back
            // to the full population so the range stays meaningful.
            for (const MetricSample &s : samples) {
                if (first || s.min < range.min)
                    range.min = s.min;
                if (first || s.max > range.max)
                    range.max = s.max;
                first = false;
                total_w += s.weight;
                total_wx += s.weight * s.mean;
                total_wx2 += s.weight * s.mean * s.mean;
            }
        }
        if (total_w > 0.0) {
            range.mean = total_wx / total_w;
            double var =
                total_wx2 / total_w - range.mean * range.mean;
            if (var < 0.0)
                var = 0.0;
            range.stddev = std::sqrt(var);
        }
        model.metrics.push_back(std::move(range));
    }

    std::sort(model.outliers.begin(), model.outliers.end(),
              [](const FleetOutlier &a, const FleetOutlier &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  if (a.path != b.path)
                      return a.path < b.path;
                  return a.metric < b.metric;
              });
    for (const FleetOutlier &outlier : model.outliers) {
        char score[32];
        std::snprintf(score, sizeof score, "%.2f", outlier.score);
        report.error("fleet.outlier",
                     "member '" + outlier.path + "' drifts on " +
                         outlier.metric + ": mean " +
                         diag::formatJsonNumber(outlier.memberMean) +
                         "% vs fleet " +
                         diag::formatJsonNumber(outlier.fleetMean) +
                         "% (z=" + score + ")");
    }

    // Incident dedup: bundles referenced by members plus any loose
    // bundles discovered during input scanning, keyed on the
    // bugClass|metric|suspects signature.
    std::map<std::string, std::set<std::string>> clusters;
    std::map<std::string, std::uint64_t> counts;
    for (std::size_t i = 0; i < members.size(); ++i) {
        const fs::path manifest_dir =
            fs::path(members[i]->path).parent_path();
        for (const std::string &bundle_path :
             members[i]->manifest.bundlePaths) {
            std::error_code ec;
            std::string resolved = bundle_path;
            if (!fs::exists(resolved, ec)) {
                // Bundle paths were written relative to the run's
                // working directory; retry beside the manifest.
                const std::string beside =
                    (manifest_dir / bundle_path).string();
                if (fs::exists(beside, ec)) {
                    resolved = beside;
                } else {
                    report.note("fleet.bundle-missing",
                                "member '" + members[i]->path +
                                    "' references bundle '" +
                                    bundle_path +
                                    "' which is not on disk");
                    continue;
                }
            }
            diag::IncidentBundle bundle;
            std::string bundle_error;
            if (!diag::loadIncidentBundleFile(resolved, bundle,
                                              &bundle_error)) {
                report.warning("fleet.bundle",
                               "cannot parse bundle '" + resolved +
                                   "': " + bundle_error);
                continue;
            }
            clusterBundle(bundle, model.members[i].path, clusters,
                          counts);
        }
    }
    for (const std::string &bundle_path : inputs.bundles) {
        diag::IncidentBundle bundle;
        std::string bundle_error;
        if (!diag::loadIncidentBundleFile(bundle_path, bundle,
                                          &bundle_error)) {
            report.warning("fleet.bundle",
                           "cannot parse bundle '" + bundle_path +
                               "': " + bundle_error);
            continue;
        }
        clusterBundle(bundle, bundle_path, clusters, counts);
    }
    for (const auto &[signature, paths] : clusters) {
        FleetIncident incident;
        incident.signature = signature;
        incident.count = counts[signature];
        incident.members.assign(paths.begin(), paths.end());
        model.incidents.push_back(std::move(incident));
    }
    std::sort(model.incidents.begin(), model.incidents.end(),
              [](const FleetIncident &a, const FleetIncident &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.signature < b.signature;
              });

    out = std::move(model);
    return true;
}

} // namespace fleet
} // namespace heapmd
