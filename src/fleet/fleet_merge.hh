/**
 * @file
 * Fleet aggregation (`heapmd fleet-merge`): fold N run manifests
 * into one population model.
 *
 * Input discovery accepts explicit manifest paths and directories;
 * a directory is scanned recursively for `*.json` documents, which
 * are classified by their "kind" tag -- run manifests join the
 * population, loose incident bundles join incident clustering, and
 * anything else is ignored (a bundle directory full of
 * incident-NNN.json files is a valid input on its own).
 *
 * The merge itself is deterministic by construction: manifests load
 * in parallel into indexed slots (`--jobs` shapes wall time only),
 * then everything derived is computed over the path-sorted member
 * list.  Outlier attribution is a leave-one-out weighted z-score
 * over the per-member metric means, weighted by each member's sample
 * count, with the deviation floor of one percentage point keeping a
 * perfectly tight fleet from flagging noise.
 *
 * Findings land in an analysis::Report under the fleet.* family:
 *   fleet.outlier           a member's metric mean sits outside the
 *                           population (error -> exit 3)
 *   fleet.mixed-provenance  members disagree on sampling frequency
 *                           or rotation threshold (warning)
 *   fleet.duplicate         the same manifest path was given twice
 *   fleet.bundle-missing    a manifest references a bundle that is
 *                           not on disk (note)
 *   fleet.bundle            a referenced bundle failed to parse
 */

#ifndef HEAPMD_FLEET_FLEET_MERGE_HH
#define HEAPMD_FLEET_FLEET_MERGE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "fleet/fleet_model.hh"

namespace heapmd
{
namespace fleet
{

/** Discovered inputs, ready for mergeFleet. */
struct FleetInputs
{
    std::vector<std::string> manifests; //!< run-manifest paths
    std::vector<std::string> bundles;   //!< loose incident bundles
};

/** Knobs of the merge. */
struct FleetMergeOptions
{
    /** Worker threads for the parallel manifest loads (0 = auto). */
    unsigned jobs = 1;

    /** Leave-one-out z-score at which a member becomes an outlier. */
    double outlierScore = 3.0;

    /**
     * Minimum members sampling a metric before outlier attribution
     * runs there -- a leave-one-out score over one or two peers is
     * numerology, not statistics.
     */
    std::size_t minMembers = 3;
};

/**
 * Expand @p paths (manifest files and/or directories) into concrete
 * inputs.  Directory scans are sorted, so discovery order never
 * depends on readdir order.
 * @return false with @p error set when a path does not exist.
 */
bool collectFleetInputs(const std::vector<std::string> &paths,
                        FleetInputs &out, std::string &error);

/**
 * Fold the inputs into a population model.  Appends fleet.*
 * findings to @p report; the model itself is produced even when the
 * report is dirty (outliers are *in* the model).
 * @return false with @p error set when a manifest cannot be loaded
 *         or no members remain.
 */
bool mergeFleet(const FleetInputs &inputs,
                const FleetMergeOptions &options, FleetModel &out,
                analysis::Report &report, std::string &error);

/**
 * The incident-cluster signature of one bundle:
 * "bugClass|metric|suspect1,suspect2,suspect3" (top three suspects
 * by stored rank).  Exposed for tests and fleet-trend messages.
 */
std::string incidentSignature(const std::string &bug_class,
                              const std::string &metric,
                              const std::vector<std::string> &suspects);

} // namespace fleet
} // namespace heapmd

#endif // HEAPMD_FLEET_FLEET_MERGE_HH
