/**
 * @file
 * Cross-fleet trend tracking (`heapmd fleet-trend`).
 *
 * Compares two fleet models -- yesterday's population against
 * today's -- and flags fleet-level drift: processes newly outside
 * their population, pooled stable ranges that moved, and incident
 * clusters that did not exist before.  This is the fleet analogue of
 * `heapmd trend` over run manifests, with the same exit contract
 * (error findings -> exit 3).
 *
 * Rule catalog (fleet.* family, documented in DESIGN.md section 15):
 *   fleet.process-count  the fleet shrank (warning) or grew (note)
 *   fleet.provenance     the fleets pooled different sampling or
 *                        rotation provenance (warning)
 *   fleet.outlier-new    a member/metric outlier absent from the
 *                        baseline (error)
 *   fleet.outlier-count  total outlier attributions grew (error)
 *   fleet.range-drift    a pooled metric range's endpoint moved
 *                        beyond tolerance (error)
 *   fleet.incident-new   an incident-cluster signature absent from
 *                        the baseline (error)
 *   fleet.incident-growth an existing cluster gained bundles
 *                        (warning)
 */

#ifndef HEAPMD_FLEET_FLEET_TREND_HH
#define HEAPMD_FLEET_FLEET_TREND_HH

#include "analysis/report.hh"
#include "fleet/fleet_model.hh"

namespace heapmd
{
namespace fleet
{

/** Tolerances of the fleet drift detectors. */
struct FleetTrendOptions
{
    /**
     * How far a pooled range endpoint may move, relative to the
     * baseline range's span (floored at one percentage point so a
     * degenerate zero-width range does not flag noise).
     */
    double rangeTolerance = 0.25;
};

/**
 * Compare @p candidate against @p baseline, appending fleet.*
 * findings to @p report.  Error findings mean fleet-level drift.
 */
void compareFleets(const FleetModel &baseline,
                   const FleetModel &candidate,
                   const FleetTrendOptions &options,
                   analysis::Report &report);

} // namespace fleet
} // namespace heapmd

#endif // HEAPMD_FLEET_FLEET_TREND_HH
