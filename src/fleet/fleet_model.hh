/**
 * @file
 * Fleet population models: what "normal" looks like across a fleet.
 *
 * One process's run manifest says what *it* did; a fleet model says
 * what N of them did together.  `heapmd fleet-merge` pools per-metric
 * stable ranges across processes (weighted by how much each process
 * actually sampled), attributes per-process outliers by a
 * leave-one-out z-score over the member means, and clusters the
 * incident bundles the members reference by suspect-function
 * signature -- the same crash showing up on twelve hosts is one
 * cluster with count 12, not twelve findings.
 *
 * Same canonical-JSON contract as run manifests and incident
 * bundles: stable field order, versioned schema, byte-for-byte
 * save/load round-trip.  Members are sorted by manifest path and all
 * derived sections have total orders, so the rendering is
 * byte-identical regardless of input order or worker count.
 */

#ifndef HEAPMD_FLEET_FLEET_MODEL_HH
#define HEAPMD_FLEET_FLEET_MODEL_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace heapmd
{
namespace fleet
{

/** Fleet document type tag (the JSON "kind" member). */
inline constexpr const char *kFleetKind = "heapmd.fleet";

/** Current fleet-model schema version. */
inline constexpr std::uint64_t kFleetSchemaVersion = 1;

/** One process (run manifest) folded into the fleet. */
struct FleetMember
{
    std::string path;     //!< manifest path; the member sort key
    std::string program;
    std::string command;  //!< "check", "replay", ...
    std::uint64_t schemaVersion = 0; //!< of the source manifest
    std::uint64_t events = 0;
    std::uint64_t samples = 0;
    std::uint64_t reports = 0;  //!< anomaly reports this run raised
    std::uint64_t metricFrequency = 0; //!< sampling provenance
    std::uint64_t rotateBytes = 0;     //!< rotation provenance
};

/** Pooled stable range of one metric across the fleet. */
struct FleetMetricRange
{
    std::string metric;   //!< metricName()
    std::uint64_t members = 0; //!< members that sampled this metric
    std::uint64_t samples = 0; //!< pooled sample count (the weight)
    /** Pooled over non-outlier members only. */
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;   //!< weighted mean of non-outlier means
    double stddev = 0.0; //!< weighted stddev of non-outlier means
};

/** One process whose metric mean sits outside the population. */
struct FleetOutlier
{
    std::string path;    //!< offending member's manifest path
    std::string metric;
    double score = 0.0;  //!< leave-one-out weighted z-score
    double memberMean = 0.0;
    double fleetMean = 0.0; //!< mean of the others (leave-one-out)
};

/** One cluster of equivalent incidents across the fleet. */
struct FleetIncident
{
    /** "bugClass|metric|suspect1,suspect2,suspect3" (top <= 3). */
    std::string signature;
    std::uint64_t count = 0; //!< bundles folded into the cluster
    std::vector<std::string> members; //!< manifest paths, sorted
};

/** The whole population model. */
struct FleetModel
{
    std::uint64_t schemaVersion = kFleetSchemaVersion;
    std::uint64_t processes = 0; //!< == members.size()

    /**
     * Sampling/rotation provenance of the fleet: the first (sorted)
     * member's values.  `mixed` is set when any member disagrees --
     * pooled ranges then compare apples to oranges, and fleet-merge
     * says so with a fleet.mixed-provenance warning.
     */
    std::uint64_t metricFrequency = 0;
    std::uint64_t rotateBytes = 0;
    bool mixedProvenance = false;

    std::vector<FleetMember> members;     //!< sorted by path
    std::vector<FleetMetricRange> metrics; //!< kAllMetrics order
    /** Sorted by (score desc, path, metric). */
    std::vector<FleetOutlier> outliers;
    /** Sorted by (count desc, signature). */
    std::vector<FleetIncident> incidents;
};

/** Canonical JSON rendering (ends with a newline). */
void saveFleetModel(const FleetModel &model, std::ostream &os);

/** saveFleetModel into a string. */
std::string fleetToJson(const FleetModel &model);

/**
 * Parse a fleet document.
 * @return false with a description in @p error on malformed input.
 */
bool loadFleetModel(const std::string &json, FleetModel &out,
                    std::string *error);

/** loadFleetModel over a file's contents. */
bool loadFleetModelFile(const std::string &path, FleetModel &out,
                        std::string *error);

/**
 * Cheap pre-flight: parse only kind + schemaVersion, any version
 * (see diag::peekManifestSchemaVersion for the rationale).
 */
bool peekFleetSchemaVersion(const std::string &json,
                            std::uint64_t &version,
                            std::string *error);

/** peekFleetSchemaVersion over a file's contents. */
bool peekFleetSchemaVersionFile(const std::string &path,
                                std::uint64_t &version,
                                std::string *error);

/**
 * Render the model as Prometheus text exposition: the
 * `heapmd_fleet_*` families (process count, per-metric pooled
 * ranges, outlier and incident-cluster tallies).  Deterministic for
 * a given model, so `export` can serve it verbatim per scrape.
 */
std::string renderFleetPrometheus(const FleetModel &model);

} // namespace fleet
} // namespace heapmd

#endif // HEAPMD_FLEET_FLEET_MODEL_HH
