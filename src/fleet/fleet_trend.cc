#include "fleet/fleet_trend.hh"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "diag/json.hh"

namespace heapmd
{
namespace fleet
{

void
compareFleets(const FleetModel &baseline,
              const FleetModel &candidate,
              const FleetTrendOptions &options,
              analysis::Report &report)
{
    if (candidate.processes < baseline.processes) {
        report.warning(
            "fleet.process-count",
            "fleet shrank from " +
                std::to_string(baseline.processes) + " to " +
                std::to_string(candidate.processes) +
                " process(es); pooled ranges lost evidence");
    } else if (candidate.processes > baseline.processes) {
        report.note("fleet.process-count",
                    "fleet grew from " +
                        std::to_string(baseline.processes) + " to " +
                        std::to_string(candidate.processes) +
                        " process(es)");
    }

    if (candidate.metricFrequency != baseline.metricFrequency ||
        candidate.rotateBytes != baseline.rotateBytes) {
        report.warning(
            "fleet.provenance",
            "fleets pooled different provenance: baseline frq " +
                std::to_string(baseline.metricFrequency) +
                " / rotate_bytes " +
                std::to_string(baseline.rotateBytes) +
                ", candidate frq " +
                std::to_string(candidate.metricFrequency) +
                " / rotate_bytes " +
                std::to_string(candidate.rotateBytes));
    }
    if (candidate.mixedProvenance && !baseline.mixedProvenance) {
        report.warning("fleet.provenance",
                       "candidate fleet pooled mixed provenance; "
                       "the baseline did not");
    }

    std::set<std::pair<std::string, std::string>> known;
    for (const FleetOutlier &outlier : baseline.outliers)
        known.insert({outlier.path, outlier.metric});
    for (const FleetOutlier &outlier : candidate.outliers) {
        if (known.count({outlier.path, outlier.metric}) != 0)
            continue;
        report.error(
            "fleet.outlier-new",
            "member '" + outlier.path + "' is newly outlying on " +
                outlier.metric + " (mean " +
                diag::formatJsonNumber(outlier.memberMean) +
                "% vs fleet " +
                diag::formatJsonNumber(outlier.fleetMean) + "%)");
    }
    if (candidate.outliers.size() > baseline.outliers.size()) {
        report.error("fleet.outlier-count",
                     "outlier attributions grew from " +
                         std::to_string(baseline.outliers.size()) +
                         " to " +
                         std::to_string(candidate.outliers.size()));
    }

    std::map<std::string, const FleetMetricRange *> base_ranges;
    for (const FleetMetricRange &range : baseline.metrics)
        base_ranges[range.metric] = &range;
    for (const FleetMetricRange &range : candidate.metrics) {
        const auto it = base_ranges.find(range.metric);
        if (it == base_ranges.end())
            continue;
        const FleetMetricRange &base = *it->second;
        const double span =
            std::max(base.max - base.min, 1.0);
        const double min_drift = std::abs(range.min - base.min);
        const double max_drift = std::abs(range.max - base.max);
        if (min_drift > options.rangeTolerance * span ||
            max_drift > options.rangeTolerance * span) {
            report.error(
                "fleet.range-drift",
                "pooled range of " + range.metric + " moved from [" +
                    diag::formatJsonNumber(base.min) + ", " +
                    diag::formatJsonNumber(base.max) + "] to [" +
                    diag::formatJsonNumber(range.min) + ", " +
                    diag::formatJsonNumber(range.max) + "]");
        }
    }

    std::map<std::string, std::uint64_t> base_incidents;
    for (const FleetIncident &incident : baseline.incidents)
        base_incidents[incident.signature] = incident.count;
    for (const FleetIncident &incident : candidate.incidents) {
        const auto it = base_incidents.find(incident.signature);
        if (it == base_incidents.end()) {
            report.error("fleet.incident-new",
                         "new incident cluster '" +
                             incident.signature + "' (" +
                             std::to_string(incident.count) +
                             " bundle(s) across " +
                             std::to_string(incident.members.size()) +
                             " member(s))");
        } else if (incident.count > it->second) {
            report.warning("fleet.incident-growth",
                           "incident cluster '" +
                               incident.signature + "' grew from " +
                               std::to_string(it->second) + " to " +
                               std::to_string(incident.count) +
                               " bundle(s)");
        }
    }
}

} // namespace fleet
} // namespace heapmd
