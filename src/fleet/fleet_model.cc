#include "fleet/fleet_model.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "diag/json.hh"
#include "telemetry/trace_json.hh"

namespace heapmd
{
namespace fleet
{

namespace
{

using diag::JsonWriter;
using telemetry::JsonValue;

bool
fail(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = "fleet model: " + what;
    return false;
}

/** Prometheus label-value escaping (\\, \", \n). */
std::string
escapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c; break;
        }
    }
    return out;
}

void
appendHeader(std::string &out, const char *name, const char *type,
             const char *help)
{
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
}

void
appendU64(std::string &out, const char *name,
          const std::string &labels, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += name;
    out += labels;
    out += ' ';
    out += buf;
    out += '\n';
}

void
appendF64(std::string &out, const char *name,
          const std::string &labels, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", value);
    out += name;
    out += labels;
    out += ' ';
    out += buf;
    out += '\n';
}

} // namespace

void
saveFleetModel(const FleetModel &model, std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("kind", kFleetKind);
    w.field("schemaVersion", kFleetSchemaVersion);
    w.field("processes", model.processes);

    w.beginObject("provenance");
    w.field("metricFrequency", model.metricFrequency);
    w.field("rotateBytes", model.rotateBytes);
    w.fieldBool("mixed", model.mixedProvenance);
    w.endObject();

    w.beginArray("members");
    for (const FleetMember &member : model.members) {
        w.beginObject();
        w.field("path", member.path);
        w.field("program", member.program);
        w.field("command", member.command);
        w.field("schemaVersion", member.schemaVersion);
        w.field("events", member.events);
        w.field("samples", member.samples);
        w.field("reports", member.reports);
        w.field("metricFrequency", member.metricFrequency);
        w.field("rotateBytes", member.rotateBytes);
        w.endObject();
    }
    w.endArray();

    w.beginArray("metrics");
    for (const FleetMetricRange &range : model.metrics) {
        w.beginObject();
        w.field("metric", range.metric);
        w.field("members", range.members);
        w.field("samples", range.samples);
        w.field("min", range.min);
        w.field("max", range.max);
        w.field("mean", range.mean);
        w.field("stddev", range.stddev);
        w.endObject();
    }
    w.endArray();

    w.beginArray("outliers");
    for (const FleetOutlier &outlier : model.outliers) {
        w.beginObject();
        w.field("path", outlier.path);
        w.field("metric", outlier.metric);
        w.field("score", outlier.score);
        w.field("memberMean", outlier.memberMean);
        w.field("fleetMean", outlier.fleetMean);
        w.endObject();
    }
    w.endArray();

    w.beginArray("incidents");
    for (const FleetIncident &incident : model.incidents) {
        w.beginObject();
        w.field("signature", incident.signature);
        w.field("count", incident.count);
        w.beginArray("members");
        for (const std::string &member : incident.members)
            w.element(member);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.endObject();
    os << '\n';
}

std::string
fleetToJson(const FleetModel &model)
{
    std::ostringstream os;
    saveFleetModel(model, os);
    return os.str();
}

bool
loadFleetModel(const std::string &json, FleetModel &out,
               std::string *error)
{
    using diag::jsonArray;
    using diag::jsonBool;
    using diag::jsonNumber;
    using diag::jsonObject;
    using diag::jsonString;
    using diag::jsonU64;

    JsonValue root;
    std::string parse_error;
    if (!telemetry::parseJson(json, root, &parse_error))
        return fail(error, parse_error);
    if (!root.isObject())
        return fail(error, "root is not an object");

    std::string kind;
    if (!jsonString(root, "kind", kind, error))
        return false;
    if (kind != kFleetKind)
        return fail(error,
                    "kind '" + kind + "' is not '" + kFleetKind + "'");

    FleetModel model;
    if (!jsonU64(root, "schemaVersion", model.schemaVersion, error))
        return false;
    if (model.schemaVersion < 1 ||
        model.schemaVersion > kFleetSchemaVersion) {
        return fail(error, "unsupported schemaVersion " +
                               std::to_string(model.schemaVersion));
    }
    if (!jsonU64(root, "processes", model.processes, error))
        return false;

    const JsonValue *provenance =
        jsonObject(root, "provenance", error);
    if (provenance == nullptr)
        return false;
    if (!jsonU64(*provenance, "metricFrequency",
                 model.metricFrequency, error) ||
        !jsonU64(*provenance, "rotateBytes", model.rotateBytes,
                 error) ||
        !jsonBool(*provenance, "mixed", model.mixedProvenance,
                  error)) {
        return false;
    }

    const JsonValue *members = jsonArray(root, "members", error);
    if (members == nullptr)
        return false;
    for (const JsonValue &entry : members->array) {
        if (!entry.isObject())
            return fail(error, "members entry is not an object");
        FleetMember member;
        if (!jsonString(entry, "path", member.path, error) ||
            !jsonString(entry, "program", member.program, error) ||
            !jsonString(entry, "command", member.command, error) ||
            !jsonU64(entry, "schemaVersion", member.schemaVersion,
                     error) ||
            !jsonU64(entry, "events", member.events, error) ||
            !jsonU64(entry, "samples", member.samples, error) ||
            !jsonU64(entry, "reports", member.reports, error) ||
            !jsonU64(entry, "metricFrequency",
                     member.metricFrequency, error) ||
            !jsonU64(entry, "rotateBytes", member.rotateBytes,
                     error)) {
            return false;
        }
        model.members.push_back(std::move(member));
    }

    const JsonValue *metrics = jsonArray(root, "metrics", error);
    if (metrics == nullptr)
        return false;
    for (const JsonValue &entry : metrics->array) {
        if (!entry.isObject())
            return fail(error, "metrics entry is not an object");
        FleetMetricRange range;
        if (!jsonString(entry, "metric", range.metric, error) ||
            !jsonU64(entry, "members", range.members, error) ||
            !jsonU64(entry, "samples", range.samples, error) ||
            !jsonNumber(entry, "min", range.min, error) ||
            !jsonNumber(entry, "max", range.max, error) ||
            !jsonNumber(entry, "mean", range.mean, error) ||
            !jsonNumber(entry, "stddev", range.stddev, error)) {
            return false;
        }
        model.metrics.push_back(std::move(range));
    }

    const JsonValue *outliers = jsonArray(root, "outliers", error);
    if (outliers == nullptr)
        return false;
    for (const JsonValue &entry : outliers->array) {
        if (!entry.isObject())
            return fail(error, "outliers entry is not an object");
        FleetOutlier outlier;
        if (!jsonString(entry, "path", outlier.path, error) ||
            !jsonString(entry, "metric", outlier.metric, error) ||
            !jsonNumber(entry, "score", outlier.score, error) ||
            !jsonNumber(entry, "memberMean", outlier.memberMean,
                        error) ||
            !jsonNumber(entry, "fleetMean", outlier.fleetMean,
                        error)) {
            return false;
        }
        model.outliers.push_back(std::move(outlier));
    }

    const JsonValue *incidents = jsonArray(root, "incidents", error);
    if (incidents == nullptr)
        return false;
    for (const JsonValue &entry : incidents->array) {
        if (!entry.isObject())
            return fail(error, "incidents entry is not an object");
        FleetIncident incident;
        if (!jsonString(entry, "signature", incident.signature,
                        error) ||
            !jsonU64(entry, "count", incident.count, error)) {
            return false;
        }
        const JsonValue *paths = jsonArray(entry, "members", error);
        if (paths == nullptr)
            return false;
        for (const JsonValue &path : paths->array) {
            if (!path.isString()) {
                return fail(error,
                            "incident members entry is not a string");
            }
            incident.members.push_back(path.string);
        }
        model.incidents.push_back(std::move(incident));
    }

    out = std::move(model);
    return true;
}

bool
loadFleetModelFile(const std::string &path, FleetModel &out,
                   std::string *error)
{
    std::string text;
    if (!diag::readFileText(path, text, error))
        return false;
    return loadFleetModel(text, out, error);
}

bool
peekFleetSchemaVersion(const std::string &json,
                       std::uint64_t &version, std::string *error)
{
    JsonValue root;
    std::string parse_error;
    if (!telemetry::parseJson(json, root, &parse_error))
        return fail(error, parse_error);
    if (!root.isObject())
        return fail(error, "root is not an object");
    std::string kind;
    if (!diag::jsonString(root, "kind", kind, error))
        return false;
    if (kind != kFleetKind)
        return fail(error,
                    "kind '" + kind + "' is not '" + kFleetKind + "'");
    return diag::jsonU64(root, "schemaVersion", version, error);
}

bool
peekFleetSchemaVersionFile(const std::string &path,
                           std::uint64_t &version, std::string *error)
{
    std::string text;
    if (!diag::readFileText(path, text, error))
        return false;
    return peekFleetSchemaVersion(text, version, error);
}

std::string
renderFleetPrometheus(const FleetModel &model)
{
    std::string out;

    appendHeader(out, "heapmd_fleet_processes", "gauge",
                 "Processes folded into the fleet model.");
    appendU64(out, "heapmd_fleet_processes", "", model.processes);

    appendHeader(out, "heapmd_fleet_mixed_provenance", "gauge",
                 "1 when members disagree on sampling/rotation "
                 "provenance.");
    appendU64(out, "heapmd_fleet_mixed_provenance", "",
              model.mixedProvenance ? 1 : 0);

    appendHeader(out, "heapmd_fleet_outliers", "gauge",
                 "Member/metric pairs attributed as outliers.");
    appendU64(out, "heapmd_fleet_outliers", "",
              model.outliers.size());

    appendHeader(out, "heapmd_fleet_incident_clusters", "gauge",
                 "Distinct incident clusters across the fleet.");
    appendU64(out, "heapmd_fleet_incident_clusters", "",
              model.incidents.size());

    appendHeader(out, "heapmd_fleet_metric_members", "gauge",
                 "Members that sampled the metric.");
    for (const FleetMetricRange &range : model.metrics) {
        appendU64(out, "heapmd_fleet_metric_members",
                  "{metric=\"" + escapeLabel(range.metric) + "\"}",
                  range.members);
    }

    struct RangeField
    {
        const char *name;
        const char *help;
        double FleetMetricRange::*value;
    };
    const RangeField fields[] = {
        {"heapmd_fleet_metric_min",
         "Pooled stable-range minimum (percent).",
         &FleetMetricRange::min},
        {"heapmd_fleet_metric_max",
         "Pooled stable-range maximum (percent).",
         &FleetMetricRange::max},
        {"heapmd_fleet_metric_mean",
         "Weighted mean of member means (percent).",
         &FleetMetricRange::mean},
        {"heapmd_fleet_metric_stddev",
         "Weighted stddev of member means (percent).",
         &FleetMetricRange::stddev},
    };
    for (const RangeField &field : fields) {
        appendHeader(out, field.name, "gauge", field.help);
        for (const FleetMetricRange &range : model.metrics) {
            appendF64(out, field.name,
                      "{metric=\"" + escapeLabel(range.metric) +
                          "\"}",
                      range.*(field.value));
        }
    }

    appendHeader(out, "heapmd_fleet_outlier_score", "gauge",
                 "Leave-one-out z-score of each attributed outlier.");
    for (const FleetOutlier &outlier : model.outliers) {
        appendF64(out, "heapmd_fleet_outlier_score",
                  "{path=\"" + escapeLabel(outlier.path) +
                      "\",metric=\"" + escapeLabel(outlier.metric) +
                      "\"}",
                  outlier.score);
    }

    // NOT *_count: _count/_sum/_bucket are reserved histogram and
    // summary suffixes, so a scraper would fold such a sample into
    // a non-existent 'heapmd_fleet_incident' family.
    appendHeader(out, "heapmd_fleet_incident_bundles", "gauge",
                 "Bundles folded into each incident cluster.");
    for (const FleetIncident &incident : model.incidents) {
        appendU64(out, "heapmd_fleet_incident_bundles",
                  "{signature=\"" + escapeLabel(incident.signature) +
                      "\"}",
                  incident.count);
    }

    return out;
}

} // namespace fleet
} // namespace heapmd
