#include "core/heapmd.hh"

#include <chrono>
#include <ctime>

#include "support/thread_pool.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

HeapMD::HeapMD(HeapMDConfig config)
    : config_(config)
{
}

namespace
{

void
captureNames(const Process &process, RunOutcome &outcome)
{
    const FunctionRegistry &registry = process.registry();
    outcome.functionNames.reserve(registry.size());
    for (std::size_t id = 0; id < registry.size(); ++id)
        outcome.functionNames.push_back(
            registry.name(static_cast<FnId>(id)));
}

/** Wall + CPU stopwatch for manifest accounting of one run. */
class RunTimer
{
  public:
    RunTimer()
        : wall_start_(std::chrono::steady_clock::now()),
          cpu_start_(std::clock())
    {
    }

    void
    stopInto(RunOutcome &outcome) const
    {
        const auto wall =
            std::chrono::steady_clock::now() - wall_start_;
        outcome.wallNanos = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(wall)
                .count());
        const std::clock_t cpu = std::clock();
        if (cpu != static_cast<std::clock_t>(-1) &&
            cpu_start_ != static_cast<std::clock_t>(-1)) {
            outcome.cpuNanos = static_cast<std::uint64_t>(
                (cpu - cpu_start_) * (1e9 / CLOCKS_PER_SEC));
        }
    }

  private:
    std::chrono::steady_clock::time_point wall_start_;
    std::clock_t cpu_start_;
};

} // namespace

FunctionRegistry
RunOutcome::registry() const
{
    FunctionRegistry registry;
    for (const std::string &name : functionNames)
        registry.intern(name);
    return registry;
}

RunOutcome
HeapMD::observe(SyntheticApp &app, const AppConfig &config) const
{
    HEAPMD_TRACE_SPAN("pipeline.observe");
    HEAPMD_PHASE_SPAN("phase.observe");
    HEAPMD_COUNTER_INC("pipeline.observe_runs");
    Process process(config_.process);
    RunOutcome outcome;
    const RunTimer timer;
    outcome.app = app.run(process, config);
    timer.stopInto(outcome);
    outcome.series = process.series();
    outcome.series.label = app.name() + " seed " +
                           std::to_string(config.inputSeed) + " v" +
                           std::to_string(config.version);
    outcome.graphStats = process.graph().stats();
    outcome.liveBlocksAtExit = process.graph().vertexCount();
    outcome.finalTick = process.now();
    captureNames(process, outcome);
    return outcome;
}

TrainingOutcome
HeapMD::train(SyntheticApp &app,
              const std::vector<AppConfig> &inputs) const
{
    HEAPMD_TRACE_SPAN("pipeline.train");
    HEAPMD_PHASE_SPAN("phase.train");
    HEAPMD_COUNTER_INC("pipeline.train_runs");
    TrainingOutcome outcome{HeapModel{},
                            MetricSummarizer(config_.summarizer),
                            {}};
    // One independent Process per input across the worker pool; the
    // summarizer then consumes the runs in input order, so the model
    // is bit-identical for any jobs value (1 runs inline).
    std::vector<RunOutcome> runs(inputs.size());
    parallelForIndexed(inputs.size(), config_.jobs,
                       [&](std::size_t i) {
                           runs[i] = observe(app, inputs[i]);
                       });
    for (const RunOutcome &run : runs)
        outcome.summarizer.addRun(run.series);
    outcome.model = outcome.summarizer.buildModel(app.name());
    outcome.suspectTrainingRuns =
        outcome.summarizer.suspectTrainingRuns(outcome.model);
    return outcome;
}

CheckOutcome
HeapMD::check(SyntheticApp &app, const AppConfig &config,
              const HeapModel &model) const
{
    HEAPMD_TRACE_SPAN("pipeline.check");
    HEAPMD_PHASE_SPAN("phase.check");
    HEAPMD_COUNTER_INC("pipeline.check_runs");
    Process process(config_.process);
    ExecutionChecker checker(model, config_.checker);
    checker.attach(process);

    CheckOutcome outcome;
    const RunTimer timer;
    outcome.run.app = app.run(process, config);
    timer.stopInto(outcome.run);
    outcome.run.series = process.series();
    outcome.run.series.label = app.name() + " seed " +
                               std::to_string(config.inputSeed) +
                               " v" + std::to_string(config.version);
    outcome.run.graphStats = process.graph().stats();
    outcome.run.liveBlocksAtExit = process.graph().vertexCount();
    outcome.run.finalTick = process.now();
    captureNames(process, outcome.run);
    outcome.check = checker.finalize(process);
    return outcome;
}

std::vector<CheckOutcome>
HeapMD::checkMany(SyntheticApp &app,
                  const std::vector<AppConfig> &inputs,
                  const HeapModel &model) const
{
    std::vector<CheckOutcome> outcomes(inputs.size());
    parallelForIndexed(inputs.size(), config_.jobs,
                       [&](std::size_t i) {
                           outcomes[i] =
                               check(app, inputs[i], model);
                       });
    return outcomes;
}

std::vector<AppConfig>
makeInputs(std::uint64_t first_seed, std::size_t count,
           std::uint32_t version, double scale)
{
    std::vector<AppConfig> inputs;
    inputs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        AppConfig config;
        config.inputSeed = first_seed + i;
        config.version = version;
        config.scale = scale;
        inputs.push_back(config);
    }
    return inputs;
}

const HeapModel::Entry *
pickExampleMetric(const HeapModel &model)
{
    const HeapModel::Entry *best = nullptr;
    for (const HeapModel::Entry &e : model.entries()) {
        if (best == nullptr || e.stableRuns > best->stableRuns ||
            (e.stableRuns == best->stableRuns &&
             (e.maxValue - e.minValue) <
                 (best->maxValue - best->minValue))) {
            best = &e;
        }
    }
    return best;
}

} // namespace heapmd
