/**
 * @file
 * HeapMD end-to-end pipeline: the public API a tool user drives.
 *
 * Ties the pieces of Figure 2 together: instrumented execution
 * (runtime), the execution logger (Process), the metric summarizer
 * (model), and the execution checker (detector).
 */

#ifndef HEAPMD_CORE_HEAPMD_HH
#define HEAPMD_CORE_HEAPMD_HH

#include <vector>

#include "apps/app.hh"
#include "detector/execution_checker.hh"
#include "model/summarizer.hh"
#include "runtime/process.hh"

namespace heapmd
{

/** Configuration of the whole pipeline (the paper's Settings file). */
struct HeapMDConfig
{
    /** Execution-logger settings (metric frequency frq, etc.). */
    ProcessConfig process;

    /** Model-construction settings (thresholds, 40% rule). */
    SummarizerConfig summarizer;

    /** Execution-checker settings. */
    CheckerConfig checker;

    /**
     * Worker threads for multi-input train/check (0 = one per
     * hardware thread, 1 = sequential).  Runs are independent -- one
     * Process per input -- and results merge in input order, so the
     * model and every derived artifact are bit-identical for any
     * value.
     */
    unsigned jobs = 1;
};

/** Everything produced by one monitored run of a program. */
struct RunOutcome
{
    MetricSeries series;        //!< all metric samples of the run
    AppResult app;              //!< ground truth from the workload
    HeapGraph::Stats graphStats; //!< event counters
    std::uint64_t liveBlocksAtExit = 0; //!< program-side leak count
    /** Function names by FnId, for symbolizing report stacks. */
    std::vector<std::string> functionNames;
    /** Event ticks consumed by the run (Process::now at exit). */
    Tick finalTick = 0;
    /** Wall-clock nanoseconds spent inside the monitored run. */
    std::uint64_t wallNanos = 0;
    /** CPU nanoseconds (std::clock) spent inside the monitored run. */
    std::uint64_t cpuNanos = 0;

    /** Rebuild a registry for BugReport::describe(). */
    FunctionRegistry registry() const;
};

/** Model plus the evidence it was built from. */
struct TrainingOutcome
{
    HeapModel model;
    MetricSummarizer summarizer; //!< retains per-run analyses (Fig 7)
    std::vector<std::size_t> suspectTrainingRuns;
};

/** Result of checking one run against a model. */
struct CheckOutcome
{
    CheckResult check;
    RunOutcome run;
};

/**
 * Facade over the two-phase design of Section 2.
 */
class HeapMD
{
  public:
    explicit HeapMD(HeapMDConfig config = {});

    /** Run @p app on one input, collecting metrics (no checking). */
    RunOutcome observe(SyntheticApp &app, const AppConfig &config) const;

    /**
     * Model-construction phase: run @p app on every training input
     * and summarize (Section 2.1).
     */
    TrainingOutcome train(SyntheticApp &app,
                          const std::vector<AppConfig> &inputs) const;

    /**
     * Execution-checking phase: run @p app on one input under the
     * anomaly detector (Section 2.2).
     */
    CheckOutcome check(SyntheticApp &app, const AppConfig &config,
                       const HeapModel &model) const;

    /**
     * Check a batch of inputs against one model, one Process +
     * checker per input, across config().jobs workers.  Results come
     * back in input order regardless of the worker count.
     */
    std::vector<CheckOutcome>
    checkMany(SyntheticApp &app, const std::vector<AppConfig> &inputs,
              const HeapModel &model) const;

    const HeapMDConfig &config() const { return config_; }

  private:
    HeapMDConfig config_;
};

/**
 * Convenience: training inputs with seeds first_seed .. first_seed +
 * count - 1, all at the given version and scale.
 */
std::vector<AppConfig> makeInputs(std::uint64_t first_seed,
                                  std::size_t count,
                                  std::uint32_t version = 1,
                                  double scale = 1.0);

/**
 * The "example stable metric" of Figure 7: the model entry stable on
 * the most training inputs (ties: narrowest calibrated range).
 * @return nullptr when the model is empty.
 */
const HeapModel::Entry *pickExampleMetric(const HeapModel &model);

} // namespace heapmd

#endif // HEAPMD_CORE_HEAPMD_HH
