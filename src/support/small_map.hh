/**
 * @file
 * Small-size-optimized unordered map for the replay hot path.
 *
 * SmallMap<K, V, N> stores up to N entries inline in a flat array
 * (linear scan; no heap allocation, no hashing) and spills to a
 * std::unordered_map beyond that.  The heap-graph's per-object maps
 * use it because typical vertex degree is 0-2 (the paper's own degree
 * metrics), so almost every object never allocates for its edges.
 *
 * Semantics match the std::unordered_map subset the heap-graph uses:
 * unique keys, unspecified iteration order, iterators stable only
 * until the next mutation.  Once spilled, a map stays spilled (free()
 * destroys the record soon anyway).  K and V must be cheap,
 * default-constructible value types (the graph stores ids and
 * counts).
 */

#ifndef HEAPMD_SUPPORT_SMALL_MAP_HH
#define HEAPMD_SUPPORT_SMALL_MAP_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <utility>

namespace heapmd
{

template <typename K, typename V, std::size_t N = 8>
class SmallMap
{
  public:
    using Spill = std::unordered_map<K, V>;

    /** Pair-of-references view an iterator dereferences to. */
    template <bool Const>
    struct Ref
    {
        const K &first;
        std::conditional_t<Const, const V, V> &second;
    };

    /** Proxy so `it->first` / `it->second` work on a prvalue Ref. */
    template <bool Const>
    struct Arrow
    {
        Ref<Const> ref;
        Ref<Const> *operator->() { return &ref; }
    };

    template <bool Const>
    class Iter
    {
        using Owner =
            std::conditional_t<Const, const SmallMap, SmallMap>;
        using SpillIter =
            std::conditional_t<Const, typename Spill::const_iterator,
                               typename Spill::iterator>;

      public:
        Iter() = default;

        Ref<Const>
        operator*() const
        {
            if (owner_->spill_ == nullptr) {
                auto &e = owner_->inline_[index_];
                return {e.first, e.second};
            }
            return {spill_it_->first, spill_it_->second};
        }

        Arrow<Const> operator->() const { return {**this}; }

        Iter &
        operator++()
        {
            if (owner_->spill_ == nullptr)
                ++index_;
            else
                ++spill_it_;
            return *this;
        }

        bool
        operator==(const Iter &other) const
        {
            if (owner_->spill_ == nullptr)
                return index_ == other.index_;
            return spill_it_ == other.spill_it_;
        }

        bool operator!=(const Iter &other) const
        {
            return !(*this == other);
        }

      private:
        friend class SmallMap;

        Iter(Owner *owner, std::size_t index)
            : owner_(owner), index_(index)
        {
        }

        Iter(Owner *owner, SpillIter it)
            : owner_(owner), spill_it_(it)
        {
        }

        Owner *owner_ = nullptr;
        std::size_t index_ = 0;
        SpillIter spill_it_{};
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    SmallMap() = default;

    SmallMap(const SmallMap &other) { copyFrom(other); }

    SmallMap &
    operator=(const SmallMap &other)
    {
        if (this != &other)
            copyFrom(other);
        return *this;
    }

    SmallMap(SmallMap &&) noexcept = default;
    SmallMap &operator=(SmallMap &&) noexcept = default;

    bool
    empty() const
    {
        return spill_ == nullptr ? inline_size_ == 0
                                 : spill_->empty();
    }

    std::size_t
    size() const
    {
        return spill_ == nullptr ? inline_size_ : spill_->size();
    }

    std::size_t count(const K &key) const
    {
        return find(key) == end() ? 0 : 1;
    }

    iterator
    find(const K &key)
    {
        if (spill_ == nullptr) {
            for (std::size_t i = 0; i < inline_size_; ++i) {
                if (inline_[i].first == key)
                    return iterator(this, i);
            }
            return end();
        }
        return iterator(this, spill_->find(key));
    }

    const_iterator
    find(const K &key) const
    {
        if (spill_ == nullptr) {
            for (std::size_t i = 0; i < inline_size_; ++i) {
                if (inline_[i].first == key)
                    return const_iterator(this, i);
            }
            return end();
        }
        return const_iterator(this, spill_->find(key));
    }

    iterator begin() { return iterBegin<false>(this); }
    iterator end() { return iterEnd<false>(this); }
    const_iterator begin() const { return iterBegin<true>(this); }
    const_iterator end() const { return iterEnd<true>(this); }

    /** Insert unless the key is present; true when inserted. */
    bool
    emplace(const K &key, const V &value)
    {
        if (find(key) != end())
            return false;
        if (spill_ == nullptr) {
            if (inline_size_ < N) {
                inline_[inline_size_++] = {key, value};
                return true;
            }
            spillOver();
        }
        spill_->emplace(key, value);
        return true;
    }

    V &
    operator[](const K &key)
    {
        iterator it = find(key);
        if (it == end()) {
            emplace(key, V{});
            it = find(key);
        }
        return it->second;
    }

    void
    erase(iterator it)
    {
        if (spill_ == nullptr) {
            // Unordered semantics: swap-with-last keeps erase O(1).
            inline_[it.index_] = inline_[--inline_size_];
            return;
        }
        spill_->erase(it.spill_it_);
    }

    std::size_t
    erase(const K &key)
    {
        iterator it = find(key);
        if (it == end())
            return 0;
        erase(it);
        return 1;
    }

    /** Content equality against a std::unordered_map oracle. */
    bool
    equals(const Spill &other) const
    {
        if (size() != other.size())
            return false;
        for (const auto &[key, value] : other) {
            const const_iterator it = find(key);
            if (it == end() || it->second != value)
                return false;
        }
        return true;
    }

  private:
    template <bool Const, typename Self>
    static Iter<Const>
    iterBegin(Self *self)
    {
        if (self->spill_ == nullptr)
            return Iter<Const>(self, std::size_t{0});
        return Iter<Const>(self, self->spill_->begin());
    }

    template <bool Const, typename Self>
    static Iter<Const>
    iterEnd(Self *self)
    {
        if (self->spill_ == nullptr)
            return Iter<Const>(self, self->inline_size_);
        return Iter<Const>(self, self->spill_->end());
    }

    void
    spillOver()
    {
        spill_ = std::make_unique<Spill>();
        spill_->reserve(N * 2);
        for (std::size_t i = 0; i < inline_size_; ++i)
            spill_->emplace(inline_[i].first, inline_[i].second);
        inline_size_ = 0;
    }

    void
    copyFrom(const SmallMap &other)
    {
        inline_ = other.inline_;
        inline_size_ = other.inline_size_;
        spill_ = other.spill_ == nullptr
                     ? nullptr
                     : std::make_unique<Spill>(*other.spill_);
    }

    std::array<std::pair<K, V>, N> inline_{};
    std::uint32_t inline_size_ = 0;
    std::unique_ptr<Spill> spill_;
};

/** unordered_map oracle comparisons (checkConsistency). */
template <typename K, typename V, std::size_t N>
bool
operator==(const std::unordered_map<K, V> &oracle,
           const SmallMap<K, V, N> &map)
{
    return map.equals(oracle);
}

template <typename K, typename V, std::size_t N>
bool
operator!=(const std::unordered_map<K, V> &oracle,
           const SmallMap<K, V, N> &map)
{
    return !map.equals(oracle);
}

} // namespace heapmd

#endif // HEAPMD_SUPPORT_SMALL_MAP_HH
