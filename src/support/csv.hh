/**
 * @file
 * Minimal CSV emitter.
 *
 * The paper's GUI plotted metric series live; our substitution writes
 * the same series as CSV so any offline plotter can render the figures
 * (see DESIGN.md, substitutions table).
 */

#ifndef HEAPMD_SUPPORT_CSV_HH
#define HEAPMD_SUPPORT_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace heapmd
{

/** Streaming CSV writer with RFC-4180 style quoting. */
class CsvWriter
{
  public:
    /** Write rows to @p os; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Emit one row of already-stringified cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Emit a row of doubles with @p digits fractional digits. */
    void writeNumericRow(const std::vector<double> &cells,
                         int digits = 4);

  private:
    static std::string escape(const std::string &cell);

    std::ostream &os_;
};

} // namespace heapmd

#endif // HEAPMD_SUPPORT_CSV_HH
