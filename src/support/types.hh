/**
 * @file
 * Fundamental scalar types shared across HeapMD.
 */

#ifndef HEAPMD_SUPPORT_TYPES_HH
#define HEAPMD_SUPPORT_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace heapmd
{

/** A (synthetic) virtual address in the monitored program's heap. */
using Addr = std::uint64_t;

/** Identifier of a heap object (vertex of the heap-graph). */
using ObjectId = std::uint64_t;

/** Identifier of a function in the monitored program. */
using FnId = std::uint32_t;

/** Monotonic event counter (one tick per runtime event). */
using Tick = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr Addr kNullAddr = 0;

/** Sentinel for "no object". */
inline constexpr ObjectId kNoObject = ~std::uint64_t{0};

/** Sentinel for "no function". */
inline constexpr FnId kNoFunction = ~std::uint32_t{0};

} // namespace heapmd

#endif // HEAPMD_SUPPORT_TYPES_HH
