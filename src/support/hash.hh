/**
 * @file
 * Content hashing for artifact fingerprints.
 *
 * Run manifests record the inputs a run consumed (model, trace) as
 * `fnv1a:<16 hex digits>` fingerprints so two runs can be compared
 * without re-reading the artifacts.  FNV-1a is not cryptographic; it
 * is a cheap, dependency-free change detector, which is all the
 * manifest needs.
 */

#ifndef HEAPMD_SUPPORT_HASH_HH
#define HEAPMD_SUPPORT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace heapmd
{

/** 64-bit FNV-1a over a byte range. */
std::uint64_t fnv1a64(const void *data, std::size_t size);

/** 64-bit FNV-1a over a string. */
std::uint64_t fnv1a64(std::string_view text);

/** Render a 64-bit hash as the manifest fingerprint "fnv1a:<hex16>". */
std::string hashFingerprint(std::uint64_t hash);

/**
 * Fingerprint of a file's contents, or nullopt when the file cannot
 * be read.
 */
std::optional<std::string> fileFingerprint(const std::string &path);

/** True when @p text looks like a well-formed fingerprint. */
bool isHashFingerprint(std::string_view text);

} // namespace heapmd

#endif // HEAPMD_SUPPORT_HASH_HH
