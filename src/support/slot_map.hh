/**
 * @file
 * Generation-tagged slot allocator: the id scheme of the heap-graph's
 * slot-map object store (DESIGN.md §16).
 *
 * A SlotAllocator hands out dense 32-bit slot indices backed by a
 * LIFO free list, and tags every slot with a 32-bit generation that
 * is bumped each time the slot is released.  The externally visible
 * 64-bit id of a slot is
 *
 *      id = generation << 32 | slot
 *
 * so a recycled slot produces a strictly larger id than any of its
 * previous lives, stale ids can be rejected in O(1) by a generation
 * compare (no freed-object map needed), and two live objects can
 * never share an id.  Value storage lives elsewhere (the heap-graph
 * keeps hot and cold ChunkedVector arenas indexed by slot); this
 * class owns only the index/liveness/generation bookkeeping.
 */

#ifndef HEAPMD_SUPPORT_SLOT_MAP_HH
#define HEAPMD_SUPPORT_SLOT_MAP_HH

#include <cstdint>
#include <vector>

#include "support/chunked_vector.hh"
#include "support/logging.hh"
#include "support/prefetch.hh"

namespace heapmd
{

class SlotAllocator
{
  public:
    /** Sentinel slot index (never allocated). */
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

    /** Slot index encoded in @p id. */
    static constexpr std::uint32_t
    slotOf(std::uint64_t id)
    {
        return static_cast<std::uint32_t>(id);
    }

    /** Generation encoded in @p id. */
    static constexpr std::uint32_t
    genOf(std::uint64_t id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    /**
     * Acquire a slot: recycles the most recently released index, or
     * extends the slot space.  Fresh slots start at generation 1, so
     * every valid id is >= 2^32 and 0 is never a live id.
     */
    std::uint32_t
    acquire()
    {
        std::uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            slot = static_cast<std::uint32_t>(meta_.push());
            meta_[slot] = kLiveBit | (1u << 1); // generation 1, live
            ++live_;
            return slot;
        }
        meta_[slot] |= kLiveBit;
        ++live_;
        return slot;
    }

    /**
     * Release a live slot: bumps its generation (invalidating every
     * id that referenced this life) and recycles the index.
     */
    void
    release(std::uint32_t slot)
    {
        std::uint32_t &m = meta_[slot];
        if ((m & kLiveBit) == 0)
            HEAPMD_PANIC("releasing dead slot ", slot);
        m = (m & ~kLiveBit) + (1u << 1); // clear live, bump gen
        free_.push_back(slot);
        --live_;
    }

    /** True when @p slot currently holds a live object. */
    bool
    live(std::uint32_t slot) const
    {
        return slot < meta_.size() && (meta_[slot] & kLiveBit) != 0;
    }

    /** Current generation of @p slot (live or not). */
    std::uint32_t
    generation(std::uint32_t slot) const
    {
        return meta_[slot] >> 1;
    }

    /** Full id of a live slot. */
    std::uint64_t
    idOf(std::uint32_t slot) const
    {
        return (std::uint64_t{meta_[slot] >> 1} << 32) | slot;
    }

    /**
     * Resolve an id to its slot, or kNoSlot when the id is stale
     * (slot since released or recycled) or never existed.
     */
    std::uint32_t
    resolve(std::uint64_t id) const
    {
        const std::uint32_t slot = slotOf(id);
        if (slot >= meta_.size())
            return kNoSlot;
        const std::uint32_t m = meta_[slot];
        if ((m & kLiveBit) == 0 || (m >> 1) != genOf(id))
            return kNoSlot;
        return slot;
    }

    /** Hint that @p slot's meta word will be read shortly.  The meta
     *  arena is several MB at graph scale, so a resolve() on a cold
     *  slot is a cache miss of its own; callers about to resolve a
     *  batch of ids can overlap those fetches. */
    void
    prefetchMeta(std::uint32_t slot) const
    {
        if (slot < meta_.size())
            prefetchRead(&meta_[slot]);
    }

    /** Slots ever created (live + free-listed). */
    std::size_t size() const { return meta_.size(); }

    /** Currently live slots. */
    std::size_t liveCount() const { return live_; }

    /** Free-listed slot count (for consistency checks). */
    std::size_t freeCount() const { return free_.size(); }

    /**
     * Release every live slot, keeping generations: ids issued after
     * a clear never collide with ids issued before it.
     */
    void
    clear()
    {
        for (std::size_t slot = 0; slot < meta_.size(); ++slot) {
            if ((meta_[slot] & kLiveBit) != 0)
                release(static_cast<std::uint32_t>(slot));
        }
    }

  private:
    /** meta layout: bit 0 = live, bits 1.. = generation. */
    static constexpr std::uint32_t kLiveBit = 1u;

    ChunkedVector<std::uint32_t> meta_;
    std::vector<std::uint32_t> free_;
    std::size_t live_ = 0;
};

} // namespace heapmd

#endif // HEAPMD_SUPPORT_SLOT_MAP_HH
