/**
 * @file
 * Fixed-size worker pool and the deterministic parallel-for used by
 * the replay pipeline.
 *
 * Design (see DESIGN.md §11):
 *  - a ThreadPool owns N worker threads and a FIFO task queue; tasks
 *    are type-erased thunks and may run in any order across workers;
 *  - parallelForIndexed(count, jobs, fn) is the only primitive the
 *    pipeline builds on: every index gets its own result slot, so
 *    callers merge results *in input order* afterwards and the output
 *    is bit-identical regardless of the worker count;
 *  - jobs == 1 never touches a thread: the inline fast path runs the
 *    body sequentially on the calling thread, so single-job behavior
 *    is byte-identical to the pre-pool pipeline;
 *  - the first exception a body throws (ties broken by smallest
 *    index) is captured, remaining indices are abandoned, and the
 *    exception is rethrown on the calling thread after the join.
 */

#ifndef HEAPMD_SUPPORT_THREAD_POOL_HH
#define HEAPMD_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace heapmd
{

/**
 * Resolve a --jobs value: 0 means "one per hardware thread" (never
 * less than 1); anything else passes through.
 */
unsigned effectiveJobs(unsigned jobs);

/**
 * A fixed-size pool of worker threads draining a FIFO task queue.
 *
 * The destructor waits for every queued task to finish, then joins
 * the workers.  post() is thread-safe; wait() blocks the caller until
 * the queue is empty and every worker is idle.
 */
class ThreadPool
{
  public:
    /** @param workers worker-thread count; 0 means hardware size. */
    explicit ThreadPool(unsigned workers);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; it may start on any worker immediately. */
    void post(std::function<void()> task);

    /** Block until the queue is drained and all workers are idle. */
    void wait();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable all_idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    std::size_t busy_ = 0;
    bool stopping_ = false;
};

namespace detail
{

/** First-by-index exception capture shared by a parallel-for. */
struct ParallelError
{
    std::mutex mutex;
    std::exception_ptr exception;
    std::size_t index = 0;

    void
    capture(std::size_t at)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (exception == nullptr || at < index) {
            exception = std::current_exception();
            index = at;
        }
    }
};

} // namespace detail

/**
 * Run fn(0) .. fn(count - 1), each exactly once, across at most
 * @p jobs workers (0 = hardware concurrency, 1 = inline on the
 * calling thread).  Bodies for different indices may run
 * concurrently; the call returns only after every body finished or
 * was abandoned because another body threw.  The first exception (by
 * smallest index among those that threw) is rethrown here.
 */
template <typename Fn>
void
parallelForIndexed(std::size_t count, unsigned jobs, Fn &&fn)
{
    jobs = effectiveJobs(jobs);
    if (count == 0)
        return;
    if (jobs <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    if (static_cast<std::size_t>(jobs) > count)
        jobs = static_cast<unsigned>(count);

    std::atomic<std::size_t> next{0};
    detail::ParallelError error;
    const auto runner = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                error.capture(i);
                // Abandon the remaining indices: in-flight bodies
                // finish, unclaimed ones never start.
                next.store(count, std::memory_order_relaxed);
                return;
            }
        }
    };

    ThreadPool pool(jobs);
    for (unsigned w = 0; w < jobs; ++w)
        pool.post(runner);
    pool.wait();

    if (error.exception != nullptr)
        std::rethrow_exception(error.exception);
}

} // namespace heapmd

#endif // HEAPMD_SUPPORT_THREAD_POOL_HH
