#include "support/thread_pool.hh"

namespace heapmd
{

unsigned
effectiveJobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned workers)
{
    workers = effectiveJobs(workers);
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock,
                   [this] { return queue_.empty() && busy_ == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_ready_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty())
            return; // stopping_, and nothing left to drain
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++busy_;
        lock.unlock();
        task();
        lock.lock();
        --busy_;
        if (queue_.empty() && busy_ == 0)
            all_idle_.notify_all();
    }
}

} // namespace heapmd
