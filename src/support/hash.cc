#include "support/hash.hh"

#include <cstdio>
#include <fstream>
#include <vector>

namespace heapmd
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = kFnvOffset;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t
fnv1a64(std::string_view text)
{
    return fnv1a64(text.data(), text.size());
}

std::string
hashFingerprint(std::uint64_t hash)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "fnv1a:%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::optional<std::string>
fileFingerprint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::uint64_t hash = kFnvOffset;
    std::vector<char> buf(1 << 16);
    while (in) {
        in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
        const std::streamsize got = in.gcount();
        for (std::streamsize i = 0; i < got; ++i) {
            hash ^= static_cast<unsigned char>(buf[i]);
            hash *= kFnvPrime;
        }
    }
    return hashFingerprint(hash);
}

bool
isHashFingerprint(std::string_view text)
{
    constexpr std::string_view prefix = "fnv1a:";
    if (text.size() != prefix.size() + 16 ||
        text.substr(0, prefix.size()) != prefix) {
        return false;
    }
    for (char c : text.substr(prefix.size())) {
        const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex)
            return false;
    }
    return true;
}

} // namespace heapmd
