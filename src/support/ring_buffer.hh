/**
 * @file
 * Fixed-capacity circular buffer.
 *
 * Used by the anomaly detector's call-stack logger (Section 2.2 of the
 * paper): stacks are logged into a circular buffer while a stable
 * metric approaches its calibrated extreme, so the bug report can show
 * context before, during, and after the crossing.
 */

#ifndef HEAPMD_SUPPORT_RING_BUFFER_HH
#define HEAPMD_SUPPORT_RING_BUFFER_HH

#include <cstddef>
#include <vector>

#include "support/logging.hh"

namespace heapmd
{

/**
 * Bounded FIFO that overwrites its oldest element when full.
 *
 * @tparam T element type; must be copy- or move-assignable.
 */
template <typename T>
class RingBuffer
{
  public:
    /** Create a buffer holding at most @p capacity elements. */
    explicit RingBuffer(std::size_t capacity)
        : slots_(capacity)
    {
        if (capacity == 0)
            HEAPMD_PANIC("RingBuffer capacity must be positive");
    }

    /** Append, evicting the oldest element when at capacity. */
    void
    push(T value)
    {
        slots_[head_] = std::move(value);
        head_ = (head_ + 1) % slots_.size();
        if (size_ < slots_.size())
            ++size_;
    }

    /** Number of live elements. */
    std::size_t size() const { return size_; }

    /** Maximum number of elements. */
    std::size_t capacity() const { return slots_.size(); }

    bool empty() const { return size_ == 0; }

    /** Element @p i, 0 = oldest surviving element. */
    const T &
    at(std::size_t i) const
    {
        if (i >= size_)
            HEAPMD_PANIC("RingBuffer index ", i, " out of range ", size_);
        const std::size_t start =
            (head_ + slots_.size() - size_) % slots_.size();
        return slots_[(start + i) % slots_.size()];
    }

    /** Copy out the live elements, oldest first. */
    std::vector<T>
    snapshot() const
    {
        std::vector<T> out;
        out.reserve(size_);
        for (std::size_t i = 0; i < size_; ++i)
            out.push_back(at(i));
        return out;
    }

    /** Drop all elements (capacity is retained). */
    void
    clear()
    {
        size_ = 0;
        head_ = 0;
    }

  private:
    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace heapmd

#endif // HEAPMD_SUPPORT_RING_BUFFER_HH
