/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  -- an internal invariant of HeapMD itself broke; aborts.
 * fatal()  -- the user asked for something impossible; exits cleanly.
 * warn()   -- something looks off but execution can continue.
 * inform() -- neutral progress information.
 */

#ifndef HEAPMD_SUPPORT_LOGGING_HH
#define HEAPMD_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace heapmd
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel
{
    Quiet,  //!< only panic/fatal
    Warn,   //!< + warn
    Info,   //!< + inform (default)
    Debug,  //!< + debug chatter
};

/** Set the global log verbosity. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Abort with a message: HeapMD's own logic is broken. */
#define HEAPMD_PANIC(...) \
    ::heapmd::detail::panicImpl(__FILE__, __LINE__, \
                                ::heapmd::detail::concat(__VA_ARGS__))

/** Exit with a message: the user configuration is unusable. */
#define HEAPMD_FATAL(...) \
    ::heapmd::detail::fatalImpl(__FILE__, __LINE__, \
                                ::heapmd::detail::concat(__VA_ARGS__))

/** Emit a warning (suppressible via setLogLevel). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit a neutral informational message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit debug chatter (only at LogLevel::Debug). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace heapmd

#endif // HEAPMD_SUPPORT_LOGGING_HH
