/**
 * @file
 * Software prefetch hint for pointer-chasing hot paths.
 *
 * The heap-graph event fold touches 2-3 records scattered across a
 * multi-hundred-MB arena per event; issuing the loads early lets the
 * DRAM fetches overlap instead of serializing behind each dependent
 * branch (the page-index lookup only tells us *which* record, the
 * record itself still has to travel).  No-op where the builtin is
 * unavailable.
 */

#ifndef HEAPMD_SUPPORT_PREFETCH_HH
#define HEAPMD_SUPPORT_PREFETCH_HH

namespace heapmd
{

inline void
prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
#endif
}

} // namespace heapmd

#endif // HEAPMD_SUPPORT_PREFETCH_HH
