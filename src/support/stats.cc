#include "support/stats.hh"

#include <algorithm>
#include <cmath>

namespace heapmd
{

void
RunningStats::push(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats{};
}

void
MinMax::push(double x)
{
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

bool
MinMax::contains(double x) const
{
    return !empty() && x >= min_ && x <= max_;
}

void
MinMax::merge(const MinMax &other)
{
    if (other.empty())
        return;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
meanOf(const std::vector<double> &xs)
{
    RunningStats rs;
    for (double x : xs)
        rs.push(x);
    return rs.mean();
}

double
stddevOf(const std::vector<double> &xs)
{
    RunningStats rs;
    for (double x : xs)
        rs.push(x);
    return rs.stddev();
}

} // namespace heapmd
