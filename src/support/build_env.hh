/**
 * @file
 * Build/host environment identity for result artifacts.
 *
 * Run manifests and benchmark JSON embed these so numbers are never
 * compared across incomparable environments: a TSan binary is ~5-15x
 * slower than a plain one, and throughput scales with the host's
 * core count.  `heapmd trend` checks both fields (trend.env-*).
 */

#ifndef HEAPMD_SUPPORT_BUILD_ENV_HH
#define HEAPMD_SUPPORT_BUILD_ENV_HH

#include <cstdint>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#ifndef HEAPMD_SANITIZE_MODE
#define HEAPMD_SANITIZE_MODE "none"
#endif

namespace heapmd
{
namespace support
{

/** "none", or the -fsanitize list this binary was built with. */
inline constexpr const char *kSanitizeMode = HEAPMD_SANITIZE_MODE;

/** Host logical core count (0 when the runtime cannot tell). */
inline std::uint64_t
hardwareConcurrency()
{
    return std::thread::hardware_concurrency();
}

/**
 * Peak resident-set size of this process in bytes (getrusage
 * ru_maxrss; 0 where unavailable).  Stamped into run-manifest env
 * blocks so `heapmd trend` can flag memory regressions
 * (trend.env-rss) without a dedicated bench.
 */
inline std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes already.
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    // Linux/BSD report kilobytes.
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
    return 0;
#endif
}

} // namespace support
} // namespace heapmd

#endif // HEAPMD_SUPPORT_BUILD_ENV_HH
