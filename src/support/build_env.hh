/**
 * @file
 * Build/host environment identity for result artifacts.
 *
 * Run manifests and benchmark JSON embed these so numbers are never
 * compared across incomparable environments: a TSan binary is ~5-15x
 * slower than a plain one, and throughput scales with the host's
 * core count.  `heapmd trend` checks both fields (trend.env-*).
 */

#ifndef HEAPMD_SUPPORT_BUILD_ENV_HH
#define HEAPMD_SUPPORT_BUILD_ENV_HH

#include <cstdint>
#include <thread>

#ifndef HEAPMD_SANITIZE_MODE
#define HEAPMD_SANITIZE_MODE "none"
#endif

namespace heapmd
{
namespace support
{

/** "none", or the -fsanitize list this binary was built with. */
inline constexpr const char *kSanitizeMode = HEAPMD_SANITIZE_MODE;

/** Host logical core count (0 when the runtime cannot tell). */
inline std::uint64_t
hardwareConcurrency()
{
    return std::thread::hardware_concurrency();
}

} // namespace support
} // namespace heapmd

#endif // HEAPMD_SUPPORT_BUILD_ENV_HH
