#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace heapmd
{

namespace
{

// Atomic so worker threads may consult/adjust the level while other
// threads log; relaxed ordering suffices because the level is an
// independent filter, not a synchronization point.
std::atomic<LogLevel> g_level{LogLevel::Info};

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail
{

// Each line below is emitted with one fprintf call so concurrent
// loggers cannot interleave fragments of a line (stdio locks the
// stream per call).

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace heapmd
