/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload reproducibility matters more than statistical perfection
 * here: every synthetic application derives all of its behaviour from
 * an input seed, so runs are bit-identical across machines.  We use
 * xoshiro256** seeded through SplitMix64, both public domain.
 */

#ifndef HEAPMD_SUPPORT_RANDOM_HH
#define HEAPMD_SUPPORT_RANDOM_HH

#include <cstdint>
#include <vector>

namespace heapmd
{

/** SplitMix64 stepper, used for seeding and cheap hashing. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** PRNG with convenience distributions.
 *
 * Satisfies the essentials of UniformRandomBitGenerator, plus small
 * helpers used throughout the synthetic workloads.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t between(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /** Approximately normal variate (sum of uniforms, Irwin-Hall). */
    double gaussian(double mean, double stddev);

    /** Pick an index according to a vector of non-negative weights. */
    std::size_t weightedPick(const std::vector<double> &weights);

    /** Derive an independent child generator (for sub-streams). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace heapmd

#endif // HEAPMD_SUPPORT_RANDOM_HH
