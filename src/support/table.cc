#include "support/table.hh"

#include <algorithm>
#include <cstdio>

#include "support/logging.hh"

namespace heapmd
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        HEAPMD_PANIC("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        HEAPMD_PANIC("TextTable row width ", row.size(),
                     " != header width ", header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmtDouble(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
fmtPercent(double value, int digits)
{
    return fmtDouble(value, digits) + "%";
}

} // namespace heapmd
