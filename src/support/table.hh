/**
 * @file
 * ASCII table printer used by the bench binaries to emit the paper's
 * tables/figure legends in a readable, diffable format.
 */

#ifndef HEAPMD_SUPPORT_TABLE_HH
#define HEAPMD_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace heapmd
{

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"Benchmark", "# Inputs", "# Stable"});
 *   t.addRow({"vpr", "6", "1"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /** Create a table with the given header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render with column alignment and a rule under the header. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fractional digits. */
std::string fmtDouble(double value, int digits = 2);

/** Format a double as a percentage string, e.g. "12.3%". */
std::string fmtPercent(double value, int digits = 1);

} // namespace heapmd

#endif // HEAPMD_SUPPORT_TABLE_HH
