#include "support/csv.hh"

#include <cstdio>

namespace heapmd
{

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &cells, int digits)
{
    char buf[64];
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        std::snprintf(buf, sizeof(buf), "%.*f", digits, cells[i]);
        os_ << buf;
    }
    os_ << '\n';
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace heapmd
