/**
 * @file
 * Chunked growable arena with stable element addresses.
 *
 * ChunkedVector<T> is the storage arena under the heap-graph's
 * slot-map object store (DESIGN.md §16): elements live in fixed-size
 * chunks of 2^ChunkPow slots, so
 *
 *  - operator[] is O(1): one shift + one mask + two dependent loads;
 *  - growing never moves existing elements (no realloc copy of a
 *    10M-record arena, and pointers held across push() stay valid);
 *  - memory is returned chunk-wise on clear(), never element-wise.
 *
 * Chunks whose footprint reaches 1 MiB are backed by 2 MiB pages
 * when the system allows it: a 10M-record arena is hundreds of MB of
 * uniformly random accesses, and hugepages remove the TLB miss (and
 * its page-walk) that otherwise rides along with nearly every record
 * touch -- an advantage only arena storage can claim, since per-node
 * heap allocations cannot be hugepage-backed.  Each large chunk
 * first tries an explicit MAP_HUGETLB mapping (works when the admin
 * reserved vm.nr_hugepages, including on hosts whose transparent
 * hugepages are disabled); on failure it falls back per-chunk to a
 * 2 MiB-aligned allocation advised MADV_HUGEPAGE, and on non-Linux
 * to the plain allocator.  Small chunks (the slot-map's u32 meta
 * words) always stay on the normal allocator.
 *
 * It is deliberately NOT a std::vector replacement: no erase, no
 * insert, no iterators -- the slot-map above it recycles indices via
 * its free list instead of compacting.
 */

#ifndef HEAPMD_SUPPORT_CHUNKED_VECTOR_HH
#define HEAPMD_SUPPORT_CHUNKED_VECTOR_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace heapmd
{

template <typename T, std::size_t ChunkPow = 12>
class ChunkedVector
{
  public:
    /** Elements per chunk. */
    static constexpr std::size_t kChunkSize = std::size_t{1}
                                              << ChunkPow;
    static constexpr std::size_t kChunkMask = kChunkSize - 1;

    ChunkedVector() = default;
    ChunkedVector(const ChunkedVector &) = delete;
    ChunkedVector &operator=(const ChunkedVector &) = delete;

    ChunkedVector(ChunkedVector &&other) noexcept
        : chunks_(std::move(other.chunks_)),
          chunk_huge_(std::move(other.chunk_huge_)), size_(other.size_)
    {
        other.chunks_.clear();
        other.chunk_huge_.clear();
        other.size_ = 0;
    }

    ChunkedVector &
    operator=(ChunkedVector &&other) noexcept
    {
        if (this != &other) {
            clear();
            chunks_ = std::move(other.chunks_);
            chunk_huge_ = std::move(other.chunk_huge_);
            size_ = other.size_;
            other.chunks_.clear();
            other.chunk_huge_.clear();
            other.size_ = 0;
        }
        return *this;
    }

    ~ChunkedVector() { clear(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &
    operator[](std::size_t index)
    {
        return chunks_[index >> ChunkPow][index & kChunkMask];
    }

    const T &
    operator[](std::size_t index) const
    {
        return chunks_[index >> ChunkPow][index & kChunkMask];
    }

    /** Append a default-constructed element; returns its index. */
    std::size_t
    push()
    {
        if ((size_ & kChunkMask) == 0 &&
            size_ >> ChunkPow == chunks_.size()) {
            bool huge = false;
            chunks_.push_back(allocChunk(huge));
            chunk_huge_.push_back(huge);
        }
        return size_++;
    }

    /** Append a copy/move of @p value; returns its index. */
    std::size_t
    push(T value)
    {
        const std::size_t index = push();
        (*this)[index] = std::move(value);
        return index;
    }

    /** Drop every element and release all chunks. */
    void
    clear()
    {
        for (std::size_t i = 0; i < chunks_.size(); ++i)
            freeChunk(chunks_[i], chunk_huge_[i] != 0);
        chunks_.clear();
        chunk_huge_.clear();
        size_ = 0;
    }

  private:
    static constexpr std::size_t kHugePage = std::size_t{2} << 20;
    static constexpr std::size_t kRawBytes = sizeof(T) * kChunkSize;
    /** Large chunks are worth a 2 MiB-aligned, hugepage-advised
     *  mapping; tiny ones are not worth the alignment slack. */
    static constexpr bool kUseHugePages =
        kRawBytes >= (std::size_t{1} << 20);
    static constexpr std::size_t kChunkBytes =
        kUseHugePages
            ? (kRawBytes + kHugePage - 1) / kHugePage * kHugePage
            : kRawBytes;
    static constexpr std::align_val_t kChunkAlign{
        kUseHugePages ? kHugePage : alignof(T)};

    static T *
    allocChunk(bool &huge)
    {
        void *raw = nullptr;
        huge = false;
#if defined(__linux__)
        if (kUseHugePages) {
            raw = ::mmap(nullptr, kChunkBytes, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1,
                         0);
            if (raw == MAP_FAILED)
                raw = nullptr;
            else
                huge = true;
        }
#endif
        if (raw == nullptr) {
            raw = ::operator new(kChunkBytes, kChunkAlign);
#if defined(__linux__)
            if (kUseHugePages)
                ::madvise(raw, kChunkBytes, MADV_HUGEPAGE);
#endif
        }
        T *data = static_cast<T *>(raw);
        std::uninitialized_value_construct_n(data, kChunkSize);
        return data;
    }

    static void
    freeChunk(T *chunk, bool huge)
    {
        std::destroy_n(chunk, kChunkSize);
#if defined(__linux__)
        if (huge) {
            ::munmap(static_cast<void *>(chunk), kChunkBytes);
            return;
        }
#else
        (void)huge;
#endif
        ::operator delete(static_cast<void *>(chunk), kChunkAlign);
    }

    std::vector<T *> chunks_;
    /** 1 where chunks_[i] is a MAP_HUGETLB mapping (freed by munmap,
     *  not operator delete). */
    std::vector<std::uint8_t> chunk_huge_;
    std::size_t size_ = 0;
};

} // namespace heapmd

#endif // HEAPMD_SUPPORT_CHUNKED_VECTOR_HH
