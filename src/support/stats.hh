/**
 * @file
 * Small numeric-summary helpers used by the metric machinery.
 */

#ifndef HEAPMD_SUPPORT_STATS_HH
#define HEAPMD_SUPPORT_STATS_HH

#include <cstddef>
#include <limits>
#include <vector>

namespace heapmd
{

/**
 * Streaming mean / variance accumulator (Welford's algorithm).
 *
 * Numerically stable for long series, used to compute the average
 * percentage change and standard deviation of change of heap metrics.
 */
class RunningStats
{
  public:
    /** Fold one sample into the summary. */
    void push(double x);

    /** Number of samples folded so far. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample seen; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample seen; -inf when empty. */
    double max() const { return max_; }

    /** Merge another summary into this one. */
    void merge(const RunningStats &other);

    /** Forget all samples. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Inclusive running [min, max] envelope. */
class MinMax
{
  public:
    /** Widen the envelope to include x. */
    void push(double x);

    /** True when no sample has been pushed. */
    bool empty() const { return n_ == 0; }

    double min() const { return min_; }
    double max() const { return max_; }

    /** max - min; 0 when empty. */
    double span() const { return empty() ? 0.0 : max_ - min_; }

    /** True when x lies within [min, max] (inclusive). */
    bool contains(double x) const;

    /** Widen to include another envelope. */
    void merge(const MinMax &other);

  private:
    std::size_t n_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Mean of a vector; 0 when empty. */
double meanOf(const std::vector<double> &xs);

/** Population standard deviation of a vector; 0 when size < 2. */
double stddevOf(const std::vector<double> &xs);

} // namespace heapmd

#endif // HEAPMD_SUPPORT_STATS_HH
