#include "support/random.hh"

#include <cmath>

#include "support/logging.hh"

namespace heapmd
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9e3779b97f4a7c15ull;
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        HEAPMD_PANIC("Rng::below called with bound 0");
    // Debiased via rejection on the top range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::between(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        HEAPMD_PANIC("Rng::between called with lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)()
                                                    : below(span));
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::gaussian(double mean, double stddev)
{
    // Irwin-Hall with 12 uniforms: mean 6, variance 1.
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += uniform();
    return mean + (acc - 6.0) * stddev;
}

std::size_t
Rng::weightedPick(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            HEAPMD_PANIC("negative weight in weightedPick");
        total += w;
    }
    if (total <= 0.0)
        HEAPMD_PANIC("weightedPick requires a positive total weight");
    double point = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        point -= weights[i];
        if (point < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng((*this)() ^ 0xd1b54a32d192ed03ull);
}

} // namespace heapmd
