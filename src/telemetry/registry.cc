#include "telemetry/registry.hh"

#include <algorithm>

#include "support/logging.hh"

namespace heapmd
{
namespace telemetry
{

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    if (bounds_.empty())
        HEAPMD_PANIC("histogram needs at least one bucket bound");
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        HEAPMD_PANIC("histogram bounds must be ascending");
}

void
Histogram::observe(std::uint64_t value)
{
    std::size_t bucket = bounds_.size(); // overflow by default
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out;
    out.reserve(buckets_.size());
    for (const auto &bucket : buckets_)
        out.push_back(bucket.load(std::memory_order_relaxed));
    return out;
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name,
                    std::vector<std::uint64_t> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (slot == nullptr)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

MetricsSnapshot
Registry::snapshotAll() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snapshot;
    snapshot.counters.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        snapshot.counters.push_back({name, counter->value()});
    snapshot.gauges.reserve(gauges_.size());
    for (const auto &[name, gauge] : gauges_)
        snapshot.gauges.push_back({name, gauge->value()});
    snapshot.histograms.reserve(histograms_.size());
    for (const auto &[name, histogram] : histograms_) {
        snapshot.histograms.push_back({name, histogram->count(),
                                       histogram->sum(),
                                       histogram->bounds(),
                                       histogram->bucketCounts()});
    }
    return snapshot; // std::map iteration is already name-sorted
}

void
Registry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        counter->reset();
    for (const auto &[name, gauge] : gauges_)
        gauge->reset();
    for (const auto &[name, histogram] : histograms_)
        histogram->reset();
}

std::vector<std::uint64_t>
Registry::defaultNsBounds()
{
    return {100,       1'000,       10'000,      100'000,
            1'000'000, 10'000'000,  100'000'000, 1'000'000'000};
}

TextTable
statsTable(const MetricsSnapshot &snapshot)
{
    TextTable table({"name", "kind", "value", "detail"});
    for (const auto &c : snapshot.counters)
        table.addRow({c.name, "counter", std::to_string(c.value), ""});
    for (const auto &g : snapshot.gauges)
        table.addRow({g.name, "gauge", std::to_string(g.value), ""});
    for (const auto &h : snapshot.histograms) {
        const double mean =
            h.count == 0 ? 0.0
                         : static_cast<double>(h.sum) /
                               static_cast<double>(h.count);
        table.addRow({h.name, "histogram", std::to_string(h.count),
                      "sum=" + std::to_string(h.sum) +
                          "ns mean=" + fmtDouble(mean, 0) + "ns"});
    }
    return table;
}

} // namespace telemetry
} // namespace heapmd
