/**
 * @file
 * Phase-span aggregation.
 */

#include "telemetry/phase.hh"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <map>
#include <mutex>

#include "telemetry/trace_session.hh"

namespace heapmd
{
namespace telemetry
{

namespace
{

struct Totals
{
    std::uint64_t count = 0;
    std::uint64_t wallNanos = 0;
    std::uint64_t cpuNanos = 0;
    std::uint64_t bytes = 0;
};

std::mutex g_mutex;
std::map<std::string, Totals, std::less<>> g_totals;

thread_local int t_depth = 0;

std::uint64_t
wallNowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
threadCpuNanos()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    struct timespec ts;
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<std::uint64_t>(ts.tv_sec) *
                   1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
#endif
    return 0;
}

} // namespace

PhaseRegistry &
PhaseRegistry::instance()
{
    static PhaseRegistry registry;
    return registry;
}

void
PhaseRegistry::record(std::string_view name,
                      std::uint64_t wall_nanos,
                      std::uint64_t cpu_nanos, std::uint64_t bytes)
{
    recordExternal(name, 1, wall_nanos, cpu_nanos, bytes);
}

void
PhaseRegistry::recordExternal(std::string_view name,
                              std::uint64_t count,
                              std::uint64_t wall_nanos,
                              std::uint64_t cpu_nanos,
                              std::uint64_t bytes)
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    const auto it = g_totals.find(name);
    Totals &totals =
        it != g_totals.end()
            ? it->second
            : g_totals.emplace(std::string(name), Totals{})
                  .first->second;
    totals.count += count;
    totals.wallNanos += wall_nanos;
    totals.cpuNanos += cpu_nanos;
    totals.bytes += bytes;
}

std::vector<PhaseStats>
PhaseRegistry::snapshot() const
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::vector<PhaseStats> out;
    out.reserve(g_totals.size());
    for (const auto &[name, totals] : g_totals)
        out.push_back(PhaseStats{name, totals.count,
                                 totals.wallNanos, totals.cpuNanos,
                                 totals.bytes});
    return out; // std::map iteration is already name-sorted
}

void
PhaseRegistry::reset()
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_totals.clear();
}

PhaseSpan::PhaseSpan(std::string name) : name_(std::move(name))
{
    ++t_depth;
    wall_start_ = wallNowNanos();
    cpu_start_ = threadCpuNanos();
    traced_ = TraceSession::active();
    if (traced_)
        trace_start_ = TraceSession::nowMicros();
}

PhaseSpan::~PhaseSpan()
{
    const std::uint64_t wall_end = wallNowNanos();
    const std::uint64_t cpu_end = threadCpuNanos();
    --t_depth;
    PhaseRegistry::instance().record(
        name_, wall_end > wall_start_ ? wall_end - wall_start_ : 0,
        cpu_end > cpu_start_ ? cpu_end - cpu_start_ : 0, bytes_);
    if (traced_ && TraceSession::active())
        TraceSession::complete(name_, "phase", trace_start_,
                               TraceSession::nowMicros());
}

int
PhaseSpan::depth()
{
    return t_depth;
}

} // namespace telemetry
} // namespace heapmd
