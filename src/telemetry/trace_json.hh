/**
 * @file
 * Minimal JSON parser and Chrome trace-event validator.
 *
 * Shared by tools/trace_json_check (the CI gate on --trace-out
 * output) and tests/telemetry_test (which parses the emitted file).
 * Deliberately tiny: enough JSON to round-trip what TraceSession
 * writes, with positions in error messages; not a general-purpose
 * JSON library.
 */

#ifndef HEAPMD_TELEMETRY_TRACE_JSON_HH
#define HEAPMD_TELEMETRY_TRACE_JSON_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace heapmd
{
namespace telemetry
{

/** Parsed JSON value (object members keep their file order). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Member lookup (first match), or nullptr. */
    const JsonValue *find(const std::string &key) const;

    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected).
 * @return false with a position-carrying message in @p error.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error);

/**
 * Escape @p raw for inclusion in a JSON string literal (quotes,
 * backslashes, and control characters).  Shared by the trace-event
 * writer and the diag bundle/manifest emitters.
 */
std::string jsonEscape(const std::string &raw);

/** What the trace validator counted while walking the events. */
struct TraceJsonStats
{
    std::size_t events = 0;   //!< total entries in traceEvents
    std::size_t spans = 0;    //!< ph "X"
    std::size_t instants = 0; //!< ph "i" / "I"
    std::size_t counters = 0; //!< ph "C"
    std::size_t metadata = 0; //!< ph "M"
};

/**
 * Validate Chrome trace-event JSON: a root object with a
 * `traceEvents` array whose entries each carry a non-empty string
 * `name`, a known one-character `ph`, numeric non-negative `ts`, and
 * numeric `pid`/`tid`; complete events ("X") need a non-negative
 * `dur`, counter events ("C") a numeric-valued `args` object.
 *
 * @return false with a description in @p error; @p stats (optional)
 *         is filled with what was counted either way.
 */
bool validateTraceEventJson(const std::string &text,
                            TraceJsonStats *stats, std::string *error);

/** validateTraceEventJson over a file's contents. */
bool validateTraceEventFile(const std::string &path,
                            TraceJsonStats *stats, std::string *error);

} // namespace telemetry
} // namespace heapmd

#endif // HEAPMD_TELEMETRY_TRACE_JSON_HH
