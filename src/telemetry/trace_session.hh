/**
 * @file
 * Chrome trace-event recording: scoped spans, instants, and counter
 * tracks serialized to the JSON format understood by Perfetto
 * (https://ui.perfetto.dev) and chrome://tracing.
 *
 * One process-wide session: start() opens it, instrumentation sites
 * append events to an in-memory buffer while active() is true, and
 * stop() serializes everything to the output file.  The active() gate
 * is a single relaxed atomic load, so dormant instrumentation costs a
 * predictable branch; use the macros in telemetry/telemetry.hh to
 * compile even that out with -DHEAPMD_TELEMETRY=OFF.
 */

#ifndef HEAPMD_TELEMETRY_TRACE_SESSION_HH
#define HEAPMD_TELEMETRY_TRACE_SESSION_HH

#include <cstdint>
#include <string>

namespace heapmd
{
namespace telemetry
{

/**
 * The process-wide trace recorder (all-static interface).
 *
 * Event names are copied, so callers may pass temporaries.  The
 * buffer is bounded (kMaxEvents); once full, further events are
 * dropped and counted, and stop() reports the loss.
 */
class TraceSession
{
  public:
    /** Buffer bound: ~1M events, a few hundred MB of JSON at most. */
    static constexpr std::size_t kMaxEvents = 1u << 20;

    /**
     * Open a session writing to @p path on stop().
     * @return false (and log a warning) when a session is already
     *         active or the file cannot be created.
     */
    static bool start(const std::string &path);

    /** True while a session is recording. */
    static bool active();

    /**
     * Serialize the buffered events to the output file and close the
     * session.  No-op when inactive.
     * @return number of events written.
     */
    static std::uint64_t stop();

    /** Microseconds since session start (0 when inactive). */
    static std::uint64_t nowMicros();

    /** Complete span (ph "X") covering [start_us, end_us]. */
    static void complete(const std::string &name,
                         const std::string &category,
                         std::uint64_t start_us, std::uint64_t end_us);

    /** Instant event (ph "i"). */
    static void instant(const std::string &name,
                        const std::string &category);

    /** Counter-track sample (ph "C"). */
    static void counter(const std::string &name, double value);

    /** Events currently buffered (tests, progress reporting). */
    static std::uint64_t eventCount();

    /** Events dropped because the buffer was full. */
    static std::uint64_t droppedCount();

    /** Output path of the active session ("" when inactive). */
    static std::string outputPath();
};

/**
 * RAII span: records a complete event covering the enclosing scope.
 * Armed only when a session is active at construction; a session that
 * stops mid-scope drops the span rather than emitting a torn one.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name,
                        std::string category = "heapmd")
        : armed_(TraceSession::active())
    {
        if (armed_) {
            name_ = std::move(name);
            category_ = std::move(category);
            start_ = TraceSession::nowMicros();
        }
    }

    ~ScopedSpan()
    {
        if (armed_ && TraceSession::active()) {
            TraceSession::complete(name_, category_, start_,
                                   TraceSession::nowMicros());
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    bool armed_;
    std::uint64_t start_ = 0;
    std::string name_;
    std::string category_;
};

} // namespace telemetry
} // namespace heapmd

#endif // HEAPMD_TELEMETRY_TRACE_SESSION_HH
