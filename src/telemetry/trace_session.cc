#include "telemetry/trace_session.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "support/logging.hh"
#include "telemetry/trace_json.hh"

namespace heapmd
{
namespace telemetry
{

namespace
{

struct BufferedEvent
{
    std::string name;
    std::string category;
    char phase;         // 'X', 'i', or 'C'
    std::uint64_t ts;   // microseconds since session start
    std::uint64_t dur;  // 'X' only
    double value;       // 'C' only
};

std::atomic<bool> g_active{false};

// All mutable session state below is guarded by g_mutex; g_active is
// the lock-free fast-path gate and flips only under the mutex.
std::mutex g_mutex;
std::string g_path;
std::vector<BufferedEvent> g_events;
std::uint64_t g_dropped = 0;
std::chrono::steady_clock::time_point g_epoch;

void
append(BufferedEvent event)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_active.load(std::memory_order_relaxed))
        return; // stopped between the gate check and here
    if (g_events.size() >= TraceSession::kMaxEvents) {
        ++g_dropped;
        return;
    }
    g_events.push_back(std::move(event));
}

void
writeEvent(std::FILE *f, const BufferedEvent &e)
{
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                 "\"ts\":%llu,\"pid\":1,\"tid\":1",
                 jsonEscape(e.name).c_str(),
                 jsonEscape(e.category).c_str(), e.phase,
                 static_cast<unsigned long long>(e.ts));
    if (e.phase == 'X')
        std::fprintf(f, ",\"dur\":%llu",
                     static_cast<unsigned long long>(e.dur));
    if (e.phase == 'C')
        std::fprintf(f, ",\"args\":{\"value\":%.17g}", e.value);
    if (e.phase == 'i')
        std::fprintf(f, ",\"s\":\"t\"");
    std::fprintf(f, "}");
}

} // namespace

bool
TraceSession::start(const std::string &path)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_active.load(std::memory_order_relaxed)) {
        warn("trace session already active (writing to '", g_path,
             "'); ignoring start('", path, "')");
        return false;
    }
    std::FILE *probe = std::fopen(path.c_str(), "w");
    if (probe == nullptr) {
        warn("cannot create trace output '", path, "'");
        return false;
    }
    std::fclose(probe);

    g_path = path;
    g_events.clear();
    g_events.reserve(4096);
    g_dropped = 0;
    g_epoch = std::chrono::steady_clock::now();
    g_active.store(true, std::memory_order_release);
    return true;
}

bool
TraceSession::active()
{
    return g_active.load(std::memory_order_relaxed);
}

std::uint64_t
TraceSession::stop()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_active.load(std::memory_order_relaxed))
        return 0;
    g_active.store(false, std::memory_order_release);

    std::FILE *f = std::fopen(g_path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot write trace output '", g_path, "'");
        g_events.clear();
        return 0;
    }

    std::fputs("{\n\"traceEvents\":[\n", f);
    // Metadata first: names the single process/thread track.
    std::fputs("{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,"
               "\"pid\":1,\"tid\":1,"
               "\"args\":{\"name\":\"heapmd\"}},\n",
               f);
    std::fputs("{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,"
               "\"pid\":1,\"tid\":1,"
               "\"args\":{\"name\":\"pipeline\"}}",
               f);
    for (const BufferedEvent &e : g_events) {
        std::fputs(",\n", f);
        writeEvent(f, e);
    }
    std::fputs("\n],\n\"displayTimeUnit\":\"ms\"\n}\n", f);
    std::fclose(f);

    const auto written = static_cast<std::uint64_t>(g_events.size());
    if (g_dropped != 0)
        warn("trace buffer overflowed: dropped ", g_dropped,
             " event(s) after the first ", kMaxEvents);
    g_events.clear();
    g_events.shrink_to_fit();
    g_path.clear();
    return written;
}

std::uint64_t
TraceSession::nowMicros()
{
    if (!active())
        return 0;
    const auto elapsed = std::chrono::steady_clock::now() - g_epoch;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
}

void
TraceSession::complete(const std::string &name,
                       const std::string &category,
                       std::uint64_t start_us, std::uint64_t end_us)
{
    if (!active())
        return;
    const std::uint64_t dur =
        end_us >= start_us ? end_us - start_us : 0;
    append({name, category, 'X', start_us, dur, 0.0});
}

void
TraceSession::instant(const std::string &name,
                      const std::string &category)
{
    if (!active())
        return;
    append({name, category, 'i', nowMicros(), 0, 0.0});
}

void
TraceSession::counter(const std::string &name, double value)
{
    if (!active())
        return;
    append({name, "heapmd", 'C', nowMicros(), 0, value});
}

std::uint64_t
TraceSession::eventCount()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return static_cast<std::uint64_t>(g_events.size());
}

std::uint64_t
TraceSession::droppedCount()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_dropped;
}

std::string
TraceSession::outputPath()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_active.load(std::memory_order_relaxed) ? g_path
                                                    : std::string();
}

} // namespace telemetry
} // namespace heapmd
