/**
 * @file
 * Process-wide registry of named counters, gauges, and fixed-bucket
 * histograms.
 *
 * Design (see DESIGN.md §8):
 *  - handles returned by Registry are stable for the process lifetime,
 *    so hot paths resolve a name once (static local) and then touch a
 *    single cache line per increment;
 *  - increments are lock-free relaxed atomic RMWs (fetch_add).  The
 *    parallel replay pipeline runs one Process per worker thread but
 *    all workers share the process-wide registry, so instruments must
 *    tolerate concurrent writers; totals stay exact under --jobs > 1
 *    and readers (snapshotAll, the stats table) see torn-free values
 *    via atomic loads;
 *  - snapshotAll() is the only operation that takes the registry
 *    mutex; it never blocks an increment.
 *
 * Instrument through the macros in telemetry/telemetry.hh, which
 * compile to no-ops under -DHEAPMD_TELEMETRY=OFF; this header's API
 * stays available in both modes (tests, the stats table).
 */

#ifndef HEAPMD_TELEMETRY_REGISTRY_HH
#define HEAPMD_TELEMETRY_REGISTRY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/table.hh"

namespace heapmd
{
namespace telemetry
{

/** Monotonically increasing event count (multi-writer, see above). */
class Counter
{
  public:
    void
    add(std::uint64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    void increment() { add(1); }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Instantaneous level that can move both ways (live vertices, ...). */
class Gauge
{
  public:
    void
    add(std::int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    void sub(std::int64_t delta) { add(-delta); }

    void set(std::int64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket histogram over unsigned values (typically nanoseconds).
 *
 * Bucket i counts observations <= bounds[i]; one overflow bucket
 * catches the rest.  Bounds are fixed at registration so observe() is
 * a short linear scan plus one relaxed increment.
 */
class Histogram
{
  public:
    /** @param bounds ascending inclusive upper bounds; non-empty. */
    explicit Histogram(std::vector<std::uint64_t> bounds);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(std::uint64_t value);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Sum of all observed values. */
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    const std::vector<std::uint64_t> &bounds() const { return bounds_; }

    /** Per-bucket counts; last entry is the overflow bucket. */
    std::vector<std::uint64_t> bucketCounts() const;

    void reset();

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/** Point-in-time copy of every registered instrument. */
struct MetricsSnapshot
{
    struct CounterValue
    {
        std::string name;
        std::uint64_t value;
    };

    struct GaugeValue
    {
        std::string name;
        std::int64_t value;
    };

    struct HistogramValue
    {
        std::string name;
        std::uint64_t count;
        std::uint64_t sum;
        std::vector<std::uint64_t> bounds;
        std::vector<std::uint64_t> buckets;
    };

    std::vector<CounterValue> counters;   //!< sorted by name
    std::vector<GaugeValue> gauges;       //!< sorted by name
    std::vector<HistogramValue> histograms; //!< sorted by name

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() &&
               histograms.empty();
    }
};

/**
 * The process-wide instrument registry.
 *
 * Names follow the §7 rule-id convention: `<subsystem>.<snake_name>`
 * (e.g. `trace.events_decoded`); the full catalog lives in DESIGN.md
 * §8.  Counters, gauges, and histograms occupy separate namespaces.
 */
class Registry
{
  public:
    static Registry &instance();

    /** Get or create; the reference stays valid forever. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /**
     * Get or create; @p bounds is used only on first registration
     * (later callers inherit the original buckets).
     */
    Histogram &histogram(const std::string &name,
                         std::vector<std::uint64_t> bounds =
                             defaultNsBounds());

    /** Copy every instrument's current value. */
    MetricsSnapshot snapshotAll() const;

    /** Zero every instrument (registration survives).  For tests. */
    void resetAll();

    /** 100ns .. 1s log-spaced latency buckets. */
    static std::vector<std::uint64_t> defaultNsBounds();

  private:
    Registry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * RAII timer: adds the scope's elapsed nanoseconds to a counter and
 * records the same value in a histogram.
 */
class ScopedNsTimer
{
  public:
    ScopedNsTimer(Counter &total_ns, Histogram &distribution)
        : total_(total_ns), distribution_(distribution),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedNsTimer()
    {
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                elapsed)
                .count());
        total_.add(ns);
        distribution_.observe(ns);
    }

    ScopedNsTimer(const ScopedNsTimer &) = delete;
    ScopedNsTimer &operator=(const ScopedNsTimer &) = delete;

  private:
    Counter &total_;
    Histogram &distribution_;
    std::chrono::steady_clock::time_point start_;
};

/** Render a snapshot as the `heapmd stats` table. */
TextTable statsTable(const MetricsSnapshot &snapshot);

} // namespace telemetry
} // namespace heapmd

#endif // HEAPMD_TELEMETRY_REGISTRY_HH
