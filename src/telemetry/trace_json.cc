#include "telemetry/trace_json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace heapmd
{
namespace telemetry
{

namespace
{

/** Recursive-descent parser over a string, tracking the offset. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipWhitespace();
        if (!parseValue(out))
            return false;
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing garbage after the document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_ != nullptr && error_->empty()) {
            std::ostringstream oss;
            oss << what << " at offset " << pos_;
            *error_ = oss.str();
        }
        return false;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char expected)
    {
        if (pos_ >= text_.size() || text_[pos_] != expected)
            return fail(std::string("expected '") + expected + "'");
        ++pos_;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
          case 'f':
            return parseKeyword(c == 't' ? "true" : "false", out);
          case 'n':
            return parseKeyword("null", out);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseKeyword(const std::string &word, JsonValue &out)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            return fail("unknown keyword");
        pos_ += word.size();
        if (word == "null") {
            out.kind = JsonValue::Kind::Null;
        } else {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = (word == "true");
        }
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        char *end = nullptr;
        const std::string token = text_.substr(start, pos_ - start);
        out.number = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number '" + token + "'");
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                char *end = nullptr;
                const long code = std::strtol(hex.c_str(), &end, 16);
                if (end == nullptr || *end != '\0')
                    return fail("malformed \\u escape");
                // Control characters only in our output; keep it
                // simple and store the low byte.
                out += static_cast<char>(code & 0x7f);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        if (!consume('['))
            return false;
        out.kind = JsonValue::Kind::Array;
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue element;
            skipWhitespace();
            if (!parseValue(element))
                return false;
            out.array.push_back(std::move(element));
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        if (!consume('{'))
            return false;
        out.kind = JsonValue::Kind::Object;
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (!consume(':'))
                return false;
            skipWhitespace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

bool
failEvent(std::string *error, std::size_t index,
          const std::string &what)
{
    if (error != nullptr && error->empty()) {
        std::ostringstream oss;
        oss << "traceEvents[" << index << "]: " << what;
        *error = oss.str();
    }
    return false;
}

bool
numberField(const JsonValue &event, const char *key, double &out)
{
    const JsonValue *field = event.find(key);
    if (field == nullptr || !field->isNumber())
        return false;
    out = field->number;
    return true;
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : object) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    if (error != nullptr)
        error->clear();
    Parser parser(text, error);
    return parser.parseDocument(out);
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
validateTraceEventJson(const std::string &text, TraceJsonStats *stats,
                       std::string *error)
{
    if (stats != nullptr)
        *stats = TraceJsonStats{};
    if (error != nullptr)
        error->clear();

    JsonValue root;
    if (!parseJson(text, root, error))
        return false;
    if (!root.isObject()) {
        if (error != nullptr)
            *error = "root is not a JSON object";
        return false;
    }
    const JsonValue *events = root.find("traceEvents");
    if (events == nullptr || !events->isArray()) {
        if (error != nullptr)
            *error = "missing or non-array 'traceEvents'";
        return false;
    }

    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &event = events->array[i];
        if (!event.isObject())
            return failEvent(error, i, "not an object");

        const JsonValue *name = event.find("name");
        if (name == nullptr || !name->isString() ||
            name->string.empty())
            return failEvent(error, i,
                             "missing or empty string 'name'");

        const JsonValue *ph = event.find("ph");
        if (ph == nullptr || !ph->isString() ||
            ph->string.size() != 1)
            return failEvent(error, i,
                             "missing one-character string 'ph'");
        const char phase = ph->string[0];
        static const std::string known = "XiICMBE";
        if (known.find(phase) == std::string::npos)
            return failEvent(error, i,
                             std::string("unknown phase '") + phase +
                                 "'");

        double ts = 0.0;
        if (!numberField(event, "ts", ts) || ts < 0.0)
            return failEvent(error, i,
                             "missing or negative numeric 'ts'");
        double ignored = 0.0;
        if (!numberField(event, "pid", ignored))
            return failEvent(error, i, "missing numeric 'pid'");
        if (!numberField(event, "tid", ignored))
            return failEvent(error, i, "missing numeric 'tid'");

        if (phase == 'X') {
            double dur = 0.0;
            if (!numberField(event, "dur", dur) || dur < 0.0)
                return failEvent(
                    error, i,
                    "complete event without non-negative 'dur'");
        }
        if (phase == 'C' || phase == 'M') {
            const JsonValue *args = event.find("args");
            if (args == nullptr || !args->isObject() ||
                args->object.empty())
                return failEvent(error, i,
                                 "missing non-empty 'args' object");
            if (phase == 'C') {
                bool numeric = false;
                for (const auto &[key, value] : args->object)
                    numeric = numeric || value.isNumber();
                if (!numeric)
                    return failEvent(
                        error, i,
                        "counter event without a numeric arg");
            }
        }

        if (stats != nullptr) {
            ++stats->events;
            switch (phase) {
              case 'X':
                ++stats->spans;
                break;
              case 'i':
              case 'I':
                ++stats->instants;
                break;
              case 'C':
                ++stats->counters;
                break;
              case 'M':
                ++stats->metadata;
                break;
              default:
                break;
            }
        }
    }
    return true;
}

bool
validateTraceEventFile(const std::string &path, TraceJsonStats *stats,
                       std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open '" + path + "'";
        if (stats != nullptr)
            *stats = TraceJsonStats{};
        return false;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    return validateTraceEventJson(oss.str(), stats, error);
}

} // namespace telemetry
} // namespace heapmd
