/**
 * @file
 * Pipeline phase spans: named begin/end sections with wall + CPU
 * time and bytes processed, aggregated per phase name for the run
 * manifest's `phases[]` block (schema v3) and emitted into any
 * active Chrome trace session as "phase"-category complete events.
 *
 * Unlike the raw ScopedSpan (purely a trace-file artifact), a
 * PhaseSpan always aggregates into the process-wide PhaseRegistry,
 * so `heapmd trend` can compare per-phase wall time across runs even
 * when no trace session was recording.  Spans nest (a train phase
 * decodes traces inside it); each level aggregates under its own
 * name, and nesting depth is tracked per thread purely so the trace
 * view shows the hierarchy.
 *
 * Thread-safe: phases run on pool workers during parallel replay;
 * the registry serializes aggregation with a mutex (phase boundaries
 * are rare — this is nowhere near a hot path).
 */

#ifndef HEAPMD_TELEMETRY_PHASE_HH
#define HEAPMD_TELEMETRY_PHASE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace heapmd
{
namespace telemetry
{

/** Aggregated accounting of one phase name across a run. */
struct PhaseStats
{
    std::string name;
    std::uint64_t count = 0;     //!< spans recorded under this name
    std::uint64_t wallNanos = 0; //!< summed wall-clock time
    std::uint64_t cpuNanos = 0;  //!< summed thread CPU time
    std::uint64_t bytes = 0;     //!< summed bytes processed
};

/** Process-wide sink for completed phase spans. */
class PhaseRegistry
{
  public:
    static PhaseRegistry &instance();

    /** Fold one completed span into the aggregate for @p name. */
    void record(std::string_view name, std::uint64_t wall_nanos,
                std::uint64_t cpu_nanos, std::uint64_t bytes);

    /**
     * Fold in externally measured work — e.g. the capture shim's
     * scan time, which crosses the process boundary via the counter
     * sidecar rather than a live span.
     */
    void recordExternal(std::string_view name, std::uint64_t count,
                        std::uint64_t wall_nanos,
                        std::uint64_t cpu_nanos,
                        std::uint64_t bytes);

    /** All aggregates, sorted by name (manifest emission order). */
    std::vector<PhaseStats> snapshot() const;

    /** Forget everything (tests). */
    void reset();

  private:
    PhaseRegistry() = default;
};

/**
 * RAII phase span.  Construct at the top of a pipeline stage; the
 * destructor records wall/CPU/bytes into the PhaseRegistry and, when
 * a trace session is active, emits a "phase" complete event.
 */
class PhaseSpan
{
  public:
    explicit PhaseSpan(std::string name);
    ~PhaseSpan();

    PhaseSpan(const PhaseSpan &) = delete;
    PhaseSpan &operator=(const PhaseSpan &) = delete;

    /** Attribute @p n processed bytes to this span. */
    void addBytes(std::uint64_t n) { bytes_ += n; }

    /** Current nesting depth on this thread (tests). */
    static int depth();

  private:
    std::string name_;
    std::uint64_t bytes_ = 0;
    std::uint64_t wall_start_ = 0;  //!< steady_clock nanos
    std::uint64_t cpu_start_ = 0;   //!< thread CPU nanos
    std::uint64_t trace_start_ = 0; //!< TraceSession micros
    bool traced_ = false;
};

/**
 * Stand-in for PhaseSpan when telemetry is compiled out: same
 * surface, zero cost (see HEAPMD_PHASE_SPAN_NAMED in telemetry.hh).
 */
struct NullPhaseSpan
{
    void addBytes(std::uint64_t) {}
};

} // namespace telemetry
} // namespace heapmd

#endif // HEAPMD_TELEMETRY_PHASE_HH
