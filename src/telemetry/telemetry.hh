/**
 * @file
 * Instrumentation macros: the one header hot paths include.
 *
 * Every macro is a no-op when telemetry is compiled out
 * (cmake -DHEAPMD_TELEMETRY=OFF, which defines
 * HEAPMD_TELEMETRY_DISABLED), so instrumentation sites carry zero
 * cost in stripped builds.  A TU can also force the gate locally by
 * defining HEAPMD_TELEMETRY_ENABLED to 0 or 1 *before* including this
 * header (bench/telemetry_overhead compiles the same kernel both ways
 * to measure the difference).
 *
 * With telemetry compiled in:
 *  - counter/gauge/histogram macros resolve the instrument once per
 *    site (function-local static reference) and then perform one
 *    relaxed atomic update;
 *  - trace macros are gated on TraceSession::active(), a relaxed
 *    atomic load, so they cost a predictable branch until a session
 *    is started (e.g. via `heapmd ... --trace-out trace.json`).
 *
 * Instrument names follow `<subsystem>.<snake_name>`; the catalog is
 * DESIGN.md §8.
 */

#ifndef HEAPMD_TELEMETRY_TELEMETRY_HH
#define HEAPMD_TELEMETRY_TELEMETRY_HH

#include "telemetry/phase.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace_session.hh"

#if !defined(HEAPMD_TELEMETRY_ENABLED)
#if defined(HEAPMD_TELEMETRY_DISABLED)
#define HEAPMD_TELEMETRY_ENABLED 0
#else
#define HEAPMD_TELEMETRY_ENABLED 1
#endif
#endif

#define HEAPMD_TLM_CONCAT_(a, b) a##b
#define HEAPMD_TLM_CONCAT(a, b) HEAPMD_TLM_CONCAT_(a, b)

#if HEAPMD_TELEMETRY_ENABLED

/** Add @p delta to the named process-wide counter. */
#define HEAPMD_COUNTER_ADD(name, delta) \
    do { \
        static ::heapmd::telemetry::Counter &heapmd_tlm_counter = \
            ::heapmd::telemetry::Registry::instance().counter(name); \
        heapmd_tlm_counter.add(delta); \
    } while (0)

/** Increment the named counter by one. */
#define HEAPMD_COUNTER_INC(name) HEAPMD_COUNTER_ADD(name, 1)

/** Move the named gauge by @p delta (may be negative). */
#define HEAPMD_GAUGE_ADD(name, delta) \
    do { \
        static ::heapmd::telemetry::Gauge &heapmd_tlm_gauge = \
            ::heapmd::telemetry::Registry::instance().gauge(name); \
        heapmd_tlm_gauge.add(delta); \
    } while (0)

/** Set the named gauge to @p value. */
#define HEAPMD_GAUGE_SET(name, value) \
    do { \
        static ::heapmd::telemetry::Gauge &heapmd_tlm_gauge = \
            ::heapmd::telemetry::Registry::instance().gauge(name); \
        heapmd_tlm_gauge.set(value); \
    } while (0)

/** Record @p value in the named fixed-bucket histogram. */
#define HEAPMD_HISTOGRAM_OBSERVE(name, value) \
    do { \
        static ::heapmd::telemetry::Histogram &heapmd_tlm_hist = \
            ::heapmd::telemetry::Registry::instance().histogram( \
                name); \
        heapmd_tlm_hist.observe(value); \
    } while (0)

/** Trace a complete span covering the rest of the enclosing scope. */
#define HEAPMD_TRACE_SPAN(name) \
    ::heapmd::telemetry::ScopedSpan HEAPMD_TLM_CONCAT( \
        heapmd_tlm_span_, __LINE__)(name)

/** Trace an instant event (a tick mark on the timeline). */
#define HEAPMD_TRACE_INSTANT(name) \
    do { \
        if (::heapmd::telemetry::TraceSession::active()) \
            ::heapmd::telemetry::TraceSession::instant(name, \
                                                       "heapmd"); \
    } while (0)

/** Trace a counter-track sample (graphed in Perfetto). */
#define HEAPMD_TRACE_COUNTER(name, value) \
    do { \
        if (::heapmd::telemetry::TraceSession::active()) \
            ::heapmd::telemetry::TraceSession::counter( \
                name, static_cast<double>(value)); \
    } while (0)

/**
 * Pipeline phase span covering the rest of the enclosing scope:
 * aggregates wall+CPU time into the PhaseRegistry (run-manifest
 * `phases[]`) and emits a "phase" trace event when a session is
 * recording.  Phase names follow `phase.<stage>` (DESIGN.md §13).
 */
#define HEAPMD_PHASE_SPAN(name) \
    ::heapmd::telemetry::PhaseSpan HEAPMD_TLM_CONCAT( \
        heapmd_tlm_phase_, __LINE__)(name)

/**
 * Named variant for sites that attribute processed bytes:
 * `HEAPMD_PHASE_SPAN_NAMED(span, "phase.decode"); span.addBytes(n);`
 */
#define HEAPMD_PHASE_SPAN_NAMED(var, name) \
    ::heapmd::telemetry::PhaseSpan var{name}

/**
 * Time the rest of the enclosing scope into a ns-total counter plus a
 * latency histogram.  Use as a standalone statement.
 */
#define HEAPMD_TIMED_NS(counter_name, histogram_name) \
    static ::heapmd::telemetry::Counter &HEAPMD_TLM_CONCAT( \
        heapmd_tlm_timed_c_, __LINE__) = \
        ::heapmd::telemetry::Registry::instance().counter( \
            counter_name); \
    static ::heapmd::telemetry::Histogram &HEAPMD_TLM_CONCAT( \
        heapmd_tlm_timed_h_, __LINE__) = \
        ::heapmd::telemetry::Registry::instance().histogram( \
            histogram_name); \
    ::heapmd::telemetry::ScopedNsTimer HEAPMD_TLM_CONCAT( \
        heapmd_tlm_timer_, __LINE__)( \
        HEAPMD_TLM_CONCAT(heapmd_tlm_timed_c_, __LINE__), \
        HEAPMD_TLM_CONCAT(heapmd_tlm_timed_h_, __LINE__))

#else // !HEAPMD_TELEMETRY_ENABLED

#define HEAPMD_COUNTER_ADD(name, delta) do { } while (0)
#define HEAPMD_COUNTER_INC(name) do { } while (0)
#define HEAPMD_GAUGE_ADD(name, delta) do { } while (0)
#define HEAPMD_GAUGE_SET(name, value) do { } while (0)
#define HEAPMD_HISTOGRAM_OBSERVE(name, value) do { } while (0)
#define HEAPMD_TRACE_SPAN(name) do { } while (0)
#define HEAPMD_TRACE_INSTANT(name) do { } while (0)
#define HEAPMD_TRACE_COUNTER(name, value) do { } while (0)
#define HEAPMD_PHASE_SPAN(name) do { } while (0)
#define HEAPMD_PHASE_SPAN_NAMED(var, name) \
    ::heapmd::telemetry::NullPhaseSpan var
#define HEAPMD_TIMED_NS(counter_name, histogram_name) do { } while (0)

#endif // HEAPMD_TELEMETRY_ENABLED

#endif // HEAPMD_TELEMETRY_TELEMETRY_HH
