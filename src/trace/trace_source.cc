#include "trace/trace_source.hh"

#include <cstring>

#include "telemetry/telemetry.hh"

#if defined(__unix__) || defined(__APPLE__)
#define HEAPMD_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HEAPMD_TRACE_HAVE_MMAP 0
#include <fstream>
#endif

namespace heapmd
{

namespace trace
{

StreamSource::StreamSource(std::istream &is, std::size_t chunk_size)
    : is_(is), buffer_(chunk_size == 0 ? 1 : chunk_size)
{
}

std::size_t
StreamSource::next(const unsigned char *&data)
{
    is_.read(reinterpret_cast<char *>(buffer_.data()),
             static_cast<std::streamsize>(buffer_.size()));
    const auto got = static_cast<std::size_t>(is_.gcount());
    if (got == 0)
        return 0;
    HEAPMD_COUNTER_INC("trace.source_refills");
    data = buffer_.data();
    return got;
}

std::size_t
MemorySource::next(const unsigned char *&data)
{
    if (consumed_ || size_ == 0)
        return 0;
    consumed_ = true;
    data = data_;
    return size_;
}

FileSource::FileSource(const std::string &path)
{
#if HEAPMD_TRACE_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error_ = "cannot open '" + path + "'";
        return;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        error_ = "cannot stat '" + path + "'";
        ::close(fd);
        return;
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ == 0) {
        // mmap rejects zero-length mappings; an empty file is a
        // valid (if malformed) trace, so succeed with no data.
        ::close(fd);
        ok_ = true;
        return;
    }
    void *map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
#if defined(POSIX_MADV_SEQUENTIAL)
        ::posix_madvise(map, size_, POSIX_MADV_SEQUENTIAL);
#endif
        data_ = static_cast<const unsigned char *>(map);
        mapped_ = true;
        ok_ = true;
        ::close(fd);
        HEAPMD_COUNTER_INC("trace.mmap_opens");
        return;
    }
    // mmap can fail on special filesystems; fall back to a read.
    HEAPMD_COUNTER_INC("trace.mmap_fallbacks");
    fallback_.resize(size_);
    std::size_t off = 0;
    while (off < size_) {
        const ::ssize_t n =
            ::read(fd, fallback_.data() + off, size_ - off);
        if (n <= 0) {
            error_ = "cannot read '" + path + "'";
            ::close(fd);
            size_ = 0;
            return;
        }
        off += static_cast<std::size_t>(n);
    }
    ::close(fd);
    data_ = fallback_.data();
    ok_ = true;
#else
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error_ = "cannot open '" + path + "'";
        return;
    }
    fallback_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    size_ = fallback_.size();
    data_ = fallback_.data();
    ok_ = true;
#endif
}

FileSource::~FileSource()
{
#if HEAPMD_TRACE_HAVE_MMAP
    if (mapped_)
        ::munmap(const_cast<unsigned char *>(data_), size_);
#endif
}

std::size_t
FileSource::next(const unsigned char *&data)
{
    if (consumed_ || size_ == 0)
        return 0;
    consumed_ = true;
    data = data_;
    return size_;
}

} // namespace trace

} // namespace heapmd
