/**
 * @file
 * Rotating trace-segment sets: naming, the writer manifest, and the
 * chaining reader that consumes a set while it is still being
 * written.
 *
 * When segment rotation is armed (HEAPMD_CAPTURE_ROTATE_BYTES), the
 * capture shim records not one monolithic trace but a numbered
 * sequence of self-contained segment files -- each a complete HMDT
 * trace with its own header and footer:
 *
 *     <stem>.000000.heapmd, <stem>.000001.heapmd, ...
 *
 * where <stem> is the configured output path (a trailing ".heapmd"
 * extension is re-used rather than doubled).  The shim's rotation
 * protocol gives the set two load-bearing invariants:
 *
 *  1. a segment is finalized (footer written, fsync'd, closed)
 *     *before* its successor is created, so "segment N+1 exists"
 *     proves segment N is complete -- only the newest segment may
 *     ever be truncated (a crashed writer), and
 *  2. rotation happens only between recorded allocator operations,
 *     so no event record is ever split across a segment boundary.
 *
 * A tiny line-oriented manifest ("<stem-or-out>.manifest", written
 * via tmp+rename so readers never see a partial document) carries the
 * writer pid, the rotation threshold, the segment count, and a closed
 * flag.  It is advisory: readers fall back to directory listing, and
 * a writer that dies without closing the manifest is detected through
 * its pid.
 *
 * SegmentChain is the reading half: it decodes the segments of a set
 * in order as one continuous event stream (the live-object state of
 * the captured process carries across segment boundaries), optionally
 * following a set that is still being written by tailing the newest
 * segment (TailSource) and waiting for successors.
 */

#ifndef HEAPMD_TRACE_SEGMENT_SET_HH
#define HEAPMD_TRACE_SEGMENT_SET_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/events.hh"
#include "trace/gzip_source.hh"
#include "trace/tail_source.hh"
#include "trace/trace_reader.hh"

namespace heapmd
{

namespace trace
{

/** Extension of every segment file. */
inline constexpr const char *kSegmentExtension = ".heapmd";

/** Extension of a gzip-compressed segment file. */
inline constexpr const char *kSegmentGzExtension = ".heapmd.gz";

/** First line of a segment manifest. */
inline constexpr const char *kManifestMagic =
    "heapmd-segment-manifest";

/** Current manifest format version. */
inline constexpr std::uint64_t kManifestVersion = 1;

/**
 * Path of segment @p index of the set rooted at @p base.
 * @p compressed selects the ".heapmd.gz" naming the compressing
 * writer uses; a set is all-plain or all-gz, never mixed.
 */
std::string segmentPath(const std::string &base, std::uint64_t index,
                        bool compressed = false);

/**
 * Path of segment @p index as it exists on disk -- plain first, then
 * the gzip variant.  Empty when neither file exists.
 */
std::string resolveSegmentPath(const std::string &base,
                               std::uint64_t index);

/** True when segment @p index exists in either encoding. */
bool segmentFileExists(const std::string &base, std::uint64_t index);

/** Path of the manifest of the set rooted at @p base. */
std::string segmentManifestPath(const std::string &base);

/** Writer-side state advertised to concurrent readers. */
struct SegmentManifest
{
    std::uint64_t version = kManifestVersion;

    /** Pid of the recording process (0 = unknown). */
    std::uint32_t pid = 0;

    /** Rotation threshold the writer is using, in bytes. */
    std::uint64_t rotateBytes = 0;

    /** Segments created so far; the highest-numbered one is active. */
    std::uint64_t segments = 0;

    /** True once the writer finalized the set (orderly shutdown). */
    bool closed = false;

    /** True when the writer gzips its segments (".heapmd.gz"). */
    bool compress = false;

    /** Uncompressed trace bytes recorded so far (0 = unknown). */
    std::uint64_t rawBytes = 0;

    /** Bytes on disk for those raw bytes (equal when uncompressed). */
    std::uint64_t compressedBytes = 0;
};

/**
 * Parse the manifest at @p path.
 * @return false when the file is absent or not a manifest.
 */
bool loadSegmentManifest(const std::string &path,
                         SegmentManifest &out);

/**
 * Write @p manifest to @p path atomically (tmp + rename), so a
 * concurrent reader sees either the previous or the new document,
 * never a torn one.  @return false on I/O failure.
 */
bool saveSegmentManifest(const std::string &path,
                         const SegmentManifest &manifest);

/** Indices of the existing segment files of @p base, ascending. */
std::vector<std::uint64_t>
listSegmentIndices(const std::string &base);

/**
 * Decode a segment set as one continuous event stream.
 *
 * Construct with the set's base path, then call next() until it
 * returns false; the chain opens segments in index order, tolerates a
 * truncated in-progress tail (the crash artifact invariant 1 of the
 * file comment permits), and -- in follow mode -- blocks waiting for
 * more bytes or the next segment until the set is closed, the writer
 * dies, or the stopped() callback fires.
 *
 * When the base path itself is an ordinary single trace file and no
 * segments exist, the chain degrades to reading just that file, so
 * consumers (`heapmd monitor --once`) accept both layouts.
 */
class SegmentChain
{
  public:
    struct Options
    {
        /**
         * Follow a set still being written: wait for appended bytes
         * and for successor segments.  Off = consume what exists now
         * and treat the end of the newest segment as end of stream.
         */
        bool follow = false;

        /** Wait granularity while following, in milliseconds. */
        std::uint64_t pollMs = 50;

        /** Optional abort check, polled while waiting (signals). */
        std::function<bool()> stopped;

        /** Optional idle hook, pumped once per wait cycle. */
        std::function<void()> onWait;
    };

    SegmentChain(std::string base, Options options);

    SegmentChain(const SegmentChain &) = delete;
    SegmentChain &operator=(const SegmentChain &) = delete;

    /**
     * Decode the next event of the set into @p event.
     * @return false at end of stream; check failed() to distinguish
     *         a clean end from a broken chain.
     */
    bool next(Event &event);

    /** True when the chain is unusable (mid-chain corruption, gap). */
    bool failed() const { return failed_; }

    /** Why failed() is true; empty otherwise. */
    const std::string &error() const { return error_; }

    /**
     * Footer function table of the newest *finalized* segment.  The
     * shim's registry persists across rotations, so each footer is a
     * superset of its predecessors.
     */
    const std::vector<std::string> &
    functionNames() const
    {
        return names_;
    }

    /** Segments fully consumed (footer or tolerated truncation). */
    std::uint64_t segmentsConsumed() const
    {
        return segments_consumed_;
    }

    /** Index of the segment currently being decoded. */
    std::uint64_t currentIndex() const { return index_; }

    /** Events decoded across all segments so far. */
    std::uint64_t eventsDecoded() const { return events_; }

    /** Bytes decoded across all segments so far. */
    std::uint64_t bytesConsumed() const;

    /** True when the final segment ended without a footer. */
    bool sawTruncatedTail() const { return truncated_tail_; }

    /**
     * Bytes on disk not yet decoded: the unread remainder of the
     * current segment plus every newer segment.  The monitor exports
     * this as heapmd_monitor_tail_lag_bytes.
     */
    std::uint64_t tailLagBytes() const;

    /** True when the chain degraded to a single non-rotated trace. */
    bool singleFile() const { return single_file_; }

  private:
    bool openNext();
    bool waitStep();
    bool setClosed() const;
    void fail(std::string message);

    std::string base_;
    Options options_;
    //! Manifest parse cache.  setClosed() runs on every tail-read
    //! attempt, so it must not re-parse an unchanged file; the
    //! tmp+rename update protocol gives every rewrite a fresh inode,
    //! making (inode, size, mtime) a sound change detector.
    mutable SegmentManifest cached_manifest_;
    mutable bool manifest_cached_ = false;
    mutable std::uint64_t manifest_ino_ = 0;
    mutable std::uint64_t manifest_size_ = 0;
    mutable std::int64_t manifest_mtime_ns_ = 0;
    std::uint64_t index_ = 0;
    std::uint64_t segments_consumed_ = 0;
    std::uint64_t events_ = 0;
    std::uint64_t consumed_bytes_ = 0; //!< completed segments only
    std::unique_ptr<TailSource> source_;
    //! Present only while decoding a ".heapmd.gz" segment; sits
    //! between source_ and reader_.
    std::unique_ptr<GzipSource> inflate_;
    std::unique_ptr<TraceReader> reader_;
    std::vector<std::string> names_;
    std::string error_;
    bool failed_ = false;
    bool finished_ = false;
    bool truncated_tail_ = false;
    bool single_file_ = false;
};

} // namespace trace

} // namespace heapmd

#endif // HEAPMD_TRACE_SEGMENT_SET_HH
