#include "trace/trace_format.hh"

namespace heapmd
{

namespace trace
{

void
putVarint(std::ostream &os, std::uint64_t value)
{
    while (value >= 0x80) {
        os.put(static_cast<char>((value & 0x7F) | 0x80));
        value >>= 7;
    }
    os.put(static_cast<char>(value));
}

bool
getVarint(std::istream &is, std::uint64_t &value,
          VarintError *error)
{
    value = 0;
    int shift = 0;
    int length = 0;
    for (;;) {
        const int ch = is.get();
        if (ch == std::char_traits<char>::eof()) {
            if (error != nullptr)
                *error = VarintError::Truncated;
            return false;
        }
        if (++length > kMaxVarintBytes) {
            if (error != nullptr)
                *error = VarintError::Overlong;
            return false;
        }
        const std::uint64_t byte = static_cast<std::uint64_t>(ch);
        value |= (byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
            if (error != nullptr)
                *error = VarintError::None;
            return true;
        }
        shift += 7;
    }
}

void
putU32(std::ostream &os, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        os.put(static_cast<char>((value >> (8 * i)) & 0xFF));
}

bool
getU32(std::istream &is, std::uint32_t &value)
{
    value = 0;
    for (int i = 0; i < 4; ++i) {
        const int ch = is.get();
        if (ch == std::char_traits<char>::eof())
            return false;
        value |= static_cast<std::uint32_t>(ch & 0xFF) << (8 * i);
    }
    return true;
}

void
putHeader(std::ostream &os, std::uint32_t flags)
{
    putU32(os, kMagic);
    putU32(os, flags == 0 ? kVersion : kVersionFlags);
    if (flags != 0)
        putU32(os, flags);
}

bool
readHeader(std::istream &is, Header &header, HeaderError *error)
{
    const auto fail = [&](HeaderError kind) {
        if (error != nullptr)
            *error = kind;
        return false;
    };
    std::uint32_t magic = 0;
    if (!getU32(is, magic))
        return fail(HeaderError::Truncated);
    if (magic != kMagic)
        return fail(HeaderError::BadMagic);
    if (!getU32(is, header.version))
        return fail(HeaderError::Truncated);
    if (header.version != kVersion && header.version != kVersionFlags)
        return fail(HeaderError::BadVersion);
    header.flags = 0;
    if (header.version == kVersionFlags &&
        !getU32(is, header.flags)) {
        return fail(HeaderError::Truncated);
    }
    if (error != nullptr)
        *error = HeaderError::None;
    return true;
}

} // namespace trace

} // namespace heapmd
