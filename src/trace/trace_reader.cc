#include "trace/trace_reader.hh"

#include <algorithm>

#include "runtime/process.hh"
#include "support/logging.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace_format.hh"

namespace heapmd
{

namespace
{

/** Rule id + description of a varint decode failure. */
std::string
varintErrorText(trace::VarintError error)
{
    switch (error) {
      case trace::VarintError::Overlong:
        return "LEB128 varint longer than " +
               std::to_string(trace::kMaxVarintBytes) +
               " bytes [trace.varint-overlong]";
      case trace::VarintError::Truncated:
      case trace::VarintError::None:
        break;
    }
    return "stream ends inside a LEB128 varint "
           "[trace.varint-truncated]";
}

} // namespace

TraceReader::TraceReader(std::istream &is, std::size_t chunk_size)
    : owned_(std::make_unique<trace::StreamSource>(is, chunk_size)),
      source_(owned_.get())
{
    readHeaderOrDie();
}

TraceReader::TraceReader(trace::Source &source)
    : source_(&source)
{
    readHeaderOrDie();
}

TraceReader::~TraceReader()
{
    // Covers callers that stop decoding before the stream ends.
    flushEventCounter();
}

void
TraceReader::flushEventCounter()
{
    if (events_ != counted_) {
        HEAPMD_COUNTER_ADD("trace.events_decoded",
                           events_ - counted_);
        counted_ = events_;
    }
}

bool
TraceReader::refill()
{
    base_ += static_cast<std::uint64_t>(cur_ - chunk_);
    const unsigned char *data = nullptr;
    const std::size_t got = source_->next(data);
    if (got == 0) {
        chunk_ = cur_ = end_ = nullptr;
        return false;
    }
    chunk_ = cur_ = data;
    end_ = data + got;
    return true;
}

int
TraceReader::getByte()
{
    if (cur_ == end_ && !refill())
        return -1;
    return *cur_++;
}

bool
TraceReader::getVarint(std::uint64_t &value,
                       trace::VarintError &error)
{
    // Fast path: a longest-legal varint plus its overlong witness
    // byte fit in the current chunk, so decode with no bounds checks.
    if (end_ - cur_ > trace::kMaxVarintBytes) {
        const unsigned char *p = cur_;
        std::uint64_t v = 0;
        int shift = 0;
        for (int i = 0; i < trace::kMaxVarintBytes; ++i) {
            const std::uint64_t byte = *p++;
            v |= (byte & 0x7F) << shift;
            if ((byte & 0x80) == 0) {
                cur_ = p;
                value = v;
                error = trace::VarintError::None;
                return true;
            }
            shift += 7;
        }
        // Ten continuation bytes: consuming an eleventh byte makes
        // the encoding overlong (same semantics as the slow path).
        cur_ = p + 1;
        error = trace::VarintError::Overlong;
        return false;
    }

    // Slow path: per-byte across refill boundaries.
    value = 0;
    int shift = 0;
    int length = 0;
    for (;;) {
        const int ch = getByte();
        if (ch < 0) {
            error = trace::VarintError::Truncated;
            return false;
        }
        if (++length > trace::kMaxVarintBytes) {
            error = trace::VarintError::Overlong;
            return false;
        }
        const auto byte = static_cast<std::uint64_t>(ch);
        value |= (byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
            error = trace::VarintError::None;
            return true;
        }
        shift += 7;
    }
}

bool
TraceReader::getU32(std::uint32_t &value)
{
    value = 0;
    for (int i = 0; i < 4; ++i) {
        const int ch = getByte();
        if (ch < 0)
            return false;
        value |= static_cast<std::uint32_t>(ch) << (8 * i);
    }
    return true;
}

void
TraceReader::readHeaderOrDie()
{
    // Same decode + failure contract as trace::readHeader.
    std::uint32_t magic = 0;
    if (!getU32(magic))
        HEAPMD_FATAL("truncated trace header [trace.bad-version]");
    if (magic != trace::kMagic)
        HEAPMD_FATAL("not a HeapMD trace (bad magic) "
                     "[trace.bad-magic]");
    if (!getU32(header_.version))
        HEAPMD_FATAL("truncated trace header [trace.bad-version]");
    if (header_.version != trace::kVersion &&
        header_.version != trace::kVersionFlags) {
        HEAPMD_FATAL("unsupported trace version ", header_.version,
                     " (this build reads versions ", trace::kVersion,
                     " and ", trace::kVersionFlags,
                     ") [trace.bad-version]");
    }
    header_.flags = 0;
    if (header_.version == trace::kVersionFlags &&
        !getU32(header_.flags)) {
        HEAPMD_FATAL("truncated trace header [trace.bad-version]");
    }
}

void
TraceReader::fail(std::string message)
{
    done_ = true;
    malformed_ = true;
    flushEventCounter();
    HEAPMD_COUNTER_INC("trace.malformed");
    if (error_.empty())
        error_ = std::move(message);
}

bool
TraceReader::next(Event &event)
{
    if (done_)
        return false;

    const std::uint64_t event_offset = offset();
    const int tag = getByte();
    if (tag < 0) {
        fail("stream ends at byte " + std::to_string(event_offset) +
             " without the footer marker [trace.no-footer]");
        return false;
    }
    if (static_cast<std::uint8_t>(tag) == trace::kFooterMarker) {
        done_ = true;
        flushEventCounter();
        readFooter();
        return false;
    }

    const auto kind = static_cast<EventKind>(tag);
    std::uint64_t a = 0, b = 0, c = 0;
    trace::VarintError verr = trace::VarintError::None;
    const auto field = [&](std::uint64_t &out) {
        return getVarint(out, verr);
    };
    bool known = true;
    bool ok = true;
    event = Event{};
    event.kind = kind;
    switch (kind) {
      case EventKind::Alloc:
        ok = field(a) && field(b);
        event.addr = a;
        event.size = b;
        break;
      case EventKind::Free:
        ok = field(a);
        event.addr = a;
        break;
      case EventKind::Realloc:
        ok = field(a) && field(b) && field(c);
        event.addr = a;
        event.value = b;
        event.size = c;
        break;
      case EventKind::Write:
        ok = field(a) && field(b);
        event.addr = a;
        event.value = b;
        break;
      case EventKind::Read:
        ok = field(a);
        event.addr = a;
        break;
      case EventKind::FnEnter:
      case EventKind::FnExit:
        ok = field(a);
        event.fn = static_cast<FnId>(a);
        break;
      default:
        known = false;
        ok = false;
        break;
    }

    if (!ok) {
        if (!known) {
            fail("unknown event tag " + std::to_string(tag) +
                 " at byte " + std::to_string(event_offset) +
                 " [trace.unknown-tag]");
        } else {
            fail(varintErrorText(verr) + " in " +
                 eventKindName(kind) + " event at byte " +
                 std::to_string(event_offset));
        }
        return false;
    }
    ++events_;
    return true;
}

void
TraceReader::readFooter()
{
    trace::VarintError verr = trace::VarintError::None;
    std::uint64_t count = 0;
    if (!getVarint(count, verr)) {
        fail(varintErrorText(verr) +
             " in the function-table count [trace.footer-truncated]");
        return;
    }
    // The count is attacker-controlled; names_ grows as names decode
    // rather than pre-reserving a potentially huge claim.
    names_.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, 4096)));
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t len = 0;
        if (!getVarint(len, verr)) {
            fail(varintErrorText(verr) + " in the name length of "
                 "function " + std::to_string(i) + " of " +
                 std::to_string(count) + " [trace.footer-truncated]");
            return;
        }
        // Copy the name chunk-by-chunk: the declared length is only
        // trusted as far as bytes actually exist, so a corrupt
        // multi-gigabyte length cannot drive a huge pre-allocation.
        std::string name;
        name.reserve(static_cast<std::size_t>(
            std::min<std::uint64_t>(len, 4096)));
        std::uint64_t remaining = len;
        bool truncated = false;
        while (remaining > 0) {
            if (cur_ == end_ && !refill()) {
                truncated = true;
                break;
            }
            const auto take = static_cast<std::size_t>(
                std::min<std::uint64_t>(
                    static_cast<std::uint64_t>(end_ - cur_),
                    remaining));
            name.append(reinterpret_cast<const char *>(cur_), take);
            cur_ += take;
            remaining -= take;
        }
        if (truncated) {
            fail("stream ends inside the name of function " +
                 std::to_string(i) + " of " + std::to_string(count) +
                 " [trace.footer-truncated]");
            return;
        }
        names_.push_back(std::move(name));
    }
}

std::uint64_t
replayTrace(TraceReader &reader, Process &process)
{
    HEAPMD_TRACE_SPAN("trace.replay");
    HEAPMD_PHASE_SPAN_NAMED(phase, "phase.decode");
    HEAPMD_COUNTER_INC("trace.replays");
    if (process.registry().size() != 0)
        warn("replaying into a process with a non-empty function "
             "registry; symbolization may be wrong");

    Event event;
    std::uint64_t replayed = 0;
    while (reader.next(event)) {
        process.onEvent(event);
        ++replayed;
    }
    phase.addBytes(reader.offset());
    if (reader.malformed())
        warn("malformed trace: ", reader.error(), "; replayed ",
             replayed, " events");

    // Rebuild the registry so reports symbolize correctly.
    for (const std::string &name : reader.functionNames())
        process.registry().intern(name);
    return replayed;
}

} // namespace heapmd
