#include "trace/trace_reader.hh"

#include "runtime/process.hh"
#include "support/logging.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace_format.hh"

namespace heapmd
{

namespace
{

/** Current stream offset for error messages (-1 when unavailable). */
std::int64_t
offsetOf(std::istream &is)
{
    return static_cast<std::int64_t>(is.tellg());
}

/** Rule id + description of a varint decode failure. */
std::string
varintErrorText(trace::VarintError error)
{
    switch (error) {
      case trace::VarintError::Overlong:
        return "LEB128 varint longer than " +
               std::to_string(trace::kMaxVarintBytes) +
               " bytes [trace.varint-overlong]";
      case trace::VarintError::Truncated:
      case trace::VarintError::None:
        break;
    }
    return "stream ends inside a LEB128 varint "
           "[trace.varint-truncated]";
}

} // namespace

TraceReader::TraceReader(std::istream &is)
    : is_(is)
{
    trace::HeaderError error = trace::HeaderError::None;
    if (!trace::readHeader(is_, header_, &error)) {
        switch (error) {
          case trace::HeaderError::BadMagic:
            HEAPMD_FATAL("not a HeapMD trace (bad magic) "
                         "[trace.bad-magic]");
          case trace::HeaderError::BadVersion:
            HEAPMD_FATAL("unsupported trace version ",
                         header_.version,
                         " (this build reads versions ",
                         trace::kVersion, " and ",
                         trace::kVersionFlags,
                         ") [trace.bad-version]");
          case trace::HeaderError::Truncated:
          case trace::HeaderError::None:
            HEAPMD_FATAL(
                "truncated trace header [trace.bad-version]");
        }
    }
}

void
TraceReader::fail(std::string message)
{
    done_ = true;
    malformed_ = true;
    HEAPMD_COUNTER_INC("trace.malformed");
    if (error_.empty())
        error_ = std::move(message);
}

bool
TraceReader::next(Event &event)
{
    if (done_)
        return false;

    const std::int64_t event_offset = offsetOf(is_);
    const int tag = is_.get();
    if (tag == std::char_traits<char>::eof()) {
        fail("stream ends at byte " + std::to_string(event_offset) +
             " without the footer marker [trace.no-footer]");
        return false;
    }
    if (static_cast<std::uint8_t>(tag) == trace::kFooterMarker) {
        done_ = true;
        readFooter();
        return false;
    }

    const auto kind = static_cast<EventKind>(tag);
    std::uint64_t a = 0, b = 0, c = 0;
    trace::VarintError verr = trace::VarintError::None;
    const auto field = [&](std::uint64_t &out) {
        return trace::getVarint(is_, out, &verr);
    };
    bool known = true;
    bool ok = true;
    event = Event{};
    event.kind = kind;
    switch (kind) {
      case EventKind::Alloc:
        ok = field(a) && field(b);
        event.addr = a;
        event.size = b;
        break;
      case EventKind::Free:
        ok = field(a);
        event.addr = a;
        break;
      case EventKind::Realloc:
        ok = field(a) && field(b) && field(c);
        event.addr = a;
        event.value = b;
        event.size = c;
        break;
      case EventKind::Write:
        ok = field(a) && field(b);
        event.addr = a;
        event.value = b;
        break;
      case EventKind::Read:
        ok = field(a);
        event.addr = a;
        break;
      case EventKind::FnEnter:
      case EventKind::FnExit:
        ok = field(a);
        event.fn = static_cast<FnId>(a);
        break;
      default:
        known = false;
        ok = false;
        break;
    }

    if (!ok) {
        if (!known) {
            fail("unknown event tag " + std::to_string(tag) +
                 " at byte " + std::to_string(event_offset) +
                 " [trace.unknown-tag]");
        } else {
            fail(varintErrorText(verr) + " in " +
                 eventKindName(kind) + " event at byte " +
                 std::to_string(event_offset));
        }
        return false;
    }
    ++events_;
    HEAPMD_COUNTER_INC("trace.events_decoded");
    return true;
}

void
TraceReader::readFooter()
{
    trace::VarintError verr = trace::VarintError::None;
    std::uint64_t count = 0;
    if (!trace::getVarint(is_, count, &verr)) {
        fail(varintErrorText(verr) +
             " in the function-table count [trace.footer-truncated]");
        return;
    }
    names_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t len = 0;
        if (!trace::getVarint(is_, len, &verr)) {
            fail(varintErrorText(verr) + " in the name length of "
                 "function " + std::to_string(i) + " of " +
                 std::to_string(count) + " [trace.footer-truncated]");
            return;
        }
        std::string name(len, '\0');
        is_.read(name.data(), static_cast<std::streamsize>(len));
        if (!is_) {
            fail("stream ends inside the name of function " +
                 std::to_string(i) + " of " + std::to_string(count) +
                 " [trace.footer-truncated]");
            return;
        }
        names_.push_back(std::move(name));
    }
}

std::uint64_t
replayTrace(TraceReader &reader, Process &process)
{
    HEAPMD_TRACE_SPAN("trace.replay");
    HEAPMD_COUNTER_INC("trace.replays");
    if (process.registry().size() != 0)
        warn("replaying into a process with a non-empty function "
             "registry; symbolization may be wrong");

    Event event;
    std::uint64_t replayed = 0;
    while (reader.next(event)) {
        process.onEvent(event);
        ++replayed;
    }
    if (reader.malformed())
        warn("malformed trace: ", reader.error(), "; replayed ",
             replayed, " events");

    // Rebuild the registry so reports symbolize correctly.
    for (const std::string &name : reader.functionNames())
        process.registry().intern(name);
    return replayed;
}

} // namespace heapmd
