#include "trace/trace_reader.hh"

#include "runtime/process.hh"
#include "support/logging.hh"
#include "trace/trace_format.hh"

namespace heapmd
{

TraceReader::TraceReader(std::istream &is)
    : is_(is)
{
    std::uint32_t magic = 0, version = 0;
    if (!trace::getU32(is_, magic) || magic != trace::kMagic)
        HEAPMD_FATAL("not a HeapMD trace (bad magic)");
    if (!trace::getU32(is_, version) || version != trace::kVersion)
        HEAPMD_FATAL("unsupported trace version");
}

bool
TraceReader::next(Event &event)
{
    if (done_)
        return false;

    const int tag = is_.get();
    if (tag == std::char_traits<char>::eof()) {
        done_ = true;
        malformed_ = true; // no footer seen
        return false;
    }
    if (static_cast<std::uint8_t>(tag) == trace::kFooterMarker) {
        done_ = true;
        readFooter();
        return false;
    }

    const auto kind = static_cast<EventKind>(tag);
    std::uint64_t a = 0, b = 0, c = 0;
    bool ok = true;
    event = Event{};
    event.kind = kind;
    switch (kind) {
      case EventKind::Alloc:
        ok = trace::getVarint(is_, a) && trace::getVarint(is_, b);
        event.addr = a;
        event.size = b;
        break;
      case EventKind::Free:
        ok = trace::getVarint(is_, a);
        event.addr = a;
        break;
      case EventKind::Realloc:
        ok = trace::getVarint(is_, a) && trace::getVarint(is_, b) &&
             trace::getVarint(is_, c);
        event.addr = a;
        event.value = b;
        event.size = c;
        break;
      case EventKind::Write:
        ok = trace::getVarint(is_, a) && trace::getVarint(is_, b);
        event.addr = a;
        event.value = b;
        break;
      case EventKind::Read:
        ok = trace::getVarint(is_, a);
        event.addr = a;
        break;
      case EventKind::FnEnter:
      case EventKind::FnExit:
        ok = trace::getVarint(is_, a);
        event.fn = static_cast<FnId>(a);
        break;
      default:
        ok = false;
        break;
    }

    if (!ok) {
        done_ = true;
        malformed_ = true;
        return false;
    }
    ++events_;
    return true;
}

void
TraceReader::readFooter()
{
    std::uint64_t count = 0;
    if (!trace::getVarint(is_, count)) {
        malformed_ = true;
        return;
    }
    names_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t len = 0;
        if (!trace::getVarint(is_, len)) {
            malformed_ = true;
            return;
        }
        std::string name(len, '\0');
        is_.read(name.data(), static_cast<std::streamsize>(len));
        if (!is_) {
            malformed_ = true;
            return;
        }
        names_.push_back(std::move(name));
    }
}

std::uint64_t
replayTrace(TraceReader &reader, Process &process)
{
    if (process.registry().size() != 0)
        warn("replaying into a process with a non-empty function "
             "registry; symbolization may be wrong");

    Event event;
    std::uint64_t replayed = 0;
    while (reader.next(event)) {
        process.onEvent(event);
        ++replayed;
    }
    if (reader.malformed())
        warn("trace ended without a footer; replayed ", replayed,
             " events");

    // Rebuild the registry so reports symbolize correctly.
    for (const std::string &name : reader.functionNames())
        process.registry().intern(name);
    return replayed;
}

} // namespace heapmd
