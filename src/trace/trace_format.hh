/**
 * @file
 * On-disk format of HeapMD event traces.
 *
 * Layout:
 *   magic "HMDT" | u32 version | event* | 0xFF | function table
 *
 * Events are encoded as a one-byte kind tag followed by the kind's
 * fields as LEB128 varints.  The function table (names interned during
 * the run, in id order) is appended as a footer so call stacks can be
 * symbolized after replay.
 */

#ifndef HEAPMD_TRACE_TRACE_FORMAT_HH
#define HEAPMD_TRACE_TRACE_FORMAT_HH

#include <cstdint>
#include <istream>
#include <ostream>

namespace heapmd
{

namespace trace
{

/** File magic, little-endian "HMDT". */
inline constexpr std::uint32_t kMagic = 0x54444d48u;

/** Current format version. */
inline constexpr std::uint32_t kVersion = 1;

/** Footer marker byte terminating the event stream. */
inline constexpr std::uint8_t kFooterMarker = 0xFF;

/**
 * Longest legal LEB128 encoding of a 64-bit value.  Encodings using
 * more bytes are rejected as overlong (audit rule
 * trace.varint-overlong).
 */
inline constexpr int kMaxVarintBytes = 10;

/** Why a getVarint() call failed. */
enum class VarintError
{
    None,      //!< decode succeeded
    Truncated, //!< stream ended inside the varint
    Overlong,  //!< encoding exceeds kMaxVarintBytes
};

/** Write an unsigned LEB128 varint. */
void putVarint(std::ostream &os, std::uint64_t value);

/**
 * Read an unsigned LEB128 varint.
 *
 * Rejects truncated input and overlong (> kMaxVarintBytes) encodings
 * instead of returning partial data.
 *
 * @param error when non-null, receives the failure kind.
 * @return false on end-of-stream or malformed input.
 */
bool getVarint(std::istream &is, std::uint64_t &value,
               VarintError *error = nullptr);

/** Write a fixed-width little-endian u32. */
void putU32(std::ostream &os, std::uint32_t value);

/** Read a fixed-width little-endian u32. */
bool getU32(std::istream &is, std::uint32_t &value);

} // namespace trace

} // namespace heapmd

#endif // HEAPMD_TRACE_TRACE_FORMAT_HH
