/**
 * @file
 * On-disk format of HeapMD event traces.
 *
 * Layout:
 *   magic "HMDT" | u32 version | [u32 flags] | event* | 0xFF
 *   | function table
 *
 * Version 1 headers are magic + version; version 2 headers append a
 * u32 flags word.  The only flag so far is capture provenance: the
 * trace was recorded by the live-capture shim from a real process,
 * so a missing footer means the process was killed mid-run, not that
 * the artifact is corrupt (the trace linter downgrades the
 * truncation rules accordingly).
 *
 * Events are encoded as a one-byte kind tag followed by the kind's
 * fields as LEB128 varints.  The function table (names interned during
 * the run, in id order) is appended as a footer so call stacks can be
 * symbolized after replay.
 */

#ifndef HEAPMD_TRACE_TRACE_FORMAT_HH
#define HEAPMD_TRACE_TRACE_FORMAT_HH

#include <cstdint>
#include <istream>
#include <ostream>

namespace heapmd
{

namespace trace
{

/** File magic, little-endian "HMDT". */
inline constexpr std::uint32_t kMagic = 0x54444d48u;

/** Current format version (header without a flags word). */
inline constexpr std::uint32_t kVersion = 1;

/** Format version whose header carries a u32 flags word. */
inline constexpr std::uint32_t kVersionFlags = 2;

/** Header flag: recorded live by the allocator-interposition shim. */
inline constexpr std::uint32_t kFlagCaptureProvenance = 1u << 0;

/** Footer marker byte terminating the event stream. */
inline constexpr std::uint8_t kFooterMarker = 0xFF;

/** Decoded trace header. */
struct Header
{
    std::uint32_t version = kVersion;
    std::uint32_t flags = 0;

    bool captureProvenance() const
    {
        return (flags & kFlagCaptureProvenance) != 0;
    }

    /** Header size in bytes (8 for v1, 12 for v2). */
    std::uint64_t byteSize() const
    {
        return version >= kVersionFlags ? 12 : 8;
    }
};

/** Why a readHeader() call failed. */
enum class HeaderError
{
    None,       //!< decode succeeded
    Truncated,  //!< stream ended inside the header
    BadMagic,   //!< first four bytes are not "HMDT"
    BadVersion, //!< version is neither kVersion nor kVersionFlags
};

/**
 * Write a trace header.  Zero @p flags emits the compact version-1
 * header; any flag promotes the header to version 2.
 */
void putHeader(std::ostream &os, std::uint32_t flags = 0);

/**
 * Read and validate a trace header (either version).
 * @return false on malformed input, with the failure kind in
 *         @p error when non-null.
 */
bool readHeader(std::istream &is, Header &header,
                HeaderError *error = nullptr);

/**
 * Longest legal LEB128 encoding of a 64-bit value.  Encodings using
 * more bytes are rejected as overlong (audit rule
 * trace.varint-overlong).
 */
inline constexpr int kMaxVarintBytes = 10;

/** Why a getVarint() call failed. */
enum class VarintError
{
    None,      //!< decode succeeded
    Truncated, //!< stream ended inside the varint
    Overlong,  //!< encoding exceeds kMaxVarintBytes
};

/** Write an unsigned LEB128 varint. */
void putVarint(std::ostream &os, std::uint64_t value);

/**
 * Read an unsigned LEB128 varint.
 *
 * Rejects truncated input and overlong (> kMaxVarintBytes) encodings
 * instead of returning partial data.
 *
 * @param error when non-null, receives the failure kind.
 * @return false on end-of-stream or malformed input.
 */
bool getVarint(std::istream &is, std::uint64_t &value,
               VarintError *error = nullptr);

/** Write a fixed-width little-endian u32. */
void putU32(std::ostream &os, std::uint32_t value);

/** Read a fixed-width little-endian u32. */
bool getU32(std::istream &is, std::uint32_t &value);

} // namespace trace

} // namespace heapmd

#endif // HEAPMD_TRACE_TRACE_FORMAT_HH
