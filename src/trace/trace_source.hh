/**
 * @file
 * Byte sources feeding the buffered trace decoder.
 *
 * A Source hands the decoder whole chunks of raw bytes (zero-copy
 * where the backing storage allows), replacing the per-byte virtual
 * istream::get() calls of the original reader.  Three implementations:
 *
 *  - StreamSource: wraps any std::istream behind an internal block
 *    buffer (64 KiB refills by default; the chunk size is overridable
 *    so tests can force refill boundaries through every decode path);
 *  - MemorySource: a single in-memory chunk;
 *  - FileSource: mmap(2)s a whole trace file read-only (falling back
 *    to a heap read where mmap is unavailable) and exposes the
 *    mapping for whole-buffer consumers like the trace linter.
 */

#ifndef HEAPMD_TRACE_TRACE_SOURCE_HH
#define HEAPMD_TRACE_TRACE_SOURCE_HH

#include <cstddef>
#include <istream>
#include <string>
#include <vector>

namespace heapmd
{

namespace trace
{

/** Default StreamSource refill size. */
inline constexpr std::size_t kDefaultChunkSize = 64 * 1024;

/** Pull-based chunk supplier for the buffered decoder. */
class Source
{
  public:
    virtual ~Source() = default;

    /**
     * Fetch the next chunk.  @p data points at the chunk on return
     * and stays valid until the next call; the return value is the
     * chunk size, 0 at end of input.
     */
    virtual std::size_t next(const unsigned char *&data) = 0;
};

/** Block-buffered adapter over any istream. */
class StreamSource : public Source
{
  public:
    explicit StreamSource(std::istream &is,
                          std::size_t chunk_size = kDefaultChunkSize);

    std::size_t next(const unsigned char *&data) override;

  private:
    std::istream &is_;
    std::vector<unsigned char> buffer_;
};

/** A single chunk over caller-owned memory. */
class MemorySource : public Source
{
  public:
    MemorySource(const unsigned char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::size_t next(const unsigned char *&data) override;

  private:
    const unsigned char *data_;
    std::size_t size_;
    bool consumed_ = false;
};

/**
 * Whole-file source, mmap-backed where possible.
 *
 * Construct, then test ok() before use; error() describes an open
 * failure.  data()/size() expose the whole file for consumers that
 * want the flat buffer (the trace linter).
 */
class FileSource : public Source
{
  public:
    explicit FileSource(const std::string &path);
    ~FileSource() override;

    FileSource(const FileSource &) = delete;
    FileSource &operator=(const FileSource &) = delete;

    /** False when the file could not be opened or read. */
    bool ok() const { return ok_; }

    /** Why ok() is false; empty on success. */
    const std::string &error() const { return error_; }

    const unsigned char *data() const { return data_; }
    std::size_t size() const { return size_; }

    std::size_t next(const unsigned char *&data) override;

  private:
    const unsigned char *data_ = nullptr;
    std::size_t size_ = 0;
    std::vector<unsigned char> fallback_;
    std::string error_;
    bool mapped_ = false;
    bool ok_ = false;
    bool consumed_ = false;
};

} // namespace trace

} // namespace heapmd

#endif // HEAPMD_TRACE_TRACE_SOURCE_HH
