/**
 * @file
 * Blocking trace source that tails a file still being written.
 *
 * TraceReader pulls bytes through the trace::Source interface and
 * treats "0 bytes" as end of input, so reading a live capture needs a
 * source that *waits* instead of reporting EOF while the writer is
 * still appending.  TailSource does exactly that: read(2) the file,
 * and when it catches up with the current end, sleep for the poll
 * interval and try again until more bytes land or the file is known
 * to be complete.
 *
 * Waiting is plain bounded sleeping, deliberately NOT inotify: a
 * directory watch wakes the tailer on *every* write the producer
 * makes (thousands per second under a busy capture shim), and each
 * wake costs a full read-check-wait cycle -- measured at tens of
 * microseconds of monitor CPU per wake, it multiplied the monitor's
 * CPU share several-fold for latency nobody needs.  A fixed poll
 * interval bounds both the wake rate (1000/pollMs per second) and
 * the added detection latency (one interval).
 *
 * The finality race is handled by ordering: EOF is only reported
 * when the finalized() predicate was already true *before* the read
 * that returned 0 bytes, so "predicate true, then empty read" proves
 * the writer appended nothing after completing -- a genuine end of
 * stream.  (Trusting an empty read followed by the predicate would
 * race a writer that appends and finalizes in between.)  For cost
 * the predicate is consulted lazily: only once a read comes back
 * empty, with a confirming re-read after it turns true -- never on
 * the data-yielding reads that dominate live streaming.
 */

#ifndef HEAPMD_TRACE_TAIL_SOURCE_HH
#define HEAPMD_TRACE_TAIL_SOURCE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/trace_source.hh"

namespace heapmd
{

namespace trace
{

/**
 * trace::Source over a possibly-still-growing file.
 *
 * Construction does not require the file to exist yet; next() waits
 * for it (the rotation protocol creates successor segments the chain
 * is already waiting on).  The source never reports EOF while the
 * finalized() predicate is false, so a TraceReader above it simply
 * blocks until the writer makes progress.
 */
class TailSource : public Source
{
  public:
    struct Options
    {
        /** Fallback wait granularity, in milliseconds. */
        std::uint64_t pollMs = 50;

        /**
         * True once no further bytes will ever be appended (footer
         * written / writer dead / successor segment exists).  Absent
         * predicate = already final: the source degrades to a plain
         * one-pass file read.
         */
        std::function<bool()> finalized;

        /**
         * Abort check, polled once per wait cycle.  When it returns
         * true the source reports EOF immediately; the reader above
         * sees a truncated trace, which capture provenance already
         * tolerates.
         */
        std::function<bool()> stopped;

        /** Idle hook, pumped once per wait cycle (serve HTTP, ...). */
        std::function<void()> onWait;

        /** Read chunk size in bytes. */
        std::size_t chunkBytes = kDefaultChunkSize;
    };

    TailSource(std::string path, Options options);

    TailSource(const TailSource &) = delete;
    TailSource &operator=(const TailSource &) = delete;

    ~TailSource() override;

    std::size_t next(const unsigned char *&data) override;

    /** Bytes handed to the reader so far. */
    std::uint64_t bytesDelivered() const { return delivered_; }

  private:
    bool ensureOpen();
    void wait();

    std::string path_;
    Options options_;
    std::vector<unsigned char> buffer_;
    std::uint64_t delivered_ = 0;
    int fd_ = -1;
};

} // namespace trace

} // namespace heapmd

#endif // HEAPMD_TRACE_TAIL_SOURCE_HH
