/**
 * @file
 * Streaming trace recorder.
 */

#ifndef HEAPMD_TRACE_TRACE_WRITER_HH
#define HEAPMD_TRACE_TRACE_WRITER_HH

#include <functional>
#include <ostream>

#include "runtime/process.hh"

namespace heapmd
{

/** Construction-time options of a TraceWriter. */
struct TraceWriterOptions
{
    /**
     * Declare capture provenance in the header: the trace is being
     * recorded live from a real process by the interposition shim,
     * so consumers treat a missing footer as a killed process rather
     * than a corrupt artifact.  Emits a version-2 header.
     */
    bool captureProvenance = false;

    /**
     * Durability hook invoked after every flush(); the live-capture
     * sink uses it to fsync the underlying file descriptor so a
     * crashed or SIGKILL'd child still leaves the flushed prefix on
     * disk.  May be empty.
     */
    std::function<void()> syncHook;
};

/**
 * Records the instrumentation event stream to an ostream in the
 * format of trace_format.hh.  Register it as an EventObserver on the
 * monitored Process; call finish() once the run completes to append
 * the function-name footer.
 *
 * Durability: flush() pushes the buffered prefix to the stream (and
 * through the options' syncHook, to disk) without terminating the
 * stream -- everything written so far is then a readable, truncated
 * trace.  finalize() is finish() + flush(): the form the live-capture
 * shim registers via atexit so even an _exit()ing child finalizes.
 */
class TraceWriter : public EventObserver
{
  public:
    /**
     * @param os       destination stream (binary); must outlive us.
     * @param registry registry whose names the footer will carry.
     * @param options  provenance flag and durability hook.
     */
    TraceWriter(std::ostream &os, const FunctionRegistry &registry,
                TraceWriterOptions options = {});

    /** Append one event to the stream. */
    void onEvent(const Event &event, Tick tick) override;

    /**
     * Terminate the event stream and write the function table.
     * Idempotent; no events may be appended afterwards.
     */
    void finish();

    /**
     * Push buffered bytes to the stream and run the durability hook.
     * Safe at any point: the flushed prefix is a readable (truncated
     * but lintable) trace.
     */
    void flush();

    /** finish() + flush(): the atexit-safe terminal operation. */
    void finalize();

    /** Events written so far. */
    std::uint64_t eventCount() const { return events_; }

    /** True once finish()/finalize() wrote the footer. */
    bool finished() const { return finished_; }

  private:
    std::ostream &os_;
    const FunctionRegistry &registry_;
    TraceWriterOptions options_;
    std::uint64_t events_ = 0;
    bool finished_ = false;
};

} // namespace heapmd

#endif // HEAPMD_TRACE_TRACE_WRITER_HH
