/**
 * @file
 * Streaming trace recorder.
 */

#ifndef HEAPMD_TRACE_TRACE_WRITER_HH
#define HEAPMD_TRACE_TRACE_WRITER_HH

#include <ostream>

#include "runtime/process.hh"

namespace heapmd
{

/**
 * Records the instrumentation event stream to an ostream in the
 * format of trace_format.hh.  Register it as an EventObserver on the
 * monitored Process; call finish() once the run completes to append
 * the function-name footer.
 */
class TraceWriter : public EventObserver
{
  public:
    /**
     * @param os       destination stream (binary); must outlive us.
     * @param registry registry whose names the footer will carry.
     */
    TraceWriter(std::ostream &os, const FunctionRegistry &registry);

    /** Append one event to the stream. */
    void onEvent(const Event &event, Tick tick) override;

    /**
     * Terminate the event stream and write the function table.
     * Idempotent; no events may be appended afterwards.
     */
    void finish();

    /** Events written so far. */
    std::uint64_t eventCount() const { return events_; }

  private:
    std::ostream &os_;
    const FunctionRegistry &registry_;
    std::uint64_t events_ = 0;
    bool finished_ = false;
};

} // namespace heapmd

#endif // HEAPMD_TRACE_TRACE_WRITER_HH
