#include "trace/segment_set.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include <signal.h>
#include <sys/stat.h>

namespace heapmd
{

namespace trace
{

namespace
{

namespace fs = std::filesystem;

/** Base path without a trailing ".heapmd" extension. */
std::string
segmentStem(const std::string &base)
{
    const std::string ext(kSegmentExtension);
    if (base.size() > ext.size() &&
        base.compare(base.size() - ext.size(), ext.size(), ext) == 0)
        return base.substr(0, base.size() - ext.size());
    return base;
}

bool
fileExists(const std::string &path)
{
    std::error_code ec;
    return fs::exists(path, ec);
}

std::uint64_t
fileSize(const std::string &path)
{
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

bool
processAlive(std::uint32_t pid)
{
    if (pid == 0)
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return true;
    return errno != ESRCH;
}

} // namespace

std::string
segmentPath(const std::string &base, std::uint64_t index,
            bool compressed)
{
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".%06llu",
                  static_cast<unsigned long long>(index));
    return segmentStem(base) + suffix +
           (compressed ? kSegmentGzExtension : kSegmentExtension);
}

std::string
resolveSegmentPath(const std::string &base, std::uint64_t index)
{
    const std::string plain = segmentPath(base, index, false);
    if (fileExists(plain))
        return plain;
    const std::string gz = segmentPath(base, index, true);
    if (fileExists(gz))
        return gz;
    return {};
}

bool
segmentFileExists(const std::string &base, std::uint64_t index)
{
    return !resolveSegmentPath(base, index).empty();
}

std::string
segmentManifestPath(const std::string &base)
{
    return segmentStem(base) + ".manifest";
}

bool
loadSegmentManifest(const std::string &path, SegmentManifest &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string magic;
    SegmentManifest parsed;
    if (!(in >> magic >> parsed.version) || magic != kManifestMagic)
        return false;
    std::string line;
    std::getline(in, line); // rest of the magic line
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        std::string name;
        std::uint64_t value = 0;
        if (!(fields >> name >> value))
            continue;
        if (name == "pid")
            parsed.pid = static_cast<std::uint32_t>(value);
        else if (name == "rotate_bytes")
            parsed.rotateBytes = value;
        else if (name == "segments")
            parsed.segments = value;
        else if (name == "closed")
            parsed.closed = value != 0;
        else if (name == "compress")
            parsed.compress = value != 0;
        else if (name == "raw_bytes")
            parsed.rawBytes = value;
        else if (name == "compressed_bytes")
            parsed.compressedBytes = value;
        // Unknown names are ignored so the format can grow.
    }
    out = parsed;
    return true;
}

bool
saveSegmentManifest(const std::string &path,
                    const SegmentManifest &manifest)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream outfile(tmp, std::ios::trunc);
        if (!outfile)
            return false;
        outfile << kManifestMagic << ' ' << manifest.version << '\n'
                << "pid " << manifest.pid << '\n'
                << "rotate_bytes " << manifest.rotateBytes << '\n'
                << "segments " << manifest.segments << '\n'
                << "closed " << (manifest.closed ? 1 : 0) << '\n'
                << "compress " << (manifest.compress ? 1 : 0) << '\n'
                << "raw_bytes " << manifest.rawBytes << '\n'
                << "compressed_bytes " << manifest.compressedBytes
                << '\n';
        if (!outfile.flush())
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::vector<std::uint64_t>
listSegmentIndices(const std::string &base)
{
    const std::string stem = segmentStem(base);
    const fs::path stem_path(stem);
    const std::string prefix = stem_path.filename().string() + ".";
    std::string dir = stem_path.parent_path().string();
    if (dir.empty())
        dir = ".";

    std::vector<std::uint64_t> indices;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        // Either encoding counts; a compressing writer produces gz
        // names only, but a reader must accept whatever is on disk.
        std::string ext(kSegmentExtension);
        if (name.size() > prefix.size() +
                              std::strlen(kSegmentGzExtension) &&
            name.compare(name.size() -
                             std::strlen(kSegmentGzExtension),
                         std::strlen(kSegmentGzExtension),
                         kSegmentGzExtension) == 0)
            ext = kSegmentGzExtension;
        if (name.size() <= prefix.size() + ext.size() ||
            name.compare(name.size() - ext.size(), ext.size(), ext) !=
                0)
            continue;
        const std::string digits = name.substr(
            prefix.size(), name.size() - prefix.size() - ext.size());
        if (digits.empty())
            continue;
        std::uint64_t index = 0;
        bool numeric = true;
        for (const char c : digits) {
            if (!std::isdigit(static_cast<unsigned char>(c))) {
                numeric = false;
                break;
            }
            index = index * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (numeric)
            indices.push_back(index);
    }
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()),
                  indices.end());
    return indices;
}

SegmentChain::SegmentChain(std::string base, Options options)
    : base_(std::move(base)), options_(std::move(options))
{
    // Degrade to a plain single-file read when the base path is an
    // ordinary trace and no segment 0 exists (non-rotated capture).
    if (!segmentFileExists(base_, 0) && fileExists(base_))
        single_file_ = true;
}

void
SegmentChain::fail(std::string message)
{
    failed_ = true;
    finished_ = true;
    error_ = std::move(message);
}

bool
SegmentChain::setClosed() const
{
    // This runs on every tail-read attempt, thousands of times per
    // second against a busy writer, so re-parse only when the file
    // identity changed (every manifest save is a tmp+rename, hence a
    // new inode -- see the member comment).
    const std::string path = segmentManifestPath(base_);
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return false; // no manifest: successor/stop checks decide
    const std::int64_t mtime_ns =
        static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
        st.st_mtim.tv_nsec;
    if (!manifest_cached_ ||
        static_cast<std::uint64_t>(st.st_ino) != manifest_ino_ ||
        static_cast<std::uint64_t>(st.st_size) != manifest_size_ ||
        mtime_ns != manifest_mtime_ns_) {
        SegmentManifest manifest;
        if (!loadSegmentManifest(path, manifest))
            return false;
        cached_manifest_ = manifest;
        manifest_cached_ = true;
        manifest_ino_ = static_cast<std::uint64_t>(st.st_ino);
        manifest_size_ = static_cast<std::uint64_t>(st.st_size);
        manifest_mtime_ns_ = mtime_ns;
    }
    if (cached_manifest_.closed)
        return true;
    // A writer that died without closing the manifest will never
    // append again either.
    return cached_manifest_.pid != 0 &&
           !processAlive(cached_manifest_.pid);
}

bool
SegmentChain::waitStep()
{
    if (options_.stopped && options_.stopped())
        return false;
    if (options_.onWait)
        options_.onWait();
    const std::uint64_t ms = options_.pollMs ? options_.pollMs : 50;
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(ms / 1000);
    ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
    ::nanosleep(&ts, nullptr);
    return true;
}

bool
SegmentChain::openNext()
{
    if (finished_ || failed_)
        return false;
    std::string path;
    for (;;) {
        path = single_file_ ? base_
                            : resolveSegmentPath(base_, index_);
        if (!path.empty() && fileExists(path))
            break;
        if (single_file_) {
            finished_ = true; // vanished from under us
            return false;
        }
        // A later index existing while this one is absent is a hole
        // the rotation protocol cannot produce: the set is damaged.
        for (const std::uint64_t present : listSegmentIndices(base_)) {
            if (present > index_) {
                fail("segment " + std::to_string(index_) +
                     " missing while segment " +
                     std::to_string(present) +
                     " exists: segment set has a gap");
                return false;
            }
        }
        if (!options_.follow || setClosed()) {
            finished_ = true;
            return false;
        }
        if (!waitStep()) {
            finished_ = true; // stopped while waiting
            return false;
        }
    }

    TailSource::Options tail;
    tail.pollMs = options_.pollMs;
    tail.stopped = options_.stopped;
    tail.onWait = options_.onWait;
    if (!options_.follow) {
        // Whole file is final: plain one-pass read.
        tail.finalized = [] { return true; };
    } else {
        const bool probe_successor = !single_file_;
        const std::uint64_t successor_index = index_ + 1;
        tail.finalized = [this, probe_successor, successor_index] {
            if (probe_successor &&
                segmentFileExists(base_, successor_index))
                return true; // successor exists => segment complete
            return setClosed();
        };
    }
    source_ = std::make_unique<TailSource>(path, std::move(tail));
    trace::Source *bytes = source_.get();
    if (isGzipPath(path)) {
        inflate_ = std::make_unique<GzipSource>(*source_);
        bytes = inflate_.get();
    }
    reader_ = std::make_unique<TraceReader>(*bytes);
    return true;
}

bool
SegmentChain::next(Event &event)
{
    for (;;) {
        if (!reader_ && !openNext())
            return false;
        if (reader_->next(event)) {
            ++events_;
            return true;
        }

        // Segment ended: clean footer or a truncated tail.  A corrupt
        // gzip stream (not a mere truncation) breaks the chain like
        // any mid-chain damage would.
        bool malformed = reader_->malformed();
        std::string why = reader_->error();
        if (inflate_ && inflate_->failed()) {
            malformed = true;
            why = inflate_->error();
        }
        consumed_bytes_ += reader_->offset();
        if (!malformed)
            names_ = reader_->functionNames();
        ++segments_consumed_;
        reader_.reset();
        inflate_.reset();
        source_.reset();

        if (malformed) {
            // Only the newest segment may legitimately be truncated:
            // rotation finalizes a segment before creating its
            // successor.
            if (!single_file_ &&
                segmentFileExists(base_, index_ + 1)) {
                fail("segment " + std::to_string(index_) +
                     " is malformed mid-chain: " + why);
                return false;
            }
            truncated_tail_ = true;
            finished_ = true;
            return false;
        }
        if (single_file_) {
            finished_ = true;
            return false;
        }
        ++index_;
    }
}

std::uint64_t
SegmentChain::bytesConsumed() const
{
    return consumed_bytes_ + (reader_ ? reader_->offset() : 0);
}

std::uint64_t
SegmentChain::tailLagBytes() const
{
    const std::uint64_t current_consumed =
        reader_ ? reader_->offset() : 0;
    std::uint64_t on_disk = 0;
    if (single_file_) {
        on_disk = fileSize(base_);
        const std::uint64_t total = consumed_bytes_ + current_consumed;
        return on_disk > total ? on_disk - total : 0;
    }
    // Probe indices upward from the current segment instead of
    // listing the directory: the rotation protocol leaves no holes,
    // so the first missing index ends the set, and the monitor calls
    // this on every wait cycle -- a readdir here costs ~300us per
    // call against the ~1us of a couple of stat probes.
    for (std::uint64_t idx = index_;; ++idx) {
        const std::string path = resolveSegmentPath(base_, idx);
        if (path.empty())
            break;
        on_disk += fileSize(path);
    }
    return on_disk > current_consumed ? on_disk - current_consumed
                                      : 0;
}

} // namespace trace

} // namespace heapmd
