#include "trace/gzip_source.hh"

#include <cstring>
#include <utility>

#if HEAPMD_HAVE_ZLIB
#include <zlib.h>
#endif

namespace heapmd
{

namespace trace
{

bool
gzipSupported()
{
#if HEAPMD_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

bool
isGzipPath(const std::string &path)
{
    static constexpr const char kExt[] = ".gz";
    const std::size_t n = sizeof(kExt) - 1;
    return path.size() > n &&
           path.compare(path.size() - n, n, kExt) == 0;
}

#if HEAPMD_HAVE_ZLIB

namespace
{

/** inflateInit2 windowBits: gzip wrapper only, max window. */
constexpr int kGzipWindowBits = 15 + 16;

} // namespace

GzipSource::GzipSource(Source &raw, std::size_t chunk_size)
    : raw_(raw), out_(chunk_size ? chunk_size : kDefaultChunkSize)
{
    auto *strm = new z_stream();
    std::memset(strm, 0, sizeof(*strm));
    if (::inflateInit2(strm, kGzipWindowBits) != Z_OK) {
        delete strm;
        fail("inflateInit2 failed");
        return;
    }
    stream_ = strm;
}

GzipSource::~GzipSource()
{
    if (stream_ != nullptr) {
        auto *strm = static_cast<z_stream *>(stream_);
        ::inflateEnd(strm);
        delete strm;
    }
}

void
GzipSource::fail(std::string message)
{
    failed_ = true;
    done_ = true;
    error_ = std::move(message);
}

std::size_t
GzipSource::next(const unsigned char *&data)
{
    if (done_ || stream_ == nullptr)
        return 0;
    auto *strm = static_cast<z_stream *>(stream_);

    for (;;) {
        if (in_len_ == 0 && !raw_eof_) {
            // May block inside a TailSource until the writer appends
            // or the segment is known final -- exactly what live
            // following wants.
            in_len_ = raw_.next(in_);
            if (in_len_ == 0)
                raw_eof_ = true;
        }

        strm->next_in =
            const_cast<Bytef *>(static_cast<const Bytef *>(in_));
        strm->avail_in = static_cast<uInt>(in_len_);
        strm->next_out = out_.data();
        strm->avail_out = static_cast<uInt>(out_.size());

        const int rc = ::inflate(strm, Z_NO_FLUSH);

        const std::size_t consumed = in_len_ - strm->avail_in;
        in_ += consumed;
        in_len_ -= consumed;
        const std::size_t produced = out_.size() - strm->avail_out;

        if (rc == Z_STREAM_END) {
            // One gzip member per segment; trailing bytes would be
            // stray garbage and are ignored.
            done_ = true;
            if (produced == 0)
                return 0;
            data = out_.data();
            return produced;
        }
        if (rc != Z_OK && rc != Z_BUF_ERROR) {
            fail(std::string("gzip stream corrupt: ") +
                 (strm->msg != nullptr ? strm->msg : zError(rc)));
            return 0;
        }
        if (produced > 0) {
            data = out_.data();
            return produced;
        }
        if (raw_eof_ && in_len_ == 0) {
            // Input dried up mid-stream: a truncated tail.  Surface
            // it as EOF; the reader above records the missing footer.
            done_ = true;
            return 0;
        }
        // Z_BUF_ERROR with input still pending cannot make progress.
        if (rc == Z_BUF_ERROR && in_len_ > 0 && produced == 0) {
            fail("gzip inflate stalled");
            return 0;
        }
    }
}

bool
gzipDecodeFile(const std::string &path,
               std::vector<unsigned char> &out, std::string &error)
{
    FileSource file(path);
    if (!file.ok()) {
        error = file.error().empty()
                    ? "cannot open '" + path + "'"
                    : file.error();
        return false;
    }
    GzipSource gz(file);
    out.clear();
    const unsigned char *chunk = nullptr;
    std::size_t n = 0;
    while ((n = gz.next(chunk)) > 0)
        out.insert(out.end(), chunk, chunk + n);
    if (gz.failed()) {
        error = "'" + path + "': " + gz.error();
        return false;
    }
    return true;
}

#else // !HEAPMD_HAVE_ZLIB

GzipSource::GzipSource(Source &raw, std::size_t chunk_size)
    : raw_(raw), out_(chunk_size ? chunk_size : 1)
{
    fail("heapmd was built without zlib; cannot read gzip segments");
}

GzipSource::~GzipSource() = default;

void
GzipSource::fail(std::string message)
{
    failed_ = true;
    done_ = true;
    error_ = std::move(message);
}

std::size_t
GzipSource::next(const unsigned char *&data)
{
    (void)data;
    return 0;
}

bool
gzipDecodeFile(const std::string &path,
               std::vector<unsigned char> &out, std::string &error)
{
    (void)path;
    out.clear();
    error = "heapmd was built without zlib; cannot read gzip "
            "segments";
    return false;
}

#endif // HEAPMD_HAVE_ZLIB

} // namespace trace

} // namespace heapmd
