/**
 * @file
 * Streaming gzip inflation for compressed trace segments.
 *
 * When segment compression is armed (HEAPMD_CAPTURE_COMPRESS) the
 * shim writes ".heapmd.gz" rotation segments: each one an ordinary
 * HMDT trace pushed through a single gzip member, with a Z_SYNC_FLUSH
 * at every durability point so the decodable prefix grows in lockstep
 * with the fsync'd prefix -- a crashed writer leaves a truncated but
 * decodable tail, exactly the invariant uncompressed segments give.
 *
 * GzipSource is the reading half: a trace::Source decorator that
 * inflates chunks pulled from an inner source (FileSource for batch
 * reads, TailSource for live following).  A truncated gzip stream is
 * reported as a plain end of input -- the TraceReader above then sees
 * a trace without a footer, which capture provenance already
 * tolerates -- while a corrupt stream (bad CRC, garbage bytes) sets
 * failed().
 *
 * Everything here is gated on HEAPMD_HAVE_ZLIB; without zlib the
 * class still links but fails immediately with a clear error, so
 * callers need no conditional compilation of their own.
 */

#ifndef HEAPMD_TRACE_GZIP_SOURCE_HH
#define HEAPMD_TRACE_GZIP_SOURCE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace_source.hh"

namespace heapmd
{

namespace trace
{

/** True when this build can write and read gzip segments. */
bool gzipSupported();

/** True when @p path names a gzip-compressed segment or trace. */
bool isGzipPath(const std::string &path);

/**
 * Inflate the whole gzip file at @p path into @p out.
 * A truncated tail decodes to the bytes that made it to disk; only a
 * corrupt stream (or a missing file / missing zlib) fails.
 */
bool gzipDecodeFile(const std::string &path,
                    std::vector<unsigned char> &out,
                    std::string &error);

/** Inflating decorator over any trace::Source. */
class GzipSource : public Source
{
  public:
    explicit GzipSource(Source &raw,
                        std::size_t chunk_size = kDefaultChunkSize);
    ~GzipSource() override;

    GzipSource(const GzipSource &) = delete;
    GzipSource &operator=(const GzipSource &) = delete;

    std::size_t next(const unsigned char *&data) override;

    /** True when the stream was corrupt (not merely truncated). */
    bool failed() const { return failed_; }

    /** Why failed() is true; empty otherwise. */
    const std::string &error() const { return error_; }

  private:
    void fail(std::string message);

    Source &raw_;
    std::vector<unsigned char> out_;
    //! Opaque z_stream (zlib types stay out of this header).
    void *stream_ = nullptr;
    const unsigned char *in_ = nullptr;
    std::size_t in_len_ = 0;
    bool raw_eof_ = false;
    bool done_ = false;
    bool failed_ = false;
    std::string error_;
};

} // namespace trace

} // namespace heapmd

#endif // HEAPMD_TRACE_GZIP_SOURCE_HH
