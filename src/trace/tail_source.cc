#include "trace/tail_source.hh"

#include <cerrno>
#include <ctime>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace heapmd
{

namespace trace
{

TailSource::TailSource(std::string path, Options options)
    : path_(std::move(path)),
      options_(std::move(options)),
      buffer_(options_.chunkBytes ? options_.chunkBytes
                                  : kDefaultChunkSize)
{
}

TailSource::~TailSource()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
TailSource::ensureOpen()
{
    if (fd_ >= 0)
        return true;
    fd_ = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
    return fd_ >= 0;
}

void
TailSource::wait()
{
    if (options_.onWait)
        options_.onWait();
    const int timeout_ms =
        options_.pollMs ? static_cast<int>(options_.pollMs) : 50;
    struct timespec ts;
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
    ::nanosleep(&ts, nullptr);
}

std::size_t
TailSource::next(const unsigned char *&data)
{
    for (;;) {
        if (options_.stopped && options_.stopped())
            return 0;
        if (!ensureOpen()) {
            if (!options_.finalized || options_.finalized())
                return 0; // complete and the file never appeared
            wait();
            continue;
        }
        ssize_t got = ::read(fd_, buffer_.data(), buffer_.size());
        if (got > 0) {
            data = buffer_.data();
            delivered_ += static_cast<std::uint64_t>(got);
            return static_cast<std::size_t>(got);
        }
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return 0; // read error: reader reports the truncation
        }

        // Caught up with the writer.  Finality is only consulted
        // here, NOT before every read: while streaming a busy
        // capture the reads are tiny and frequent, and the predicate
        // (stat calls, manifest checks) would dominate the decode
        // cost.  The anti-race ordering from the file comment is
        // preserved by confirming EOF with one more read AFTER the
        // predicate turns true -- "predicate was already true, then
        // read returned 0" still proves nothing landed afterwards.
        if (!options_.finalized || options_.finalized()) {
            got = ::read(fd_, buffer_.data(), buffer_.size());
            if (got > 0) {
                data = buffer_.data();
                delivered_ += static_cast<std::uint64_t>(got);
                return static_cast<std::size_t>(got);
            }
            if (got == 0)
                return 0; // complete before the read: real EOF
            if (errno != EINTR)
                return 0; // read error: reader reports truncation
            continue;
        }
        wait();
    }
}

} // namespace trace

} // namespace heapmd
