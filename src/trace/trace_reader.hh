/**
 * @file
 * Trace decoder and replay.
 */

#ifndef HEAPMD_TRACE_TRACE_READER_HH
#define HEAPMD_TRACE_TRACE_READER_HH

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "runtime/events.hh"
#include "trace/trace_format.hh"
#include "trace/trace_source.hh"

namespace heapmd
{

class Process;

/**
 * Pull-based decoder for traces written by TraceWriter.
 *
 * Decoding runs over an internal block cursor fed whole chunks by a
 * trace::Source (64 KiB refills for streams, the whole mapping for
 * mmap-backed files), so the hot path never makes a virtual per-byte
 * stream call.  Malformed-trace errors carry the same rule ids and
 * byte offsets as the audit linter: offsets count bytes from the
 * start of the trace, independent of how the source chunks it.
 *
 * Usage: construct, then call next() until it returns false; the
 * function table is available once the footer has been consumed.
 */
class TraceReader
{
  public:
    /**
     * Decode from a stream through an internal StreamSource.
     * @param is source stream (binary); must outlive us.
     * @param chunk_size refill size; tests shrink it to force chunk
     *        boundaries through every decode path.
     */
    explicit TraceReader(std::istream &is,
                         std::size_t chunk_size =
                             trace::kDefaultChunkSize);

    /** Decode from an external source (mmap file, memory). */
    explicit TraceReader(trace::Source &source);

    /** Flushes the batched trace.events_decoded counter. */
    ~TraceReader();

    /**
     * Decode the next event into @p event.
     * @return false at the footer (function table is then parsed) or
     *         on a truncated stream (malformed() will be true).
     */
    bool next(Event &event);

    /** True when the stream ended without a well-formed footer. */
    bool malformed() const { return malformed_; }

    /**
     * Description of why the stream is malformed, referencing the
     * audit rule id (trace.varint-truncated, trace.varint-overlong,
     * trace.no-footer, ...) and the byte offset where decoding
     * stopped.  Empty while malformed() is false.
     */
    const std::string &error() const { return error_; }

    /** Function names from the footer, indexed by FnId. */
    const std::vector<std::string> &functionNames() const
    {
        return names_;
    }

    /** Events decoded so far. */
    std::uint64_t eventCount() const { return events_; }

    /** Bytes consumed from the start of the trace. */
    std::uint64_t offset() const
    {
        return base_ + static_cast<std::uint64_t>(cur_ - chunk_);
    }

    /** The decoded header (version, flags). */
    const trace::Header &header() const { return header_; }

    /**
     * True when the header declares live-capture provenance: the
     * trace was recorded from a real process by the interposition
     * shim, so a truncated stream means the process died mid-run.
     */
    bool captureProvenance() const
    {
        return header_.captureProvenance();
    }

  private:
    void readHeaderOrDie();
    void readFooter();
    void fail(std::string message);

    /**
     * Publish decoded-event telemetry accumulated since the last
     * flush.  The counter is batched — one atomic add per stream end
     * instead of one per event — because the LOCK'd increment is
     * measurable at decode rates of tens of millions of events/sec.
     */
    void flushEventCounter();

    bool refill();
    int getByte();
    bool getVarint(std::uint64_t &value, trace::VarintError &error);
    bool getU32(std::uint32_t &value);

    trace::Header header_;
    std::unique_ptr<trace::StreamSource> owned_;
    trace::Source *source_;
    const unsigned char *chunk_ = nullptr;
    const unsigned char *cur_ = nullptr;
    const unsigned char *end_ = nullptr;
    std::uint64_t base_ = 0;
    std::vector<std::string> names_;
    std::string error_;
    std::uint64_t events_ = 0;
    std::uint64_t counted_ = 0;
    bool done_ = false;
    bool malformed_ = false;
};

/**
 * Replay a whole trace into @p process.
 *
 * The process must be fresh (its function registry empty) so that the
 * interned ids assigned during replay match the ids in the trace.
 *
 * @return number of events replayed.
 */
std::uint64_t replayTrace(TraceReader &reader, Process &process);

} // namespace heapmd

#endif // HEAPMD_TRACE_TRACE_READER_HH
