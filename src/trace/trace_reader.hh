/**
 * @file
 * Trace decoder and replay.
 */

#ifndef HEAPMD_TRACE_TRACE_READER_HH
#define HEAPMD_TRACE_TRACE_READER_HH

#include <istream>
#include <string>
#include <vector>

#include "runtime/events.hh"
#include "trace/trace_format.hh"

namespace heapmd
{

class Process;

/**
 * Pull-based decoder for traces written by TraceWriter.
 *
 * Usage: construct, then call next() until it returns false; the
 * function table is available once the footer has been consumed.
 */
class TraceReader
{
  public:
    /** @param is source stream (binary); must outlive us. */
    explicit TraceReader(std::istream &is);

    /**
     * Decode the next event into @p event.
     * @return false at the footer (function table is then parsed) or
     *         on a truncated stream (malformed() will be true).
     */
    bool next(Event &event);

    /** True when the stream ended without a well-formed footer. */
    bool malformed() const { return malformed_; }

    /**
     * Description of why the stream is malformed, referencing the
     * audit rule id (trace.varint-truncated, trace.varint-overlong,
     * trace.no-footer, ...) and the byte offset where decoding
     * stopped.  Empty while malformed() is false.
     */
    const std::string &error() const { return error_; }

    /** Function names from the footer, indexed by FnId. */
    const std::vector<std::string> &functionNames() const
    {
        return names_;
    }

    /** Events decoded so far. */
    std::uint64_t eventCount() const { return events_; }

    /** The decoded header (version, flags). */
    const trace::Header &header() const { return header_; }

    /**
     * True when the header declares live-capture provenance: the
     * trace was recorded from a real process by the interposition
     * shim, so a truncated stream means the process died mid-run.
     */
    bool captureProvenance() const
    {
        return header_.captureProvenance();
    }

  private:
    void readFooter();
    void fail(std::string message);

    trace::Header header_;
    std::istream &is_;
    std::vector<std::string> names_;
    std::string error_;
    std::uint64_t events_ = 0;
    bool done_ = false;
    bool malformed_ = false;
};

/**
 * Replay a whole trace into @p process.
 *
 * The process must be fresh (its function registry empty) so that the
 * interned ids assigned during replay match the ids in the trace.
 *
 * @return number of events replayed.
 */
std::uint64_t replayTrace(TraceReader &reader, Process &process);

} // namespace heapmd

#endif // HEAPMD_TRACE_TRACE_READER_HH
