#include "trace/trace_writer.hh"

#include <utility>

#include "support/logging.hh"
#include "trace/trace_format.hh"

namespace heapmd
{

TraceWriter::TraceWriter(std::ostream &os,
                         const FunctionRegistry &registry,
                         TraceWriterOptions options)
    : os_(os), registry_(registry), options_(std::move(options))
{
    trace::putHeader(os_, options_.captureProvenance
                              ? trace::kFlagCaptureProvenance
                              : 0);
}

void
TraceWriter::onEvent(const Event &event, Tick tick)
{
    (void)tick; // ticks are implicit: one per event
    if (finished_)
        HEAPMD_PANIC("event appended to a finished trace");

    os_.put(static_cast<char>(event.kind));
    switch (event.kind) {
      case EventKind::Alloc:
        trace::putVarint(os_, event.addr);
        trace::putVarint(os_, event.size);
        break;
      case EventKind::Free:
        trace::putVarint(os_, event.addr);
        break;
      case EventKind::Realloc:
        trace::putVarint(os_, event.addr);
        trace::putVarint(os_, event.value);
        trace::putVarint(os_, event.size);
        break;
      case EventKind::Write:
        trace::putVarint(os_, event.addr);
        trace::putVarint(os_, event.value);
        break;
      case EventKind::Read:
        trace::putVarint(os_, event.addr);
        break;
      case EventKind::FnEnter:
      case EventKind::FnExit:
        trace::putVarint(os_, event.fn);
        break;
    }
    ++events_;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_.put(static_cast<char>(trace::kFooterMarker));
    trace::putVarint(os_, registry_.size());
    for (std::size_t id = 0; id < registry_.size(); ++id) {
        const std::string name = registry_.name(static_cast<FnId>(id));
        trace::putVarint(os_, name.size());
        os_.write(name.data(),
                  static_cast<std::streamsize>(name.size()));
    }
    os_.flush();
}

void
TraceWriter::flush()
{
    os_.flush();
    if (options_.syncHook)
        options_.syncHook();
}

void
TraceWriter::finalize()
{
    finish();
    flush();
}

} // namespace heapmd
