#include "detector/execution_checker.hh"

#include <algorithm>
#include <cmath>

#include "support/stats.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

std::size_t
CheckResult::countOf(BugClass klass) const
{
    return static_cast<std::size_t>(
        std::count_if(reports.begin(), reports.end(),
                      [klass](const BugReport &r) {
                          return r.klass == klass;
                      }));
}

ExecutionChecker::ExecutionChecker(const HeapModel &model,
                                   CheckerConfig config)
    : model_(model), config_(config),
      detector_(model, config.detector)
{
}

void
ExecutionChecker::attach(Process &process)
{
    detector_.attach(process);
}

CheckResult
ExecutionChecker::finalize(const Process &process)
{
    return finalize(process.series(), process.now());
}

CheckResult
ExecutionChecker::finalize(const MetricSeries &series, Tick now)
{
    HEAPMD_TRACE_SPAN("checker.finalize");
    detector_.finish();

    CheckResult result;
    result.samplesChecked = detector_.samplesChecked();

    // The model was calibrated with the first and last trimFraction
    // of metric computation points ignored (startup/shutdown, Section
    // 2.1); violations inside those windows are expected and are not
    // anomalies.  Keep only reports from the calibrated window.
    const auto [first, last] =
        series.trimmedRange(config_.thresholds.trimFraction);
    for (const BugReport &report : detector_.reports()) {
        if (report.pointIndex >= first && report.pointIndex < last)
            result.reports.push_back(report);
    }

    checkPersistentViolation(series, now, result);
    if (config_.reportPoorlyDisguised)
        checkPoorlyDisguised(series, now, result);
    if (config_.reportPathological)
        checkPathological(series, now, result);
    return result;
}

void
ExecutionChecker::checkPersistentViolation(const MetricSeries &series,
                                           Tick now,
                                           CheckResult &result) const
{
    const auto [first, last] =
        series.trimmedRange(config_.thresholds.trimFraction);
    if (last <= first)
        return;

    for (const HeapModel::Entry &e : model_.entries()) {
        const bool already_reported = std::any_of(
            result.reports.begin(), result.reports.end(),
            [&e](const BugReport &r) { return r.metric == e.id; });
        if (already_reported)
            continue;

        const double slack = boundSlack(config_.detector, e);
        const double lo = e.minValue - slack;
        const double hi = e.maxValue + slack;

        std::size_t below = 0, above = 0;
        double worst = 0.0;
        double worst_excess = -1.0;
        std::uint64_t worst_point = first;
        for (std::size_t i = first; i < last; ++i) {
            const double v = series.at(i).value(e.id);
            double excess = -1.0;
            if (v < lo) {
                ++below;
                excess = lo - v;
            } else if (v > hi) {
                ++above;
                excess = v - hi;
            }
            if (excess > worst_excess) {
                worst_excess = excess;
                worst = v;
                worst_point = series.at(i).pointIndex;
            }
        }
        const double n = static_cast<double>(last - first);
        const double frac =
            static_cast<double>(std::max(below, above)) / n;
        if (frac < config_.persistentViolationFraction)
            continue;

        BugReport report;
        report.klass = BugClass::HeapAnomaly;
        report.metric = e.id;
        report.direction = above >= below
                               ? AnomalyDirection::AboveMax
                               : AnomalyDirection::BelowMin;
        report.observedValue = worst;
        report.calibratedMin = e.minValue;
        report.calibratedMax = e.maxValue;
        report.tick = now;
        report.pointIndex = worst_point;
        result.reports.push_back(std::move(report));
    }
}

void
ExecutionChecker::checkPoorlyDisguised(const MetricSeries &series,
                                       Tick now,
                                       CheckResult &result) const
{
    // A poorly-disguised bug leaves a stable metric *within* range but
    // pinned at a calibrated extreme (e.g. the oct-tree-becomes-DAG
    // bug of Section 4.3).  Skip metrics that already produced a
    // range-violation report: the anomaly subsumes this weaker signal.
    for (const HeapModel::Entry &e : model_.entries()) {
        if (e.locallyStable)
            continue; // spiky metrics cannot be "pinned" meaningfully
        const bool already_reported = std::any_of(
            result.reports.begin(), result.reports.end(),
            [&e](const BugReport &r) { return r.metric == e.id; });
        if (already_reported)
            continue;

        const std::vector<double> values = series.trimmedValuesOf(
            e.id, config_.thresholds.trimFraction);
        if (values.size() < 2)
            continue;

        const FluctuationSummary fs =
            analyzeMetric(series, e.id, config_.thresholds);
        if (!isGloballyStable(fs, config_.thresholds))
            continue; // poorly disguised requires *stability*

        const double span = std::max(e.maxValue - e.minValue,
                                     config_.detector.minSpan);
        const double band = config_.extremeBandFraction * span;
        std::size_t at_min = 0, at_max = 0;
        for (double v : values) {
            if (v <= e.minValue + band)
                ++at_min;
            if (v >= e.maxValue - band)
                ++at_max;
        }
        const double n = static_cast<double>(values.size());
        const bool pinned_min =
            static_cast<double>(at_min) / n >= config_.extremeOccupancy;
        const bool pinned_max =
            static_cast<double>(at_max) / n >= config_.extremeOccupancy;
        if (!pinned_min && !pinned_max)
            continue;

        BugReport report;
        report.klass = BugClass::PoorlyDisguised;
        report.metric = e.id;
        report.direction = pinned_min ? AnomalyDirection::BelowMin
                                      : AnomalyDirection::AboveMax;
        report.observedValue = meanOf(values);
        report.calibratedMin = e.minValue;
        report.calibratedMax = e.maxValue;
        report.tick = now;
        report.pointIndex =
            series.empty() ? 0 : series.samples().back().pointIndex;
        result.reports.push_back(std::move(report));
    }
}

void
ExecutionChecker::checkPathological(const MetricSeries &series,
                                    Tick now,
                                    CheckResult &result) const
{
    // A pathological bug makes a normally *unstable* metric stable.
    if (series.size() < 10)
        return; // too short to call anything "stable"

    for (MetricId id : model_.unstableMetrics) {
        const FluctuationSummary fs =
            analyzeMetric(series, id, config_.thresholds);
        if (fs.changeCount == 0)
            continue; // degenerate series; not evidence
        if (!isGloballyStable(fs, config_.thresholds))
            continue;

        BugReport report;
        report.klass = BugClass::Pathological;
        report.metric = id;
        report.direction = AnomalyDirection::AboveMax;
        report.observedValue = (fs.minValue + fs.maxValue) / 2.0;
        report.calibratedMin = fs.minValue;
        report.calibratedMax = fs.maxValue;
        report.tick = now;
        report.pointIndex =
            series.empty() ? 0 : series.samples().back().pointIndex;
        result.reports.push_back(std::move(report));
    }
}

} // namespace heapmd
