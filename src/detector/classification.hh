/**
 * @file
 * Bug taxonomy from Section 4 of the paper.
 */

#ifndef HEAPMD_DETECTOR_CLASSIFICATION_HH
#define HEAPMD_DETECTOR_CLASSIFICATION_HH

#include <optional>
#include <string_view>

namespace heapmd
{

/**
 * Detectability classes (Section 4.1): how a bug interacts with the
 * heap-graph degree metrics.
 */
enum class BugClass
{
    HeapAnomaly,     //!< stable metric leaves its calibrated range
    PoorlyDisguised, //!< stable metric pinned at a calibrated extreme
    Pathological,    //!< normally unstable metric becomes stable
};

/** Display name of a BugClass. */
const char *bugClassName(BugClass klass);

/** Parse a bugClassName() display name back; nullopt on unknown. */
std::optional<BugClass> tryBugClassFromName(std::string_view name);

/**
 * Root-cause categories of heap-anomaly bugs (Figures 8 and 9,
 * Table 2).
 */
enum class BugCategory
{
    ProgrammingTypo,        //!< e.g. wrong index -> leak (Fig. 11)
    SharedState,            //!< e.g. dangling tail of a shared list
    DataStructureInvariant, //!< e.g. missing prev/parent pointers
    Indirect,               //!< logic errors with heap side-effects
};

/** Display name matching the paper's column headers. */
const char *bugCategoryName(BugCategory category);

} // namespace heapmd

#endif // HEAPMD_DETECTOR_CLASSIFICATION_HH
