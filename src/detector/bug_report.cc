#include "detector/bug_report.hh"

#include <map>
#include <sstream>

namespace heapmd
{

std::string
BugReport::describe(const FunctionRegistry &registry) const
{
    std::ostringstream os;
    os << "[" << bugClassName(klass) << "] metric "
       << metricName(metric) << " = " << observedValue
       << " outside calibrated range [" << calibratedMin << ", "
       << calibratedMax << "] ("
       << (direction == AnomalyDirection::AboveMax ? "above max"
                                                   : "below min")
       << ") at metric point " << pointIndex << ", tick " << tick
       << "\n";
    const FnId suspect = suspectFunction();
    if (suspect != kNoFunction)
        os << "  suspect function: " << registry.name(suspect) << "\n";
    if (!contextLog.empty()) {
        os << "  call-stack log (" << contextLog.size()
           << " snapshots):\n";
        const auto emit = [&](const StackLogEntry &entry) {
            os << "    tick " << entry.tick << " value "
               << entry.metricValue << ": "
               << formatStack(entry.frames, registry) << "\n";
        };
        if (contextLog.size() <= 8) {
            for (const StackLogEntry &entry : contextLog)
                emit(entry);
        } else {
            for (std::size_t i = 0; i < 4; ++i)
                emit(contextLog[i]);
            os << "    ... " << contextLog.size() - 8
               << " more snapshots ...\n";
            for (std::size_t i = contextLog.size() - 4;
                 i < contextLog.size(); ++i) {
                emit(contextLog[i]);
            }
        }
    }
    return os.str();
}

FnId
BugReport::suspectFunction() const
{
    std::map<FnId, std::size_t> counts;
    for (const StackLogEntry &entry : contextLog) {
        if (!entry.frames.empty())
            ++counts[entry.frames.front()];
    }
    FnId best = kNoFunction;
    std::size_t best_count = 0;
    for (const auto &[fn, count] : counts) {
        if (count > best_count) {
            best = fn;
            best_count = count;
        }
    }
    return best;
}

} // namespace heapmd
