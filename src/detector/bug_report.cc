#include "detector/bug_report.hh"

#include <algorithm>
#include <map>
#include <sstream>

namespace heapmd
{

const char *
anomalyDirectionName(AnomalyDirection direction)
{
    return direction == AnomalyDirection::AboveMax ? "above-max"
                                                   : "below-min";
}

std::optional<AnomalyDirection>
tryAnomalyDirectionFromName(std::string_view name)
{
    if (name == "above-max")
        return AnomalyDirection::AboveMax;
    if (name == "below-min")
        return AnomalyDirection::BelowMin;
    return std::nullopt;
}

std::string
BugReport::describe(const FunctionRegistry &registry) const
{
    std::ostringstream os;
    os << "[" << bugClassName(klass) << "] metric "
       << metricName(metric) << " = " << observedValue
       << " outside calibrated range [" << calibratedMin << ", "
       << calibratedMax << "] ("
       << (direction == AnomalyDirection::AboveMax ? "above max"
                                                   : "below min")
       << ") at metric point " << pointIndex << ", tick " << tick
       << "\n";
    const FnId suspect = suspectFunction();
    if (suspect != kNoFunction)
        os << "  suspect function: " << registry.name(suspect) << "\n";
    if (!contextLog.empty()) {
        os << "  call-stack log (" << contextLog.size()
           << " snapshots):\n";
        const auto emit = [&](const StackLogEntry &entry) {
            os << "    tick " << entry.tick << " value "
               << entry.metricValue << ": "
               << formatStack(entry.frames, registry) << "\n";
        };
        if (contextLog.size() <= 8) {
            for (const StackLogEntry &entry : contextLog)
                emit(entry);
        } else {
            for (std::size_t i = 0; i < 4; ++i)
                emit(contextLog[i]);
            os << "    ... " << contextLog.size() - 8
               << " more snapshots ...\n";
            for (std::size_t i = contextLog.size() - 4;
                 i < contextLog.size(); ++i) {
                emit(contextLog[i]);
            }
        }
    }
    return os.str();
}

FnId
BugReport::suspectFunction() const
{
    const auto ranking = suspectRanking();
    return ranking.empty() ? kNoFunction : ranking.front().first;
}

std::vector<std::pair<FnId, std::size_t>>
BugReport::suspectRanking() const
{
    std::map<FnId, std::size_t> counts;
    for (const StackLogEntry &entry : contextLog) {
        if (!entry.frames.empty())
            ++counts[entry.frames.front()];
    }
    std::vector<std::pair<FnId, std::size_t>> ranking(counts.begin(),
                                                      counts.end());
    // Most frequent first; the map ordering makes equal counts fall
    // back to the lowest FnId, keeping the suspect deterministic.
    std::stable_sort(ranking.begin(), ranking.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    return ranking;
}

} // namespace heapmd
