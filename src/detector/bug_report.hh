/**
 * @file
 * Bug reports emitted by the anomaly detector.
 */

#ifndef HEAPMD_DETECTOR_BUG_REPORT_HH
#define HEAPMD_DETECTOR_BUG_REPORT_HH

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "detector/classification.hh"
#include "metrics/metric.hh"
#include "runtime/call_stack.hh"
#include "support/types.hh"

namespace heapmd
{

/** Which calibrated bound a metric crossed. */
enum class AnomalyDirection
{
    BelowMin, //!< fell under the calibrated minimum
    AboveMax, //!< rose over the calibrated maximum
};

/** Stable serialization name: "below-min" / "above-max". */
const char *anomalyDirectionName(AnomalyDirection direction);

/** Parse an anomalyDirectionName() back; nullopt on unknown. */
std::optional<AnomalyDirection>
tryAnomalyDirectionFromName(std::string_view name);

/**
 * One call-stack snapshot logged while a stable metric approached or
 * crossed its calibrated extreme (Section 2.2's circular-buffer log).
 */
struct StackLogEntry
{
    Tick tick = 0;                //!< event time of the snapshot
    std::uint64_t pointIndex = 0; //!< metric computation point ordinal
    double metricValue = 0.0;     //!< metric value at snapshot time
    std::vector<FnId> frames;     //!< innermost-first shadow stack
};

/**
 * A detected anomaly: the metric, the crossing, and the call-stack
 * context captured before, during, and after the crossing.
 */
struct BugReport
{
    BugClass klass = BugClass::HeapAnomaly;
    MetricId metric = MetricId::Roots;
    AnomalyDirection direction = AnomalyDirection::AboveMax;
    double observedValue = 0.0;
    double calibratedMin = 0.0;
    double calibratedMax = 0.0;
    Tick tick = 0;                //!< event time of the violation
    std::uint64_t pointIndex = 0; //!< sample ordinal of the violation
    std::vector<StackLogEntry> contextLog; //!< oldest first

    /**
     * Human-readable single-report rendering.  Frames whose FnId is
     * unknown to @p registry render as "<fn#N>" (never crash): replay
     * registries are rebuilt from trace/run artifacts and may lag the
     * log.
     */
    std::string describe(const FunctionRegistry &registry) const;

    /**
     * Most frequent innermost function across the context log -- the
     * detector's root-cause hint ("HeapMD is often able to pinpoint
     * the function responsible", Section 4.3).  Ties break toward the
     * lowest FnId so the suspect is deterministic.
     */
    FnId suspectFunction() const;

    /**
     * All innermost-frame candidates, most frequent first (ties:
     * lowest FnId first).  suspectFunction() is the first entry; the
     * incident renderer shows the full ranking.
     */
    std::vector<std::pair<FnId, std::size_t>> suspectRanking() const;
};

} // namespace heapmd

#endif // HEAPMD_DETECTOR_BUG_REPORT_HH
