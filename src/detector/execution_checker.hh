/**
 * @file
 * End-to-end execution checking: online anomaly detection plus the
 * post-run checks for poorly-disguised and pathological bugs.
 */

#ifndef HEAPMD_DETECTOR_EXECUTION_CHECKER_HH
#define HEAPMD_DETECTOR_EXECUTION_CHECKER_HH

#include <memory>
#include <vector>

#include "detector/anomaly_detector.hh"
#include "metrics/stability.hh"
#include "model/model.hh"
#include "runtime/process.hh"

namespace heapmd
{

/** Tunables of the full checker. */
struct CheckerConfig
{
    /** Online detector knobs. */
    DetectorConfig detector;

    /** Stability thresholds used by the post-run analyses. */
    StabilityThresholds thresholds;

    /** Run the pathological-bug check (Section 4.1). */
    bool reportPathological = true;

    /** Run the poorly-disguised-bug check (Section 4.1/4.3). */
    bool reportPoorlyDisguised = true;

    /**
     * Poorly-disguised heuristic: the fraction of the calibrated span
     * that counts as "pinned at an extreme" ...
     */
    double extremeBandFraction = 0.10;

    /** ... and the fraction of samples that must sit in that band. */
    double extremeOccupancy = 0.90;

    /**
     * Post-run persistent-violation check: a stable metric whose
     * trimmed samples sit outside the (slacked) calibrated range for
     * at least this fraction of the run is reported even though the
     * online crossing happened inside the ignored startup window
     * (how startup-born bugs like the oct-DAG of Section 4.3 and the
     * localization bug manifest).
     */
    double persistentViolationFraction = 0.50;
};

/** Outcome of checking one execution against a model. */
struct CheckResult
{
    /** All finalized reports, online and post-run. */
    std::vector<BugReport> reports;

    /** Metric samples the online detector examined. */
    std::uint64_t samplesChecked = 0;

    /** True when any report exists. */
    bool anomalous() const { return !reports.empty(); }

    /** Number of reports of a given class. */
    std::size_t countOf(BugClass klass) const;
};

/**
 * Owns an AnomalyDetector for one monitored run and adds the post-run
 * whole-series checks.
 *
 * Usage:
 * @code
 *   Process process(cfg);
 *   ExecutionChecker checker(model);
 *   checker.attach(process);
 *   ... run the workload against process ...
 *   CheckResult result = checker.finalize(process);
 * @endcode
 */
class ExecutionChecker
{
  public:
    explicit ExecutionChecker(const HeapModel &model,
                              CheckerConfig config = {});

    /** Register the online detector with @p process. */
    void attach(Process &process);

    /** Flush the online detector and run the post-run checks. */
    CheckResult finalize(const Process &process);

    /**
     * Post-run checks over an explicit series (used by tests and by
     * offline trace analysis when no live Process is available).
     */
    CheckResult finalize(const MetricSeries &series, Tick now);

    /** The online detector (for incremental inspection). */
    const AnomalyDetector &detector() const { return detector_; }

  private:
    void checkPersistentViolation(const MetricSeries &series, Tick now,
                                  CheckResult &result) const;
    void checkPoorlyDisguised(const MetricSeries &series, Tick now,
                              CheckResult &result) const;
    void checkPathological(const MetricSeries &series, Tick now,
                           CheckResult &result) const;

    const HeapModel &model_;
    CheckerConfig config_;
    AnomalyDetector detector_;
};

} // namespace heapmd

#endif // HEAPMD_DETECTOR_EXECUTION_CHECKER_HH
