#include "detector/classification.hh"

namespace heapmd
{

const char *
bugClassName(BugClass klass)
{
    switch (klass) {
      case BugClass::HeapAnomaly:
        return "heap-anomaly";
      case BugClass::PoorlyDisguised:
        return "poorly-disguised";
      case BugClass::Pathological:
        return "pathological";
    }
    return "unknown";
}

std::optional<BugClass>
tryBugClassFromName(std::string_view name)
{
    for (BugClass klass :
         {BugClass::HeapAnomaly, BugClass::PoorlyDisguised,
          BugClass::Pathological}) {
        if (name == bugClassName(klass))
            return klass;
    }
    return std::nullopt;
}

const char *
bugCategoryName(BugCategory category)
{
    switch (category) {
      case BugCategory::ProgrammingTypo:
        return "Programming Typos";
      case BugCategory::SharedState:
        return "Shared state";
      case BugCategory::DataStructureInvariant:
        return "Data struct. Invariants";
      case BugCategory::Indirect:
        return "Indirect";
    }
    return "unknown";
}

} // namespace heapmd
