#include "detector/anomaly_detector.hh"

#include <algorithm>

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

double
boundSlack(const DetectorConfig &config, const HeapModel::Entry &entry)
{
    const double span =
        std::max(entry.maxValue - entry.minValue, config.minSpan);
    double slack = std::max(config.rangeSlackFraction * span,
                            config.rangeSlackAbs);
    if (entry.locallyStable)
        slack *= config.localSlackMultiplier;
    return slack;
}

AnomalyDetector::AnomalyDetector(const HeapModel &model,
                                 DetectorConfig config)
    : model_(model), config_(config)
{
    states_.reserve(model_.entries().size());
    for (std::size_t i = 0; i < model_.entries().size(); ++i)
        states_.emplace_back(config_.logCapacity);
}

void
AnomalyDetector::attach(Process &process)
{
    if (process_ != nullptr)
        HEAPMD_PANIC("detector already attached");
    process_ = &process;
    process.addSampleObserver(this);
    process.addEventObserver(this);
}

void
AnomalyDetector::onSample(const MetricSample &sample,
                          const Process &process)
{
    (void)process;
    ++samples_checked_;
    HEAPMD_COUNTER_INC("checker.samples_checked");

    const auto &entries = model_.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const HeapModel::Entry &e = entries[i];
        MetricState &state = states_[i];

        const double v = sample.value(e.id);
        state.lastValue = v;
        const double span =
            std::max(e.maxValue - e.minValue, config_.minSpan);
        const double margin = config_.approachFraction * span;
        const double slack = boundSlack(config_, e);
        const double lo = e.minValue - slack;
        const double hi = e.maxValue + slack;
        const double slope = state.hasPrev ? v - state.prev : 0.0;
        const bool violating = v < lo || v > hi;

        if (violating && !state.inViolation) {
            // A new excursion: open a report, keep logging for the
            // "after" context before finalizing.
            HEAPMD_COUNTER_INC("checker.range_crossings");
            HEAPMD_TRACE_INSTANT("checker.range_crossing");
            state.inViolation = true;
            state.pendingReport = true;
            state.afterLeft = config_.afterSamples;
            state.pending = BugReport{};
            state.pending.klass = BugClass::HeapAnomaly;
            state.pending.metric = e.id;
            state.pending.direction = v > hi
                                          ? AnomalyDirection::AboveMax
                                          : AnomalyDirection::BelowMin;
            state.pending.observedValue = v;
            state.pending.calibratedMin = e.minValue;
            state.pending.calibratedMax = e.maxValue;
            state.pending.tick = sample.tick;
            state.pending.pointIndex = sample.pointIndex;
        } else if (!violating) {
            state.inViolation = false;
        }

        const bool approaching_max =
            v >= hi - slack - margin && slope > 0.0;
        const bool approaching_min =
            v <= lo + slack + margin && slope < 0.0;
        const bool want_armed = state.pendingReport || violating ||
                                approaching_max || approaching_min;
        if (want_armed != state.armed) {
            state.armed = want_armed;
            if (want_armed)
                ++armed_count_;
            else
                --armed_count_;
            if (!want_armed && !state.pendingReport)
                state.log.clear(); // moved away: drop stale context
        }
        if (state.armed)
            logSnapshot(state, v);

        if (state.pendingReport) {
            if (state.afterLeft == 0)
                finalizeReport(state);
            else
                --state.afterLeft;
        }

        state.prev = v;
        state.hasPrev = true;
    }
}

void
AnomalyDetector::onEvent(const Event &event, Tick tick)
{
    (void)tick;
    if (armed_count_ == 0)
        return;
    // Only heap-mutating events are interesting culprit context.
    switch (event.kind) {
      case EventKind::Alloc:
      case EventKind::Free:
      case EventKind::Realloc:
      case EventKind::Write:
        break;
      default:
        return;
    }
    for (MetricState &state : states_) {
        if (state.armed)
            logSnapshot(state, state.lastValue);
    }
}

void
AnomalyDetector::finish()
{
    for (MetricState &state : states_) {
        if (state.pendingReport)
            finalizeReport(state);
    }
}

void
AnomalyDetector::logSnapshot(MetricState &state, double value)
{
    StackLogEntry entry;
    if (process_ != nullptr) {
        entry.tick = process_->now();
        entry.pointIndex = process_->series().size();
        entry.frames =
            process_->callStack().capture(config_.callStackDepth);
    }
    entry.metricValue = value;
    state.log.push(std::move(entry));
}

void
AnomalyDetector::finalizeReport(MetricState &state)
{
    HEAPMD_COUNTER_INC("checker.reports");
    state.pending.contextLog = state.log.snapshot();
    reports_.push_back(state.pending);
    state.pendingReport = false;
    state.log.clear();
    if (state.armed) {
        state.armed = false;
        --armed_count_;
    }
}

} // namespace heapmd
