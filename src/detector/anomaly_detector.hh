/**
 * @file
 * The online anomaly detector (execution checker front half).
 *
 * Implements Section 2.2 of the paper: each metric the model declares
 * globally stable is compared against its calibrated range at every
 * metric computation point.  When a stable metric approaches its
 * calibrated maximum with a positive slope (or its minimum with a
 * negative slope), call stacks are logged into a circular buffer;
 * crossing the bound triggers a bug report that carries the context
 * before, during, and after the crossing.
 */

#ifndef HEAPMD_DETECTOR_ANOMALY_DETECTOR_HH
#define HEAPMD_DETECTOR_ANOMALY_DETECTOR_HH

#include <array>
#include <cstddef>
#include <vector>

#include "detector/bug_report.hh"
#include "model/model.hh"
#include "runtime/process.hh"
#include "support/ring_buffer.hh"

namespace heapmd
{

/** Tunables of the online detector. */
struct DetectorConfig
{
    /** Circular-buffer capacity for call-stack snapshots. */
    std::size_t logCapacity = 64;

    /** Frames captured per snapshot. */
    std::size_t callStackDepth = 16;

    /**
     * "Approaching an extreme" band, as a fraction of the calibrated
     * range span: logging arms when the value is within this band of
     * a bound and sloping toward it.
     */
    double approachFraction = 0.10;

    /**
     * Metric samples logged after a crossing before the report is
     * finalized (the paper reports context before/during/after).
     */
    std::size_t afterSamples = 3;

    /** Span floor so a degenerate [x, x] range still has a band. */
    double minSpan = 1e-6;

    /**
     * Calibration slack added to each bound before a violation is
     * reported, as max(rangeSlackFraction * span, rangeSlackAbs
     * percentage points).  Deviation from the paper (which checks the
     * raw min/max): our synthetic inputs draw structure sizes from a
     * *continuous* distribution, so the training min/max always
     * undersamples the population tails; real regression suites are
     * finite and reused, which hid this effect.  Injected bugs move
     * metrics by many points, far beyond this slack.
     */
    double rangeSlackFraction = 0.25;
    double rangeSlackAbs = 1.0;

    /**
     * Extra slack multiplier for *locally stable* model entries:
     * their phase spikes are expected excursions, so their bands are
     * proportionally wider.
     */
    double localSlackMultiplier = 2.5;
};

/** Detection slack applied to each bound of @p entry. */
double boundSlack(const DetectorConfig &config,
                  const HeapModel::Entry &entry);

/**
 * Checks each metric sample against a HeapModel and assembles
 * BugReports.  Attach to the monitored Process with attach(); call
 * finish() when the run ends to flush a pending report.
 */
class AnomalyDetector : public SampleObserver, public EventObserver
{
  public:
    /** @param model calibrated model; must outlive the detector. */
    explicit AnomalyDetector(const HeapModel &model,
                             DetectorConfig config = {});

    /** Register with @p process as sample + event observer. */
    void attach(Process &process);

    /** SampleObserver: range check at a metric computation point. */
    void onSample(const MetricSample &sample,
                  const Process &process) override;

    /** EventObserver: per-event stack logging while armed. */
    void onEvent(const Event &event, Tick tick) override;

    /** Flush pending reports at end of run. */
    void finish();

    /** Reports finalized so far (excursions, not per-sample spam). */
    const std::vector<BugReport> &reports() const { return reports_; }

    /** True when at least one anomaly was reported. */
    bool anomalous() const { return !reports_.empty(); }

    /** Metric samples examined. */
    std::uint64_t samplesChecked() const { return samples_checked_; }

  private:
    struct MetricState
    {
        explicit MetricState(std::size_t log_capacity)
            : log(log_capacity)
        {
        }

        bool hasPrev = false;
        double prev = 0.0;
        bool armed = false;       //!< stack logging active
        bool inViolation = false; //!< currently outside the range
        bool pendingReport = false;
        std::size_t afterLeft = 0;
        double lastValue = 0.0;
        RingBuffer<StackLogEntry> log;
        BugReport pending;
    };

    void logSnapshot(MetricState &state, double value);
    void finalizeReport(MetricState &state);

    const HeapModel &model_;
    DetectorConfig config_;
    Process *process_ = nullptr;
    std::vector<MetricState> states_;        // parallel to entries()
    std::vector<BugReport> reports_;
    std::uint64_t samples_checked_ = 0;
    std::size_t armed_count_ = 0;
};

} // namespace heapmd

#endif // HEAPMD_DETECTOR_ANOMALY_DETECTOR_HH
