/**
 * @file
 * SPEC 2000 benchmark analogues (Figure 7(A), first eight rows).
 */

#ifndef HEAPMD_APPS_SPEC_APPS_HH
#define HEAPMD_APPS_SPEC_APPS_HH

#include <memory>
#include <string>

#include "apps/app.hh"

namespace heapmd
{

namespace apps
{

/**
 * Instantiate a SPEC analogue by name ("twolf", "crafty", "mcf",
 * "vpr", "vortex", "gzip", "parser", "gcc").
 * @return nullptr when @p name is not a SPEC analogue.
 */
std::unique_ptr<SyntheticApp> makeSpecApp(const std::string &name);

} // namespace apps

} // namespace heapmd

#endif // HEAPMD_APPS_SPEC_APPS_HH
