#include "apps/commercial_apps.hh"

#include "apps/app_tuning.hh"
#include "apps/workload_engine.hh"

namespace heapmd
{

namespace apps
{

namespace
{

/**
 * Multimedia: frame rings with large payloads, codec scratch buffers,
 * parent-linked pipeline trees, and codec property-descriptor tables
 * (the Figure 11 typo-leak site).  Example stable metric: In=Out.
 */
class MultimediaApp : public SyntheticApp
{
  public:
    std::string name() const override { return "Multimedia"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.circCount = 4;
        p.circTarget = v.count(130);
        p.circPayload = 160;
        p.dllCount = 3;
        p.dllTarget = v.count(150);
        p.dllPayload = 48;
        p.bstCount = 2;
        p.bstTarget = v.count(110);
        p.hashCount = 1;
        p.hashBuckets = 256;
        p.hashTarget = v.count(380);
        p.hashPayload = 40;
        p.bufferCount = v.count(120);
        p.bufferSize = 256;
        p.descTables = 1;
        p.descSlots = 48;
        p.descSize = 64;
        p.steadyOps = v.count(22000, 0.9, 1.15);
        p.wCirc = 0.26 * v.drift();
        p.wDll = 0.22;
        p.wBst = 0.12;
        p.wHash = 0.16;
        p.wBuffer = 0.10;
        p.wDesc = 0.06;
        p.wShare = 0.06;
        p.wTraverse = 0.05;
        p.phases = 4;
        p.phaseWeightSwing = 0.5;
        p.phaseTargetSwing = 0.15;
        p.bulkCirc = true;
        p.bulkBuffers = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * Interactive web-app: session hash tables, DOM-like trees without
 * parent pointers, request descriptor tables, response sink lists.
 * Example stable metric: Indeg=1.
 */
class WebAppApp : public SyntheticApp
{
  public:
    std::string name() const override { return "Interactive web-app."; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.hashCount = 2;
        p.hashBuckets = 512;
        p.hashTarget = v.count(450);
        p.hashPayload = 40;
        p.octCount = 1;
        p.octBudget = v.count(300);
        p.octBranch = 0.80;
        p.descTables = 2;
        p.descSlots = 64;
        p.descSize = 56;
        p.dllCount = 4;
        p.dllTarget = v.count(180);
        p.bstCount = 2;
        p.bstTarget = v.count(200);
        p.cacheObjects = v.count(120);
        p.steadyOps = v.count(23000, 0.9, 1.15);
        p.wHash = 0.30 * v.drift();
        p.wDll = 0.26;
        p.wBst = 0.18;
        p.wDesc = 0.10;
        p.wShare = 0.03;
        p.wTraverse = 0.06;
        p.phases = 3;
        p.phaseWeightSwing = 0.4;
        p.phaseTargetSwing = 0.15;
        p.bulkHash = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * PC Game (simulation): event rings, entity trees, spatial hash, unit
 * scratch buffers, plus a rarely-touched asset cache (the SWAT
 * false-positive bait of Table 1).  Example stable metric: Outdeg=1.
 */
class GameSimApp : public SyntheticApp
{
  public:
    std::string name() const override
    {
        return "PC Game (simulation)";
    }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.circCount = 5;
        p.circTarget = v.count(130);
        p.bstCount = 2;
        p.bstTarget = v.count(180);
        p.bstPayload = 48;
        p.hashCount = 1;
        p.hashBuckets = 256;
        p.hashTarget = v.count(280);
        p.hashPayload = 32;
        p.bufferCount = v.count(260);
        p.bufferSize = 128;
        p.descTables = 1;
        p.descSlots = 32;
        p.descSize = 48;
        p.dllCount = 2;
        p.dllTarget = v.count(120);
        p.dllPayload = 32;
        p.cacheObjects = v.count(130);
        p.steadyOps = v.count(22000, 0.9, 1.15);
        p.wCirc = 0.28 * v.drift();
        p.wBst = 0.18;
        p.wHash = 0.14;
        p.wBuffer = 0.14;
        p.wDll = 0.12;
        p.wDesc = 0.05;
        p.wShare = 0.03;
        p.wTraverse = 0.06;
        p.phases = 3;
        p.phaseWeightSwing = 0.5;
        p.phaseTargetSwing = 0.15;
        p.bulkBst = true;
        p.bulkBuffers = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * PC Game (action): parent-linked scene trees with internal splicing
 * (the Figure 10 site), startup oct-trees (the oct-DAG site), AI
 * decision trees built full-depth (the single-child site).
 * Example stable metric: Indeg=1.
 */
class GameActionApp : public SyntheticApp
{
  public:
    std::string name() const override { return "PC Game (action)"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.bstCount = 3;
        p.bstTarget = v.count(240);
        p.bstSpliceShare = 0.14;
        p.octCount = 2;
        // Scene oct-trees sized to the level: a fixed node budget
        // (scaled like everything else) rather than a raw branching
        // process, whose size variance would swamp the Indeg=1
        // calibration (the paper's range spans only ~5 points).
        p.octBudget = v.count(500);
        p.octBranch = 0.75;
        p.fullTreeCount = 2;
        p.fullTreeDepth = 7;
        p.circCount = 1;
        p.circTarget = v.count(80);
        p.hashCount = 1;
        p.hashBuckets = 128;
        p.hashTarget = v.count(150);
        p.descTables = 1;
        p.descSlots = 32;
        p.descSize = 48;
        p.dllCount = 4;
        p.dllTarget = v.count(180);
        p.bufferCount = v.count(100);
        p.bufferSize = 96;
        p.steadyOps = v.count(22000, 0.9, 1.15);
        p.wBst = 0.34 * v.drift();
        p.wCirc = 0.06;
        p.wHash = 0.10;
        p.wDll = 0.22;
        p.wBuffer = 0.08;
        p.wDesc = 0.04;
        p.wTraverse = 0.06;
        // Phase churn hits only the buffer pool: Roots/Leaves swing
        // between phases while the indegree picture (trees, oct
        // nodes, chains) stays tight -- the paper reports a single
        // stable metric (Indeg=1) with a narrow range for this game.
        p.phases = 4;
        p.phaseWeightSwing = 0.5;
        p.phaseTargetSwing = 0.15;
        p.bulkBuffers = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * Productivity: document B-trees, undo/redo lists, style descriptor
 * tables, and a template cache that is loaded once and rarely read.
 * Example stable metric: Leaves.
 */
class ProductivityApp : public SyntheticApp
{
  public:
    std::string name() const override { return "Productivity"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.btreeCount = 3;
        p.btreeTarget = v.count(800);
        p.dllCount = 4;
        p.dllTarget = v.count(140);
        p.bufferCount = v.count(120);
        p.bufferSize = 128;
        p.descTables = 1;
        p.descSlots = 32;
        p.descSize = 64;
        p.hashCount = 1;
        p.hashBuckets = 128;
        p.hashTarget = v.count(220);
        p.hashPayload = 32;
        p.cacheObjects = v.count(140);
        p.steadyOps = v.count(22000, 0.9, 1.15);
        p.wBtree = 0.36 * v.drift();
        p.wDll = 0.24;
        p.wBuffer = 0.12;
        p.wHash = 0.12;
        p.wDesc = 0.08;
        p.wTraverse = 0.09;
        p.phases = 3;
        p.phaseWeightSwing = 0.4;
        p.phaseTargetSwing = 0.15;
        p.bulkDll = true;
        p.bulkHash = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

} // namespace

std::unique_ptr<SyntheticApp>
makeCommercialApp(const std::string &name)
{
    if (name == "Multimedia")
        return std::make_unique<MultimediaApp>();
    if (name == "Interactive web-app.")
        return std::make_unique<WebAppApp>();
    if (name == "PC Game (simulation)")
        return std::make_unique<GameSimApp>();
    if (name == "PC Game (action)")
        return std::make_unique<GameActionApp>();
    if (name == "Productivity")
        return std::make_unique<ProductivityApp>();
    return nullptr;
}

} // namespace apps

} // namespace heapmd
