#include "apps/spec_apps.hh"

#include "apps/app_tuning.hh"
#include "apps/workload_engine.hh"

namespace heapmd
{

namespace apps
{

namespace
{

/**
 * twolf (place & route): netlists as doubly-linked cell lists.
 * Example stable metric in the paper: Outdeg=2 (interior DLL nodes
 * have exactly next + prev).
 */
class TwolfApp : public SyntheticApp
{
  public:
    std::string name() const override { return "twolf"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.dllCount = 8;
        p.dllTarget = v.count(170);
        p.bufferCount = v.count(520);
        p.bufferSize = 96;
        p.hashCount = 1;
        p.hashBuckets = 256;
        p.hashTarget = v.count(420);
        p.steadyOps = v.count(22000, 0.9, 1.1);
        p.wDll = 0.45 * v.drift();
        p.wHash = 0.22;
        p.wBuffer = 0.28;
        p.wTraverse = 0.05;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * crafty (chess): transposition tables and flat scratch buffers.
 * Example stable metric: Leaves (payloads and buffers dominate).
 */
class CraftyApp : public SyntheticApp
{
  public:
    std::string name() const override { return "crafty"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.bufferCount = v.count(900, 0.8, 1.3);
        p.bufferSize = 64;
        p.hashCount = 2;
        p.hashBuckets = 256;
        p.hashTarget = v.count(550);
        p.hashPayload = 48;
        p.steadyOps = v.count(20000, 0.9, 1.1);
        p.wBuffer = 0.58 * v.drift();
        p.wHash = 0.34;
        p.wTraverse = 0.08;
        p.phases = 3;
        p.phaseWeightSwing = 0.5;
        p.phaseTargetSwing = 0.15;
        p.bulkHash = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * mcf (network simplex): one big arc graph; almost nothing is a root.
 * Example stable metric: Root (0 .. ~5%).
 */
class McfApp : public SyntheticApp
{
  public:
    std::string name() const override { return "mcf"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.graphVertices = v.count(1800);
        p.graphDegree = v.range(2.0, 2.6);
        p.dllCount = 2;
        p.dllTarget = v.count(110);
        p.steadyOps = v.count(20000, 0.9, 1.1);
        p.wGraph = 0.72 * v.drift();
        p.wDll = 0.18;
        p.wTraverse = 0.06;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * vpr (FPGA place & route): routing rings whose size swings widely
 * with the input.  Example stable metric: Outdeg=1 (ring nodes),
 * stable within a run but spanning a wide calibrated range
 * (Figure 4 uses this program).
 */
class VprApp : public SyntheticApp
{
  public:
    std::string name() const override { return "vpr"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        // Net handles: roots with exactly one payload pointer.  The
        // handle share swings widely with the input, giving Outdeg=1
        // its wide-but-stable calibrated range (paper: 3.7 .. 36.8).
        p.handleCount = v.count(420, 0.38, 1.65);
        p.handlePayload = 40;
        p.circCount = 6;
        p.circTarget = v.count(170);
        p.circPayload = 48; // routing payload per ring node
        p.bstCount = 2;
        p.bstTarget = v.count(150);
        p.bufferCount = v.count(200);
        p.bufferSize = 128;
        // Some inputs run much longer than others (Figure 4's
        // Input2 has ~4x the metric computation points of Input1).
        p.steadyOps = v.count(11000, 0.6, 3.4);
        p.wHandle = 0.30 * v.drift();
        p.wCirc = 0.30;
        p.wBst = 0.17;
        p.wBuffer = 0.15;
        p.wTraverse = 0.08;
        // In=Out lives in the buffers and parent-linked tree nodes;
        // bulk phase churn of exactly those makes it unstable while
        // the handle share (Outdeg=1) stays flat -- the Figure 5/6
        // contrast.
        p.phases = 4;
        p.phaseWeightSwing = 0.5;
        p.phaseTargetSwing = 0.15;
        p.bulkBst = true;
        p.bulkBuffers = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * vortex (OO database): deep object trees plus lookup tables.
 * Example stable metric: Indeg=1.
 */
class VortexApp : public SyntheticApp
{
  public:
    std::string name() const override { return "vortex"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.octCount = 2;
        p.octBudget = v.count(900);
        p.octBranch = 0.80;
        p.hashCount = 2;
        p.hashBuckets = 512;
        p.hashTarget = v.count(650);
        p.hashPayload = 40;
        p.dllCount = 2;
        p.dllTarget = v.count(140);
        p.dllPayload = 32;
        p.steadyOps = v.count(20000, 0.9, 1.2);
        p.wHash = 0.43 * v.drift();
        p.wDll = 0.29;
        p.wShare = 0.04;
        p.wTraverse = 0.08;
        p.phases = 4;
        p.phaseWeightSwing = 0.5;
        p.phaseTargetSwing = 0.15;
        p.bulkHash = true;
        p.bulkDll = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * gzip (compression): almost everything is a flat window or IO
 * buffer.  Example stable metric: Leaves (~83-90%).
 */
class GzipApp : public SyntheticApp
{
  public:
    std::string name() const override { return "gzip"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.bufferCount = v.count(950, 0.85, 1.25);
        p.bufferSize = 128;
        p.hashCount = 1;
        p.hashBuckets = 128;
        p.hashTarget = v.count(260);
        p.steadyOps = v.count(18000, 0.9, 1.2);
        p.wBuffer = 0.74 * v.drift();
        p.wHash = 0.16;
        p.wTraverse = 0.10;
        p.phases = 3;
        p.phaseWeightSwing = 0.5;
        p.phaseTargetSwing = 0.15;
        p.bulkHash = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * parser (link grammar): parse structures as parent-linked trees
 * whose vertices have indegree == outdegree, diluted by dictionary
 * chains.  Example stable metric: In=Out (~14-18%).
 */
class ParserApp : public SyntheticApp
{
  public:
    std::string name() const override { return "parser"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.bstCount = 3;
        p.bstTarget = v.count(200);
        p.hashCount = 2;
        p.hashBuckets = 512;
        p.hashTarget = v.count(800);
        p.hashPayload = 48;
        p.dllCount = 2;
        p.dllTarget = v.count(130);
        p.dllPayload = 40;
        p.descTables = 1; // dictionary property tables (Fig. 11 site)
        p.descSlots = 32;
        p.descSize = 48;
        p.steadyOps = v.count(21000, 0.9, 1.1);
        p.wBst = 0.32 * v.drift();
        p.wHash = 0.36;
        p.wDll = 0.17;
        p.wDesc = 0.05;
        p.wTraverse = 0.10;
        p.phases = 3;
        p.phaseWeightSwing = 0.5;
        p.phaseTargetSwing = 0.15;
        p.bulkDll = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

/**
 * gcc (compiler): the most heterogeneous heap; the structure mix
 * itself depends strongly on the input ("source file"), giving wide
 * calibrated ranges.  Example stable metric: Outdeg=1.
 */
class GccApp : public SyntheticApp
{
  public:
    std::string name() const override { return "gcc"; }

  protected:
    void
    execute(istl::Context &ctx, const AppConfig &config,
            AppResult &result) override
    {
        Variation v(config);
        MixParams p;
        p.dllCount = 3;
        p.dllTarget = v.count(140, 0.5, 1.8);
        p.circCount = 3;
        p.circTarget = v.count(160, 0.4, 1.9);
        p.bstCount = 2;
        p.bstTarget = v.count(170, 0.6, 1.6);
        p.hashCount = 2;
        p.hashBuckets = 256;
        p.hashTarget = v.count(420, 0.5, 1.7);
        p.hashPayload = 32;
        p.bufferCount = v.count(420, 0.4, 1.8);
        p.bufferSize = 96;
        p.steadyOps = v.count(21000, 0.8, 1.4);
        p.wDll = v.range(0.10, 0.30);
        p.wCirc = v.range(0.10, 0.30) * v.drift();
        p.wBst = v.range(0.08, 0.22);
        p.wHash = v.range(0.12, 0.30);
        p.wBuffer = v.range(0.10, 0.30);
        p.wTraverse = 0.08;
        p.phases = 5;
        p.phaseWeightSwing = 0.6;
        p.phaseTargetSwing = 0.15;
        p.bulkCirc = true;
        p.bulkBst = true;
        WorkloadEngine(ctx, p, result).runAll();
    }
};

} // namespace

std::unique_ptr<SyntheticApp>
makeSpecApp(const std::string &name)
{
    if (name == "twolf")
        return std::make_unique<TwolfApp>();
    if (name == "crafty")
        return std::make_unique<CraftyApp>();
    if (name == "mcf")
        return std::make_unique<McfApp>();
    if (name == "vpr")
        return std::make_unique<VprApp>();
    if (name == "vortex")
        return std::make_unique<VortexApp>();
    if (name == "gzip")
        return std::make_unique<GzipApp>();
    if (name == "parser")
        return std::make_unique<ParserApp>();
    if (name == "gcc")
        return std::make_unique<GccApp>();
    return nullptr;
}

} // namespace apps

} // namespace heapmd
