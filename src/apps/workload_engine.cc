#include "apps/workload_engine.hh"

#include <algorithm>

namespace heapmd
{

namespace apps
{

namespace
{

/** Keys stay well below the heap base (no spurious edges). */
constexpr std::uint64_t kKeySpace = 1000000;

} // namespace

WorkloadEngine::WorkloadEngine(istl::Context &ctx,
                               const MixParams &params,
                               AppResult &result)
    : ctx_(ctx), params_(params), result_(result)
{
}

WorkloadEngine::~WorkloadEngine() = default;

void
WorkloadEngine::runAll()
{
    startup();
    steady();
    shutdown();
}

void
WorkloadEngine::startup()
{
    const MixParams &p = params_;

    for (std::uint64_t i = 0; i < p.dllCount; ++i) {
        auto dll = std::make_unique<istl::Dll>(ctx_, p.dllPayload);
        for (std::uint64_t n = 0; n < p.dllTarget; ++n)
            dll->pushBack();
        dlls_.push_back(std::move(dll));
    }

    for (std::uint64_t i = 0; i < p.circCount; ++i) {
        auto circ =
            std::make_unique<istl::CircularList>(ctx_, p.circPayload);
        for (std::uint64_t n = 0; n < p.circTarget; ++n)
            circ->insert();
        circs_.push_back(std::move(circ));
    }

    for (std::uint64_t i = 0; i < p.bstCount; ++i) {
        auto bst =
            std::make_unique<istl::BinaryTree>(ctx_, p.bstPayload);
        for (std::uint64_t n = 0; n < p.bstTarget; ++n)
            bst->insert(ctx_.rng.below(kKeySpace));
        bsts_.push_back(std::move(bst));
    }

    for (std::uint64_t i = 0; i < p.fullTreeCount; ++i) {
        auto tree = std::make_unique<istl::BinaryTree>(ctx_, 0);
        tree->buildFull(p.fullTreeDepth);
        full_trees_.push_back(std::move(tree));
    }

    for (std::uint64_t i = 0; i < p.octCount; ++i) {
        auto oct = std::make_unique<istl::OctTree>(ctx_);
        if (p.octBudget > 0)
            oct->buildBudget(p.octBudget, p.octBranch);
        else
            oct->build(p.octDepth, p.octBranch);
        octs_.push_back(std::move(oct));
    }

    for (std::uint64_t i = 0; i < p.hashCount; ++i) {
        auto hash = std::make_unique<istl::HashTable>(
            ctx_, p.hashBuckets, p.hashPayload);
        for (std::uint64_t n = 0; n < p.hashTarget; ++n) {
            const std::uint64_t key = 1 + ctx_.rng.below(kKeySpace);
            hash->insert(key);
            hash_keys_.push_back(key);
        }
        hashes_.push_back(std::move(hash));
    }

    for (std::uint64_t i = 0; i < p.btreeCount; ++i) {
        auto btree = std::make_unique<istl::BTree>(ctx_);
        for (std::uint64_t n = 0; n < p.btreeTarget; ++n) {
            const std::uint64_t key = 1 + ctx_.rng.below(kKeySpace);
            btree->insert(key);
            btree_keys_.push_back(key);
        }
        btrees_.push_back(std::move(btree));
    }

    if (p.graphVertices > 0) {
        graph_ = std::make_unique<istl::AdjGraph>(ctx_, 0);
        graph_->buildRandom(p.graphVertices, p.graphDegree);
    }

    if (p.bufferCount > 0) {
        buffers_ = std::make_unique<istl::BufferPool>(ctx_);
        for (std::uint64_t i = 0; i < p.bufferCount; ++i)
            live_buffer_ids_.push_back(buffers_->acquire(p.bufferSize));
    }

    if (p.handleCount > 0) {
        handles_ =
            std::make_unique<istl::HandlePool>(ctx_, p.handlePayload);
        for (std::uint64_t i = 0; i < p.handleCount; ++i)
            handles_->acquire();
    }

    for (std::uint64_t i = 0; i < p.descTables; ++i) {
        auto desc = std::make_unique<istl::DescriptorTable>(
            ctx_, p.descSlots, p.descSize);
        for (std::uint64_t s = 0; s < p.descSlots; ++s)
            desc->populate(s);
        descs_.push_back(std::move(desc));
    }

    archive_ = std::make_unique<istl::Dll>(ctx_, 32);

    if (p.cacheObjects > 0) {
        cache_ = std::make_unique<istl::Dll>(ctx_,
                                             p.cacheObjectSize);
        for (std::uint64_t i = 0; i < p.cacheObjects; ++i) {
            const Addr node = cache_->pushBack();
            result_.cacheAddrs.push_back(node);
            const Addr payload =
                ctx_.heap.loadPtr(node + istl::Dll::kPayloadOff);
            if (payload != kNullAddr)
                result_.cacheAddrs.push_back(payload);
        }
        cache_->traverse(); // warmed once, then idle
        result_.cacheObjects += p.cacheObjects * 2; // node + payload
    }
}

void
WorkloadEngine::steady()
{
    const MixParams &p = params_;
    const std::vector<double> base_weights = {
        p.wDll,    p.wCirc,   p.wBst,  p.wHash,  p.wBtree,
        p.wBuffer, p.wHandle, p.wGraph, p.wDesc, p.wShare,
        p.wTraverse,
    };
    double total = 0.0;
    for (double w : base_weights)
        total += w;
    if (total <= 0.0)
        return;

    weight_mult_.assign(base_weights.size(), 1.0);
    graph_edge_target_ = static_cast<std::uint64_t>(
        static_cast<double>(p.graphVertices) * p.graphDegree);

    const std::uint32_t phases = std::max<std::uint32_t>(1, p.phases);
    const std::uint64_t per_phase =
        std::max<std::uint64_t>(1, p.steadyOps / phases);

    std::vector<double> weights = base_weights;
    for (std::uint32_t phase = 0; phase < phases; ++phase) {
        if (phase > 0) {
            phaseTransition();
            for (std::size_t i = 0; i < weights.size(); ++i)
                weights[i] = base_weights[i] * weight_mult_[i];
        }
        for (std::uint64_t op = 0; op < per_phase; ++op) {
            runOneOp(weights);
        }
    }
}

void
WorkloadEngine::runOneOp(const std::vector<double> &weights)
{
    {
        switch (ctx_.rng.weightedPick(weights)) {
          case 0:
            stepDll();
            break;
          case 1:
            stepCirc();
            break;
          case 2:
            stepBst();
            break;
          case 3:
            stepHash();
            break;
          case 4:
            stepBtree();
            break;
          case 5:
            stepBuffer();
            break;
          case 6:
            stepHandle();
            break;
          case 7:
            stepGraph();
            break;
          case 8:
            stepDesc();
            break;
          case 9:
            stepShare();
            break;
          default:
            stepTraverse();
            break;
        }
        maybeGenericLeaks();
    }
}

std::uint64_t
WorkloadEngine::effTarget(std::uint64_t base, double mult) const
{
    const double v = static_cast<double>(base) * mult;
    return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

void
WorkloadEngine::phaseTransition()
{
    const MixParams &p = params_;
    const auto roll = [this](double swing) {
        return 1.0 + swing * (ctx_.rng.uniform() * 2.0 - 1.0);
    };

    for (double &m : weight_mult_)
        m = roll(p.phaseWeightSwing);
    tmul_dll_ = roll(p.phaseTargetSwing);
    tmul_circ_ = roll(p.phaseTargetSwing);
    tmul_bst_ = roll(p.phaseTargetSwing);
    tmul_hash_ = roll(p.phaseTargetSwing);
    tmul_btree_ = roll(p.phaseTargetSwing);
    tmul_buffer_ = roll(p.phaseTargetSwing);
    tmul_handle_ = roll(p.phaseTargetSwing);

    // Bulk rebuilds: sharp free bursts at phase boundaries (level
    // loads, document switches).  Structures are rebuilt to only
    // *half* their target; the steady loop's feedback regrows them
    // over the following phase, so the dip is visible across several
    // metric computation points and spikes the affected metrics.
    if (p.bulkDll && !dlls_.empty()) {
        istl::Dll &dll = *dlls_[ctx_.rng.below(dlls_.size())];
        dll.clear();
        const std::uint64_t target =
            effTarget(p.dllTarget, tmul_dll_) / 2;
        for (std::uint64_t n = 0; n < target; ++n)
            dll.pushBack();
    }
    if (p.bulkCirc && !circs_.empty()) {
        istl::CircularList &circ =
            *circs_[ctx_.rng.below(circs_.size())];
        circ.clear();
        const std::uint64_t target =
            effTarget(p.circTarget, tmul_circ_) / 2;
        for (std::uint64_t n = 0; n < target; ++n)
            circ.insert();
    }
    if (p.bulkBst && !bsts_.empty()) {
        istl::BinaryTree &bst = *bsts_[ctx_.rng.below(bsts_.size())];
        bst.clear();
        const std::uint64_t target =
            effTarget(p.bstTarget, tmul_bst_) / 2;
        for (std::uint64_t n = 0; n < target; ++n)
            bst.insert(ctx_.rng.below(kKeySpace));
    }
    if (p.bulkHash && !hashes_.empty()) {
        istl::HashTable &hash =
            *hashes_[ctx_.rng.below(hashes_.size())];
        hash.clear();
        const std::uint64_t target =
            effTarget(p.hashTarget, tmul_hash_) / 2;
        for (std::uint64_t n = 0; n < target; ++n) {
            const std::uint64_t key = 1 + ctx_.rng.below(kKeySpace);
            hash.insert(key);
            hash_keys_.push_back(key);
        }
    }
    if (p.bulkBuffers && buffers_ != nullptr) {
        // Release roughly half; the steady loop refills gradually.
        for (std::size_t i = 0; i < live_buffer_ids_.size();) {
            if (ctx_.rng.chance(0.5)) {
                buffers_->release(live_buffer_ids_[i]);
                live_buffer_ids_[i] = live_buffer_ids_.back();
                live_buffer_ids_.pop_back();
            } else {
                ++i;
            }
        }
    }
}

void
WorkloadEngine::shutdown()
{
    for (auto &dll : dlls_)
        dll->clear();
    dlls_.clear();
    for (auto &circ : circs_)
        circ->clear();
    circs_.clear();
    for (auto &bst : bsts_)
        bst->clear();
    bsts_.clear();
    for (auto &tree : full_trees_)
        tree->clear();
    full_trees_.clear();
    for (auto &oct : octs_)
        oct->clear();
    octs_.clear();
    for (auto &hash : hashes_)
        hash->clear();
    hashes_.clear();
    for (auto &btree : btrees_)
        btree->clear();
    btrees_.clear();
    graph_.reset();
    if (buffers_ != nullptr)
        buffers_->clear();
    buffers_.reset();
    if (handles_ != nullptr)
        handles_->clear();
    handles_.reset();
    descs_.clear();
    archive_.reset();
    cache_.reset();
}

void
WorkloadEngine::stepDll()
{
    if (dlls_.empty())
        return;
    istl::Dll &dll = *dlls_[ctx_.rng.below(dlls_.size())];
    const std::uint64_t dll_target =
        effTarget(params_.dllTarget, tmul_dll_);
    const bool grow = dll.size() < dll_target
                          ? ctx_.rng.chance(0.70)
                          : ctx_.rng.chance(0.30);
    if (grow) {
        if (dll.size() > 4 && ctx_.rng.chance(0.6)) {
            // Interior insertion at the program's roving cursor: a
            // bounded walk, yet positions end up uniformly spread,
            // so interior-inserted nodes persist in steady state.
            dll.insertAtCursor(1 + ctx_.rng.below(8));
        } else {
            dll.pushBack();
        }
    } else {
        dll.popFront();
    }
}

void
WorkloadEngine::stepCirc()
{
    if (circs_.empty())
        return;
    istl::CircularList &circ = *circs_[ctx_.rng.below(circs_.size())];
    const std::uint64_t circ_target =
        effTarget(params_.circTarget, tmul_circ_);
    const bool grow = circ.size() < circ_target
                          ? ctx_.rng.chance(0.70)
                          : ctx_.rng.chance(0.30);
    if (grow)
        circ.insert();
    else if (ctx_.rng.chance(0.7))
        circ.removeHead();
    else
        circ.rotate();
}

void
WorkloadEngine::stepBst()
{
    if (bsts_.empty())
        return;
    istl::BinaryTree &bst = *bsts_[ctx_.rng.below(bsts_.size())];
    const std::uint64_t bst_target =
        effTarget(params_.bstTarget, tmul_bst_);
    const bool grow = bst.size() < bst_target
                          ? ctx_.rng.chance(0.70)
                          : ctx_.rng.chance(0.30);
    if (grow) {
        if (ctx_.rng.chance(params_.bstSpliceShare))
            bst.spliceAbove();
        else
            bst.insert(ctx_.rng.below(kKeySpace));
    } else if (ctx_.rng.chance(params_.bstSpliceShare)) {
        // Inverse of spliceAbove: keeps the single-child population
        // stationary instead of accumulating with run length.
        if (!bst.unspliceRandom())
            bst.removeRandomLeaf();
    } else if (ctx_.rng.chance(0.6)) {
        bst.removeRandomLeaf();
    } else {
        bst.find(ctx_.rng.below(kKeySpace));
    }
}

void
WorkloadEngine::stepHash()
{
    if (hashes_.empty())
        return;
    istl::HashTable &hash = *hashes_[ctx_.rng.below(hashes_.size())];
    const std::uint64_t hash_target =
        effTarget(params_.hashTarget, tmul_hash_);
    const bool grow = hash.size() < hash_target
                          ? ctx_.rng.chance(0.70)
                          : ctx_.rng.chance(0.30);
    if (grow) {
        const std::uint64_t key = 1 + ctx_.rng.below(kKeySpace);
        hash.insert(key);
        hash_keys_.push_back(key);
    } else if (!hash_keys_.empty() && ctx_.rng.chance(0.6)) {
        const std::size_t i = ctx_.rng.below(hash_keys_.size());
        hash.erase(hash_keys_[i]);
        hash_keys_[i] = hash_keys_.back();
        hash_keys_.pop_back();
    } else if (!hash_keys_.empty()) {
        hash.find(hash_keys_[ctx_.rng.below(hash_keys_.size())]);
    }
}

void
WorkloadEngine::stepBtree()
{
    if (btrees_.empty())
        return;
    istl::BTree &btree = *btrees_[ctx_.rng.below(btrees_.size())];
    const std::uint64_t btree_target =
        effTarget(params_.btreeTarget, tmul_btree_);
    const bool grow = btree.size() < btree_target
                          ? ctx_.rng.chance(0.70)
                          : ctx_.rng.chance(0.30);
    if (grow) {
        const std::uint64_t key = 1 + ctx_.rng.below(kKeySpace);
        btree.insert(key);
        btree_keys_.push_back(key);
    } else if (!btree_keys_.empty() && ctx_.rng.chance(0.5)) {
        const std::size_t i = ctx_.rng.below(btree_keys_.size());
        btree.eraseFromLeaf(btree_keys_[i]);
        btree_keys_[i] = btree_keys_.back();
        btree_keys_.pop_back();
    } else if (!btree_keys_.empty()) {
        btree.contains(btree_keys_[ctx_.rng.below(btree_keys_.size())]);
    }
}

void
WorkloadEngine::stepBuffer()
{
    if (buffers_ == nullptr)
        return;
    const std::uint64_t buf_target =
        effTarget(params_.bufferCount, tmul_buffer_);
    const bool grow = buffers_->liveCount() < buf_target
                          ? ctx_.rng.chance(0.70)
                          : ctx_.rng.chance(0.30);
    if (grow) {
        live_buffer_ids_.push_back(
            buffers_->acquire(params_.bufferSize));
    } else if (!live_buffer_ids_.empty()) {
        const std::size_t i = ctx_.rng.below(live_buffer_ids_.size());
        const std::size_t id = live_buffer_ids_[i];
        if (ctx_.rng.chance(0.15)) {
            buffers_->grow(id);
        } else if (ctx_.rng.chance(0.4)) {
            buffers_->release(id);
            live_buffer_ids_[i] = live_buffer_ids_.back();
            live_buffer_ids_.pop_back();
        } else {
            buffers_->fill(id, 4);
        }
    }
}

void
WorkloadEngine::stepHandle()
{
    if (handles_ == nullptr)
        return;
    const std::uint64_t target =
        effTarget(params_.handleCount, tmul_handle_);
    const bool grow = handles_->size() < target
                          ? ctx_.rng.chance(0.70)
                          : ctx_.rng.chance(0.30);
    if (grow)
        handles_->acquire();
    else if (ctx_.rng.chance(0.5))
        handles_->releaseRandom();
    else
        handles_->retargetRandom();
}

void
WorkloadEngine::stepGraph()
{
    if (graph_ == nullptr || graph_->vertexCount() == 0)
        return;
    const Addr u =
        graph_->vertexAt(ctx_.rng.below(graph_->vertexCount()));
    const bool grow = graph_->edgeCount() < graph_edge_target_
                          ? ctx_.rng.chance(0.70)
                          : ctx_.rng.chance(0.30);
    if (grow) {
        const Addr v =
            graph_->vertexAt(ctx_.rng.below(graph_->vertexCount()));
        graph_->addEdge(u, v);
    } else {
        graph_->removeFirstEdge(u);
    }
}

void
WorkloadEngine::stepDesc()
{
    if (descs_.empty() || dlls_.empty())
        return;
    istl::DescriptorTable &desc =
        *descs_[ctx_.rng.below(descs_.size())];
    const std::uint64_t slot = ctx_.rng.below(desc.slotCount());
    if (desc.descriptorAt(slot) == kNullAddr) {
        desc.populate(slot);
        return;
    }
    istl::Dll &sink = *dlls_[ctx_.rng.below(dlls_.size())];
    const Addr leaked = desc.transfer(slot, sink);
    if (leaked != kNullAddr) {
        ++result_.injectedLeakObjects;
        result_.leakAddrs.push_back(leaked);
    }
    // Consumer pops soon after, as the original code did.
    if (sink.size() > params_.dllTarget)
        sink.popFront();
}

void
WorkloadEngine::stepShare()
{
    if (hashes_.empty() || dlls_.empty() || hash_keys_.empty())
        return;
    istl::HashTable &hash = *hashes_[ctx_.rng.below(hashes_.size())];
    const std::uint64_t key =
        hash_keys_[ctx_.rng.below(hash_keys_.size())];
    const Addr payload = hash.payloadOf(key);
    if (payload == kNullAddr)
        return;
    istl::Dll &dll = *dlls_[ctx_.rng.below(dlls_.size())];
    Addr node = dll.cursor();
    if (node == kNullAddr)
        node = dll.nodeAt(0);
    if (node == kNullAddr)
        return;
    // The hash table owns the payload; the list only borrows it.
    // Dll::freeNode's SharedStateFree injection site fires from here.
    dll.sharePayload(node, payload);
}

void
WorkloadEngine::stepTraverse()
{
    // Periodic read passes keep SWAT's staleness picture honest: one
    // randomly chosen structure instance per traversal op.
    // cache_ is deliberately never traversed (reachable but stale),
    // and archive_ is never traversed after a reachable leak parks
    // there.
    switch (ctx_.rng.below(8)) {
      case 0:
        if (!dlls_.empty())
            dlls_[ctx_.rng.below(dlls_.size())]->traverse();
        break;
      case 1:
        if (!circs_.empty())
            circs_[ctx_.rng.below(circs_.size())]->traverse();
        break;
      case 2:
        if (!bsts_.empty())
            bsts_[ctx_.rng.below(bsts_.size())]->traverse();
        else if (!full_trees_.empty())
            full_trees_[ctx_.rng.below(full_trees_.size())]
                ->traverse();
        break;
      case 3:
        if (!octs_.empty())
            octs_[ctx_.rng.below(octs_.size())]->traverse();
        break;
      case 4:
        if (!btrees_.empty())
            btrees_[ctx_.rng.below(btrees_.size())]->traverse();
        break;
      case 5:
        if (graph_ != nullptr)
            graph_->traverseSample(48);
        else if (buffers_ != nullptr)
            buffers_->touchAll();
        break;
      case 6:
        if (buffers_ != nullptr)
            buffers_->touchAll();
        else if (handles_ != nullptr)
            handles_->touchAll();
        break;
      default:
        if (!descs_.empty())
            descs_[ctx_.rng.below(descs_.size())]->touchAll();
        break;
    }
}

void
WorkloadEngine::maybeGenericLeaks()
{
    if (ctx_.fire(FaultKind::SmallLeak)) {
        // Allocate and drop every handle: unreachable, tiny count.
        const Addr leak = ctx_.heap.malloc(params_.genericLeakSize);
        ctx_.heap.storeData(leak, ctx_.rng() & 0xFF);
        ++result_.injectedLeakObjects;
        result_.leakAddrs.push_back(leak);
    }
    if (ctx_.fire(FaultKind::ReachableLeak)) {
        // Parked in the archive list: reachable, never accessed
        // again.  SWAT (staleness) finds these; HeapMD cannot.
        const Addr node = archive_->pushBack();
        result_.reachableLeakObjects += 2; // node + payload
        result_.leakAddrs.push_back(node);
        const Addr payload =
            ctx_.heap.loadPtr(node + istl::Dll::kPayloadOff);
        if (payload != kNullAddr)
            result_.leakAddrs.push_back(payload);
    }
}

} // namespace apps

} // namespace heapmd
