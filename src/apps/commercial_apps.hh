/**
 * @file
 * Commercial application analogues (Figure 7(A), last five rows;
 * Figures 7(B), 10; Tables 1 and 2).
 */

#ifndef HEAPMD_APPS_COMMERCIAL_APPS_HH
#define HEAPMD_APPS_COMMERCIAL_APPS_HH

#include <memory>
#include <string>

#include "apps/app.hh"

namespace heapmd
{

namespace apps
{

/**
 * Instantiate a commercial analogue by name ("Multimedia",
 * "Interactive web-app.", "PC Game (simulation)",
 * "PC Game (action)", "Productivity").
 * @return nullptr when @p name is not a commercial analogue.
 */
std::unique_ptr<SyntheticApp>
makeCommercialApp(const std::string &name);

} // namespace apps

} // namespace heapmd

#endif // HEAPMD_APPS_COMMERCIAL_APPS_HH
