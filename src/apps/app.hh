/**
 * @file
 * Synthetic application framework.
 *
 * Substitution for the paper's benchmark programs (8 SPEC 2000
 * benchmarks and 5 commercial Windows applications): each synthetic
 * app is a heap-intensive program with a distinct data-structure mix,
 * a startup / steady / shutdown phase structure, input-seed
 * sensitivity, and a 5-version development lineage (Figure 7(B)).
 * All heap work goes through the instrumented runtime, so HeapMD
 * observes exactly what Vulcan instrumentation would have reported.
 */

#ifndef HEAPMD_APPS_APP_HH
#define HEAPMD_APPS_APP_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_plan.hh"
#include "istl/context.hh"
#include "runtime/process.hh"

namespace heapmd
{

/** One run's configuration: the "input" plus program version. */
struct AppConfig
{
    /** Input identity; drives all workload randomness. */
    std::uint64_t inputSeed = 1;

    /** Development version, 1..5 (Figure 7(B) lineage). */
    std::uint32_t version = 1;

    /** Bugs compiled into this build of the program. */
    FaultPlan faults;

    /** Global size/op-count multiplier (benches shrink or grow). */
    double scale = 1.0;
};

/** Ground truth recorded while a run executes (for scoring). */
struct AppResult
{
    /** Objects leaked unreachable by injected bugs. */
    std::uint64_t injectedLeakObjects = 0;

    /** Objects leaked but still reachable (SWAT finds, HeapMD not). */
    std::uint64_t reachableLeakObjects = 0;

    /** Reachable idle cache objects -- *not* leaks (SWAT FP bait). */
    std::uint64_t cacheObjects = 0;

    /** Addresses of truly leaked objects (unreachable + reachable). */
    std::vector<Addr> leakAddrs;

    /** Addresses of idle cache objects (false-positive bait). */
    std::vector<Addr> cacheAddrs;

    /** Fault kinds that actually fired during the run. */
    std::vector<FaultKind> firedFaults;

    /** Function entries the run produced. */
    std::uint64_t fnEntries = 0;
};

/**
 * Base class of all synthetic applications.
 *
 * run() wires up the instrumented heap and executes the workload
 * against the given Process (HeapMD's execution logger); subclasses
 * implement execute() with their personality.
 */
class SyntheticApp
{
  public:
    virtual ~SyntheticApp() = default;

    /** Program name as it appears in the paper's tables. */
    virtual std::string name() const = 0;

    /** Execute one run of the program on one input. */
    AppResult run(Process &process, const AppConfig &config);

  protected:
    /** Workload body; all heap work must go through @p ctx. */
    virtual void execute(istl::Context &ctx, const AppConfig &config,
                         AppResult &result) = 0;
};

/** Names of the SPEC 2000 analogues, in Figure 7(A) order. */
const std::vector<std::string> &specAppNames();

/** Names of the commercial analogues, in Figure 7(A) order. */
const std::vector<std::string> &commercialAppNames();

/** All application names. */
std::vector<std::string> allAppNames();

/** Instantiate an application by name; fatal on unknown name. */
std::unique_ptr<SyntheticApp> makeApp(const std::string &name);

/** Number of training inputs the paper used for @p app_name. */
std::size_t paperInputCount(const std::string &app_name);

} // namespace heapmd

#endif // HEAPMD_APPS_APP_HH
