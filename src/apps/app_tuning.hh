/**
 * @file
 * Shared parameter-variation helpers for application personalities.
 */

#ifndef HEAPMD_APPS_APP_TUNING_HH
#define HEAPMD_APPS_APP_TUNING_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "apps/app.hh"
#include "support/random.hh"

namespace heapmd
{

namespace apps
{

/**
 * Deterministic per-run variation source.  Splits the input seed and
 * version into independent streams so the *same* inputs produce the
 * *same* structural variation across versions (as with real
 * regression inputs replayed against successive builds).
 */
struct Variation
{
    explicit Variation(const AppConfig &config)
        : input(config.inputSeed * 0x9e3779b97f4a7c15ull + 0x1234),
          scale(config.scale <= 0.0 ? 1.0 : config.scale),
          version(config.version)
    {
        // One global size factor per input: real inputs mostly make
        // *all* of a program's structures bigger or smaller together,
        // which keeps composition ratios (and therefore the stable
        // metrics) tight across inputs.
        global = 0.75 + input.uniform() * 0.55;
    }

    /** Uniform double in [lo, hi] from the input stream. */
    double
    range(double lo, double hi)
    {
        return lo + input.uniform() * (hi - lo);
    }

    /**
     * Scaled count: base * global * U[lo, hi] * scale, at least 1.
     * The default [lo, hi] is a small per-structure jitter; apps pass
     * wide bounds only where the paper reports wide stable ranges
     * (e.g. vpr's rings).
     */
    std::uint64_t
    count(std::uint64_t base, double lo = 0.95, double hi = 1.06)
    {
        const double v = static_cast<double>(base) * global *
                         range(lo, hi) * scale;
        return std::max<std::uint64_t>(1,
                                       static_cast<std::uint64_t>(v));
    }

    /** Unscaled count (structure *counts* rather than sizes). */
    std::uint64_t
    instances(std::uint64_t base)
    {
        return std::max<std::uint64_t>(1, base);
    }

    /**
     * Branch probability for an oct-tree of the given depth such
     * that the expected node count tracks the global size factor
     * (node count grows like (8 * branch)^depth, so the branch must
     * move with the depth-th root of the factor), with a small
     * per-input jitter.
     */
    double
    branchFor(double base, std::uint32_t depth)
    {
        const double exponent =
            1.0 / std::max<std::uint32_t>(1, depth);
        return base * std::pow(global, exponent) *
               range(0.995, 1.005);
    }

    /**
     * Version drift: a multiplicative nudge of at most +/-2% per
     * version step, mimicking small allocator-mix changes between
     * development builds (Figure 7(B) requires ranges to persist).
     */
    double
    drift() const
    {
        return 1.0 + 0.02 * (static_cast<double>(version) - 1.0) /
                         4.0;
    }

    Rng input;
    double scale;
    std::uint32_t version;
    double global = 1.0;
};

} // namespace apps

} // namespace heapmd

#endif // HEAPMD_APPS_APP_TUNING_HH
