/**
 * @file
 * Parameterized workload engine shared by the synthetic applications.
 *
 * Every application is a personality on top of this engine: it owns a
 * mix of instrumented data structures, builds them during startup,
 * churns them at a stationary operation distribution during the
 * steady phase (which is what makes degree metrics globally stable),
 * and tears everything down at shutdown.  Fault-injection scenarios
 * (generic leaks, shared-state payloads) run inside the steady loop.
 */

#ifndef HEAPMD_APPS_WORKLOAD_ENGINE_HH
#define HEAPMD_APPS_WORKLOAD_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/app.hh"
#include "istl/adj_graph.hh"
#include "istl/binary_tree.hh"
#include "istl/btree.hh"
#include "istl/buffer_pool.hh"
#include "istl/circular_list.hh"
#include "istl/descriptor_table.hh"
#include "istl/dll.hh"
#include "istl/handle_pool.hh"
#include "istl/hash_table.hh"
#include "istl/oct_tree.hh"

namespace heapmd
{

namespace apps
{

/** Structure inventory and steady-state operation mix of one app. */
struct MixParams
{
    /** @name Structure inventory (count 0 disables a structure). */
    ///@{
    std::uint64_t dllCount = 0;     //!< doubly-linked lists
    std::uint64_t dllTarget = 0;    //!< steady-state nodes per list
    std::uint64_t dllPayload = 0;   //!< payload bytes per node

    std::uint64_t circCount = 0;    //!< circular lists
    std::uint64_t circTarget = 0;
    std::uint64_t circPayload = 0;

    std::uint64_t bstCount = 0;     //!< binary search trees
    std::uint64_t bstTarget = 0;
    std::uint64_t bstPayload = 0;
    double bstSpliceShare = 0.10;   //!< fraction of inserts spliced

    std::uint64_t fullTreeCount = 0; //!< buildFull() scene trees
    std::uint32_t fullTreeDepth = 0;

    std::uint64_t octCount = 0;     //!< oct-trees (built at startup)
    std::uint32_t octDepth = 0;
    double octBranch = 0.85;
    std::uint64_t octBudget = 0;    //!< node budget (0: use depth)

    std::uint64_t hashCount = 0;    //!< chained hash tables
    std::uint64_t hashBuckets = 0;
    std::uint64_t hashTarget = 0;
    std::uint64_t hashPayload = 0;

    std::uint64_t btreeCount = 0;   //!< B-trees
    std::uint64_t btreeTarget = 0;

    std::uint64_t graphVertices = 0; //!< adjacency-list graph
    double graphDegree = 0.0;

    std::uint64_t bufferCount = 0;  //!< raw buffer pool
    std::uint64_t bufferSize = 0;

    std::uint64_t handleCount = 0;  //!< root handle -> payload pairs
    std::uint64_t handlePayload = 48;

    std::uint64_t descTables = 0;   //!< Figure 11 descriptor tables
    std::uint64_t descSlots = 0;
    std::uint64_t descSize = 0;

    std::uint64_t cacheObjects = 0; //!< idle reachable cache (SWAT FP)
    std::uint64_t cacheObjectSize = 64;
    ///@}

    /** @name Steady phase. */
    ///@{
    std::uint64_t steadyOps = 40000; //!< operations in the steady loop

    /**
     * Program phases within the steady loop (Section 2.1 discusses
     * phase behaviour).  Each phase re-rolls operation weights and
     * structure targets, and may bulk-rebuild structures, making the
     * affected metrics locally stable or unstable while others stay
     * globally stable.
     */
    std::uint32_t phases = 1;
    double phaseWeightSwing = 0.0; //!< weight multiplier swing +/-
    double phaseTargetSwing = 0.0; //!< target multiplier swing +/-
    bool bulkDll = false;     //!< rebuild one DLL at phase change
    bool bulkCirc = false;    //!< rebuild one circular list
    bool bulkBst = false;     //!< rebuild one binary tree
    bool bulkHash = false;    //!< rebuild one hash table
    bool bulkBuffers = false; //!< churn half the buffer pool

    double wDll = 0.0;     //!< per-op weights of each structure kind
    double wCirc = 0.0;
    double wBst = 0.0;
    double wHash = 0.0;
    double wBtree = 0.0;
    double wBuffer = 0.0;
    double wHandle = 0.0;
    double wGraph = 0.0;
    double wDesc = 0.0;
    double wShare = 0.0;   //!< share a hash payload into a DLL node
    double wTraverse = 0.02;

    std::uint64_t genericLeakSize = 48; //!< bytes per leaked object
    ///@}
};

/**
 * Executes the three-phase workload described by a MixParams.
 * Ground-truth leak/cache accounting is folded into the AppResult.
 */
class WorkloadEngine
{
  public:
    WorkloadEngine(istl::Context &ctx, const MixParams &params,
                   AppResult &result);
    ~WorkloadEngine();

    WorkloadEngine(const WorkloadEngine &) = delete;
    WorkloadEngine &operator=(const WorkloadEngine &) = delete;

    /** Build all structures to their targets. */
    void startup();

    /** Run the stationary churn loop. */
    void steady();

    /** Tear everything down. */
    void shutdown();

    /** startup() + steady() + shutdown(). */
    void runAll();

  private:
    void runOneOp(const std::vector<double> &weights);
    void phaseTransition();
    std::uint64_t effTarget(std::uint64_t base, double mult) const;

    void stepDll();
    void stepCirc();
    void stepBst();
    void stepHash();
    void stepBtree();
    void stepBuffer();
    void stepHandle();
    void stepGraph();
    void stepDesc();
    void stepShare();
    void stepTraverse();
    void maybeGenericLeaks();

    istl::Context &ctx_;
    MixParams params_;
    AppResult &result_;

    std::vector<std::unique_ptr<istl::Dll>> dlls_;
    std::vector<std::unique_ptr<istl::CircularList>> circs_;
    std::vector<std::unique_ptr<istl::BinaryTree>> bsts_;
    std::vector<std::unique_ptr<istl::BinaryTree>> full_trees_;
    std::vector<std::unique_ptr<istl::OctTree>> octs_;
    std::vector<std::unique_ptr<istl::HashTable>> hashes_;
    std::vector<std::unique_ptr<istl::BTree>> btrees_;
    std::unique_ptr<istl::AdjGraph> graph_;
    std::unique_ptr<istl::BufferPool> buffers_;
    std::vector<std::size_t> live_buffer_ids_;
    std::unique_ptr<istl::HandlePool> handles_;
    std::vector<std::unique_ptr<istl::DescriptorTable>> descs_;
    std::unique_ptr<istl::Dll> archive_; //!< reachable-leak parking
    std::unique_ptr<istl::Dll> cache_;   //!< idle reachable cache
    std::vector<std::uint64_t> hash_keys_;
    std::vector<std::uint64_t> btree_keys_;

    /** Per-phase multipliers (re-rolled at each phase transition). */
    std::vector<double> weight_mult_;
    double tmul_dll_ = 1.0;
    double tmul_circ_ = 1.0;
    double tmul_bst_ = 1.0;
    double tmul_hash_ = 1.0;
    double tmul_btree_ = 1.0;
    double tmul_buffer_ = 1.0;
    double tmul_handle_ = 1.0;
    std::uint64_t graph_edge_target_ = 0;
};

} // namespace apps

} // namespace heapmd

#endif // HEAPMD_APPS_WORKLOAD_ENGINE_HH
