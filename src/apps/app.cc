#include "apps/app.hh"

#include "apps/spec_apps.hh"
#include "apps/commercial_apps.hh"
#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

AppResult
SyntheticApp::run(Process &process, const AppConfig &config)
{
    HEAPMD_TRACE_SPAN("app.run");
    HEAPMD_COUNTER_INC("app.runs");
    HeapApi heap(process);
    FaultPlan faults = config.faults; // run-local: budgets refill
    std::uint64_t seed_state =
        config.inputSeed * 0x9e3779b97f4a7c15ull + config.version;
    for (char ch : name())
        seed_state = seed_state * 131 + static_cast<unsigned char>(ch);
    istl::Context ctx(heap, faults, splitMix64(seed_state));

    AppResult result;
    const FnId fn_main = heap.intern(name() + "::main");
    {
        FunctionScope scope(heap, fn_main);
        execute(ctx, config, result);
    }
    result.fnEntries = process.fnEntries();
    for (FaultKind kind : faults.activeKinds()) {
        if (faults.firedCount(kind) > 0)
            result.firedFaults.push_back(kind);
    }
    return result;
}

const std::vector<std::string> &
specAppNames()
{
    static const std::vector<std::string> names = {
        "twolf", "crafty", "mcf", "vpr", "vortex", "gzip", "parser",
        "gcc",
    };
    return names;
}

const std::vector<std::string> &
commercialAppNames()
{
    static const std::vector<std::string> names = {
        "Multimedia", "Interactive web-app.", "PC Game (simulation)",
        "PC Game (action)", "Productivity",
    };
    return names;
}

std::vector<std::string>
allAppNames()
{
    std::vector<std::string> names = specAppNames();
    const auto &commercial = commercialAppNames();
    names.insert(names.end(), commercial.begin(), commercial.end());
    return names;
}

std::unique_ptr<SyntheticApp>
makeApp(const std::string &name)
{
    if (auto app = apps::makeSpecApp(name))
        return app;
    if (auto app = apps::makeCommercialApp(name))
        return app;
    HEAPMD_FATAL("unknown application '", name, "'");
}

std::size_t
paperInputCount(const std::string &app_name)
{
    // Figure 7(A), column "# Inputs".
    if (app_name == "twolf" || app_name == "crafty" ||
        app_name == "mcf") {
        return 3;
    }
    if (app_name == "vpr")
        return 6;
    if (app_name == "vortex")
        return 5;
    if (app_name == "gzip" || app_name == "parser" ||
        app_name == "gcc") {
        return 100;
    }
    return 50; // the five commercial applications
}

} // namespace heapmd
