#include "analysis/diag_lint.hh"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "detector/bug_report.hh"
#include "detector/classification.hh"
#include "metrics/metric.hh"
#include "support/hash.hh"
#include "support/types.hh"
#include "telemetry/trace_json.hh"

namespace heapmd
{

namespace analysis
{

namespace
{

using telemetry::JsonValue;

/**
 * Member access that files a diag.missing-field finding instead of
 * returning an error string: the lint keeps walking after a miss so
 * one pass reports every defect.
 */
class Checker
{
  public:
    explicit Checker(Report &report) : report_(report) {}

    const JsonValue *
    member(const JsonValue &object, const std::string &where,
           const char *key, JsonValue::Kind kind, const char *type)
    {
        const JsonValue *found = object.find(key);
        if (found == nullptr) {
            report_.error("diag.missing-field",
                          where + " is missing member '" + key + "'");
            return nullptr;
        }
        if (found->kind != kind) {
            report_.error("diag.missing-field",
                          where + " member '" + key + "' is not " +
                              type);
            return nullptr;
        }
        return found;
    }

    /** String member; "" stands in after a filed finding. */
    std::string
    str(const JsonValue &object, const std::string &where,
        const char *key)
    {
        const JsonValue *found = member(object, where, key,
                                        JsonValue::Kind::String,
                                        "a string");
        return found != nullptr ? found->string : std::string();
    }

    /** Numeric member; NaN stands in after a filed finding. */
    double
    num(const JsonValue &object, const std::string &where,
        const char *key)
    {
        const JsonValue *found = member(object, where, key,
                                        JsonValue::Kind::Number,
                                        "a number");
        return found != nullptr ? found->number
                                : std::numeric_limits<double>::quiet_NaN();
    }

    const JsonValue *
    array(const JsonValue &object, const std::string &where,
          const char *key)
    {
        return member(object, where, key, JsonValue::Kind::Array,
                      "an array");
    }

    const JsonValue *
    object(const JsonValue &value, const std::string &where,
           const char *key)
    {
        return member(value, where, key, JsonValue::Kind::Object,
                      "an object");
    }

  private:
    Report &report_;
};

/**
 * Shared preamble: parse, check kind tag and schema version.
 * Versions 1..@p supported_version pass; the document's version is
 * written to @p version_out (0 if missing/mistyped) so callers can
 * lint version-gated sections.
 */
const char *
parsePreamble(const std::string &text, const char *expected_kind,
              std::uint64_t supported_version, JsonValue &root,
              Report &report, std::uint64_t *version_out = nullptr)
{
    if (version_out != nullptr)
        *version_out = 0;
    std::string error;
    if (!telemetry::parseJson(text, root, &error)) {
        report.error("diag.parse", error);
        return nullptr;
    }
    if (!root.isObject()) {
        report.error("diag.parse", "document root is not an object");
        return nullptr;
    }
    const JsonValue *kind = root.find("kind");
    if (kind == nullptr || !kind->isString()) {
        report.error("diag.kind",
                     "document has no string 'kind' tag");
        return nullptr;
    }
    if (kind->string != expected_kind) {
        report.error("diag.kind", "kind '" + kind->string +
                                      "' is not '" + expected_kind +
                                      "'");
        return nullptr;
    }
    const JsonValue *version = root.find("schemaVersion");
    if (version == nullptr || !version->isNumber()) {
        report.error("diag.version",
                     "document has no numeric schemaVersion");
    } else if (version->number < 1 ||
               version->number > supported_version) {
        report.error("diag.version",
                     "unsupported schemaVersion " +
                         std::to_string(version->number));
    } else if (version_out != nullptr) {
        *version_out = static_cast<std::uint64_t>(version->number);
    }
    return expected_kind;
}

void
lintBundleSuspects(const JsonValue &root, Checker &check,
                   Report &report, BundleLintStats &stats)
{
    const JsonValue *suspects = check.array(root, "bundle", "suspects");
    const JsonValue *log = check.array(root, "bundle", "contextLog");

    // Tally the innermost frame of every snapshot to cross-check the
    // stored suspect ranking (lowest FnId wins ties, mirroring
    // BugReport::suspectRanking()).
    std::map<std::uint64_t, std::size_t> innermost;
    if (log != nullptr) {
        double prev_point = -1.0;
        for (const JsonValue &entry : log->array) {
            if (!entry.isObject()) {
                report.error("diag.missing-field",
                             "contextLog entry is not an object");
                continue;
            }
            ++stats.contextEntries;
            const double point =
                check.num(entry, "contextLog entry", "pointIndex");
            check.num(entry, "contextLog entry", "tick");
            check.num(entry, "contextLog entry", "metricValue");
            if (!std::isnan(point)) {
                if (point < prev_point) {
                    report.warning(
                        "diag.context-order",
                        "contextLog pointIndex goes backwards at " +
                            std::to_string(point));
                }
                prev_point = point;
            }
            const JsonValue *frames =
                check.array(entry, "contextLog entry", "frames");
            if (frames == nullptr)
                continue;
            bool first = true;
            for (const JsonValue &frame : frames->array) {
                if (!frame.isObject()) {
                    report.error("diag.missing-field",
                                 "frame is not an object");
                    continue;
                }
                ++stats.frames;
                const double id = check.num(frame, "frame", "fnId");
                check.str(frame, "frame", "name");
                if (first && !std::isnan(id)) {
                    ++innermost[static_cast<std::uint64_t>(id)];
                    first = false;
                }
            }
        }
        if (log->array.empty()) {
            report.warning("diag.empty-context",
                           "incident carries no logged call stacks");
        }
    }

    if (suspects == nullptr)
        return;
    for (const JsonValue &suspect : suspects->array) {
        if (!suspect.isObject()) {
            report.error("diag.missing-field",
                         "suspects entry is not an object");
            continue;
        }
        ++stats.suspects;
        check.num(suspect, "suspect", "fnId");
        check.str(suspect, "suspect", "name");
        check.num(suspect, "suspect", "snapshots");
    }
    if (!suspects->array.empty() && !innermost.empty()) {
        std::uint64_t best_fn = 0;
        std::size_t best_count = 0;
        for (const auto &[fn, count] : innermost) {
            if (count > best_count) {
                best_fn = fn;
                best_count = count;
            }
        }
        const JsonValue &top = suspects->array.front();
        const JsonValue *top_id =
            top.isObject() ? top.find("fnId") : nullptr;
        if (top_id != nullptr && top_id->isNumber() &&
            static_cast<std::uint64_t>(top_id->number) != best_fn) {
            report.warning(
                "diag.suspect-mismatch",
                "stored top suspect fn#" +
                    std::to_string(
                        static_cast<std::uint64_t>(top_id->number)) +
                    " is not the context-log majority fn#" +
                    std::to_string(best_fn));
        }
    }
}

void
lintBundleWindow(const JsonValue &root, const std::string &metric,
                 double crossing_point, Checker &check, Report &report,
                 BundleLintStats &stats)
{
    const JsonValue *window = check.object(root, "bundle", "window");
    if (window == nullptr)
        return;
    const std::string window_metric =
        check.str(*window, "window", "metric");
    if (!window_metric.empty() && !metric.empty() &&
        window_metric != metric) {
        report.error("diag.bad-metric",
                     "window metric '" + window_metric +
                         "' does not match the incident metric '" +
                         metric + "'");
    }
    check.num(*window, "window", "radius");
    const JsonValue *points = check.array(*window, "window", "points");
    if (points == nullptr)
        return;
    double prev = -1.0;
    bool covers_crossing = false;
    for (const JsonValue &point : points->array) {
        if (!point.isObject()) {
            report.error("diag.missing-field",
                         "window point is not an object");
            continue;
        }
        ++stats.windowPoints;
        const double index =
            check.num(point, "window point", "pointIndex");
        check.num(point, "window point", "tick");
        check.num(point, "window point", "value");
        if (std::isnan(index))
            continue;
        if (index <= prev) {
            report.error("diag.window-order",
                         "window pointIndex not strictly increasing "
                         "at " +
                             std::to_string(index));
        }
        prev = index;
        if (index == crossing_point)
            covers_crossing = true;
    }
    if (!points->array.empty() && !std::isnan(crossing_point) &&
        !covers_crossing) {
        report.warning("diag.window-miss",
                       "window does not contain the crossing point " +
                           std::to_string(crossing_point));
    }
}

void
lintNameValueArray(const JsonValue &root, const char *key,
                   Checker &check, Report &report, std::size_t &count)
{
    const JsonValue *array = check.array(root, "manifest", key);
    if (array == nullptr)
        return;
    std::string prev;
    for (const JsonValue &entry : array->array) {
        if (!entry.isObject()) {
            report.error("diag.missing-field",
                         std::string(key) +
                             " entry is not an object");
            continue;
        }
        ++count;
        const std::string name = check.str(entry, key, "name");
        check.num(entry, key, "value");
        if (!name.empty() && !prev.empty() && name <= prev) {
            report.warning("diag.counter-order",
                           std::string(key) + " entry '" + name +
                               "' is not sorted after '" + prev + "'");
        }
        if (!name.empty())
            prev = name;
    }
}

/** The stable audit --deep rule family (DESIGN.md §12). */
constexpr const char *kFlowRules[] = {
    "flow.double_free",  "flow.free_unallocated",
    "flow.size_mismatch", "flow.negative_size",
    "flow.write_freed",  "flow.write_unmapped",
    "flow.overlap_alloc", "flow.dangling_edge",
    "flow.leak_at_exit",
};

void
lintFlowSite(const JsonValue &root, const char *key, Checker &check,
             Report &report)
{
    const JsonValue *site = check.object(root, "flow incident", key);
    if (site == nullptr)
        return;
    check.member(*site, key, "known", JsonValue::Kind::Bool,
                 "a boolean");
    check.num(*site, key, "fnId");
    check.str(*site, key, "name");
    check.num(*site, key, "eventIndex");
    check.num(*site, key, "byteOffset");
}

/** Lint a "heapmd.flow" document (one audit --deep finding). */
void
lintFlowDocument(const JsonValue &root, Report &report)
{
    Checker check(report);
    check.str(root, "flow incident", "program");

    const std::string rule = check.str(root, "flow incident", "rule");
    if (!rule.empty()) {
        bool known = false;
        for (const char *candidate : kFlowRules)
            known = known || rule == candidate;
        if (!known) {
            report.error("diag.bad-rule",
                         "unknown flow rule '" + rule + "'");
        }
    }

    const std::string severity =
        check.str(root, "flow incident", "severity");
    if (!severity.empty() && severity != "error" &&
        severity != "warning" && severity != "note") {
        report.error("diag.bad-severity",
                     "severity '" + severity +
                         "' is not error/warning/note");
    }

    check.str(root, "flow incident", "message");
    const double addr = check.num(root, "flow incident", "addr");
    const double base = check.num(root, "flow incident", "base");
    const double size = check.num(root, "flow incident", "size");
    check.num(root, "flow incident", "byteOffset");
    check.num(root, "flow incident", "eventIndex");
    check.num(root, "flow incident", "lifetimeEvents");
    check.num(root, "flow incident", "objects");
    check.num(root, "flow incident", "bytes");

    // For the rules whose address is an access into the named object,
    // the address must land inside its extent.
    const bool interior_rule = rule == "flow.write_freed" ||
                               rule == "flow.dangling_edge" ||
                               rule == "flow.double_free" ||
                               rule == "flow.size_mismatch";
    if (interior_rule && !std::isnan(addr) && !std::isnan(base) &&
        !std::isnan(size) && size > 0.0 &&
        (addr < base || addr >= base + size)) {
        report.error("diag.addr-outside",
                     "address " + std::to_string(addr) +
                         " lies outside the object extent named by " +
                         rule);
    }

    lintFlowSite(root, "allocSite", check, report);
    lintFlowSite(root, "freeSite", check, report);
}

} // namespace

BundleLintStats
lintBundleText(const std::string &text, Report &report)
{
    BundleLintStats stats;
    JsonValue root;
    // Sniff the kind first: `audit --bundle` accepts both incident
    // bundles and the flow incidents that audit --deep exports.
    {
        std::string error;
        if (!telemetry::parseJson(text, root, &error)) {
            report.error("diag.parse", error);
            return stats;
        }
    }
    if (root.isObject()) {
        const JsonValue *kind = root.find("kind");
        if (kind != nullptr && kind->isString() &&
            kind->string == "heapmd.flow") {
            const JsonValue *version = root.find("schemaVersion");
            if (version == nullptr || !version->isNumber()) {
                report.error("diag.version",
                             "document has no numeric schemaVersion");
            } else if (version->number != 1) {
                report.error("diag.version",
                             "unsupported schemaVersion " +
                                 std::to_string(version->number));
            }
            lintFlowDocument(root, report);
            return stats;
        }
    }
    if (parsePreamble(text, "heapmd.incident", 1, root, report) ==
        nullptr) {
        return stats;
    }
    Checker check(report);

    check.str(root, "bundle", "program");
    const std::string klass = check.str(root, "bundle", "bugClass");
    if (!klass.empty() && !tryBugClassFromName(klass)) {
        report.error("diag.bad-class",
                     "unknown bug class '" + klass + "'");
    }
    const std::string metric = check.str(root, "bundle", "metric");
    if (!metric.empty() && !tryMetricFromName(metric)) {
        report.error("diag.bad-metric",
                     "unknown metric '" + metric + "'");
    }
    const std::string direction =
        check.str(root, "bundle", "direction");
    if (!direction.empty() && !tryAnomalyDirectionFromName(direction)) {
        report.error("diag.bad-direction",
                     "unknown direction '" + direction + "'");
    }

    const double observed =
        check.num(root, "bundle", "observedValue");
    const double min = check.num(root, "bundle", "calibratedMin");
    const double max = check.num(root, "bundle", "calibratedMax");
    check.num(root, "bundle", "tick");
    const double crossing = check.num(root, "bundle", "pointIndex");

    if (!std::isnan(min) && !std::isnan(max) && min > max) {
        report.error("diag.range-inverted",
                     "calibratedMin " + std::to_string(min) +
                         " exceeds calibratedMax " +
                         std::to_string(max));
    }
    // Only heap-anomaly incidents claim the value left the range;
    // poorly-disguised incidents sit *inside* it by definition.
    if (klass == "heap-anomaly" && !std::isnan(observed) &&
        !std::isnan(min) && !std::isnan(max) && observed >= min &&
        observed <= max) {
        report.warning("diag.observed-in-range",
                       "observed value " + std::to_string(observed) +
                           " lies inside the calibrated range");
    }

    lintBundleSuspects(root, check, report, stats);
    lintBundleWindow(root, metric, crossing, check, report, stats);
    return stats;
}

BundleLintStats
lintBundleFile(const std::string &path, Report &report)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.error("diag.io", "cannot open '" + path + "'");
        return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintBundleText(buffer.str(), report);
}

ManifestLintStats
lintManifestText(const std::string &text, Report &report)
{
    ManifestLintStats stats;
    JsonValue root;
    std::uint64_t schema = 0;
    if (parsePreamble(text, "heapmd.manifest", 4, root, report,
                      &schema) == nullptr) {
        return stats;
    }
    Checker check(report);

    check.str(root, "manifest", "command");
    check.str(root, "manifest", "commandLine");
    check.str(root, "manifest", "program");

    const JsonValue *config = check.object(root, "manifest", "config");
    if (config != nullptr) {
        check.num(*config, "config", "metricFrequency");
        check.member(*config, "config", "includeLocallyStable",
                     JsonValue::Kind::Bool, "a boolean");
        check.num(*config, "config", "seed");
        check.num(*config, "config", "version");
        check.num(*config, "config", "scale");
        check.str(*config, "config", "fault");
        check.num(*config, "config", "faultRate");
        // rotateBytes arrived with schema v4 (capture rotation
        // provenance pooled by fleet-merge).
        if (schema >= 4)
            check.num(*config, "config", "rotateBytes");
    }

    // env arrived with schema v2; absence there is a defect, absence
    // on v1 documents is history.  v3 grew the resource-footprint
    // pair inside env.
    if (schema >= 2) {
        const JsonValue *env = check.object(root, "manifest", "env");
        if (env != nullptr) {
            check.num(*env, "env", "hardwareConcurrency");
            check.str(*env, "env", "sanitizer");
            if (schema >= 3) {
                check.num(*env, "env", "peakRssBytes");
                check.num(*env, "env", "durationNanos");
            }
        }
    }

    const JsonValue *inputs = check.array(root, "manifest", "inputs");
    if (inputs != nullptr) {
        for (const JsonValue &input : inputs->array) {
            if (!input.isObject()) {
                report.error("diag.missing-field",
                             "inputs entry is not an object");
                continue;
            }
            ++stats.inputs;
            check.str(input, "input", "role");
            check.str(input, "input", "path");
            check.num(input, "input", "bytes");
            const std::string fingerprint =
                check.str(input, "input", "fingerprint");
            if (!fingerprint.empty() &&
                !isHashFingerprint(fingerprint)) {
                report.warning("diag.hash-format",
                               "input fingerprint '" + fingerprint +
                                   "' is not 'fnv1a:<hex16>'");
            }
        }
    }

    // phases arrived with schema v3.  Wall time bounds CPU time from
    // below only per-thread; a phase that runs on N threads can bank
    // more CPU than wall, so only the degenerate zero-wall-nonzero-cpu
    // shape is flagged.
    if (schema >= 3) {
        const JsonValue *phases =
            check.array(root, "manifest", "phases");
        if (phases != nullptr) {
            for (const JsonValue &phase : phases->array) {
                if (!phase.isObject()) {
                    report.error("diag.missing-field",
                                 "phases entry is not an object");
                    continue;
                }
                const std::string name =
                    check.str(phase, "phase", "name");
                const double count =
                    check.num(phase, "phase", "count");
                const double wall =
                    check.num(phase, "phase", "wallNanos");
                const double cpu =
                    check.num(phase, "phase", "cpuNanos");
                check.num(phase, "phase", "bytes");
                if (!std::isnan(count) && count < 1.0) {
                    report.error("diag.phase-count",
                                 "phase '" + name +
                                     "' records zero runs");
                }
                if (!std::isnan(wall) && !std::isnan(cpu) &&
                    wall == 0.0 && cpu > 0.0) {
                    report.warning("diag.phase-time",
                                   "phase '" + name +
                                       "' banked CPU time with zero "
                                       "wall time");
                }
            }
        }
    }

    double events = std::numeric_limits<double>::quiet_NaN();
    double samples = std::numeric_limits<double>::quiet_NaN();
    const JsonValue *run = check.object(root, "manifest", "run");
    if (run != nullptr) {
        events = check.num(*run, "run", "events");
        samples = check.num(*run, "run", "samples");
        check.num(*run, "run", "allocs");
        check.num(*run, "run", "frees");
        check.num(*run, "run", "liveBlocksAtExit");
        check.num(*run, "run", "wallNanos");
        check.num(*run, "run", "cpuNanos");
    }
    if (!std::isnan(events) && !std::isnan(samples) && events > 0.0 &&
        samples > events) {
        report.warning("diag.sample-excess",
                       "manifest records more samples (" +
                           std::to_string(samples) +
                           ") than runtime events (" +
                           std::to_string(events) + ")");
    }

    const JsonValue *reports = check.object(root, "manifest",
                                            "reports");
    if (reports != nullptr) {
        const double total = check.num(*reports, "reports", "total");
        const double anomalies =
            check.num(*reports, "reports", "heapAnomalies");
        const double disguised =
            check.num(*reports, "reports", "poorlyDisguised");
        const double pathological =
            check.num(*reports, "reports", "pathological");
        if (!std::isnan(total) && !std::isnan(anomalies) &&
            !std::isnan(disguised) && !std::isnan(pathological) &&
            total != anomalies + disguised + pathological) {
            report.error("diag.report-count",
                         "report total " + std::to_string(total) +
                             " does not equal the class tallies");
        }
        if (!std::isnan(total))
            stats.reports = static_cast<std::size_t>(total);
        const JsonValue *bundles =
            check.array(*reports, "reports", "bundles");
        if (bundles != nullptr) {
            for (const JsonValue &bundle : bundles->array) {
                if (!bundle.isString()) {
                    report.error("diag.missing-field",
                                 "bundles entry is not a string");
                }
            }
        }
    }

    const JsonValue *metrics = check.array(root, "manifest",
                                           "metrics");
    if (metrics != nullptr) {
        for (const JsonValue &metric : metrics->array) {
            if (!metric.isObject()) {
                report.error("diag.missing-field",
                             "metrics entry is not an object");
                continue;
            }
            ++stats.metrics;
            const std::string name =
                check.str(metric, "metric summary", "metric");
            if (!name.empty() && !tryMetricFromName(name)) {
                report.error("diag.bad-metric",
                             "unknown metric '" + name + "'");
            }
            check.num(metric, "metric summary", "count");
            const double lo =
                check.num(metric, "metric summary", "min");
            const double hi =
                check.num(metric, "metric summary", "max");
            check.num(metric, "metric summary", "mean");
            check.num(metric, "metric summary", "stddev");
            if (!std::isnan(lo) && !std::isnan(hi) && lo > hi) {
                report.error("diag.range-inverted",
                             "metric summary '" + name +
                                 "' has min > max");
            }
        }
    }

    lintNameValueArray(root, "counters", check, report,
                       stats.counters);
    lintNameValueArray(root, "gauges", check, report, stats.gauges);
    return stats;
}

ManifestLintStats
lintManifestFile(const std::string &path, Report &report)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.error("diag.io", "cannot open '" + path + "'");
        return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintManifestText(buffer.str(), report);
}

} // namespace analysis

} // namespace heapmd
