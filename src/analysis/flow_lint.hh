/**
 * @file
 * Shadow-heap dataflow analyzer for HMDT traces (`audit --deep`).
 *
 * A single forward pass over the decoded event stream maintains a
 * *shadow heap*: an interval map of live and freed extents, each
 * extent carrying its allocation-site provenance (innermost function,
 * event index, byte offset), the pointer slots written into it, and
 * the set of incoming edges from other objects.  Unlike the trace
 * linter -- which checks that the artifact obeys the format spec --
 * this pass decides *program* properties that are statically evident
 * from the trace alone: no model, no replay, no detector thresholds.
 *
 * Rule catalog (stable ids, documented in DESIGN.md section 12):
 *   flow.double_free      free/realloc of an extent already freed and
 *                         not since reused; names the alloc site, the
 *                         first free site, and the object lifetime
 *   flow.free_unallocated free/realloc of an address that was never
 *                         the start of any known extent
 *   flow.size_mismatch    free/realloc of an interior pointer of a
 *                         live extent (base + nonzero offset)
 *   flow.negative_size    alloc/realloc whose size has bit 63 set --
 *                         a negative ssize_t passed to an allocator
 *   flow.write_freed      pointer write landing inside a freed,
 *                         not-yet-reused extent (a UAF write); names
 *                         the victim's alloc/free site pair
 *   flow.write_unmapped   pointer write at an address no extent ever
 *                         covered
 *   flow.overlap_alloc    allocation overlapping a live extent
 *   flow.dangling_edge    a pointer slot whose target was freed and
 *                         recycled is loaded, and the very next
 *                         memory event writes inside the old target:
 *                         a UAF write through a dangling edge that
 *                         corrupts whatever recycled the extent (the
 *                         reused-memory dual of flow.write_freed).
 *                         Merely holding the stale address, probing
 *                         it as a key, or reading through a borrowed
 *                         pointer does not fire -- clean workloads
 *                         do all three routinely
 *   flow.leak_at_exit     extents still live at the footer, grouped
 *                         by allocation site and ranked by bytes
 *
 * Capture provenance (version-2 header, live-capture flag) relaxes
 * the matrix: the shim samples pointer writes only every `frq`
 * allocations and repairs missed frees by synthesizing Free events,
 * so address reuse is legal and edge knowledge is approximate.
 * Under capture, flow.overlap_alloc is suppressed entirely (the
 * overlapped extents are implicitly freed, mirroring replay),
 * flow.write_freed / flow.write_unmapped / flow.dangling_edge are
 * downgraded to warnings, and flow.leak_at_exit to notes (a real
 * process may exit without tearing its heap down).  flow.double_free,
 * flow.free_unallocated, flow.size_mismatch and flow.negative_size
 * stay errors: the shim observes every free directly, so those are
 * real bugs in any provenance.  A truncated trace (no footer) skips
 * leak analysis -- liveness at the cut point proves nothing.
 */

#ifndef HEAPMD_ANALYSIS_FLOW_LINT_HH
#define HEAPMD_ANALYSIS_FLOW_LINT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/report.hh"
#include "support/types.hh"

namespace heapmd
{

namespace analysis
{

/** Where in the trace an object was allocated or freed. */
struct FlowSite
{
    FnId fn = kNoFunction;        //!< innermost function at the event
    std::uint64_t eventIndex = 0; //!< 0-based index into the stream
    std::uint64_t byteOffset = 0; //!< offset of the event's tag byte
    bool known = false;           //!< site was actually observed
};

/** One defect found by the flow pass, in structured form. */
struct FlowFinding
{
    std::string rule;             //!< stable id, e.g. "flow.double_free"
    Severity severity = Severity::Error;
    std::uint64_t byteOffset = 0; //!< where the finding fired
    std::uint64_t eventIndex = 0; //!< event that fired it
    Addr addr = kNullAddr;        //!< faulting address
    Addr base = kNullAddr;        //!< extent base when one is involved
    std::uint64_t size = 0;       //!< extent size when known
    FlowSite allocSite;           //!< where the extent was allocated
    FlowSite freeSite;            //!< where the extent was freed
    std::uint64_t lifetimeEvents = 0; //!< events between alloc and free
    std::uint64_t objects = 0;    //!< leak: extents at this site
    std::uint64_t bytes = 0;      //!< leak: total bytes at this site
    std::string message;          //!< rendered, names resolved
};

/** Scan statistics of one flow pass. */
struct FlowLintStats
{
    std::uint64_t bytes = 0;      //!< total bytes scanned
    std::uint64_t events = 0;     //!< events decoded
    std::uint64_t functions = 0;  //!< names in the function table
    std::uint64_t liveAtExit = 0; //!< extents live at the footer
    std::uint64_t leakedBytes = 0; //!< bytes live at the footer
    bool captureProvenance = false; //!< header's live-capture flag
    bool sawFooter = false;       //!< 0xFF marker was reached
};

/** Full result of one flow pass over a trace. */
struct FlowAnalysis
{
    std::vector<FlowFinding> findings;
    std::vector<std::string> functionNames; //!< from the footer table
    FlowLintStats stats;

    /** Resolve a function id against the footer table. */
    std::string fnName(FnId fn) const;

    /** Render a site as "event N (byte B) in <fn>". */
    std::string describeSite(const FlowSite &site) const;
};

/**
 * Run the shadow-heap flow pass over an in-memory trace.  Framing
 * defects (bad header, truncated varints, unknown tags) silently end
 * the scan -- the trace linter owns reporting those; run it alongside
 * this pass for full coverage.  Never throws on malformed input.
 */
FlowAnalysis analyzeTraceFlow(std::string_view data);

/**
 * Flow-lint an in-memory trace into @p report.  When @p analysis is
 * non-null the structured findings are copied out for export (e.g.
 * into diag flow-incident documents).
 */
FlowLintStats lintTraceFlow(std::string_view data, Report &report,
                            FlowAnalysis *analysis = nullptr);

/** Flow-lint the trace file at @p path (mapped read-only). */
FlowLintStats lintTraceFlowFile(const std::string &path,
                                Report &report,
                                FlowAnalysis *analysis = nullptr);

} // namespace analysis

} // namespace heapmd

#endif // HEAPMD_ANALYSIS_FLOW_LINT_HH
