#include "analysis/trace_lint.hh"

#include <map>
#include <sstream>
#include <string_view>
#include <vector>

#include "analysis/trace_scan.hh"
#include "runtime/events.hh"
#include "telemetry/telemetry.hh"
#include "trace/gzip_source.hh"
#include "trace/segment_set.hh"
#include "trace/trace_format.hh"
#include "trace/trace_source.hh"

namespace heapmd
{

namespace analysis
{

namespace
{

using Cursor = ScanCursor;

VarintStatus
readVarint(Cursor &cursor, std::uint64_t &value)
{
    return scanVarint(cursor, value);
}

/** Tracks live/freed extents to check event-ordering rules. */
class ExtentTracker
{
  public:
    /** @return false when [addr, addr+size) overlaps a live extent. */
    bool
    allocate(Addr addr, std::uint64_t size)
    {
        // Address reuse resurrects freed ranges as live again.
        eraseOverlapping(freed_, addr, size);
        if (overlaps(live_, addr, size))
            return false;
        live_[addr] = size;
        return true;
    }

    /** @return false when @p addr is not the start of a live extent. */
    bool
    free(Addr addr)
    {
        auto it = live_.find(addr);
        if (it == live_.end())
            return false;
        freed_[addr] = it->second;
        live_.erase(it);
        return true;
    }

    /** Owner lookup: true when @p addr falls inside a live extent. */
    bool insideLive(Addr addr) const { return owns(live_, addr); }

    /** True when @p addr falls inside a freed (not reused) extent. */
    bool insideFreed(Addr addr) const { return owns(freed_, addr); }

  private:
    using ExtentMap = std::map<Addr, std::uint64_t>;

    static bool
    owns(const ExtentMap &map, Addr addr)
    {
        auto it = map.upper_bound(addr);
        if (it == map.begin())
            return false;
        --it;
        return addr - it->first < it->second;
    }

    static bool
    overlaps(const ExtentMap &map, Addr addr, std::uint64_t size)
    {
        auto it = map.lower_bound(addr);
        if (it != map.end() && it->first < addr + size)
            return true;
        if (it == map.begin())
            return false;
        --it;
        return addr - it->first < it->second;
    }

    static void
    eraseOverlapping(ExtentMap &map, Addr addr, std::uint64_t size)
    {
        auto it = map.lower_bound(addr);
        if (it != map.begin()) {
            auto prev = std::prev(it);
            if (addr - prev->first < prev->second)
                it = prev;
        }
        while (it != map.end() && it->first < addr + size)
            it = map.erase(it);
    }

    ExtentMap live_;
    ExtentMap freed_;
};

/** Shared state of one lint pass. */
struct Linter
{
    Cursor cursor;
    Report &report;
    TraceLintStats stats;
    ExtentTracker extents;
    /** First offset each function id was referenced at. */
    std::map<FnId, std::uint64_t> fn_uses;
    /** Header declared live-capture provenance. */
    bool capture = false;
    /**
     * Force truncation findings to errors even under capture
     * provenance.  Set for non-final segments of a rotating set:
     * rotation finalizes a segment before creating its successor, so
     * a cut-short mid-chain segment is corruption, not a kill
     * artifact.
     */
    bool truncation_is_error = false;

    Linter(std::string_view data, Report &rep)
        : cursor(data), report(rep)
    {
    }

    /**
     * Report a truncation finding: an error for offline-recorded
     * traces, a warning for capture-provenance ones (the preloaded
     * child may have been killed mid-run; the flushed prefix is the
     * expected artifact, not a corrupt one).
     */
    void
    truncation(const char *rule, std::uint64_t offset,
               std::string message)
    {
        if (capture && !truncation_is_error) {
            report.warningAtByte(rule, offset,
                                 message + " (expected for a killed "
                                           "live-capture child)");
        } else {
            report.errorAtByte(rule, offset, std::move(message));
        }
    }

    /**
     * Read the varints of one event, reporting ill-formed encodings.
     * @return false when the stream ended inside the event.
     */
    bool
    readFields(std::uint64_t event_offset, const char *kind_name,
               std::uint64_t *fields, int count)
    {
        for (int i = 0; i < count; ++i) {
            const std::uint64_t field_offset = cursor.offset();
            switch (readVarint(cursor, fields[i])) {
              case VarintStatus::Ok:
                break;
              case VarintStatus::Overlong:
                report.errorAtByte(
                    "trace.varint-overlong", field_offset,
                    std::string("LEB128 varint longer than 10 bytes "
                                "in ") +
                        kind_name + " event");
                break;
              case VarintStatus::Truncated:
                truncation(
                    "trace.varint-truncated", field_offset,
                    std::string("stream ends inside a LEB128 varint "
                                "of ") +
                        kind_name + " event at byte " +
                        std::to_string(event_offset));
                return false;
            }
        }
        return true;
    }

    void checkHeader(bool &usable);
    bool lintEvent(std::uint64_t offset, EventKind kind);
    void lintFooter(std::uint64_t marker_offset);
    void run();
};

void
Linter::checkHeader(bool &usable)
{
    const ScannedHeader header = scanTraceHeader(cursor);
    usable = header.usable;
    if (!header.usable) {
        report.errorAtByte(header.rule, header.offset,
                           header.message);
        return;
    }
    capture = header.capture;
    stats.captureProvenance = capture;
}

bool
Linter::lintEvent(std::uint64_t offset, EventKind kind)
{
    std::uint64_t f[3] = {0, 0, 0};
    switch (kind) {
      case EventKind::Alloc: {
        if (!readFields(offset, "Alloc", f, 2))
            return false;
        const Addr addr = f[0];
        const std::uint64_t size = f[1];
        if (size == 0) {
            report.errorAtByte("trace.zero-alloc", offset,
                               "allocation of size 0 at address " +
                                   std::to_string(addr));
        } else if (!extents.allocate(addr, size)) {
            report.errorAtByte(
                "trace.alloc-overlap", offset,
                "allocation [" + std::to_string(addr) + ", " +
                    std::to_string(addr + size) +
                    ") overlaps a live object");
        }
        break;
      }
      case EventKind::Free: {
        if (!readFields(offset, "Free", f, 1))
            return false;
        if (!extents.free(f[0])) {
            report.errorAtByte(
                "trace.free-before-alloc", offset,
                "free of address " + std::to_string(f[0]) +
                    " which is not the start of a live object "
                    "(never allocated, already freed, or interior)");
        }
        break;
      }
      case EventKind::Realloc: {
        if (!readFields(offset, "Realloc", f, 3))
            return false;
        const Addr old_addr = f[0];
        const Addr new_addr = f[1];
        const std::uint64_t size = f[2];
        if (!extents.free(old_addr)) {
            report.errorAtByte(
                "trace.free-before-alloc", offset,
                "realloc of address " + std::to_string(old_addr) +
                    " which is not the start of a live object");
        }
        if (size != 0 && !extents.allocate(new_addr, size)) {
            report.errorAtByte(
                "trace.alloc-overlap", offset,
                "realloc target [" + std::to_string(new_addr) +
                    ", " + std::to_string(new_addr + size) +
                    ") overlaps a live object");
        }
        break;
      }
      case EventKind::Write: {
        if (!readFields(offset, "Write", f, 2))
            return false;
        const Addr addr = f[0];
        if (!extents.insideLive(addr) && extents.insideFreed(addr)) {
            report.errorAtByte(
                "trace.write-after-free", offset,
                "pointer-write at address " + std::to_string(addr) +
                    " lands inside a freed object");
        }
        break;
      }
      case EventKind::Read:
        if (!readFields(offset, "Read", f, 1))
            return false;
        break;
      case EventKind::FnEnter:
      case EventKind::FnExit: {
        const char *name =
            kind == EventKind::FnEnter ? "FnEnter" : "FnExit";
        if (!readFields(offset, name, f, 1))
            return false;
        fn_uses.emplace(static_cast<FnId>(f[0]), offset);
        break;
      }
    }
    ++stats.events;
    return true;
}

void
Linter::lintFooter(std::uint64_t marker_offset)
{
    std::uint64_t count = 0;
    std::uint64_t offset = cursor.offset();
    switch (readVarint(cursor, count)) {
      case VarintStatus::Ok:
        break;
      case VarintStatus::Overlong:
        report.errorAtByte("trace.varint-overlong", offset,
                           "overlong function-table count varint");
        break;
      case VarintStatus::Truncated:
        truncation("trace.footer-truncated", offset,
                   "stream ends inside the function-table count");
        return;
    }

    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t len = 0;
        offset = cursor.offset();
        switch (readVarint(cursor, len)) {
          case VarintStatus::Ok:
            break;
          case VarintStatus::Overlong:
            report.errorAtByte("trace.varint-overlong", offset,
                               "overlong name-length varint for "
                               "function " +
                                   std::to_string(i));
            break;
          case VarintStatus::Truncated:
            truncation(
                "trace.footer-truncated", offset,
                "stream ends inside the function table after " +
                    std::to_string(i) + " of " +
                    std::to_string(count) + " names");
            return;
        }
        if (len > cursor.remaining()) {
            truncation(
                "trace.footer-truncated", cursor.offset(),
                "function name " + std::to_string(i) + " declares " +
                    std::to_string(len) + " bytes but only " +
                    std::to_string(cursor.remaining()) + " remain");
            return;
        }
        cursor.skip(len);
        ++stats.functions;
    }

    // Function-table id continuity: every id referenced by an
    // FnEnter/FnExit event must have a name in the table.
    for (const auto &[fn, first_offset] : fn_uses) {
        if (fn >= count) {
            report.errorAtByte(
                "trace.fn-id-range", first_offset,
                "event references function id " + std::to_string(fn) +
                    " but the footer table has only " +
                    std::to_string(count) + " names");
        }
    }

    if (!cursor.atEnd()) {
        report.warningAtByte(
            "trace.trailing-bytes", cursor.offset(),
            std::to_string(cursor.remaining()) +
                " byte(s) after the function table (footer at byte " +
                std::to_string(marker_offset) + ")");
    }
}

void
Linter::run()
{
    bool header_ok = false;
    checkHeader(header_ok);
    if (!header_ok)
        return;

    for (;;) {
        const std::uint64_t offset = cursor.offset();
        const int tag = cursor.get();
        if (tag < 0) {
            truncation("trace.no-footer", offset,
                       "stream ends without the 0xFF footer marker (" +
                           std::to_string(stats.events) +
                           " events decoded)");
            return;
        }
        if (tag == trace::kFooterMarker) {
            lintFooter(offset);
            return;
        }
        if (tag > static_cast<int>(EventKind::FnExit)) {
            // Framing is lost: varint boundaries downstream of an
            // unknown tag cannot be trusted, so stop here.
            report.errorAtByte(
                "trace.unknown-tag", offset,
                "unknown event tag " + std::to_string(tag) +
                    "; cannot resynchronize, " +
                    std::to_string(cursor.remaining()) +
                    " byte(s) left unscanned");
            return;
        }
        if (!lintEvent(offset, static_cast<EventKind>(tag)))
            return;
    }
}

} // namespace

TraceLintStats
lintTrace(std::string_view data, Report &report)
{
    Linter linter(data, report);
    linter.stats.bytes = data.size();
    linter.stats.segments = 1;
    linter.run();
    return linter.stats;
}

TraceLintStats
lintTrace(std::istream &is, Report &report)
{
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return lintTrace(buffer.str(), report);
}

TraceLintStats
lintTraceFile(const std::string &path, Report &report)
{
    HEAPMD_TRACE_SPAN("audit.trace");
    HEAPMD_COUNTER_INC("audit.trace_lints");
    const std::size_t before = report.findings().size();
    // A ".heapmd.gz" trace is inflated into a heap buffer first; a
    // plain trace is mapped read-only and linted in place (FileSource
    // falls back to a buffered read when the platform cannot mmap).
    if (trace::isGzipPath(path)) {
        std::vector<unsigned char> raw;
        std::string why;
        if (!trace::gzipDecodeFile(path, raw, why)) {
            report.error("trace.io", "cannot read gzip trace '" +
                                         path + "': " + why);
            HEAPMD_COUNTER_INC("audit.findings");
            return {};
        }
        const std::string_view data(
            reinterpret_cast<const char *>(raw.data()), raw.size());
        const TraceLintStats stats = lintTrace(data, report);
        HEAPMD_COUNTER_ADD("audit.findings",
                           report.findings().size() - before);
        return stats;
    }
    trace::FileSource source(path);
    if (!source.ok()) {
        report.error("trace.io",
                     "cannot open trace file '" + path + "'");
        HEAPMD_COUNTER_INC("audit.findings");
        return {};
    }
    const std::string_view data =
        source.size() == 0
            ? std::string_view()
            : std::string_view(
                  reinterpret_cast<const char *>(source.data()),
                  source.size());
    const TraceLintStats stats = lintTrace(data, report);
    HEAPMD_COUNTER_ADD("audit.findings",
                       report.findings().size() - before);
    return stats;
}

TraceLintStats
lintSegmentSet(const std::string &base, Report &report)
{
    HEAPMD_TRACE_SPAN("audit.segments");
    HEAPMD_COUNTER_INC("audit.trace_lints");
    const std::size_t before = report.findings().size();

    TraceLintStats total;
    const std::vector<std::uint64_t> indices =
        trace::listSegmentIndices(base);
    if (indices.empty()) {
        report.error("trace.io",
                     "no trace segments found for '" + base + "'");
        HEAPMD_COUNTER_INC("audit.findings");
        return total;
    }

    // Live/freed extent state survives segment boundaries: the set is
    // one logical trace and cross-segment alloc/free pairing must
    // lint exactly as the concatenated stream would.
    ExtentTracker extents;
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::uint64_t index = indices[i];
        if (index != expected) {
            report.error(
                "trace.segment-gap",
                "segment " + std::to_string(expected) +
                    " of '" + base + "' is missing (next on disk is " +
                    std::to_string(index) +
                    "); extent state resets at the gap");
            // Ordering checks across the hole would be noise; framing
            // checks on the remaining segments are still worth it.
            extents = ExtentTracker();
        }
        expected = index + 1;

        const std::string path =
            trace::resolveSegmentPath(base, index);
        if (path.empty()) {
            report.error("trace.io", "cannot open trace segment " +
                                         std::to_string(index) +
                                         " of '" + base + "'");
            continue;
        }
        // Compressed segments are inflated up front; the lint then
        // sees the same raw bytes either way (stats.bytes counts raw
        // trace bytes, not on-disk bytes).
        std::vector<unsigned char> inflated;
        trace::FileSource source(path);
        std::string_view data;
        if (trace::isGzipPath(path)) {
            std::string why;
            if (!trace::gzipDecodeFile(path, inflated, why)) {
                report.error("trace.io",
                             "cannot read gzip segment '" + path +
                                 "': " + why);
                continue;
            }
            data = std::string_view(
                reinterpret_cast<const char *>(inflated.data()),
                inflated.size());
        } else {
            if (!source.ok()) {
                report.error("trace.io",
                             "cannot open trace segment '" + path +
                                 "'");
                continue;
            }
            if (source.size() != 0)
                data = std::string_view(
                    reinterpret_cast<const char *>(source.data()),
                    source.size());
        }
        Linter linter(data, report);
        linter.stats.bytes = data.size();
        linter.extents = std::move(extents);
        linter.truncation_is_error = i + 1 < indices.size();
        linter.run();
        extents = std::move(linter.extents);

        total.bytes += linter.stats.bytes;
        total.events += linter.stats.events;
        // The shim's registry persists across rotations, so the
        // newest footer's table is a superset of its predecessors.
        if (linter.stats.functions > total.functions)
            total.functions = linter.stats.functions;
        total.captureProvenance |= linter.stats.captureProvenance;
        ++total.segments;
    }

    HEAPMD_COUNTER_ADD("audit.findings",
                       report.findings().size() - before);
    return total;
}

} // namespace analysis

} // namespace heapmd
