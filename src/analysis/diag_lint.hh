/**
 * @file
 * Static linter for diagnostics artifacts: incident bundles and run
 * manifests (the src/diag JSON documents).
 *
 * Works on the raw JSON, not the diag loader structs, so a document
 * the loader would reject can still be audited field by field and so
 * the analysis layer stays independent of src/diag.  Whole-document
 * findings carry no location (the canonical writer fixes layout, so
 * line numbers add nothing).
 *
 * Rule catalog (see DESIGN.md §9):
 *   diag.io                unreadable input file
 *   diag.parse             not valid JSON
 *   diag.kind              missing/wrong "kind" tag
 *   diag.version           missing or unsupported schemaVersion
 *   diag.missing-field     required member absent or mistyped
 *   diag.bad-metric        metric name not in the paper's seven
 *   diag.bad-class         unknown bug classification
 *   diag.bad-direction     direction not above-max/below-min
 *   diag.range-inverted    calibratedMin > calibratedMax
 *   diag.observed-in-range observed value inside the calibrated range
 *   diag.window-order      window points not strictly increasing
 *   diag.window-miss       window does not straddle the crossing
 *   diag.context-order     context log points not non-decreasing
 *   diag.empty-context     incident with no logged call stacks
 *   diag.suspect-mismatch  stored suspect != context-log majority
 *   diag.hash-format       input fingerprint not "fnv1a:<hex16>"
 *   diag.counter-order     counters/gauges not sorted by name
 *   diag.report-count      class tallies do not sum to the total
 *   diag.sample-excess     more samples than runtime events
 *   diag.bad-rule          flow incident rule not in the flow.* set
 *   diag.bad-severity      flow severity not error/warning/note
 *   diag.addr-outside      flow access address outside the extent
 *
 * lintBundleText() accepts both "heapmd.incident" bundles and the
 * "heapmd.flow" documents `audit --deep --bundle-dir` exports,
 * dispatching on the kind tag.
 */

#ifndef HEAPMD_ANALYSIS_DIAG_LINT_HH
#define HEAPMD_ANALYSIS_DIAG_LINT_HH

#include <string>

#include "analysis/report.hh"

namespace heapmd
{

namespace analysis
{

/** Scan statistics of one bundle lint pass. */
struct BundleLintStats
{
    std::size_t suspects = 0;       //!< ranked suspects listed
    std::size_t contextEntries = 0; //!< call-stack snapshots
    std::size_t frames = 0;         //!< frames across all snapshots
    std::size_t windowPoints = 0;   //!< series points in the window
};

/** Scan statistics of one manifest lint pass. */
struct ManifestLintStats
{
    std::size_t inputs = 0;   //!< input artifacts listed
    std::size_t metrics = 0;  //!< per-metric summaries
    std::size_t counters = 0; //!< telemetry counters
    std::size_t gauges = 0;   //!< telemetry gauges
    std::size_t reports = 0;  //!< anomaly reports tallied
};

/** Lint one incident-bundle document given as text. */
BundleLintStats lintBundleText(const std::string &text,
                               Report &report);

/** Lint the incident-bundle file at @p path. */
BundleLintStats lintBundleFile(const std::string &path,
                               Report &report);

/** Lint one run-manifest document given as text. */
ManifestLintStats lintManifestText(const std::string &text,
                                   Report &report);

/** Lint the run-manifest file at @p path. */
ManifestLintStats lintManifestFile(const std::string &path,
                                   Report &report);

} // namespace analysis

} // namespace heapmd

#endif // HEAPMD_ANALYSIS_DIAG_LINT_HH
