#include "analysis/report.hh"

#include <sstream>

namespace heapmd
{

namespace analysis
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "unknown";
}

std::string
Finding::describe() const
{
    std::ostringstream oss;
    oss << severityName(severity) << ' ' << rule;
    switch (locationKind) {
      case LocationKind::Byte:
        oss << " @byte " << location;
        break;
      case LocationKind::Line:
        oss << " @line " << location;
        break;
      case LocationKind::None:
        break;
    }
    oss << ": " << message;
    return oss.str();
}

void
Report::add(Severity severity, std::string rule, LocationKind kind,
            std::uint64_t location, std::string message)
{
    switch (severity) {
      case Severity::Error:
        ++errors_;
        break;
      case Severity::Warning:
        ++warnings_;
        break;
      case Severity::Note:
        ++notes_;
        break;
    }
    if (findings_.size() >= max_findings_) {
        truncated_ = true;
        return;
    }
    Finding f;
    f.severity = severity;
    f.rule = std::move(rule);
    f.locationKind = kind;
    f.location = location;
    f.message = std::move(message);
    findings_.push_back(std::move(f));
}

void
Report::error(std::string rule, std::string message)
{
    add(Severity::Error, std::move(rule), LocationKind::None, 0,
        std::move(message));
}

void
Report::errorAtByte(std::string rule, std::uint64_t offset,
                    std::string message)
{
    add(Severity::Error, std::move(rule), LocationKind::Byte, offset,
        std::move(message));
}

void
Report::errorAtLine(std::string rule, std::uint64_t line,
                    std::string message)
{
    add(Severity::Error, std::move(rule), LocationKind::Line, line,
        std::move(message));
}

void
Report::warning(std::string rule, std::string message)
{
    add(Severity::Warning, std::move(rule), LocationKind::None, 0,
        std::move(message));
}

void
Report::warningAtByte(std::string rule, std::uint64_t offset,
                      std::string message)
{
    add(Severity::Warning, std::move(rule), LocationKind::Byte,
        offset, std::move(message));
}

void
Report::warningAtLine(std::string rule, std::uint64_t line,
                      std::string message)
{
    add(Severity::Warning, std::move(rule), LocationKind::Line, line,
        std::move(message));
}

void
Report::note(std::string rule, std::string message)
{
    add(Severity::Note, std::move(rule), LocationKind::None, 0,
        std::move(message));
}

void
Report::noteAtByte(std::string rule, std::uint64_t offset,
                   std::string message)
{
    add(Severity::Note, std::move(rule), LocationKind::Byte, offset,
        std::move(message));
}

void
Report::atByte(Severity severity, std::string rule,
               std::uint64_t offset, std::string message)
{
    add(severity, std::move(rule), LocationKind::Byte, offset,
        std::move(message));
}

std::size_t
Report::count(std::string_view rule) const
{
    std::size_t n = 0;
    for (const Finding &f : findings_)
        n += f.rule == rule ? 1 : 0;
    return n;
}

std::string
Report::describe() const
{
    std::ostringstream oss;
    for (const Finding &f : findings_)
        oss << f.describe() << '\n';
    if (truncated_) {
        oss << "note report.truncated: finding list capped at "
            << findings_.size() << " entries\n";
    }
    oss << errors_ << " error(s), " << warnings_ << " warning(s), "
        << notes_ << " note(s)\n";
    return oss.str();
}

} // namespace analysis

} // namespace heapmd
