/**
 * @file
 * Static linter for fleet population models (`heapmd fleet-merge`
 * output).
 *
 * Works on the raw JSON, not the fleet loader structs, so a document
 * the loader would reject can still be audited field by field and so
 * the analysis layer stays independent of src/fleet (mirroring how
 * diag_lint stays independent of src/diag).
 *
 * Rule catalog (see DESIGN.md §15):
 *   fleet.io               unreadable input file
 *   fleet.parse            not valid JSON
 *   fleet.kind             missing/wrong "kind" tag
 *   fleet.version          missing or unsupported schemaVersion
 *   fleet.missing-field    required member absent or mistyped
 *   fleet.count-mismatch   processes != members array length
 *   fleet.member-order     members not strictly sorted by path
 *   fleet.bad-metric       metric name not in the paper's seven
 *   fleet.range-inverted   a pooled range with min > max
 *   fleet.outlier-unknown  an outlier path naming no member
 *   fleet.incident-order   incident clusters not sorted by
 *                          (count desc, signature)
 *   fleet.incident-count   a cluster counting fewer bundles than
 *                          the members it lists
 */

#ifndef HEAPMD_ANALYSIS_FLEET_LINT_HH
#define HEAPMD_ANALYSIS_FLEET_LINT_HH

#include <cstddef>
#include <string>

#include "analysis/report.hh"

namespace heapmd
{

namespace analysis
{

/** Scan statistics of one fleet lint pass. */
struct FleetLintStats
{
    std::size_t members = 0;   //!< processes listed
    std::size_t metrics = 0;   //!< pooled metric ranges
    std::size_t outliers = 0;  //!< outlier attributions
    std::size_t incidents = 0; //!< incident clusters
};

/** Lint one fleet-model document given as text. */
FleetLintStats lintFleetText(const std::string &text, Report &report);

/** Lint the fleet-model file at @p path. */
FleetLintStats lintFleetFile(const std::string &path, Report &report);

} // namespace analysis

} // namespace heapmd

#endif // HEAPMD_ANALYSIS_FLEET_LINT_HH
