/**
 * @file
 * Structured findings shared by the offline artifact auditors.
 *
 * Every analyzer in src/analysis/ (trace linter, model linter, graph
 * invariant checker) reports through an analysis::Report: a flat list
 * of findings, each carrying a severity, a stable rule id, a location
 * (byte offset for binary traces, line number for text documents) and
 * a human-readable message.  `heapmd audit` prints the report;
 * `heapmd replay` / `heapmd check` use it to pre-flight their inputs.
 *
 * Rule ids are stable identifiers of the form `<subsystem>.<rule>`
 * (e.g. "trace.free-before-alloc"); the full catalog is documented in
 * DESIGN.md, section "The audit subsystem".
 */

#ifndef HEAPMD_ANALYSIS_REPORT_HH
#define HEAPMD_ANALYSIS_REPORT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace heapmd
{

namespace analysis
{

/** How bad a finding is. */
enum class Severity
{
    Note,    //!< informational; artifact is usable
    Warning, //!< suspicious but not provably broken
    Error,   //!< artifact violates its format spec or an invariant
};

/** Display name of a Severity value. */
const char *severityName(Severity severity);

/** Unit of a finding's location field. */
enum class LocationKind
{
    None, //!< whole-artifact finding
    Byte, //!< byte offset into a binary artifact (traces)
    Line, //!< 1-based line number in a text artifact (models, graphs)
};

/** One defect (or observation) found in an artifact. */
struct Finding
{
    Severity severity = Severity::Error;
    std::string rule;       //!< stable id, e.g. "trace.bad-magic"
    LocationKind locationKind = LocationKind::None;
    std::uint64_t location = 0; //!< byte offset or line number
    std::string message;    //!< human-readable description

    /** Render as one line, e.g. "error trace.varint @byte 17: ...". */
    std::string describe() const;
};

/**
 * Ordered collection of findings from one or more analyzers.
 *
 * Analyzers append through the severity helpers; consumers either
 * print describe() or branch on errorCount().  A cap keeps a single
 * systematically-corrupt artifact from producing millions of entries
 * (the cap itself is recorded as a final note).
 */
class Report
{
  public:
    /** Default cap on retained findings. */
    static constexpr std::size_t kDefaultMaxFindings = 1000;

    explicit Report(std::size_t max_findings = kDefaultMaxFindings)
        : max_findings_(max_findings)
    {
    }

    /** Append an error finding. */
    void error(std::string rule, std::string message);
    void errorAtByte(std::string rule, std::uint64_t offset,
                     std::string message);
    void errorAtLine(std::string rule, std::uint64_t line,
                     std::string message);

    /** Append a warning finding. */
    void warning(std::string rule, std::string message);
    void warningAtByte(std::string rule, std::uint64_t offset,
                       std::string message);
    void warningAtLine(std::string rule, std::uint64_t line,
                       std::string message);

    /** Append a note finding. */
    void note(std::string rule, std::string message);
    void noteAtByte(std::string rule, std::uint64_t offset,
                    std::string message);

    /** Append a finding of the given severity at a byte offset. */
    void atByte(Severity severity, std::string rule,
                std::uint64_t offset, std::string message);

    /** All retained findings, in discovery order. */
    const std::vector<Finding> &findings() const { return findings_; }

    /** Total findings of the given severity (cap overflow included). */
    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return warnings_; }
    std::size_t noteCount() const { return notes_; }

    /** True when no error-severity finding was recorded. */
    bool clean() const { return errors_ == 0; }

    /** Retained findings matching @p rule. */
    std::size_t count(std::string_view rule) const;

    /** True when at least one retained finding matches @p rule. */
    bool has(std::string_view rule) const { return count(rule) > 0; }

    /** True when the findings cap truncated the list. */
    bool truncated() const { return truncated_; }

    /** Render every finding plus a one-line summary. */
    std::string describe() const;

  private:
    void add(Severity severity, std::string rule, LocationKind kind,
             std::uint64_t location, std::string message);

    std::vector<Finding> findings_;
    std::size_t max_findings_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    std::size_t notes_ = 0;
    bool truncated_ = false;
};

} // namespace analysis

} // namespace heapmd

#endif // HEAPMD_ANALYSIS_REPORT_HH
