#include "analysis/fleet_lint.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/metric.hh"
#include "telemetry/trace_json.hh"

namespace heapmd
{

namespace analysis
{

namespace
{

using telemetry::JsonValue;

/** Highest fleet schemaVersion this linter understands. */
constexpr double kSupportedFleetVersion = 1;

/**
 * Member access that files a fleet.missing-field finding instead of
 * stopping: one pass reports every defect (diag_lint's Checker,
 * fleet flavored).
 */
class FleetChecker
{
  public:
    explicit FleetChecker(Report &report) : report_(report) {}

    const JsonValue *
    member(const JsonValue &object, const std::string &where,
           const char *key, JsonValue::Kind kind, const char *type)
    {
        const JsonValue *found = object.find(key);
        if (found == nullptr) {
            report_.error("fleet.missing-field",
                          where + " is missing member '" + key +
                              "'");
            return nullptr;
        }
        if (found->kind != kind) {
            report_.error("fleet.missing-field",
                          where + " member '" + key + "' is not " +
                              type);
            return nullptr;
        }
        return found;
    }

    std::string
    str(const JsonValue &object, const std::string &where,
        const char *key)
    {
        const JsonValue *found = member(object, where, key,
                                        JsonValue::Kind::String,
                                        "a string");
        return found != nullptr ? found->string : std::string();
    }

    double
    num(const JsonValue &object, const std::string &where,
        const char *key)
    {
        const JsonValue *found = member(object, where, key,
                                        JsonValue::Kind::Number,
                                        "a number");
        return found != nullptr
                   ? found->number
                   : std::numeric_limits<double>::quiet_NaN();
    }

    const JsonValue *
    array(const JsonValue &object, const std::string &where,
          const char *key)
    {
        return member(object, where, key, JsonValue::Kind::Array,
                      "an array");
    }

    const JsonValue *
    object(const JsonValue &value, const std::string &where,
           const char *key)
    {
        return member(value, where, key, JsonValue::Kind::Object,
                      "an object");
    }

  private:
    Report &report_;
};

} // namespace

FleetLintStats
lintFleetText(const std::string &text, Report &report)
{
    FleetLintStats stats;
    JsonValue root;
    {
        std::string error;
        if (!telemetry::parseJson(text, root, &error)) {
            report.error("fleet.parse", error);
            return stats;
        }
    }
    if (!root.isObject()) {
        report.error("fleet.parse", "document root is not an object");
        return stats;
    }
    const JsonValue *kind = root.find("kind");
    if (kind == nullptr || !kind->isString()) {
        report.error("fleet.kind",
                     "document has no string 'kind' tag");
        return stats;
    }
    if (kind->string != "heapmd.fleet") {
        report.error("fleet.kind", "kind '" + kind->string +
                                       "' is not 'heapmd.fleet'");
        return stats;
    }
    const JsonValue *version = root.find("schemaVersion");
    if (version == nullptr || !version->isNumber()) {
        report.error("fleet.version",
                     "document has no numeric schemaVersion");
    } else if (version->number < 1 ||
               version->number > kSupportedFleetVersion) {
        report.error("fleet.version",
                     "unsupported schemaVersion " +
                         std::to_string(version->number));
    }

    FleetChecker check(report);
    const double processes = check.num(root, "fleet", "processes");

    const JsonValue *provenance =
        check.object(root, "fleet", "provenance");
    if (provenance != nullptr) {
        check.num(*provenance, "provenance", "metricFrequency");
        check.num(*provenance, "provenance", "rotateBytes");
        check.member(*provenance, "provenance", "mixed",
                     JsonValue::Kind::Bool, "a boolean");
    }

    std::vector<std::string> member_paths;
    const JsonValue *members = check.array(root, "fleet", "members");
    if (members != nullptr) {
        std::string previous;
        for (const JsonValue &entry : members->array) {
            if (!entry.isObject()) {
                report.error("fleet.missing-field",
                             "members entry is not an object");
                continue;
            }
            ++stats.members;
            const std::string path =
                check.str(entry, "member", "path");
            check.str(entry, "member", "program");
            check.str(entry, "member", "command");
            check.num(entry, "member", "schemaVersion");
            check.num(entry, "member", "events");
            check.num(entry, "member", "samples");
            check.num(entry, "member", "reports");
            check.num(entry, "member", "metricFrequency");
            check.num(entry, "member", "rotateBytes");
            if (!path.empty()) {
                if (!previous.empty() && path <= previous) {
                    report.error(
                        "fleet.member-order",
                        "member '" + path +
                            "' is not strictly after '" + previous +
                            "' (members must be sorted by path)");
                }
                previous = path;
                member_paths.push_back(path);
            }
        }
        if (!std::isnan(processes) &&
            processes !=
                static_cast<double>(members->array.size())) {
            report.error(
                "fleet.count-mismatch",
                "processes claims " +
                    std::to_string(
                        static_cast<long long>(processes)) +
                    " but " +
                    std::to_string(members->array.size()) +
                    " member(s) are listed");
        }
    }

    const JsonValue *metrics = check.array(root, "fleet", "metrics");
    if (metrics != nullptr) {
        for (const JsonValue &entry : metrics->array) {
            if (!entry.isObject()) {
                report.error("fleet.missing-field",
                             "metrics entry is not an object");
                continue;
            }
            ++stats.metrics;
            const std::string metric =
                check.str(entry, "metric range", "metric");
            if (!metric.empty() && !tryMetricFromName(metric)) {
                report.error("fleet.bad-metric",
                             "unknown metric '" + metric + "'");
            }
            check.num(entry, "metric range", "members");
            check.num(entry, "metric range", "samples");
            const double min =
                check.num(entry, "metric range", "min");
            const double max =
                check.num(entry, "metric range", "max");
            check.num(entry, "metric range", "mean");
            check.num(entry, "metric range", "stddev");
            if (!std::isnan(min) && !std::isnan(max) && min > max) {
                report.error("fleet.range-inverted",
                             "pooled range of '" + metric +
                                 "' has min above max");
            }
        }
    }

    const JsonValue *outliers =
        check.array(root, "fleet", "outliers");
    if (outliers != nullptr) {
        for (const JsonValue &entry : outliers->array) {
            if (!entry.isObject()) {
                report.error("fleet.missing-field",
                             "outliers entry is not an object");
                continue;
            }
            ++stats.outliers;
            const std::string path =
                check.str(entry, "outlier", "path");
            const std::string metric =
                check.str(entry, "outlier", "metric");
            if (!metric.empty() && !tryMetricFromName(metric)) {
                report.error("fleet.bad-metric",
                             "unknown metric '" + metric + "'");
            }
            check.num(entry, "outlier", "score");
            check.num(entry, "outlier", "memberMean");
            check.num(entry, "outlier", "fleetMean");
            if (!path.empty() &&
                std::find(member_paths.begin(), member_paths.end(),
                          path) == member_paths.end()) {
                report.error("fleet.outlier-unknown",
                             "outlier path '" + path +
                                 "' names no fleet member");
            }
        }
    }

    const JsonValue *incidents =
        check.array(root, "fleet", "incidents");
    if (incidents != nullptr) {
        double previous_count =
            std::numeric_limits<double>::infinity();
        std::string previous_signature;
        for (const JsonValue &entry : incidents->array) {
            if (!entry.isObject()) {
                report.error("fleet.missing-field",
                             "incidents entry is not an object");
                continue;
            }
            ++stats.incidents;
            const std::string signature =
                check.str(entry, "incident", "signature");
            const double count =
                check.num(entry, "incident", "count");
            const JsonValue *cluster_members =
                check.array(entry, "incident", "members");
            if (!std::isnan(count)) {
                if (count > previous_count ||
                    (count == previous_count &&
                     signature < previous_signature)) {
                    report.error(
                        "fleet.incident-order",
                        "incident '" + signature +
                            "' breaks the (count desc, signature) "
                            "order");
                }
                previous_count = count;
                previous_signature = signature;
                if (cluster_members != nullptr &&
                    count < static_cast<double>(
                                cluster_members->array.size())) {
                    report.error(
                        "fleet.incident-count",
                        "incident '" + signature + "' counts " +
                            std::to_string(
                                static_cast<long long>(count)) +
                            " bundle(s) but lists " +
                            std::to_string(
                                cluster_members->array.size()) +
                            " member(s)");
                }
            }
        }
    }

    return stats;
}

FleetLintStats
lintFleetFile(const std::string &path, Report &report)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.error("fleet.io", "cannot open '" + path + "'");
        return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintFleetText(buffer.str(), report);
}

} // namespace analysis

} // namespace heapmd
